// Hot/cold data aging (Section 5.4): split header and item tables into a
// hot and a cold temperature class under a consistent aging definition,
// register the aging group, and watch the optimizer prune cross-temperature
// subjoins logically while per-temperature cache partials are maintained
// independently.

#include <cstdio>

#include "aggcache/aggcache.h"
#include "common/stopwatch.h"

namespace {

using namespace aggcache;  // NOLINT(build/namespaces) — example brevity.

}  // namespace

int main() {
  Database db;
  ErpConfig config;
  config.num_headers_main = 8000;
  config.num_categories = 20;
  auto dataset_or = ErpDataset::Create(&db, config);
  if (!dataset_or.ok()) return 1;
  ErpDataset dataset = std::move(dataset_or).value();

  // Age the oldest 3/4 of the business objects into cold partitions. Both
  // tables split on the same HeaderID boundary, so matching header and item
  // rows always share a temperature — a consistent aging definition.
  const int64_t cold_below = 6000;
  if (!dataset.header()->SplitHotCold("HeaderID", Value(cold_below)).ok()) {
    return 1;
  }
  if (!dataset.item()->SplitHotCold("HeaderID", Value(cold_below)).ok()) {
    return 1;
  }
  db.RegisterAgingGroup({"Header", "Item"});

  for (const char* name : {"Header", "Item"}) {
    const Table* table = db.GetTable(name).value();
    std::printf("%s: ", name);
    for (size_t g = 0; g < table->num_groups(); ++g) {
      std::printf("%s main=%zu rows  ", AgeClassToString(table->group(g).age),
                  table->group(g).main.num_rows());
    }
    std::printf("\n");
  }

  // New business objects land in the hot deltas only.
  AggregateCacheManager cache(&db);
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    if (!dataset.InsertBusinessObject(rng).ok()) return 1;
  }

  AggregateQuery query = dataset.RevenueByYearQuery();
  std::printf("\nQuery: %s\n\n", query.ToSql().c_str());

  // With two groups per table, the join has 4 x 4 = 16 subjoins, of which
  // 4 all-main combinations are cached; the aging group lets the pruner
  // drop the cross-temperature ones logically.
  for (ExecutionStrategy strategy :
       {ExecutionStrategy::kUncached, ExecutionStrategy::kCachedNoPruning,
        ExecutionStrategy::kCachedFullPruning}) {
    ExecutionOptions options;
    options.strategy = strategy;
    Stopwatch watch;
    Transaction txn = db.Begin();
    auto result = cache.Execute(query, txn, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-22s %8.3f ms  (%llu subjoins executed, %llu pruned)\n",
                ExecutionStrategyToString(strategy), watch.ElapsedMillis(),
                static_cast<unsigned long long>(
                    cache.last_exec_stats().subjoins_executed),
                static_cast<unsigned long long>(
                    cache.last_exec_stats().subjoins_pruned));
  }

  // The cache entry keeps one partial result per all-main combination;
  // merging the hot group only touches the partials that involve it.
  const CacheEntry* entry = cache.Find(query);
  if (entry == nullptr) return 1;
  std::printf("\ncache entry holds %zu per-temperature partial results\n",
              entry->main_partials().size());
  if (!db.MergeTables({"Header", "Item"}).ok()) return 1;
  Transaction txn = db.Begin();
  auto after_merge = cache.Execute(query, txn);
  ExecutionOptions uncached;
  uncached.strategy = ExecutionStrategy::kUncached;
  auto baseline = cache.Execute(query, txn, uncached);
  if (!after_merge.ok() || !baseline.ok()) return 1;
  bool equal = after_merge->ApproxEquals(*baseline, 1e-9);
  std::printf("after merge, cached == uncached: %s\n", equal ? "yes" : "NO");
  return equal ? 0 : 1;
}
