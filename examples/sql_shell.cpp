// Interactive SQL shell over the aggcache engine. Preloads the ERP demo
// dataset and accepts the supported SQL dialect plus a few meta-commands —
// the quickest way to poke at the aggregate cache by hand.
//
// Usage:  ./sql_shell            (interactive)
//         echo "SELECT ..." | ./sql_shell
//         AGGCACHE_DATA_DIR=/tmp/shell ./sql_shell   (durable session:
//         recovers the directory on start, WAL-logs every write; see
//         AGGCACHE_WAL=off|async|sync for the sync policy)
//
// Meta-commands:
//   .tables           list tables with partition sizes
//   .merge [table]    run a delta merge (all tables when omitted)
//   .cache            show aggregate cache entries and metrics
//   .strategy NAME    uncached | no-pruning | empty-delta | full (default)
//   .save FILE        write a database snapshot
//   .load FILE        replace the database with a snapshot
//   \flight [n]       dump the last n (default 4096) engine flight-recorder
//                     events to stderr as JSON
//   \spans [n]        dump the last n (default 8192) spans to stderr as
//                     Chrome-trace JSON (set AGGCACHE_SPANS=on to record)
//   \cache            print the per-entry cost/benefit ledger
//   \queries          print the active-query registry (live queries with
//                     phase, elapsed, memory; serve /queries for JSON)
//   .quit
//
// Set AGGCACHE_OBS_ADDR=host:port to serve /metrics, /metrics.json,
// /metrics/history, /flight, /spans, /queries, /queries/cancel?id=N,
// /slowlog, /cache and /healthz over HTTP while the shell runs.
// AGGCACHE_SLOW_QUERY_MS=<ms> arms the slow-query log;
// AGGCACHE_METRICS_HISTORY=<period_ms> starts the metrics-history sampler.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "aggcache/aggcache.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/flight_recorder.h"

namespace {

using namespace aggcache;  // NOLINT(build/namespaces) — example brevity.

ExecutionStrategy g_strategy = ExecutionStrategy::kCachedFullPruning;

void ListTables(const Database& db) {
  for (const std::string& name : db.TableNames()) {
    const Table* table = db.GetTable(name).value();
    std::printf("  %-20s", name.c_str());
    for (size_t g = 0; g < table->num_groups(); ++g) {
      const PartitionGroup& group = table->group(g);
      std::printf(" %s[main=%zu delta=%zu]",
                  AgeClassToString(group.age), group.main.num_rows(),
                  group.delta.num_rows());
    }
    std::printf("\n");
  }
}

void ShowCache(const AggregateCacheManager& cache) {
  std::printf("  %zu entries, %zu bytes\n", cache.num_entries(),
              cache.total_bytes());
}

bool HandleMetaCommand(const std::string& line,
                       std::unique_ptr<Database>& db,
                       std::unique_ptr<AggregateCacheManager>& cache,
                       bool durable) {
  // .quit/.exit are handled in main() so the normal return path runs —
  // the observability server must join its threads before db/cache die.
  if (line == ".tables") {
    ListTables(*db);
    return true;
  }
  if (line == ".cache") {
    ShowCache(*cache);
    return true;
  }
  if (line.rfind(".merge", 0) == 0) {
    std::string table = line.size() > 7 ? line.substr(7) : "";
    Status status = table.empty() ? db->MergeAll() : db->Merge(table);
    std::printf("  %s\n", status.ToString().c_str());
    return true;
  }
  if (line.rfind(".save ", 0) == 0) {
    std::ofstream out(line.substr(6));
    Status status = out ? WriteSnapshot(*db, out)
                        : Status::InvalidArgument("cannot open file");
    std::printf("  %s\n", status.ToString().c_str());
    return true;
  }
  if (line.rfind(".load ", 0) == 0) {
    if (durable) {
      // A snapshot load bypasses the WAL, so the on-disk log would no
      // longer describe the in-memory state.
      std::printf("  .load is unavailable in a durable session "
                  "(unset AGGCACHE_DATA_DIR)\n");
      return true;
    }
    std::ifstream in(line.substr(6));
    if (!in) {
      std::printf("  cannot open file\n");
      return true;
    }
    auto fresh = std::make_unique<Database>();
    Status status = ReadSnapshot(in, fresh.get());
    if (status.ok()) {
      cache.reset();  // The old cache observes the old database.
      db = std::move(fresh);
      cache = std::make_unique<AggregateCacheManager>(db.get());
    }
    std::printf("  %s\n", status.ToString().c_str());
    return true;
  }
  if (line.rfind(".strategy ", 0) == 0) {
    std::string name = line.substr(10);
    if (name == "uncached") {
      g_strategy = ExecutionStrategy::kUncached;
    } else if (name == "no-pruning") {
      g_strategy = ExecutionStrategy::kCachedNoPruning;
    } else if (name == "empty-delta") {
      g_strategy = ExecutionStrategy::kCachedEmptyDeltaPruning;
    } else if (name == "full") {
      g_strategy = ExecutionStrategy::kCachedFullPruning;
    } else {
      std::printf("  unknown strategy '%s'\n", name.c_str());
      return true;
    }
    std::printf("  strategy = %s\n", ExecutionStrategyToString(g_strategy));
    return true;
  }
  if (line.rfind("\\spans", 0) == 0) {
    // Dump the span recorder as Chrome-trace JSON (load in Perfetto or
    // chrome://tracing). Recording is off unless AGGCACHE_SPANS is set.
    size_t max_spans = 8192;
    std::string arg = line.size() > 7 ? line.substr(7) : "";
    if (!arg.empty()) {
      char* end = nullptr;
      long parsed = std::strtol(arg.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || parsed <= 0) {
        std::printf("  usage: \\spans [max_spans]\n");
        return true;
      }
      max_spans = static_cast<size_t>(parsed);
    }
    SpanRecorder& spans = SpanRecorder::Global();
    if (!spans.enabled()) {
      std::printf("  span recorder is off (set AGGCACHE_SPANS=on)\n");
      return true;
    }
    spans.DumpToStderr(max_spans);
    std::printf("  spans: %llu recorded, %llu lost (dump on stderr)\n",
                static_cast<unsigned long long>(spans.recorded_spans()),
                static_cast<unsigned long long>(spans.lost_spans()));
    return true;
  }
  if (line == "\\cache") {
    std::printf("%s", cache->LedgerText().c_str());
    return true;
  }
  if (line == "\\queries") {
    std::printf("%s", ActiveQueryRegistry::Global().ListText().c_str());
    return true;
  }
  if (line.rfind("\\flight", 0) == 0) {
    // Dump the engine flight recorder (last n events, default 4096). Uses
    // the backslash form so it reads like a debugger escape, distinct from
    // the dot-prefixed catalog commands.
    size_t max_events = 4096;
    std::string arg = line.size() > 8 ? line.substr(8) : "";
    if (!arg.empty()) {
      char* end = nullptr;
      long parsed = std::strtol(arg.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || parsed <= 0) {
        std::printf("  usage: \\flight [max_events]\n");
        return true;
      }
      max_events = static_cast<size_t>(parsed);
    }
    FlightRecorder::Global().DumpToStderr(max_events);
    std::printf("  flight recorder: %llu recorded, %llu lost (dump on "
                "stderr)\n",
                static_cast<unsigned long long>(
                    FlightRecorder::Global().recorded_events()),
                static_cast<unsigned long long>(
                    FlightRecorder::Global().lost_events()));
    return true;
  }
  if (!line.empty() && (line[0] == '.' || line[0] == '\\')) {
    std::printf("  unknown meta-command '%s'\n", line.c_str());
    return true;
  }
  return false;
}

void RunStatement(const std::string& sql, Database& db,
                  AggregateCacheManager& cache) {
  auto parsed = ParseStatement(sql, db);
  if (!parsed.ok()) {
    std::printf("  error: %s\n", parsed.status().ToString().c_str());
    return;
  }
  if (parsed->kind == ParsedStatement::Kind::kExplain) {
    QueryTrace trace;
    Transaction txn = db.Begin();
    ExecutionOptions options;
    options.strategy = g_strategy;
    auto result = cache.ExecuteTraced(parsed->select, txn, options, &trace);
    if (!result.ok()) {
      std::printf("  error: %s\n", result.status().ToString().c_str());
      return;
    }
    std::printf("%s", parsed->explain_json ? (trace.ToJson() + "\n").c_str()
                                           : trace.ToText().c_str());
    return;
  }
  if (parsed->kind != ParsedStatement::Kind::kSelect) {
    Status status = ApplyStatement(*parsed, &db);
    std::printf("  %s\n", status.ToString().c_str());
    return;
  }
  Stopwatch watch;
  Transaction txn = db.Begin();
  ExecutionOptions options;
  options.strategy = g_strategy;
  auto result = cache.Execute(parsed->select, txn, options);
  if (!result.ok()) {
    std::printf("  error: %s\n", result.status().ToString().c_str());
    return;
  }
  for (const std::vector<Value>& row :
       result->Rows(parsed->select.AggregateFunctions())) {
    std::printf(" ");
    for (const Value& v : row) std::printf(" %-16s", v.ToString().c_str());
    std::printf("\n");
  }
  const CacheExecStats& stats = cache.last_exec_stats();
  std::printf("  -- %zu groups in %.3f ms (%s%s; %llu subjoins, %llu "
              "pruned)\n",
              result->num_groups(), watch.ElapsedMillis(),
              ExecutionStrategyToString(g_strategy),
              stats.cache_hit ? ", cache hit" : "",
              static_cast<unsigned long long>(stats.subjoins_executed),
              static_cast<unsigned long long>(stats.subjoins_pruned));
}

}  // namespace

int main() {
  auto db = std::make_unique<Database>();

  // AGGCACHE_DATA_DIR makes the shell durable: the session recovers
  // whatever the directory holds (skipping the demo preload) and logs all
  // further writes. AGGCACHE_WAL picks the sync policy (default sync).
  std::unique_ptr<DurabilityManager> durability;
  if (const char* data_dir = std::getenv("AGGCACHE_DATA_DIR")) {
    auto options = DurabilityOptions::FromEnv();
    if (!options.ok()) {
      std::fprintf(stderr, "durability: %s\n",
                   options.status().ToString().c_str());
      return 1;
    }
    auto opened = DurabilityManager::Open(data_dir, db.get(), *options);
    if (!opened.ok()) {
      std::fprintf(stderr, "durability: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    durability = std::move(*opened);
    const RecoveryReport& report = durability->recovery_report();
    std::printf("recovered %s: %zu tables, %llu WAL records replayed%s\n",
                data_dir, db->TableNames().size(),
                static_cast<unsigned long long>(report.replayed_records),
                report.wal_clean ? "" : " (torn tail truncated)");
  }
  MetricsDumper::MaybeStartFromEnv();

  bool preloaded = db->TableNames().empty();
  if (preloaded) {
    ErpConfig config;
    config.num_headers_main = 5000;
    config.num_categories = 20;
    auto dataset = ErpDataset::Create(db.get(), config);
    if (!dataset.ok()) {
      std::fprintf(stderr, "dataset: %s\n",
                   dataset.status().ToString().c_str());
      return 1;
    }
  }
  auto cache = std::make_unique<AggregateCacheManager>(db.get());
  if (durability != nullptr) {
    cache->ImportWarmDescriptors(durability->TakeWarmDescriptors());
    durability->SetDescriptorSource(cache.get());
  }

  // AGGCACHE_OBS_ADDR=host:port serves the observability endpoints over
  // HTTP for curl and Prometheus. The server is stopped (threads joined)
  // before db/cache are torn down; the handlers below only dereference
  // db/cache while the server runs, so the order is what makes them safe.
  SlowQueryLog::Global().ConfigureFromEnv();
  MetricsHistory::Global().Start(MetricsHistory::OptionsFromEnv());
  ObsServer obs_server;
  if (const char* obs_addr = std::getenv("AGGCACHE_OBS_ADDR")) {
    RegisterCommonObsEndpoints(obs_server);
    AggregateCacheManager* cache_ptr = cache.get();
    obs_server.SetHandler("/cache", "application/json", [cache_ptr] {
      return cache_ptr->LedgerJson();
    });
    Database* db_ptr = db.get();
    // The health body leads with the status word (what the CI smoke greps)
    // and follows with build identity + uptime, so one curl answers "is it
    // alive, which build, since when".
    obs_server.SetHealthProbe([db_ptr, cache_ptr] {
      std::string detail =
          BuildInfoLine() + StrFormat("\nuptime_s %.0f\n", UptimeSeconds());
      if (db_ptr->restoring()) {
        return std::make_pair(503, "restoring\n" + detail);
      }
      if (cache_ptr->degraded()) {
        return std::make_pair(503, "degraded\n" + detail);
      }
      return std::make_pair(200, "ok\n" + detail);
    });
    ObsServer::Options obs_options;
    obs_options.address = obs_addr;
    Status started = obs_server.Start(obs_options);
    if (!started.ok()) {
      std::fprintf(stderr, "observability server: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    std::printf("observability endpoint on port %u "
                "(/ index; /metrics /metrics.json /metrics/history /flight "
                "/spans /queries /queries/cancel /slowlog /cache "
                "/healthz)\n",
                obs_server.port());
  }

  std::printf("aggcache SQL shell — %s (.tables, .cache, "
              ".merge, .strategy, \\flight, \\spans, \\cache, \\queries, "
              ".quit; EXPLAIN AGGREGATE [JSON] SELECT ...)\n",
              preloaded ? "ERP demo data loaded" : "durable session resumed");
  std::printf("try: SELECT Name, SUM(Price) AS Profit FROM Header, Item, "
              "ProductCategory\n     WHERE Item.HeaderID = Header.HeaderID "
              "AND Item.CategoryID = ProductCategory.CategoryID\n     AND "
              "Language = 'ENG' AND FiscalYear = 2013 GROUP BY Name\n\n");

  std::string line;
  std::string statement;
  while (true) {
    std::printf(statement.empty() ? "sql> " : "...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (statement.empty() && (line == ".quit" || line == ".exit")) break;
    if (statement.empty() &&
        HandleMetaCommand(line, db, cache, durability != nullptr)) {
      continue;
    }
    statement += line + "\n";
    // Execute once the statement is terminated (or on a blank line).
    if (line.find(';') != std::string::npos || line.empty()) {
      RunStatement(statement, *db, *cache);
      statement.clear();
    }
  }
  obs_server.Stop();  // Join handlers before db/cache teardown.
  MetricsHistory::Global().Stop();
  return 0;
}
