// Quickstart: build a tiny ERP dataset, run the paper's Listing 1 profit
// query uncached and through the aggregate cache, insert new business
// objects, and watch delta compensation and the delta merge keep results
// consistent.

#include <cstdio>

#include "aggcache/aggcache.h"

namespace {

using aggcache::AggregateCacheManager;
using aggcache::AggregateQuery;
using aggcache::AggregateResult;
using aggcache::Database;
using aggcache::ErpConfig;
using aggcache::ErpDataset;
using aggcache::ExecutionOptions;
using aggcache::ExecutionStrategy;
using aggcache::Rng;
using aggcache::Transaction;
using aggcache::Value;

void PrintResult(const char* title, const AggregateQuery& query,
                 const AggregateResult& result) {
  std::printf("%s\n", title);
  for (const std::vector<Value>& row : result.Rows(
           query.AggregateFunctions())) {
    std::printf(" ");
    for (const Value& v : row) std::printf(" %-14s", v.ToString().c_str());
    std::printf("\n");
  }
}

}  // namespace

int main() {
  Database db;
  ErpConfig config;
  config.num_headers_main = 500;
  config.num_categories = 5;
  auto dataset_or = ErpDataset::Create(&db, config);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset_or.status().ToString().c_str());
    return 1;
  }
  ErpDataset dataset = std::move(dataset_or).value();

  AggregateCacheManager cache(&db);
  AggregateQuery query = dataset.ProfitByCategoryQuery(2013);
  std::printf("Query: %s\n\n", query.ToSql().c_str());

  // First execution: cache miss, entry is built on the main partitions.
  {
    Transaction txn = db.Begin();
    auto result = cache.Execute(query, txn);
    if (!result.ok()) {
      std::fprintf(stderr, "execute: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    PrintResult("Initial result (cache miss, entry created):", query,
                result.value());
    std::printf("  [entry_created=%d, cache entries=%zu]\n\n",
                cache.last_exec_stats().entry_created, cache.num_entries());
  }

  // Insert new business objects; they land in the delta partitions only.
  Rng rng(2024);
  for (int i = 0; i < 50; ++i) {
    auto inserted = dataset.InsertBusinessObject(rng);
    if (!inserted.ok()) {
      std::fprintf(stderr, "insert: %s\n",
                   inserted.status().ToString().c_str());
      return 1;
    }
  }

  // Second execution: cache hit; the delta is compensated on the fly and
  // the object-aware pruning skips the main x delta subjoins.
  {
    Transaction txn = db.Begin();
    ExecutionOptions options;
    options.strategy = ExecutionStrategy::kCachedFullPruning;
    auto result = cache.Execute(query, txn, options);
    if (!result.ok()) return 1;
    PrintResult("After 50 new business objects (cache hit + compensation):",
                query, result.value());
    std::printf("  [cache_hit=%d, subjoins executed=%llu, pruned=%llu]\n\n",
                cache.last_exec_stats().cache_hit,
                static_cast<unsigned long long>(
                    cache.last_exec_stats().subjoins_executed),
                static_cast<unsigned long long>(
                    cache.last_exec_stats().subjoins_pruned));
  }

  // Merge: deltas move into the mains; the cache entry is maintained
  // incrementally during the merge.
  auto merge_status = db.MergeTables({"Header", "Item", "ProductCategory"});
  if (!merge_status.ok()) return 1;
  {
    Transaction txn = db.Begin();
    auto result = cache.Execute(query, txn);
    if (!result.ok()) return 1;
    PrintResult("After delta merge (entry maintained incrementally):", query,
                result.value());

    // Cross-check against uncached execution.
    ExecutionOptions uncached;
    uncached.strategy = ExecutionStrategy::kUncached;
    auto baseline = cache.Execute(query, txn, uncached);
    if (!baseline.ok()) return 1;
    std::string diff;
    bool equal = result.value().ApproxEquals(baseline.value(), 1e-9, &diff);
    std::printf("\nCached result == uncached result: %s%s\n",
                equal ? "yes" : "NO — ", diff.c_str());
    return equal ? 0 : 1;
  }
}
