// Cache management internals: entry metrics (the profit model of Fig. 2),
// admission control, and profit-based eviction — the machinery behind the
// paper's dynamic cache admission and eviction decisions.

#include <cstdio>

#include "aggcache/aggcache.h"

namespace {

using namespace aggcache;  // NOLINT(build/namespaces) — example brevity.

void PrintEntry(const AggregateCacheManager& cache,
                const AggregateQuery& query, const char* label) {
  const CacheEntry* entry = cache.Find(query);
  if (entry == nullptr) {
    std::printf("  %-12s (not cached)\n", label);
    return;
  }
  const CacheEntryMetrics& m = entry->metrics();
  std::printf(
      "  %-12s size=%-9zu hits=%-4llu build=%.3fms avg_delta=%.3fms "
      "maint=%.3fms profit=%.3f\n",
      label, static_cast<size_t>(m.size_bytes),
      static_cast<unsigned long long>(m.hit_count),
      static_cast<double>(m.main_exec_ms), m.AvgDeltaCompMs(),
      static_cast<double>(m.maintenance_ms), m.Profit());
}

}  // namespace

int main() {
  Database db;
  ErpConfig config;
  config.num_headers_main = 5000;
  config.num_categories = 30;
  auto dataset_or = ErpDataset::Create(&db, config);
  if (!dataset_or.ok()) return 1;
  ErpDataset dataset = std::move(dataset_or).value();

  // A small cache: at most two entries, everything admitted.
  AggregateCacheManager::Config cache_config;
  cache_config.max_entries = 2;
  AggregateCacheManager cache(&db, cache_config);

  AggregateQuery profit_2013 = dataset.ProfitByCategoryQuery(2013);
  AggregateQuery profit_2014 = dataset.ProfitByCategoryQuery(2014);
  AggregateQuery revenue = dataset.RevenueByYearQuery();

  // Use the 2013 query often, the 2014 query once.
  Transaction txn = db.Begin();
  for (int i = 0; i < 5; ++i) {
    if (!cache.Execute(profit_2013, txn).ok()) return 1;
  }
  if (!cache.Execute(profit_2014, txn).ok()) return 1;

  std::printf("entries after warm-up (%zu / max 2, %zu bytes total):\n",
              cache.num_entries(), cache.total_bytes());
  PrintEntry(cache, profit_2013, "2013-profit");
  PrintEntry(cache, profit_2014, "2014-profit");

  // A third query forces an eviction; the least profitable entry (the
  // single-use 2014 query) goes.
  if (!cache.Execute(revenue, txn).ok()) return 1;
  std::printf("\nafter caching a third aggregate (eviction ran):\n");
  PrintEntry(cache, profit_2013, "2013-profit");
  PrintEntry(cache, profit_2014, "2014-profit");
  PrintEntry(cache, revenue, "revenue");

  // Admission control: a manager with a high profitability bar refuses to
  // store cheap aggregates and falls back to uncached execution.
  AggregateCacheManager::Config picky_config;
  picky_config.min_main_exec_ms = 1e6;
  AggregateCacheManager picky(&db, picky_config);
  if (!picky.Execute(profit_2013, txn).ok()) return 1;
  std::printf("\npicky cache admitted %zu entries (used_cache=%d)\n",
              picky.num_entries(), picky.last_exec_stats().used_cache);

  // Queries with non-self-maintainable aggregates never qualify (Fig. 3's
  // "qualifies for aggregate cache" gate).
  AggregateQuery minmax = QueryBuilder()
                              .From("Item")
                              .GroupBy("Item", "CategoryID")
                              .Max("Item", "Price", "max_price")
                              .Build();
  if (!cache.Execute(minmax, txn).ok()) return 1;
  std::printf("MIN/MAX query executed without the cache (used_cache=%d)\n",
              cache.last_exec_stats().used_cache);
  return 0;
}
