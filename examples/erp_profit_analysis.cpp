// ERP profit analysis: the paper's motivating scenario. A financial
// accounting dataset (header/item/category) answers the Listing 1 profit
// query while business objects keep arriving. The example compares the four
// execution strategies, shows how object-aware pruning reacts to temporal
// locality, and demonstrates what happens when late item inserts break it.

#include <cstdio>

#include "aggcache/aggcache.h"
#include "common/stopwatch.h"

namespace {

using namespace aggcache;  // NOLINT(build/namespaces) — example brevity.

struct StrategyRun {
  const char* label;
  ExecutionStrategy strategy;
};

void CompareStrategies(AggregateCacheManager& cache,
                       Database& db, const AggregateQuery& query) {
  const StrategyRun runs[] = {
      {"uncached", ExecutionStrategy::kUncached},
      {"cached, no pruning", ExecutionStrategy::kCachedNoPruning},
      {"cached, empty-delta pruning",
       ExecutionStrategy::kCachedEmptyDeltaPruning},
      {"cached, full pruning", ExecutionStrategy::kCachedFullPruning},
  };
  for (const StrategyRun& run : runs) {
    ExecutionOptions options;
    options.strategy = run.strategy;
    Stopwatch watch;
    Transaction txn = db.Begin();
    auto result = cache.Execute(query, txn, options);
    if (!result.ok()) {
      std::fprintf(stderr, "  %s failed: %s\n", run.label,
                   result.status().ToString().c_str());
      return;
    }
    std::printf("  %-30s %8.3f ms   (%llu subjoins executed, %llu pruned)\n",
                run.label, watch.ElapsedMillis(),
                static_cast<unsigned long long>(
                    cache.last_exec_stats().subjoins_executed),
                static_cast<unsigned long long>(
                    cache.last_exec_stats().subjoins_pruned));
  }
}

}  // namespace

int main() {
  Database db;
  ErpConfig config;
  config.num_headers_main = 10000;
  config.num_categories = 50;
  auto dataset_or = ErpDataset::Create(&db, config);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset_or.status().ToString().c_str());
    return 1;
  }
  ErpDataset dataset = std::move(dataset_or).value();
  AggregateCacheManager cache(&db);
  AggregateQuery query = dataset.ProfitByCategoryQuery(2013);

  std::printf("Profit & loss analysis\n%s\n\n", query.ToSql().c_str());

  // Warm the cache, then compare strategies on a clean (merged) state.
  if (!cache.Prewarm(query).ok()) return 1;
  std::printf("1. Clean state — all deltas empty:\n");
  CompareStrategies(cache, db, query);

  // New business objects arrive transactionally (header + items together):
  // the temporal locality of Section 3.2.
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    if (!dataset.InsertBusinessObject(rng).ok()) return 1;
  }
  std::printf("\n2. After 1000 new business objects (perfect temporal "
              "locality — main x delta subjoins prune):\n");
  CompareStrategies(cache, db, query);

  // Late item additions attach items to old (merged) headers: temporal
  // locality is violated, the Header_main x Item_delta subjoin becomes
  // non-empty, and full pruning loses one of its prunes. Predicate
  // pushdown recovers part of the cost (Section 5.3).
  if (!dataset.InsertLateItems(rng, 200).ok()) return 1;
  std::printf("\n3. After 200 late item additions (locality violated):\n");
  CompareStrategies(cache, db, query);
  {
    ExecutionOptions options;
    options.strategy = ExecutionStrategy::kCachedFullPruning;
    options.use_predicate_pushdown = true;
    Stopwatch watch;
    Transaction txn = db.Begin();
    auto result = cache.Execute(query, txn, options);
    if (!result.ok()) return 1;
    std::printf("  %-30s %8.3f ms\n", "  + predicate pushdown",
                watch.ElapsedMillis());
  }

  // Synchronized delta merge: cache entries are maintained incrementally
  // and the pruning success rate is restored.
  if (!db.MergeTables({"Header", "Item", "ProductCategory"}).ok()) return 1;
  std::printf("\n4. After a synchronized delta merge:\n");
  CompareStrategies(cache, db, query);

  // Verify the final cached answer against uncached execution.
  Transaction txn = db.Begin();
  ExecutionOptions cached_opts;
  auto cached = cache.Execute(query, txn, cached_opts);
  ExecutionOptions uncached_opts;
  uncached_opts.strategy = ExecutionStrategy::kUncached;
  auto uncached = cache.Execute(query, txn, uncached_opts);
  if (!cached.ok() || !uncached.ok()) return 1;
  bool equal = cached->ApproxEquals(*uncached, 1e-9);
  std::printf("\ncached result == uncached result: %s\n",
              equal ? "yes" : "NO");
  return equal ? 0 : 1;
}
