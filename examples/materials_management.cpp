// Materials management: the paper's second motivating domain (Section 3).
// Goods movements follow the same header/item pattern as financial
// documents: a movement header (warehouse origin/destination, movement
// type) with item lines (material, quantity). This example drives the
// engine purely through the SQL surface and the trace replayer, then shows
// the aggregate cache answering the stock-movement analysis that a
// warehouse dashboard would poll.

#include <cstdio>

#include "aggcache/aggcache.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace {

using namespace aggcache;  // NOLINT(build/namespaces) — example brevity.

constexpr const char* kSchemaTrace = R"(
# Dimension tables first (referenced by the transactional tables).
CREATE TABLE Material (
  MaterialID BIGINT PRIMARY KEY,
  Name VARCHAR(40),
  MaterialGroup VARCHAR(20),
  OWN TID tid_Material
);
CREATE TABLE Warehouse (
  WarehouseID BIGINT PRIMARY KEY,
  City VARCHAR(30),
  OWN TID tid_Warehouse
);
# The business object: movement header + movement items.
CREATE TABLE MovementHeader (
  MovementID BIGINT PRIMARY KEY,
  FromWarehouse BIGINT REFERENCES Warehouse TID tid_WarehouseFrom,
  MovementType VARCHAR(10),
  OWN TID tid_Movement
);
CREATE TABLE MovementItem (
  MovementItemID BIGINT PRIMARY KEY,
  MovementID BIGINT REFERENCES MovementHeader TID tid_Movement,
  MaterialID BIGINT REFERENCES Material TID tid_Material,
  Quantity DOUBLE,
  OWN TID tid_MovementItem
);
)";

Status LoadData(Database* db, size_t num_movements) {
  // Dimensions via the CSV loader.
  std::string materials = "MaterialID,Name,MaterialGroup\n";
  const char* groups[] = {"RAW", "SEMI", "FINISHED"};
  for (int m = 1; m <= 40; ++m) {
    materials += StrFormat("%d,Material-%d,%s\n", m, m, groups[m % 3]);
  }
  RETURN_IF_ERROR(LoadCsvFromString(db, "Material", materials).status());
  std::string warehouses = "WarehouseID,City\n";
  const char* cities[] = {"Walldorf", "Potsdam", "Waterloo", "Brussels"};
  for (int w = 1; w <= 4; ++w) {
    warehouses += StrFormat("%d,%s\n", w, cities[w - 1]);
  }
  RETURN_IF_ERROR(LoadCsvFromString(db, "Warehouse", warehouses).status());

  // Goods movements: header + items per transaction (temporal locality).
  ASSIGN_OR_RETURN(Table * header, db->GetTable("MovementHeader"));
  ASSIGN_OR_RETURN(Table * item, db->GetTable("MovementItem"));
  Rng rng(77);
  int64_t next_item_id = 1;
  const char* types[] = {"GR", "GI", "TRANSFER"};
  for (size_t m = 1; m <= num_movements; ++m) {
    Transaction txn = db->Begin();
    RETURN_IF_ERROR(header->Insert(
        txn, {Value(static_cast<int64_t>(m)), Value(rng.UniformInt(1, 4)),
              Value(types[rng.UniformInt(0, 2)])}));
    int lines = static_cast<int>(rng.UniformInt(1, 5));
    for (int l = 0; l < lines; ++l) {
      RETURN_IF_ERROR(item->Insert(
          txn, {Value(next_item_id++), Value(static_cast<int64_t>(m)),
                Value(rng.UniformInt(1, 40)),
                Value(rng.UniformDouble(1.0, 500.0))}));
    }
  }
  return Status::Ok();
}

}  // namespace

int main() {
  Database db;
  AggregateCacheManager cache(&db);

  // Schema via the trace replayer (pure SQL).
  TraceReplayer replayer(&db, &cache);
  auto schema_report = replayer.ReplayString(kSchemaTrace);
  if (!schema_report.ok()) {
    std::fprintf(stderr, "schema: %s\n",
                 schema_report.status().ToString().c_str());
    return 1;
  }

  Status load = LoadData(&db, /*num_movements=*/8000);
  if (!load.ok()) {
    std::fprintf(stderr, "load: %s\n", load.ToString().c_str());
    return 1;
  }
  // Related transactional tables merge together (Section 5.2), triggered by
  // a delta threshold.
  db.RegisterMergeGroup({"MovementHeader", "MovementItem"},
                        /*delta_row_threshold=*/5000);
  auto merged = db.AutoMergeTick();
  if (!merged.ok()) return 1;
  std::printf("loaded 8000 goods movements; auto-merge ran for %zu "
              "group(s)\n\n",
              *merged);

  // The dashboard query: moved quantity per material group and movement
  // type, large movements only.
  auto parsed = ParseStatement(
      "SELECT MaterialGroup, MovementType, SUM(Quantity) AS moved, "
      "COUNT(*) AS lines "
      "FROM MovementHeader, MovementItem, Material "
      "WHERE MovementHeader.MovementID = MovementItem.MovementID "
      "AND MovementItem.MaterialID = Material.MaterialID "
      "GROUP BY MaterialGroup, MovementType "
      "HAVING SUM(Quantity) > 1000",
      db);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  std::printf("Query: %s\n\n", parsed->select.ToSql().c_str());

  // Poll the dashboard while new movements stream in.
  Rng rng(5);
  Table* header = db.GetTable("MovementHeader").value();
  Table* item = db.GetTable("MovementItem").value();
  int64_t next_movement = 9000;
  int64_t next_item = 1000000;
  for (int round = 0; round < 3; ++round) {
    for (int m = 0; m < 300; ++m) {
      Transaction txn = db.Begin();
      if (!header
               ->Insert(txn, {Value(next_movement), Value(rng.UniformInt(1, 4)),
                              Value("GR")})
               .ok()) {
        return 1;
      }
      if (!item
               ->Insert(txn, {Value(next_item++), Value(next_movement),
                              Value(rng.UniformInt(1, 40)),
                              Value(rng.UniformDouble(1.0, 500.0))})
               .ok()) {
        return 1;
      }
      ++next_movement;
    }
    if (!db.AutoMergeTick().ok()) return 1;

    Stopwatch watch;
    Transaction txn = db.Begin();
    auto result = cache.Execute(parsed->select, txn);
    if (!result.ok()) return 1;
    std::printf("round %d: %zu groups in %.3f ms (%s, %llu subjoins pruned)\n",
                round + 1, result->num_groups(), watch.ElapsedMillis(),
                cache.last_exec_stats().cache_hit ? "cache hit"
                                                  : "entry created",
                static_cast<unsigned long long>(
                    cache.last_exec_stats().subjoins_pruned));
  }

  // Final consistency check against uncached execution.
  Transaction txn = db.Begin();
  ExecutionOptions uncached;
  uncached.strategy = ExecutionStrategy::kUncached;
  auto cached_result = cache.Execute(parsed->select, txn);
  auto baseline = cache.Execute(parsed->select, txn, uncached);
  if (!cached_result.ok() || !baseline.ok()) return 1;
  bool equal = cached_result->ApproxEquals(*baseline, 1e-9);
  std::printf("\ncached == uncached: %s\n", equal ? "yes" : "NO");
  return equal ? 0 : 1;
}
