// bench_diff — schema validator and perf-regression checker for the
// BENCH_*.json files emitted by the benchmark harness (obs/bench_report.h).
//
// Two modes:
//
//   bench_diff --schema-only FILE...
//       Validates each file against the BENCH schema (schema_version 1).
//       Exit 1 on the first malformed file.
//
//   bench_diff BASELINE_DIR CURRENT_DIR [--threshold=0.30] [--warn-only]
//       Pairs BENCH_*.json files by name, pairs samples by (name, labels),
//       and flags every latency sample whose median regressed by more than
//       the scenario's relative threshold. Exit 1 on any regression unless
//       --warn-only.
//
// Self-contained: ships its own minimal JSON reader so the checker can run
// in CI images that have nothing but a C++ toolchain.

#include <dirent.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser. Only what the BENCH schema
// needs: objects, arrays, strings, numbers, booleans, null. Numbers are kept
// as double (the harness never emits integers beyond 2^53).
// ---------------------------------------------------------------------------

struct Json;
using JsonPtr = std::shared_ptr<Json>;

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonPtr> array_items;
  std::vector<std::pair<std::string, JsonPtr>> object_items;  // in file order

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  const Json* Find(const std::string& key) const {
    for (const auto& [k, v] : object_items) {
      if (k == key) return v.get();
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonPtr Parse(std::string* error) {
    JsonPtr value = ParseValue();
    SkipWhitespace();
    if (value == nullptr) {
      *error = error_.empty() ? "parse error" : error_;
      return nullptr;
    }
    if (pos_ != text_.size()) {
      *error = "trailing characters at offset " + std::to_string(pos_);
      return nullptr;
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  JsonPtr ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return nullptr;
    }
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        auto value = std::make_shared<Json>();
        value->type = Json::Type::kString;
        if (!ParseString(&value->string_value)) return nullptr;
        return value;
      }
      case 't':
      case 'f': {
        auto value = std::make_shared<Json>();
        value->type = Json::Type::kBool;
        const char* word = c == 't' ? "true" : "false";
        size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0) {
          Fail("bad literal");
          return nullptr;
        }
        value->bool_value = c == 't';
        pos_ += len;
        return value;
      }
      case 'n': {
        if (text_.compare(pos_, 4, "null") != 0) {
          Fail("bad literal");
          return nullptr;
        }
        pos_ += 4;
        return std::make_shared<Json>();
      }
      default:
        return ParseNumber();
    }
  }

  JsonPtr ParseObject() {
    auto value = std::make_shared<Json>();
    value->type = Json::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      SkipWhitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        Fail("expected object key");
        return nullptr;
      }
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        Fail("expected ':'");
        return nullptr;
      }
      ++pos_;
      JsonPtr member = ParseValue();
      if (member == nullptr) return nullptr;
      value->object_items.emplace_back(std::move(key), std::move(member));
      SkipWhitespace();
      if (pos_ >= text_.size()) {
        Fail("unterminated object");
        return nullptr;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return value;
      }
      Fail("expected ',' or '}'");
      return nullptr;
    }
  }

  JsonPtr ParseArray() {
    auto value = std::make_shared<Json>();
    value->type = Json::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      JsonPtr item = ParseValue();
      if (item == nullptr) return nullptr;
      value->array_items.push_back(std::move(item));
      SkipWhitespace();
      if (pos_ >= text_.size()) {
        Fail("unterminated array");
        return nullptr;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return value;
      }
      Fail("expected ',' or ']'");
      return nullptr;
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // The harness only escapes control characters and ASCII; decode
          // BMP code points as UTF-8 so round-trips stay lossless.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  JsonPtr ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected value");
      return nullptr;
    }
    auto value = std::make_shared<Json>();
    value->type = Json::Type::kNumber;
    try {
      value->number_value = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      Fail("bad number");
      return nullptr;
    }
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Schema validation (BENCH schema v1, DESIGN.md §7).
// ---------------------------------------------------------------------------

bool SchemaError(const std::string& file, const std::string& message) {
  std::fprintf(stderr, "bench_diff: %s: schema violation: %s\n", file.c_str(),
               message.c_str());
  return false;
}

bool ValidateLabels(const std::string& file, const Json* labels) {
  if (labels == nullptr || !labels->is_object()) {
    return SchemaError(file, "sample 'labels' must be an object");
  }
  for (const auto& [key, value] : labels->object_items) {
    if (!value->is_string()) {
      return SchemaError(file, "label '" + key + "' must be a string");
    }
  }
  return true;
}

bool ValidateReport(const std::string& file, const Json& root) {
  if (!root.is_object()) return SchemaError(file, "root must be an object");
  const Json* version = root.Find("schema_version");
  if (version == nullptr || !version->is_number() ||
      version->number_value != 1.0) {
    return SchemaError(file, "'schema_version' must be 1");
  }
  const Json* scenario = root.Find("scenario");
  if (scenario == nullptr || !scenario->is_string() ||
      scenario->string_value.empty()) {
    return SchemaError(file, "'scenario' must be a non-empty string");
  }
  const Json* config = root.Find("config");
  if (config == nullptr || !config->is_object()) {
    return SchemaError(file, "'config' must be an object");
  }
  for (const auto& [key, value] : config->object_items) {
    if (!value->is_string()) {
      return SchemaError(file, "config '" + key + "' must be a string");
    }
  }
  const Json* samples = root.Find("samples");
  if (samples == nullptr || !samples->is_array()) {
    return SchemaError(file, "'samples' must be an array");
  }
  for (const JsonPtr& sample : samples->array_items) {
    if (!sample->is_object()) {
      return SchemaError(file, "every sample must be an object");
    }
    const Json* name = sample->Find("name");
    if (name == nullptr || !name->is_string() || name->string_value.empty()) {
      return SchemaError(file, "sample 'name' must be a non-empty string");
    }
    if (!ValidateLabels(file, sample->Find("labels"))) return false;
    const Json* kind = sample->Find("kind");
    if (kind == nullptr || !kind->is_string()) {
      return SchemaError(file, "sample 'kind' must be a string");
    }
    if (kind->string_value == "latency") {
      for (const char* field : {"reps", "p5_ms", "median_ms", "p95_ms"}) {
        const Json* v = sample->Find(field);
        if (v == nullptr || !v->is_number()) {
          return SchemaError(file, std::string("latency sample '") +
                                       name->string_value + "' needs number '" +
                                       field + "'");
        }
      }
    } else if (kind->string_value == "scalar") {
      const Json* v = sample->Find("value");
      if (v == nullptr || !v->is_number()) {
        return SchemaError(file, "scalar sample '" + name->string_value +
                                     "' needs number 'value'");
      }
    } else {
      return SchemaError(file, "unknown sample kind '" + kind->string_value +
                                   "'");
    }
  }
  const Json* metrics = root.Find("metrics_delta");
  if (metrics == nullptr || !metrics->is_object()) {
    return SchemaError(file, "'metrics_delta' must be an object");
  }
  for (const auto& [metric, entry] : metrics->object_items) {
    if (!entry->is_object()) {
      return SchemaError(file, "metric '" + metric + "' must be an object");
    }
    const Json* kind = entry->Find("kind");
    if (kind == nullptr || !kind->is_string() ||
        (kind->string_value != "counter" && kind->string_value != "gauge" &&
         kind->string_value != "histogram")) {
      return SchemaError(file, "metric '" + metric + "' has a bad 'kind'");
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Regression diff.
// ---------------------------------------------------------------------------

/// Per-scenario relative regression thresholds. Microbenchmark-shaped
/// scenarios tolerate less noise than stress runs on a loaded CI machine;
/// anything not listed uses the default (or the --threshold override).
constexpr double kDefaultThreshold = 0.30;

double ScenarioThreshold(const std::string& scenario) {
  static const std::map<std::string, double> kThresholds = {
      {"stress_concurrent", 0.60},    // load-dependent end-to-end latencies
      {"parallel_scaling", 0.50},     // scheduler-noise sensitive
      {"sec63_insert_overhead", 0.40},// ns-scale microbenchmark jitter
      {"recovery", 0.60},             // fsync-latency sensitive
  };
  auto it = kThresholds.find(scenario);
  return it == kThresholds.end() ? kDefaultThreshold : it->second;
}

std::string SampleKey(const Json& sample) {
  std::string key = sample.Find("name")->string_value;
  const Json* labels = sample.Find("labels");
  std::map<std::string, std::string> sorted;
  for (const auto& [k, v] : labels->object_items) sorted[k] = v->string_value;
  for (const auto& [k, v] : sorted) key += "{" + k + "=" + v + "}";
  return key;
}

JsonPtr LoadReport(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path.c_str());
    return nullptr;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  std::string error;
  JsonPtr root = JsonParser(text).Parse(&error);
  if (root == nullptr) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", path.c_str(), error.c_str());
    return nullptr;
  }
  if (!ValidateReport(path, *root)) return nullptr;
  return root;
}

std::vector<std::string> ListBenchFiles(const std::string& dir) {
  std::vector<std::string> files;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) {
    std::fprintf(stderr, "bench_diff: cannot open directory %s\n",
                 dir.c_str());
    return files;
  }
  while (dirent* entry = readdir(d)) {
    std::string name = entry->d_name;
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      files.push_back(name);
    }
  }
  closedir(d);
  std::sort(files.begin(), files.end());
  return files;
}

struct DiffStats {
  int compared = 0;
  int regressions = 0;
  int missing = 0;
};

/// One compared latency sample, kept for the --summary markdown table.
struct SummaryRow {
  std::string scenario;
  std::string key;
  double base_ms = 0.0;
  double cur_ms = 0.0;
};

void DiffReports(const std::string& name, const Json& baseline,
                 const Json& current, double threshold_override,
                 DiffStats* stats, std::vector<SummaryRow>* summary) {
  const std::string scenario = current.Find("scenario")->string_value;
  const double threshold = threshold_override > 0.0
                               ? threshold_override
                               : ScenarioThreshold(scenario);
  std::map<std::string, const Json*> base_samples;
  for (const JsonPtr& sample : baseline.Find("samples")->array_items) {
    base_samples[SampleKey(*sample)] = sample.get();
  }
  for (const JsonPtr& sample : current.Find("samples")->array_items) {
    // Only latency medians gate: scalars mix directions (bytes, speedups,
    // error counts) and are judged by their own benchmarks, not by diff.
    if (sample->Find("kind")->string_value != "latency") continue;
    std::string key = SampleKey(*sample);
    auto it = base_samples.find(key);
    if (it == base_samples.end()) {
      std::printf("  NEW       %s (no baseline sample)\n", key.c_str());
      ++stats->missing;
      continue;
    }
    const Json* base_median = it->second->Find("median_ms");
    if (base_median == nullptr) {
      ++stats->missing;
      continue;
    }
    double base = base_median->number_value;
    double cur = sample->Find("median_ms")->number_value;
    ++stats->compared;
    if (summary != nullptr) {
      summary->push_back(SummaryRow{scenario, key, base, cur});
    }
    if (base <= 0.0) continue;  // degenerate baseline, nothing to gate on
    double ratio = cur / base;
    if (ratio > 1.0 + threshold) {
      ++stats->regressions;
      std::printf("  REGRESSED %s: %.3f ms -> %.3f ms (%.0f%% > %.0f%%)\n",
                  key.c_str(), base, cur, (ratio - 1.0) * 100.0,
                  threshold * 100.0);
    } else if (ratio < 1.0 - threshold) {
      std::printf("  improved  %s: %.3f ms -> %.3f ms (-%.0f%%)\n",
                  key.c_str(), base, cur, (1.0 - ratio) * 100.0);
    }
  }
  std::printf("%s: scenario=%s threshold=%.0f%%\n", name.c_str(),
              scenario.c_str(), threshold * 100.0);
}

/// Writes the compared samples as a GitHub-flavored markdown table — the
/// shape CI pastes into the job summary. Deltas are median-vs-median; a
/// row with no baseline never reaches here (it is counted as unmatched).
bool WriteSummary(const std::string& path,
                  const std::vector<SummaryRow>& rows) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_diff: cannot write summary file %s\n",
                 path.c_str());
    return false;
  }
  out << "| scenario | sample | baseline median (ms) | current median (ms) "
         "| delta |\n";
  out << "|---|---|---:|---:|---:|\n";
  char line[512];
  for (const SummaryRow& row : rows) {
    double delta_pct =
        row.base_ms > 0.0 ? (row.cur_ms / row.base_ms - 1.0) * 100.0 : 0.0;
    std::snprintf(line, sizeof(line),
                  "| %s | %s | %.3f | %.3f | %+.1f%% |\n",
                  row.scenario.c_str(), row.key.c_str(), row.base_ms,
                  row.cur_ms, delta_pct);
    out << line;
  }
  return true;
}

/// Parses a comma-separated --scenarios value into its entries.
std::vector<std::string> SplitScenarios(const std::string& value) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream stream(value);
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void PrintUsage() {
  std::fprintf(stderr,
               "usage: bench_diff --schema-only FILE...\n"
               "       bench_diff BASELINE_DIR CURRENT_DIR"
               " [--threshold=0.30] [--warn-only]"
               " [--scenarios=fig7_join_pruning,...]"
               " [--summary=summary.md]\n"
               "\n"
               "--scenarios restricts the diff to the named scenarios and\n"
               "additionally fails when any of them is missing from\n"
               "CURRENT_DIR — a gated scenario whose benchmark silently\n"
               "produced no report must not pass the gate.\n"
               "--summary writes the compared medians as a markdown table.\n"
               "Without --scenarios, every baseline scenario must also be\n"
               "present in CURRENT_DIR (a silently vanished benchmark is an\n"
               "error, downgraded to a warning by --warn-only).\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool schema_only = false;
  bool warn_only = false;
  double threshold_override = 0.0;
  std::string summary_path;
  std::vector<std::string> scenario_filter;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--schema-only") {
      schema_only = true;
    } else if (arg == "--warn-only") {
      warn_only = true;
    } else if (arg.rfind("--summary=", 0) == 0) {
      summary_path = arg.substr(10);
      if (summary_path.empty()) {
        std::fprintf(stderr, "bench_diff: empty --summary value\n");
        return 2;
      }
    } else if (arg.rfind("--scenarios=", 0) == 0) {
      scenario_filter = SplitScenarios(arg.substr(12));
      if (scenario_filter.empty()) {
        std::fprintf(stderr, "bench_diff: empty --scenarios value\n");
        return 2;
      }
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold_override = std::atof(arg.c_str() + 12);
      if (threshold_override <= 0.0) {
        std::fprintf(stderr, "bench_diff: bad --threshold value '%s'\n",
                     arg.c_str() + 12);
        return 2;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_diff: unknown flag %s\n", arg.c_str());
      PrintUsage();
      return 2;
    } else {
      positional.push_back(arg);
    }
  }

  if (schema_only) {
    if (positional.empty()) {
      PrintUsage();
      return 2;
    }
    for (const std::string& file : positional) {
      if (LoadReport(file) == nullptr) return 1;
      std::printf("ok %s\n", file.c_str());
    }
    return 0;
  }

  if (positional.size() != 2) {
    PrintUsage();
    return 2;
  }
  const std::string& baseline_dir = positional[0];
  const std::string& current_dir = positional[1];
  std::vector<std::string> current_files = ListBenchFiles(current_dir);
  if (current_files.empty()) {
    std::fprintf(stderr, "bench_diff: no BENCH_*.json files in %s\n",
                 current_dir.c_str());
    return 2;
  }

  if (!scenario_filter.empty()) {
    std::vector<std::string> filtered;
    for (const std::string& wanted : scenario_filter) {
      std::string file = "BENCH_" + wanted + ".json";
      if (std::find(current_files.begin(), current_files.end(), file) ==
          current_files.end()) {
        std::fprintf(stderr,
                     "bench_diff: gated scenario '%s' has no %s in %s\n",
                     wanted.c_str(), file.c_str(), current_dir.c_str());
        return 1;
      }
      filtered.push_back(file);
    }
    current_files = std::move(filtered);
  } else {
    // Completeness gate: every scenario the baseline knows about must have
    // produced a report in this run. A benchmark that crashed or was
    // dropped from the harness would otherwise pass by absence.
    int vanished = 0;
    for (const std::string& name : ListBenchFiles(baseline_dir)) {
      if (std::find(current_files.begin(), current_files.end(), name) ==
          current_files.end()) {
        std::fprintf(stderr,
                     "bench_diff: baseline scenario %s produced no report "
                     "in %s\n",
                     name.c_str(), current_dir.c_str());
        ++vanished;
      }
    }
    if (vanished > 0 && !warn_only) return 1;
  }

  DiffStats stats;
  std::vector<SummaryRow> summary;
  for (const std::string& name : current_files) {
    JsonPtr current = LoadReport(current_dir + "/" + name);
    if (current == nullptr) return 1;
    JsonPtr baseline = LoadReport(baseline_dir + "/" + name);
    if (baseline == nullptr) {
      std::printf("%s: no baseline file, skipping comparison\n", name.c_str());
      ++stats.missing;
      continue;
    }
    DiffReports(name, *baseline, *current, threshold_override, &stats,
                summary_path.empty() ? nullptr : &summary);
  }
  if (!summary_path.empty() && !WriteSummary(summary_path, summary)) {
    return 2;
  }
  std::printf(
      "bench_diff: %d latency samples compared, %d regressed, %d unmatched\n",
      stats.compared, stats.regressions, stats.missing);
  if (stats.regressions > 0) {
    return warn_only ? 0 : 1;
  }
  return 0;
}
