#ifndef AGGCACHE_TXN_TRANSACTION_MANAGER_H_
#define AGGCACHE_TXN_TRANSACTION_MANAGER_H_

#include "txn/types.h"

namespace aggcache {

class TransactionManager;

/// Handle for one transaction. The engine executes transactions serially
/// (single-writer), so a transaction is considered committed as soon as its
/// writes are applied; the tid doubles as the commit timestamp. This mirrors
/// the role the transaction token plays for the aggregate cache in the
/// paper: inserts tag rows with the auto-incremented tid, and the tid is the
/// temporal attribute the matching dependencies copy across tables.
class Transaction {
 public:
  Tid tid() const { return tid_; }

  /// Snapshot under which this transaction reads: its own writes plus
  /// everything committed before it started.
  Snapshot snapshot() const { return Snapshot{tid_}; }

 private:
  friend class TransactionManager;
  explicit Transaction(Tid tid) : tid_(tid) {}
  Tid tid_;
};

/// Issues monotonically increasing transaction ids and tracks the latest
/// committed one (the "global visibility" the cache manager uses when it
/// materializes a new entry).
class TransactionManager {
 public:
  TransactionManager() = default;
  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  /// Starts the next transaction.
  Transaction Begin() { return Transaction(++last_tid_); }

  /// The most recently issued (and therefore committed) tid.
  Tid last_committed() const { return last_tid_; }

  /// Snapshot covering everything committed so far.
  Snapshot GlobalSnapshot() const { return Snapshot{last_tid_}; }

  /// Fast-forwards the tid counter to at least `tid`; used when restoring
  /// a snapshot so new transactions continue after the restored history.
  void AdvanceTo(Tid tid) {
    if (tid > last_tid_) last_tid_ = tid;
  }

 private:
  Tid last_tid_ = 0;
};

}  // namespace aggcache

#endif  // AGGCACHE_TXN_TRANSACTION_MANAGER_H_
