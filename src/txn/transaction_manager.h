#ifndef AGGCACHE_TXN_TRANSACTION_MANAGER_H_
#define AGGCACHE_TXN_TRANSACTION_MANAGER_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "txn/types.h"

namespace aggcache {

class TransactionManager;

/// Handle for one transaction. The tid doubles as the commit timestamp:
/// inserts tag rows with the auto-incremented tid, and the tid is the
/// temporal attribute the matching dependencies copy across tables — the
/// role the transaction token plays for the aggregate cache in the paper.
///
/// Each statement is made atomic by the storage layer's table locks; a
/// plain transaction's writes become visible to other snapshots statement
/// by statement as those locks are released. Multi-statement writers that
/// must be all-or-nothing under concurrency (a header insert plus its item
/// inserts) use TransactionManager::BeginAtomic instead, which shields the
/// whole scope from concurrent snapshots via the exclusion list.
class Transaction {
 public:
  Tid tid() const { return tid_; }

  /// True when this transaction runs inside an atomic write scope. Scopes
  /// are insert-only: updates and deletes are rejected by the storage
  /// layer, because an invalidation stamp from an excluded tid would make
  /// shared aggregate-cache state depend on one snapshot's exclusion list.
  bool in_atomic_scope() const { return atomic_; }

  /// Snapshot under which this transaction reads: its own writes plus
  /// every transaction issued before it started, minus atomic write scopes
  /// that were still in flight at Begin time.
  Snapshot snapshot() const { return Snapshot{tid_, excluded_}; }

 private:
  friend class TransactionManager;
  Transaction(Tid tid, std::vector<Tid> excluded, bool atomic)
      : tid_(tid), excluded_(std::move(excluded)), atomic_(atomic) {}
  Tid tid_;
  std::vector<Tid> excluded_;
  bool atomic_ = false;
};

/// RAII handle for an atomic write scope (TransactionManager::BeginAtomic).
/// While alive, the scope's tid sits on the exclusion list of every
/// snapshot taken in the meantime; destruction ends the scope, after which
/// new snapshots see all of its writes at once. Converts implicitly to
/// const Transaction& so it can be passed straight to the Table write APIs.
class ScopedTransaction {
 public:
  ScopedTransaction(ScopedTransaction&& other) noexcept
      : manager_(std::exchange(other.manager_, nullptr)),
        txn_(std::move(other.txn_)) {}
  ScopedTransaction(const ScopedTransaction&) = delete;
  ScopedTransaction& operator=(const ScopedTransaction&) = delete;
  ScopedTransaction& operator=(ScopedTransaction&&) = delete;
  inline ~ScopedTransaction();

  Tid tid() const { return txn_.tid(); }
  Snapshot snapshot() const { return txn_.snapshot(); }
  const Transaction& txn() const { return txn_; }
  operator const Transaction&() const { return txn_; }

 private:
  friend class TransactionManager;
  ScopedTransaction(TransactionManager* manager, Transaction txn)
      : manager_(manager), txn_(std::move(txn)) {}
  TransactionManager* manager_;
  Transaction txn_;
};

/// Issues monotonically increasing transaction ids, and tracks the set of
/// in-flight atomic write scopes so every snapshot can exclude them.
///
/// Thread-safe: all members may be called from any thread. Tid allocation
/// and exclusion-list capture happen under one mutex, so a snapshot can
/// never observe a scope's tid without also excluding it (the race that
/// would let a reader see half of a business object). Visibility of the
/// *row data* written under a tid is additionally ordered by the storage
/// layer's table locks (DESIGN.md §6).
class TransactionManager {
 public:
  TransactionManager() = default;
  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  /// Starts the next transaction. Suitable for reads and single-statement
  /// writes; multi-statement writers racing with readers use BeginAtomic.
  Transaction Begin() {
    std::lock_guard<std::mutex> lock(mu_);
    Tid tid = last_tid_.fetch_add(1, std::memory_order_relaxed) + 1;
    return Transaction(tid, ActiveScopesLocked(), /*atomic=*/false);
  }

  /// Starts a transaction wrapped in an atomic write scope: until the
  /// returned handle is destroyed, every snapshot taken by other threads
  /// excludes this tid, making the scope's inserts all-or-nothing for
  /// concurrent readers. The exclusion list is captured before the scope
  /// registers itself, so the scope sees its own writes.
  ScopedTransaction BeginAtomic() {
    std::lock_guard<std::mutex> lock(mu_);
    Tid tid = last_tid_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::vector<Tid> excluded = ActiveScopesLocked();
    active_scopes_.insert(tid);
    return ScopedTransaction(
        this, Transaction(tid, std::move(excluded), /*atomic=*/true));
  }

  /// The most recently issued tid.
  Tid last_committed() const {
    return last_tid_.load(std::memory_order_relaxed);
  }

  /// Snapshot covering every transaction issued so far except atomic write
  /// scopes still in flight.
  Snapshot GlobalSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return Snapshot{last_tid_.load(std::memory_order_relaxed),
                    ActiveScopesLocked()};
  }

  /// Number of atomic write scopes currently in flight.
  size_t active_scope_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return active_scopes_.size();
  }

  /// Invoked each time an atomic write scope ends, with the scope's tid —
  /// the durability layer logs scope commits through this. Called outside
  /// the manager's mutex. Set once, before concurrent use.
  void SetScopeEndListener(std::function<void(Tid)> listener) {
    scope_end_listener_ = std::move(listener);
  }

  /// Recovery only: a handle at a historical tid, so a WAL record replays
  /// through the normal Table APIs with its original timestamps. Does not
  /// advance the counter and registers no scope.
  Transaction ReplayAt(Tid tid) {
    return Transaction(tid, {}, /*atomic=*/false);
  }

  /// Fast-forwards the tid counter to at least `tid`; used when restoring
  /// a snapshot so new transactions continue after the restored history.
  void AdvanceTo(Tid tid) {
    Tid current = last_tid_.load(std::memory_order_relaxed);
    while (tid > current &&
           !last_tid_.compare_exchange_weak(current, tid,
                                            std::memory_order_relaxed)) {
    }
  }

 private:
  friend class ScopedTransaction;

  void EndAtomic(Tid tid) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_scopes_.erase(tid);
    }
    // Outside mu_: the listener appends to the WAL, which must never run
    // under the tid-allocation mutex.
    if (scope_end_listener_) scope_end_listener_(tid);
  }

  std::vector<Tid> ActiveScopesLocked() const {
    return std::vector<Tid>(active_scopes_.begin(), active_scopes_.end());
  }

  mutable std::mutex mu_;
  std::atomic<Tid> last_tid_{0};
  std::function<void(Tid)> scope_end_listener_;
  /// Tids of in-flight atomic write scopes (sorted; std::set iteration
  /// order gives every snapshot a sorted exclusion list for free).
  std::set<Tid> active_scopes_;
};

inline ScopedTransaction::~ScopedTransaction() {
  if (manager_ != nullptr) manager_->EndAtomic(txn_.tid());
}

}  // namespace aggcache

#endif  // AGGCACHE_TXN_TRANSACTION_MANAGER_H_
