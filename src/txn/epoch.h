#ifndef AGGCACHE_TXN_EPOCH_H_
#define AGGCACHE_TXN_EPOCH_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace aggcache {

/// Epoch-based reclamation for storage structures that are replaced while
/// readers may still hold references into the old version (the delta merge
/// swaps a table's main partition; the old column vectors must outlive every
/// in-flight query that captured them).
///
/// Protocol:
///   - A reader calls Enter() after it has acquired its table locks and
///     holds the returned Guard for the duration of the query.
///   - A structure-replacing writer moves the displaced object into
///     Retire(), which tags it with the current epoch, then calls Advance().
///   - Collect() destroys every retired object whose tag epoch is below the
///     oldest epoch any live reader entered at — i.e. all readers that could
///     have seen the old object have drained. Callers run it opportunistically
///     (the merge daemon after each pass, Database::Merge after releasing its
///     locks); the destructor collects unconditionally.
///
/// The table-lock discipline already guarantees no reader holds references
/// into a partition while its table is exclusively locked for a merge; the
/// epoch layer keeps that invariant explicit, moves the (potentially large)
/// deallocation of old main vectors off the merge's critical section, and
/// protects any future lock-free read path.
///
/// Readers MUST acquire all their table locks before calling Enter(): a
/// reader blocked on a lock while inside an epoch could deadlock a writer
/// that holds the lock and waits for the epoch to drain.
class EpochManager {
 public:
  /// RAII handle for one reader's epoch membership.
  class Guard {
   public:
    Guard() = default;
    Guard(EpochManager* manager, uint64_t epoch)
        : manager_(manager), epoch_(epoch) {}
    Guard(Guard&& other) noexcept
        : manager_(std::exchange(other.manager_, nullptr)),
          epoch_(other.epoch_) {}
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        Release();
        manager_ = std::exchange(other.manager_, nullptr);
        epoch_ = other.epoch_;
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { Release(); }

    uint64_t epoch() const { return epoch_; }
    bool active() const { return manager_ != nullptr; }

    void Release() {
      if (manager_ != nullptr) {
        manager_->Exit(epoch_);
        manager_ = nullptr;
      }
    }

   private:
    EpochManager* manager_ = nullptr;
    uint64_t epoch_ = 0;
  };

  EpochManager() = default;
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Registers the calling reader in the current epoch.
  Guard Enter();

  /// Bumps the global epoch; returns the new value. Called after a
  /// structure swap so subsequent readers are distinguishable from ones
  /// that may still reference the retired version.
  uint64_t Advance();

  /// Current epoch (informational).
  uint64_t current_epoch() const;

  /// Takes ownership of `object` until every reader that might reference it
  /// has exited its epoch.
  template <typename T>
  void Retire(T object) {
    // shared_ptr<void> carries the typed deleter, so destruction in
    // Collect() runs ~T without the manager knowing the type.
    RetireErased(std::make_shared<T>(std::move(object)));
  }

  /// Destroys retired objects whose epoch has fully drained. Returns the
  /// number of objects freed.
  size_t Collect();

  /// Blocks until every reader that entered at or before `epoch` has
  /// exited. Callers must not hold locks a blocked reader might be waiting
  /// for (see the class comment's ordering rule).
  void WaitUntilDrained(uint64_t epoch);

  /// Number of live reader guards (tests / introspection).
  size_t ActiveReaders() const;
  /// Number of retired objects not yet collected (tests / introspection).
  size_t RetiredCount() const;

 private:
  friend class Guard;

  void Exit(uint64_t epoch);
  void RetireErased(std::shared_ptr<void> object);

  /// Oldest epoch with a live reader, or current epoch + 1 when none.
  /// Caller holds mu_.
  uint64_t OldestActiveLocked() const;

  mutable std::mutex mu_;
  std::condition_variable drained_cv_;
  uint64_t epoch_ = 1;
  /// epoch -> number of readers that entered at that epoch and have not
  /// exited yet.
  std::map<uint64_t, size_t> active_;
  struct Retired {
    uint64_t epoch = 0;
    std::shared_ptr<void> object;
  };
  std::vector<Retired> retired_;
};

}  // namespace aggcache

#endif  // AGGCACHE_TXN_EPOCH_H_
