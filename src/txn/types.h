#ifndef AGGCACHE_TXN_TYPES_H_
#define AGGCACHE_TXN_TYPES_H_

#include <cstdint>

namespace aggcache {

/// Monotonically increasing transaction identifier. Tid 0 is reserved as
/// "none": a row whose invalidate_tid is kNoTid has not been invalidated.
using Tid = uint64_t;

inline constexpr Tid kNoTid = 0;

/// A point-in-time view of the database. A row is visible to a snapshot when
/// it was created at or before `read_tid` and not invalidated at or before
/// `read_tid`. Transactions read under their own tid, so they see their own
/// writes; the engine processes transactions serially, so every tid at or
/// below the latest issued one is committed.
struct Snapshot {
  Tid read_tid = 0;

  /// True when a row with the given MVCC timestamps is visible.
  bool RowVisible(Tid create_tid, Tid invalidate_tid) const {
    if (create_tid > read_tid) return false;
    return invalidate_tid == kNoTid || invalidate_tid > read_tid;
  }
};

}  // namespace aggcache

#endif  // AGGCACHE_TXN_TYPES_H_
