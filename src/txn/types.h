#ifndef AGGCACHE_TXN_TYPES_H_
#define AGGCACHE_TXN_TYPES_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace aggcache {

/// Monotonically increasing transaction identifier. Tid 0 is reserved as
/// "none": a row whose invalidate_tid is kNoTid has not been invalidated.
using Tid = uint64_t;

inline constexpr Tid kNoTid = 0;

/// A point-in-time view of the database. A row is visible to a snapshot
/// when it was created at or before `read_tid`, its creating transaction is
/// not in the snapshot's exclusion list, and it was not invalidated at or
/// before `read_tid`.
///
/// The exclusion list is what turns statement-level into transaction-level
/// snapshot isolation under concurrency: it holds the tids of atomic write
/// scopes (TransactionManager::BeginAtomic) that were still in flight when
/// this snapshot was taken. Their rows stay invisible here even after the
/// scope finishes, so a multi-statement business-object insert is
/// all-or-nothing for every concurrent reader, and re-reads under one
/// snapshot are repeatable. Sequential code never has in-flight scopes, so
/// the list is almost always empty and visibility degenerates to the plain
/// tid comparison.
struct Snapshot {
  Tid read_tid = 0;
  /// Tids excluded from this view (atomic scopes in flight at capture
  /// time), sorted ascending. All entries are <= read_tid.
  std::vector<Tid> excluded;

  /// True when `tid` is on the exclusion list.
  bool Excluded(Tid tid) const {
    return !excluded.empty() &&
           std::binary_search(excluded.begin(), excluded.end(), tid);
  }

  /// True when `tid` names a transaction this snapshot considers finished:
  /// issued at or before read_tid and not excluded. Rows whose MVCC stamps
  /// are all stable look identical to this snapshot and every later one —
  /// the condition under which a delta merge may move them into main.
  bool TidStable(Tid tid) const { return tid <= read_tid && !Excluded(tid); }

  /// True when a row with the given MVCC timestamps is visible.
  bool RowVisible(Tid create_tid, Tid invalidate_tid) const {
    if (create_tid > read_tid || Excluded(create_tid)) return false;
    return invalidate_tid == kNoTid || invalidate_tid > read_tid ||
           Excluded(invalidate_tid);
  }
};

}  // namespace aggcache

#endif  // AGGCACHE_TXN_TYPES_H_
