#include "txn/epoch.h"

#include <algorithm>

namespace aggcache {

EpochManager::~EpochManager() {
  // No reader can outlive the manager (guards hold a raw pointer); retired
  // objects are destroyed with it.
  std::lock_guard<std::mutex> lock(mu_);
  retired_.clear();
}

EpochManager::Guard EpochManager::Enter() {
  std::lock_guard<std::mutex> lock(mu_);
  ++active_[epoch_];
  return Guard(this, epoch_);
}

void EpochManager::Exit(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(epoch);
  if (it != active_.end() && --it->second == 0) {
    active_.erase(it);
    drained_cv_.notify_all();
  }
}

uint64_t EpochManager::Advance() {
  std::lock_guard<std::mutex> lock(mu_);
  return ++epoch_;
}

uint64_t EpochManager::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

void EpochManager::RetireErased(std::shared_ptr<void> object) {
  std::lock_guard<std::mutex> lock(mu_);
  retired_.push_back(Retired{epoch_, std::move(object)});
}

uint64_t EpochManager::OldestActiveLocked() const {
  return active_.empty() ? epoch_ + 1 : active_.begin()->first;
}

size_t EpochManager::Collect() {
  // Move freeable objects out of the lock scope before destroying them:
  // ~Partition deallocates whole column vectors and must not serialize
  // against Enter()/Exit().
  std::vector<Retired> freeable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t oldest = OldestActiveLocked();
    auto keep_end = std::partition(
        retired_.begin(), retired_.end(),
        [oldest](const Retired& r) { return r.epoch >= oldest; });
    freeable.assign(std::make_move_iterator(keep_end),
                    std::make_move_iterator(retired_.end()));
    retired_.erase(keep_end, retired_.end());
  }
  return freeable.size();
}

void EpochManager::WaitUntilDrained(uint64_t epoch) {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this, epoch] {
    return active_.empty() || active_.begin()->first > epoch;
  });
}

size_t EpochManager::ActiveReaders() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [epoch, count] : active_) total += count;
  return total;
}

size_t EpochManager::RetiredCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retired_.size();
}

}  // namespace aggcache
