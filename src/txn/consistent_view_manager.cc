#include "txn/consistent_view_manager.h"

#include "common/logging.h"

namespace aggcache {

BitVector ConsistentViewManager::ComputeVisibility(
    std::span<const Tid> create_tids, std::span<const Tid> invalidate_tids,
    Snapshot snapshot) {
  AGGCACHE_CHECK_EQ(create_tids.size(), invalidate_tids.size());
  BitVector result(create_tids.size(), false);
  for (size_t i = 0; i < create_tids.size(); ++i) {
    if (snapshot.RowVisible(create_tids[i], invalidate_tids[i])) {
      result.Set(i, true);
    }
  }
  return result;
}

size_t ConsistentViewManager::CountVisible(
    std::span<const Tid> create_tids, std::span<const Tid> invalidate_tids,
    Snapshot snapshot) {
  AGGCACHE_CHECK_EQ(create_tids.size(), invalidate_tids.size());
  size_t count = 0;
  for (size_t i = 0; i < create_tids.size(); ++i) {
    if (snapshot.RowVisible(create_tids[i], invalidate_tids[i])) ++count;
  }
  return count;
}

}  // namespace aggcache
