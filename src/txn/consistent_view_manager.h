#ifndef AGGCACHE_TXN_CONSISTENT_VIEW_MANAGER_H_
#define AGGCACHE_TXN_CONSISTENT_VIEW_MANAGER_H_

#include <span>

#include "common/bit_vector.h"
#include "txn/epoch.h"
#include "txn/transaction_manager.h"
#include "txn/types.h"

namespace aggcache {

/// A snapshot pinned to an epoch: holding the guard keeps every storage
/// structure the snapshot can reference alive (retired main partitions are
/// not freed until all pinning readers have drained). Acquire via
/// ConsistentViewManager::Pin AFTER taking table locks — see
/// EpochManager's ordering rule.
struct PinnedSnapshot {
  Snapshot snapshot;
  EpochManager::Guard guard;
};

/// Builds row-visibility bit vectors from per-row MVCC timestamps, the
/// component the paper calls the Consistent View Manager (Fig. 1).
///
/// A partition hands in its create/invalidate tid arrays; the result has one
/// bit per row, set when the row is visible to `snapshot`. Aggregate cache
/// entries capture this vector for main partitions at creation time and
/// compare it against the current one to find invalidated rows (main
/// compensation).
class ConsistentViewManager {
 public:
  /// Epoch-style snapshot acquisition: registers the caller as a reader in
  /// the current epoch and returns the global snapshot. The caller must
  /// already hold shared locks on every table it will read, so the snapshot
  /// covers a consistent main/delta/visibility view across all of them.
  static PinnedSnapshot Pin(const TransactionManager& txns,
                            EpochManager& epochs) {
    return PinnedSnapshot{txns.GlobalSnapshot(), epochs.Enter()};
  }

  /// Pin at an explicit read time (a transaction's own snapshot).
  static PinnedSnapshot PinAt(Snapshot snapshot, EpochManager& epochs) {
    return PinnedSnapshot{snapshot, epochs.Enter()};
  }
  /// Visibility vector for rows with the given MVCC timestamps.
  static BitVector ComputeVisibility(std::span<const Tid> create_tids,
                                     std::span<const Tid> invalidate_tids,
                                     Snapshot snapshot);

  /// Number of rows visible to `snapshot` without materializing the vector.
  static size_t CountVisible(std::span<const Tid> create_tids,
                             std::span<const Tid> invalidate_tids,
                             Snapshot snapshot);
};

}  // namespace aggcache

#endif  // AGGCACHE_TXN_CONSISTENT_VIEW_MANAGER_H_
