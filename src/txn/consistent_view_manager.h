#ifndef AGGCACHE_TXN_CONSISTENT_VIEW_MANAGER_H_
#define AGGCACHE_TXN_CONSISTENT_VIEW_MANAGER_H_

#include <span>

#include "common/bit_vector.h"
#include "txn/types.h"

namespace aggcache {

/// Builds row-visibility bit vectors from per-row MVCC timestamps, the
/// component the paper calls the Consistent View Manager (Fig. 1).
///
/// A partition hands in its create/invalidate tid arrays; the result has one
/// bit per row, set when the row is visible to `snapshot`. Aggregate cache
/// entries capture this vector for main partitions at creation time and
/// compare it against the current one to find invalidated rows (main
/// compensation).
class ConsistentViewManager {
 public:
  /// Visibility vector for rows with the given MVCC timestamps.
  static BitVector ComputeVisibility(std::span<const Tid> create_tids,
                                     std::span<const Tid> invalidate_tids,
                                     Snapshot snapshot);

  /// Number of rows visible to `snapshot` without materializing the vector.
  static size_t CountVisible(std::span<const Tid> create_tids,
                             std::span<const Tid> invalidate_tids,
                             Snapshot snapshot);
};

}  // namespace aggcache

#endif  // AGGCACHE_TXN_CONSISTENT_VIEW_MANAGER_H_
