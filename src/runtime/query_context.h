#ifndef AGGCACHE_RUNTIME_QUERY_CONTEXT_H_
#define AGGCACHE_RUNTIME_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "runtime/memory_tracker.h"

namespace aggcache {

/// Why a query unwound early. kNone means the query is live.
enum class QueryAbortReason : uint8_t {
  kNone = 0,
  kCancelled,          ///< Cancel() was called (client disconnect, shed).
  kDeadlineExceeded,   ///< The wall-clock deadline passed at a check point.
  kMemoryExceeded,     ///< A memory charge was refused (budget or process).
};

const char* QueryAbortReasonToString(QueryAbortReason reason);

/// Per-query resource-governance state: a memory budget charged against the
/// process tracker tree, a wall-clock deadline, and a cooperative
/// cancellation token. One QueryContext is shared by every thread working
/// on the query — the calling thread plus all pool tasks of its fan-outs —
/// so all state is atomic and Check()/ChargeMemory() are safe to call
/// concurrently.
///
/// The executor consults the context at block granularity: once per
/// selection/probe block (kSelectionBlockRows rows) inside the vector
/// kernels via IsAborted(), and once per phase (selection, join level,
/// group-by flush) via Check(), which converts the abort into a typed
/// Status (kCancelled / kDeadlineExceeded / kResourceExhausted). Whichever
/// thread observes the abort first records it; every sibling task then
/// unwinds at its next check, and the fan-out sites merge partial stats
/// all-or-none exactly as on the error paths.
///
/// Memory charges go through MemoryTracker::Queries(): a charge that would
/// exceed the per-query budget or any tracker limit aborts the query with
/// kMemoryExceeded instead of allocating. The context releases every
/// still-outstanding byte on destruction, so the Queries() subtree is back
/// to zero once no query is running — the tracker-balance invariant the
/// fuzz and stress harnesses assert at exit.
///
/// Fault points (verify/fault_injector.h): `runtime.alloc` fires inside
/// ChargeMemory and `runtime.deadline` inside Check, letting the harnesses
/// exercise mid-query OOM/deadline unwinding deterministically.
class QueryContext {
 public:
  struct Options {
    /// Per-query byte budget; 0 = no per-query cap (tracker limits still
    /// apply).
    size_t memory_budget = 0;
    /// Wall-clock deadline in milliseconds from construction; 0 = none.
    double deadline_ms = 0;
  };

  /// Env-default options: deadline from AGGCACHE_QUERY_DEADLINE_MS, budget
  /// from AGGCACHE_QUERY_MEM_BUDGET (bytes, K/M/G suffix allowed). Read
  /// once per call so harnesses can reconfigure between phases.
  static Options FromEnv();

  QueryContext();
  explicit QueryContext(Options options);
  ~QueryContext();
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Trips the cancellation token. Safe from any thread, including ones
  /// not working on the query. First abort cause wins; later causes are
  /// ignored.
  void Cancel();

  /// Cheap poll for kernel block loops: one relaxed load, no clock read.
  bool IsAborted() const {
    return reason_.load(std::memory_order_relaxed) !=
           static_cast<uint8_t>(QueryAbortReason::kNone);
  }

  QueryAbortReason abort_reason() const {
    return static_cast<QueryAbortReason>(
        reason_.load(std::memory_order_relaxed));
  }

  /// Phase-granularity check: polls the token, the fault injector's
  /// `runtime.deadline` point, and the deadline clock. OK while the query
  /// is live, the typed abort Status afterwards.
  Status Check();

  /// The typed Status for the current abort reason (OK when live). Does
  /// not consult the clock — use Check() at check points.
  Status status() const;

  /// Charges `bytes` against the per-query budget and the Queries()
  /// tracker. On refusal the query is aborted with kMemoryExceeded and the
  /// typed error is returned; nothing is charged.
  Status ChargeMemory(size_t bytes);

  /// Returns `bytes` of a prior successful charge. Any remainder is
  /// released by the destructor.
  void ReleaseMemory(size_t bytes);

  size_t memory_used() const {
    return memory_used_.load(std::memory_order_relaxed);
  }
  size_t memory_high_water() const {
    return memory_high_water_.load(std::memory_order_relaxed);
  }

  /// Progress accounting for the active-query registry: rows visited by
  /// this query's subjoin selections, summed across all of its fan-out
  /// tasks (each task adds its per-subjoin total once, after the subjoin
  /// completes — not per block).
  void AddRowsScanned(uint64_t rows) {
    rows_scanned_.fetch_add(rows, std::memory_order_relaxed);
  }
  uint64_t rows_scanned() const {
    return rows_scanned_.load(std::memory_order_relaxed);
  }

  /// The context installed on this thread (nullptr outside any query).
  /// Fan-out sites capture Current() and re-install it on pool workers
  /// with ScopedQueryContext.
  static QueryContext* Current();

  /// Check() on the installed context; OK when none is installed.
  static Status CheckCurrent();

  /// IsAborted() on the installed context; false when none is installed.
  /// This is the one-load poll the vector kernels use per block.
  static bool CurrentAborted();

 private:
  /// Records the first abort cause (CAS; first writer wins) and bumps the
  /// matching metric + flight event exactly once.
  void Abort(QueryAbortReason reason, const char* detail);

  const Options options_;
  const std::chrono::steady_clock::time_point deadline_;
  const bool has_deadline_;
  std::atomic<uint8_t> reason_{
      static_cast<uint8_t>(QueryAbortReason::kNone)};
  std::atomic<size_t> memory_used_{0};
  std::atomic<size_t> memory_high_water_{0};
  std::atomic<uint64_t> rows_scanned_{0};
};

/// RAII installation of a QueryContext as the thread's Current(). Used by
/// the query entry point (cache manager Execute) and re-applied inside
/// every pool task of the query's fan-outs. Nests: the previous context is
/// restored on destruction.
class ScopedQueryContext {
 public:
  explicit ScopedQueryContext(QueryContext* context);
  ~ScopedQueryContext();
  ScopedQueryContext(const ScopedQueryContext&) = delete;
  ScopedQueryContext& operator=(const ScopedQueryContext&) = delete;

 private:
  QueryContext* previous_;
};

}  // namespace aggcache

#endif  // AGGCACHE_RUNTIME_QUERY_CONTEXT_H_
