#include "runtime/admission_controller.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/logging.h"
#include "obs/engine_metrics.h"
#include "obs/flight_recorder.h"

namespace aggcache {
namespace {

size_t SizeFromEnv(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  unsigned long long value = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return fallback;
  return static_cast<size_t>(value);
}

double MsFromEnv(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  double value = std::strtod(env, &end);
  if (end == env || value < 0) return fallback;
  return value;
}

}  // namespace

AdmissionController::Config AdmissionController::FromEnv() {
  Config config;
  config.max_concurrent = SizeFromEnv("AGGCACHE_MAX_CONCURRENT", 0);
  config.max_queue = SizeFromEnv("AGGCACHE_ADMISSION_QUEUE", 64);
  config.queue_timeout_ms =
      MsFromEnv("AGGCACHE_ADMISSION_TIMEOUT_MS", 250);
  return config;
}

AdmissionController& AdmissionController::Global() {
  static AdmissionController* controller =
      new AdmissionController(FromEnv());
  return *controller;
}

AdmissionController::AdmissionController(Config config) : config_(config) {
  cap_.store(config.max_concurrent, std::memory_order_relaxed);
}

void AdmissionController::Configure(Config config) {
  std::lock_guard<std::mutex> lock(mu_);
  AGGCACHE_CHECK(running_ == 0 && waiters_.empty())
      << "admission controller reconfigured while queries are in flight";
  config_ = config;
  cap_.store(config.max_concurrent, std::memory_order_relaxed);
}

AdmissionController::Config AdmissionController::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

size_t AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiters_.size();
}

StatusOr<AdmissionController::Ticket> AdmissionController::Admit(
    QueryContext* context) {
  if (cap_.load(std::memory_order_relaxed) == 0) return Ticket();
  const EngineMetrics& m = EngineMetrics::Get();
  std::unique_lock<std::mutex> lock(mu_);
  if (config_.max_concurrent == 0) return Ticket();
  if (waiters_.empty() && running_ < config_.max_concurrent) {
    ++running_;
    m.admission_admitted->Increment();
    m.admission_running->Set(static_cast<int64_t>(running_));
    return Ticket(this);
  }
  if (waiters_.size() >= config_.max_queue) {
    m.admission_rejects_capacity->Increment();
    RecordFlightEvent(FlightEventType::kAdmissionShed, 1,
                      waiters_.size(), "queue_full");
    return Status::ResourceExhausted(
        "admission queue full: query shed at arrival");
  }
  const uint64_t id = next_waiter_id_++;
  waiters_.push_back(id);
  const auto enqueue_time = std::chrono::steady_clock::now();
  const auto deadline =
      enqueue_time + std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             config_.queue_timeout_ms));
  auto eligible = [this, id] {
    return !waiters_.empty() && waiters_.front() == id &&
           running_ < config_.max_concurrent;
  };
  // Nothing notifies the condition variable when a queued query's context
  // is cancelled or its deadline expires, so waiters with a context poll in
  // short quanta: an aborted query leaves the queue within ~one quantum
  // instead of pinning its queue position until the admission timeout.
  // Check() (not IsAborted()) so a deadline that expires while queued is
  // recorded here rather than waiting for the first executor check point.
  constexpr auto kAbortPollQuantum = std::chrono::milliseconds(10);
  bool aborted = false;
  while (!eligible()) {
    if (context != nullptr && !context->Check().ok()) {
      aborted = true;
      break;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    auto wake = deadline;
    if (context != nullptr) wake = std::min(wake, now + kAbortPollQuantum);
    cv_.wait_until(lock, wake);
  }
  const auto waited = std::chrono::steady_clock::now() - enqueue_time;
  const uint64_t waited_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(waited)
          .count());
  if (eligible() && !aborted) {
    waiters_.pop_front();
    ++running_;
    m.admission_admitted->Increment();
    m.admission_queue_waits->Increment();
    m.admission_wait_us->Observe(waited_us);
    m.admission_running->Set(static_cast<int64_t>(running_));
    // The next head may also be runnable (several slots can free while we
    // held the front).
    cv_.notify_all();
    return Ticket(this);
  }
  auto it = std::find(waiters_.begin(), waiters_.end(), id);
  if (it != waiters_.end()) waiters_.erase(it);
  cv_.notify_all();  // we may have been the head blocking the queue
  m.admission_wait_us->Observe(waited_us);
  if (aborted) {
    RecordFlightEvent(FlightEventType::kAdmissionShed, 2, waiters_.size(),
                      "aborted_in_queue");
    return context->Check();
  }
  m.admission_rejects_timeout->Increment();
  RecordFlightEvent(FlightEventType::kAdmissionShed, 0, waiters_.size(),
                    "queue_timeout");
  return Status::ResourceExhausted(
      "admission queue timeout: query shed while waiting");
}

void AdmissionController::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    AGGCACHE_CHECK(running_ > 0) << "admission ticket over-released";
    --running_;
    EngineMetrics::Get().admission_running->Set(
        static_cast<int64_t>(running_));
  }
  cv_.notify_all();
}

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot();
    controller_ = nullptr;
  }
}

}  // namespace aggcache
