#ifndef AGGCACHE_RUNTIME_MEMORY_TRACKER_H_
#define AGGCACHE_RUNTIME_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <string>

namespace aggcache {

/// Hierarchical byte accounting for the engine's transient and resident
/// allocations. Trackers form a tree: a reservation against a child is also
/// charged to every ancestor, so the root ("process") sees the sum of all
/// subsystems while each subsystem keeps its own used/high-water view.
///
/// The process tree shipped with the engine:
///
///   Process()          root; limit from AGGCACHE_MEM_LIMIT (bytes, with an
///     |                optional K/M/G suffix; unset or 0 = unlimited)
///     +-- Queries()    per-query reservations (QueryContext charges here);
///     |                invariant: used()==0 whenever no query is running
///     +-- Cache()      resident cache-entry bytes (mirrors the manager's
///                      per-entry accounting)
///
/// The fast path is lock-free: TryReserve/Release are one relaxed fetch_add
/// per tree level plus a CAS loop for the high-water mark, cheap enough to
/// call at executor phase granularity. Limits are only enforced by
/// TryReserve; Reserve is unconditional and is used for resident state whose
/// growth is governed elsewhere (the cache manager reacts to the resulting
/// pressure by rejecting builds and evicting instead of failing the charge).
class MemoryTracker {
 public:
  /// Fraction of the limit at which UnderPressure() starts reporting true.
  static constexpr double kPressureFraction = 0.85;

  MemoryTracker(std::string name, MemoryTracker* parent, size_t limit = 0);
  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// Charges `bytes` to this tracker and every ancestor. Fails — charging
  /// nothing anywhere — when the charge would push any level past its
  /// limit.
  bool TryReserve(size_t bytes);

  /// Unconditional charge (still propagates to ancestors and maintains
  /// high-water marks). For resident state that must not fail mid-update.
  void Reserve(size_t bytes);

  /// Returns `bytes` previously charged through this tracker.
  void Release(size_t bytes);

  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  size_t limit() const { return limit_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

  /// Adjusts the limit (0 = unlimited). Harness/test hook; existing
  /// reservations are never clawed back.
  void set_limit(size_t limit) {
    limit_.store(limit, std::memory_order_relaxed);
  }

  /// True when a limit is set and usage has crossed kPressureFraction of
  /// it. The cache manager's degradation ladder keys off the *process*
  /// tracker's pressure, not its own subtree.
  bool UnderPressure() const {
    size_t limit = limit_.load(std::memory_order_relaxed);
    if (limit == 0) return false;
    return used_.load(std::memory_order_relaxed) >=
           static_cast<size_t>(static_cast<double>(limit) *
                               kPressureFraction);
  }

  /// Test hook: collapses the high-water mark back to current usage.
  void ResetHighWater() {
    high_water_.store(used_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }

  /// The process-wide tracker tree (see class comment). Intentionally
  /// leaked so worker threads may release during static teardown.
  static MemoryTracker& Process();
  static MemoryTracker& Queries();
  static MemoryTracker& Cache();

 private:
  void Charge(size_t bytes);
  void MaybeRaiseHighWater(size_t used_now);

  const std::string name_;
  MemoryTracker* const parent_;
  std::atomic<size_t> limit_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> high_water_{0};
};

/// Parses an AGGCACHE_MEM_LIMIT-style byte count: a non-negative integer
/// with an optional K/M/G suffix (powers of 1024, case-insensitive).
/// Returns false on malformed input.
bool ParseByteSize(const char* text, size_t* out);

}  // namespace aggcache

#endif  // AGGCACHE_RUNTIME_MEMORY_TRACKER_H_
