#ifndef AGGCACHE_RUNTIME_ADMISSION_CONTROLLER_H_
#define AGGCACHE_RUNTIME_ADMISSION_CONTROLLER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>

#include "common/status.h"
#include "runtime/query_context.h"

namespace aggcache {

/// Concurrency gate in front of the cache manager's Execute path: at most
/// `max_concurrent` queries run at once; excess arrivals wait in a bounded
/// FIFO queue and are rejected with a typed kResourceExhausted once the
/// queue is full (immediately) or their wait exceeds `queue_timeout_ms`.
/// Bounded queue + timeout give overload a shed point instead of unbounded
/// queueing: the open-loop overload bench holds admitted-query p95 within a
/// small multiple of the unloaded median because nothing waits longer than
/// the timeout.
///
/// With max_concurrent == 0 (the default) the controller is disabled and
/// Admit() is a single relaxed load — embedded and test users pay nothing.
/// Configuration comes from AGGCACHE_MAX_CONCURRENT (cap),
/// AGGCACHE_ADMISSION_QUEUE (waiter bound, default 64) and
/// AGGCACHE_ADMISSION_TIMEOUT_MS (default 250), or programmatically via
/// Configure() while idle.
class AdmissionController {
 public:
  struct Config {
    size_t max_concurrent = 0;   ///< 0 disables the controller.
    size_t max_queue = 64;       ///< Waiters beyond the running cap.
    double queue_timeout_ms = 250;
  };

  /// Env-derived config (see class comment).
  static Config FromEnv();

  /// The process-wide controller, configured from the environment on first
  /// use.
  static AdmissionController& Global();

  AdmissionController() : AdmissionController(Config()) {}
  explicit AdmissionController(Config config);

  /// RAII admission slot. An empty (default-constructed) ticket — what a
  /// disabled controller returns — releases nothing.
  class Ticket {
   public:
    Ticket() = default;
    ~Ticket() { Release(); }
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* controller)
        : controller_(controller) {}
    void Release();
    AdmissionController* controller_ = nullptr;
  };

  /// Blocks until admitted (FIFO), the queue timeout passes, or `context`
  /// (optional) aborts — whichever comes first. Returns the slot on
  /// success, a typed governance error otherwise.
  StatusOr<Ticket> Admit(QueryContext* context = nullptr);

  /// Replaces the config. Requires the controller to be idle (no running
  /// queries, no waiters) — harnesses call this during setup.
  void Configure(Config config);

  Config config() const;
  size_t running() const;
  size_t queued() const;

 private:
  friend class Ticket;
  void ReleaseSlot();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Config config_;
  size_t running_ = 0;
  uint64_t next_waiter_id_ = 0;
  std::deque<uint64_t> waiters_;  ///< FIFO of waiting Admit() calls.
  /// Mirror of config_.max_concurrent for the disabled-controller fast
  /// path.
  std::atomic<size_t> cap_{0};
};

}  // namespace aggcache

#endif  // AGGCACHE_RUNTIME_ADMISSION_CONTROLLER_H_
