#include "runtime/query_context.h"

#include <cstdlib>

#include "common/string_util.h"
#include "obs/engine_metrics.h"
#include "obs/flight_recorder.h"
#include "verify/fault_injector.h"

namespace aggcache {
namespace {

thread_local QueryContext* tls_current = nullptr;

double DeadlineMsFromEnv() {
  const char* env = std::getenv("AGGCACHE_QUERY_DEADLINE_MS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  double ms = std::strtod(env, &end);
  if (end == env || ms < 0) return 0;
  return ms;
}

size_t BudgetFromEnv() {
  const char* env = std::getenv("AGGCACHE_QUERY_MEM_BUDGET");
  if (env == nullptr || *env == '\0') return 0;
  size_t bytes = 0;
  if (!ParseByteSize(env, &bytes)) return 0;
  return bytes;
}

}  // namespace

const char* QueryAbortReasonToString(QueryAbortReason reason) {
  switch (reason) {
    case QueryAbortReason::kNone:
      return "none";
    case QueryAbortReason::kCancelled:
      return "cancelled";
    case QueryAbortReason::kDeadlineExceeded:
      return "deadline";
    case QueryAbortReason::kMemoryExceeded:
      return "memory";
  }
  return "unknown";
}

QueryContext::Options QueryContext::FromEnv() {
  Options options;
  options.deadline_ms = DeadlineMsFromEnv();
  options.memory_budget = BudgetFromEnv();
  return options;
}

QueryContext::QueryContext() : QueryContext(Options()) {}

QueryContext::QueryContext(Options options)
    : options_(options),
      deadline_(std::chrono::steady_clock::now() +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        options.deadline_ms > 0 ? options.deadline_ms : 0))),
      has_deadline_(options.deadline_ms > 0) {}

QueryContext::~QueryContext() {
  size_t leftover = memory_used_.load(std::memory_order_relaxed);
  if (leftover != 0) MemoryTracker::Queries().Release(leftover);
}

void QueryContext::Abort(QueryAbortReason reason, const char* detail) {
  uint8_t expected = static_cast<uint8_t>(QueryAbortReason::kNone);
  if (!reason_.compare_exchange_strong(expected,
                                       static_cast<uint8_t>(reason),
                                       std::memory_order_relaxed)) {
    return;  // an earlier abort cause won
  }
  const EngineMetrics& m = EngineMetrics::Get();
  switch (reason) {
    case QueryAbortReason::kCancelled:
      m.query_cancellations->Increment();
      break;
    case QueryAbortReason::kDeadlineExceeded:
      m.query_deadline_aborts->Increment();
      break;
    case QueryAbortReason::kMemoryExceeded:
      m.query_mem_aborts->Increment();
      break;
    case QueryAbortReason::kNone:
      break;
  }
  RecordFlightEvent(FlightEventType::kQueryAbort,
                    static_cast<uint64_t>(reason), 0, detail);
}

void QueryContext::Cancel() { Abort(QueryAbortReason::kCancelled, "cancel"); }

Status QueryContext::status() const {
  switch (abort_reason()) {
    case QueryAbortReason::kNone:
      return Status::Ok();
    case QueryAbortReason::kCancelled:
      return Status::Cancelled("query cancelled");
    case QueryAbortReason::kDeadlineExceeded:
      return Status::DeadlineExceeded(
          StrFormat("query deadline exceeded (%.0f ms)",
                    options_.deadline_ms));
    case QueryAbortReason::kMemoryExceeded:
      return Status::ResourceExhausted("query memory charge refused");
  }
  return Status::Internal("unknown abort reason");
}

Status QueryContext::Check() {
  if (IsAborted()) return status();
  Status injected = FaultInjector::Global().MaybeFail("runtime.deadline");
  if (!injected.ok()) {
    Abort(QueryAbortReason::kDeadlineExceeded, "fault");
    return Status(StatusCode::kDeadlineExceeded, injected.message());
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    Abort(QueryAbortReason::kDeadlineExceeded, "deadline");
    return status();
  }
  return Status::Ok();
}

Status QueryContext::ChargeMemory(size_t bytes) {
  if (IsAborted()) return status();
  Status injected = FaultInjector::Global().MaybeFail("runtime.alloc");
  if (!injected.ok()) {
    Abort(QueryAbortReason::kMemoryExceeded, "fault");
    return Status(StatusCode::kResourceExhausted, injected.message());
  }
  size_t budget = options_.memory_budget;
  size_t now = memory_used_.fetch_add(bytes, std::memory_order_relaxed) +
               bytes;
  if (budget != 0 && now > budget) {
    memory_used_.fetch_sub(bytes, std::memory_order_relaxed);
    Abort(QueryAbortReason::kMemoryExceeded, "budget");
    return Status::ResourceExhausted(
        StrFormat("query memory budget exceeded (%zu + %zu > %zu bytes)",
                  now - bytes, bytes, budget));
  }
  if (!MemoryTracker::Queries().TryReserve(bytes)) {
    memory_used_.fetch_sub(bytes, std::memory_order_relaxed);
    Abort(QueryAbortReason::kMemoryExceeded, "tracker");
    return Status::ResourceExhausted(
        StrFormat("process memory limit refused %zu bytes", bytes));
  }
  size_t seen = memory_high_water_.load(std::memory_order_relaxed);
  while (now > seen &&
         !memory_high_water_.compare_exchange_weak(
             seen, now, std::memory_order_relaxed)) {
  }
  return Status::Ok();
}

void QueryContext::ReleaseMemory(size_t bytes) {
  if (bytes == 0) return;
  memory_used_.fetch_sub(bytes, std::memory_order_relaxed);
  MemoryTracker::Queries().Release(bytes);
}

QueryContext* QueryContext::Current() { return tls_current; }

Status QueryContext::CheckCurrent() {
  QueryContext* context = tls_current;
  return context != nullptr ? context->Check() : Status::Ok();
}

bool QueryContext::CurrentAborted() {
  QueryContext* context = tls_current;
  return context != nullptr && context->IsAborted();
}

ScopedQueryContext::ScopedQueryContext(QueryContext* context)
    : previous_(tls_current) {
  tls_current = context;
}

ScopedQueryContext::~ScopedQueryContext() { tls_current = previous_; }

}  // namespace aggcache
