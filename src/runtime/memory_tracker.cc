#include "runtime/memory_tracker.h"

#include <cctype>
#include <cstdlib>

#include "obs/engine_metrics.h"

namespace aggcache {
namespace {

size_t LimitFromEnv() {
  const char* env = std::getenv("AGGCACHE_MEM_LIMIT");
  if (env == nullptr || *env == '\0') return 0;
  size_t bytes = 0;
  if (!ParseByteSize(env, &bytes)) return 0;
  return bytes;
}

}  // namespace

MemoryTracker::MemoryTracker(std::string name, MemoryTracker* parent,
                             size_t limit)
    : name_(std::move(name)), parent_(parent), limit_(limit) {}

void MemoryTracker::MaybeRaiseHighWater(size_t used_now) {
  size_t seen = high_water_.load(std::memory_order_relaxed);
  while (used_now > seen &&
         !high_water_.compare_exchange_weak(seen, used_now,
                                            std::memory_order_relaxed)) {
  }
  if (parent_ == nullptr && used_now > seen) {
    EngineMetrics::Get().mem_reserved_hwm_bytes->Set(
        static_cast<int64_t>(high_water_.load(std::memory_order_relaxed)));
  }
}

bool MemoryTracker::TryReserve(size_t bytes) {
  if (bytes == 0) return true;
  size_t limit = limit_.load(std::memory_order_relaxed);
  size_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limit != 0 && now > limit) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return false;
  }
  if (parent_ != nullptr && !parent_->TryReserve(bytes)) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return false;
  }
  MaybeRaiseHighWater(now);
  if (parent_ == nullptr) {
    EngineMetrics::Get().mem_reserved_bytes->Add(
        static_cast<int64_t>(bytes));
  }
  return true;
}

void MemoryTracker::Reserve(size_t bytes) {
  if (bytes == 0) return;
  size_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (parent_ != nullptr) parent_->Reserve(bytes);
  MaybeRaiseHighWater(now);
  if (parent_ == nullptr) {
    EngineMetrics::Get().mem_reserved_bytes->Add(
        static_cast<int64_t>(bytes));
  }
}

void MemoryTracker::Release(size_t bytes) {
  if (bytes == 0) return;
  used_.fetch_sub(bytes, std::memory_order_relaxed);
  if (parent_ != nullptr) {
    parent_->Release(bytes);
  } else {
    EngineMetrics::Get().mem_reserved_bytes->Add(
        -static_cast<int64_t>(bytes));
  }
}

MemoryTracker& MemoryTracker::Process() {
  static MemoryTracker* tracker =
      new MemoryTracker("process", nullptr, LimitFromEnv());
  return *tracker;
}

MemoryTracker& MemoryTracker::Queries() {
  static MemoryTracker* tracker =
      new MemoryTracker("queries", &Process());
  return *tracker;
}

MemoryTracker& MemoryTracker::Cache() {
  static MemoryTracker* tracker = new MemoryTracker("cache", &Process());
  return *tracker;
}

bool ParseByteSize(const char* text, size_t* out) {
  if (text == nullptr || *text == '\0') return false;
  // strtoull silently wraps negative input; a limit must be non-negative.
  if (!std::isdigit(static_cast<unsigned char>(*text))) return false;
  char* end = nullptr;
  unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text) return false;
  size_t multiplier = 1;
  if (*end != '\0') {
    switch (std::toupper(static_cast<unsigned char>(*end))) {
      case 'K':
        multiplier = size_t{1} << 10;
        break;
      case 'M':
        multiplier = size_t{1} << 20;
        break;
      case 'G':
        multiplier = size_t{1} << 30;
        break;
      default:
        return false;
    }
    ++end;
    if (*end != '\0') return false;
  }
  *out = static_cast<size_t>(value) * multiplier;
  return true;
}

}  // namespace aggcache
