#include "query/aggregate_query.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace aggcache {

std::string JoinCondition::ToString() const {
  return StrFormat("t%zu.%s = t%zu.%s", left_table, left_column.c_str(),
                   right_table, right_column.c_str());
}

std::string HavingPredicate::ToString() const {
  return StrFormat("agg#%zu %s %s", aggregate_index, CompareOpToString(op),
                   operand.ToString().c_str());
}

Status AggregateQuery::Validate(const Database& db) const {
  if (tables.empty()) return Status::InvalidArgument("query has no tables");
  if (group_by.empty()) {
    return Status::InvalidArgument("query has no group-by columns");
  }
  if (aggregates.empty()) {
    return Status::InvalidArgument("query has no aggregates");
  }

  std::vector<const Table*> resolved;
  for (size_t i = 0; i < tables.size(); ++i) {
    ASSIGN_OR_RETURN(const Table* table, db.GetTable(tables[i].table_name));
    resolved.push_back(table);
    for (size_t j = 0; j < i; ++j) {
      if (tables[j].table_name == tables[i].table_name) {
        return Status::InvalidArgument(
            "self joins are not supported: table '" + tables[i].table_name +
            "' appears twice");
      }
    }
  }

  auto check_column = [&](size_t table_index, const std::string& column,
                          size_t* out_index) -> Status {
    if (table_index >= tables.size()) {
      return Status::InvalidArgument("table index out of range");
    }
    ASSIGN_OR_RETURN(size_t col,
                     resolved[table_index]->schema().ColumnIndex(column));
    if (out_index != nullptr) *out_index = col;
    return Status::Ok();
  };

  // Join graph: table i > 0 must be connected to some earlier table, and
  // join column types must match.
  std::vector<bool> connected(tables.size(), false);
  connected[0] = true;
  for (const JoinCondition& join : joins) {
    size_t lcol = 0;
    size_t rcol = 0;
    RETURN_IF_ERROR(check_column(join.left_table, join.left_column, &lcol));
    RETURN_IF_ERROR(check_column(join.right_table, join.right_column, &rcol));
    ColumnType lt =
        resolved[join.left_table]->schema().columns[lcol].type;
    ColumnType rt =
        resolved[join.right_table]->schema().columns[rcol].type;
    if (lt != rt) {
      return Status::InvalidArgument("join column type mismatch: " +
                                     join.ToString());
    }
    if (join.left_table == join.right_table) {
      return Status::InvalidArgument("self joins are not supported");
    }
  }
  // Left-deep compatibility: every table after the first must join to an
  // earlier table, so the executor can attach tables in query order.
  for (size_t i = 1; i < tables.size(); ++i) {
    bool attached = false;
    for (const JoinCondition& join : joins) {
      size_t lo = std::min(join.left_table, join.right_table);
      size_t hi = std::max(join.left_table, join.right_table);
      if (hi == i && lo < i) {
        attached = true;
        break;
      }
    }
    if (!attached) {
      return Status::InvalidArgument(StrFormat(
          "table %zu ('%s') has no join condition to an earlier table", i,
          tables[i].table_name.c_str()));
    }
    connected[i] = true;
  }

  for (const FilterPredicate& filter : filters) {
    size_t col = 0;
    RETURN_IF_ERROR(check_column(filter.table_index, filter.column, &col));
    ColumnType ct =
        resolved[filter.table_index]->schema().columns[col].type;
    if (!filter.operand.MatchesType(ct)) {
      return Status::InvalidArgument("filter operand type mismatch: " +
                                     filter.ToString());
    }
  }
  for (const GroupByRef& g : group_by) {
    RETURN_IF_ERROR(check_column(g.table_index, g.column, nullptr));
  }
  for (const AggregateSpec& agg : aggregates) {
    if (agg.fn == AggregateFunction::kCountStar) continue;
    size_t col = 0;
    RETURN_IF_ERROR(check_column(agg.table_index, agg.column, &col));
    ColumnType ct = resolved[agg.table_index]->schema().columns[col].type;
    if ((agg.fn == AggregateFunction::kSum ||
         agg.fn == AggregateFunction::kAvg) &&
        ct == ColumnType::kString) {
      return Status::InvalidArgument("SUM/AVG over a string column");
    }
  }
  for (const HavingPredicate& h : having) {
    if (h.aggregate_index >= aggregates.size()) {
      return Status::InvalidArgument(
          "HAVING references an aggregate outside the select list");
    }
    if (h.operand.is_null()) {
      return Status::InvalidArgument("HAVING operand must not be NULL");
    }
  }
  return Status::Ok();
}

AggregateResult AggregateQuery::ApplyHaving(AggregateResult result) const {
  if (having.empty()) return result;
  AggregateResult filtered(aggregates.size());
  for (const auto& [key, entry] : result.groups()) {
    bool pass = true;
    for (const HavingPredicate& h : having) {
      Value finalized =
          entry.states[h.aggregate_index].Finalize(
              aggregates[h.aggregate_index].fn);
      // Compare numerically across int64/double so HAVING SUM(x) > 10
      // works regardless of the accumulator type.
      bool ok;
      if (!finalized.is_null() && !h.operand.is_null() &&
          !finalized.is_string() && !h.operand.is_string() &&
          finalized.type() != h.operand.type()) {
        ok = EvalCompare(h.op, Value(finalized.NumericAsDouble()),
                         Value(h.operand.NumericAsDouble()));
      } else {
        ok = EvalCompare(h.op, finalized, h.operand);
      }
      if (!ok) {
        pass = false;
        break;
      }
    }
    if (pass) filtered.SetGroup(key, entry);
  }
  return filtered;
}

bool AggregateQuery::IsCacheable() const {
  for (const AggregateSpec& agg : aggregates) {
    if (!IsSelfMaintainable(agg.fn)) return false;
  }
  return true;
}

std::vector<AggregateFunction> AggregateQuery::AggregateFunctions() const {
  std::vector<AggregateFunction> fns;
  fns.reserve(aggregates.size());
  for (const AggregateSpec& agg : aggregates) fns.push_back(agg.fn);
  return fns;
}

std::string AggregateQuery::CanonicalString() const {
  std::vector<std::string> parts;
  for (const TableRef& t : tables) parts.push_back("T:" + t.table_name);
  for (const JoinCondition& j : joins) parts.push_back("J:" + j.ToString());
  for (const FilterPredicate& f : filters) {
    parts.push_back("F:" + f.ToString());
  }
  for (const GroupByRef& g : group_by) {
    parts.push_back(StrFormat("G:t%zu.%s", g.table_index, g.column.c_str()));
  }
  for (const AggregateSpec& a : aggregates) {
    parts.push_back(StrFormat("A:%s(t%zu.%s)", AggregateFunctionToString(a.fn),
                              a.table_index, a.column.c_str()));
  }
  return StrJoin(parts, "|");
}

std::string AggregateQuery::ToSql() const {
  std::vector<std::string> select;
  for (const GroupByRef& g : group_by) {
    select.push_back(tables[g.table_index].table_name + "." + g.column);
  }
  for (const AggregateSpec& a : aggregates) {
    std::string arg = a.fn == AggregateFunction::kCountStar
                          ? "*"
                          : tables[a.table_index].table_name + "." + a.column;
    std::string fn = a.fn == AggregateFunction::kCountStar
                         ? "COUNT"
                         : AggregateFunctionToString(a.fn);
    select.push_back(
        StrFormat("%s(%s) AS %s", fn.c_str(), arg.c_str(),
                  a.output_name.empty() ? "agg" : a.output_name.c_str()));
  }
  std::vector<std::string> from;
  for (const TableRef& t : tables) from.push_back(t.table_name);
  std::vector<std::string> where;
  for (const JoinCondition& j : joins) {
    where.push_back(tables[j.left_table].table_name + "." + j.left_column +
                    " = " + tables[j.right_table].table_name + "." +
                    j.right_column);
  }
  for (const FilterPredicate& f : filters) {
    where.push_back(tables[f.table_index].table_name + "." + f.column + " " +
                    CompareOpToString(f.op) + " " + f.operand.ToString());
  }
  std::vector<std::string> group;
  for (const GroupByRef& g : group_by) {
    group.push_back(tables[g.table_index].table_name + "." + g.column);
  }
  std::string sql = "SELECT " + StrJoin(select, ", ") + " FROM " +
                    StrJoin(from, ", ");
  if (!where.empty()) sql += " WHERE " + StrJoin(where, " AND ");
  sql += " GROUP BY " + StrJoin(group, ", ");
  if (!having.empty()) {
    std::vector<std::string> having_parts;
    for (const HavingPredicate& h : having) {
      const AggregateSpec& a = aggregates[h.aggregate_index];
      std::string arg = a.fn == AggregateFunction::kCountStar
                            ? "*"
                            : tables[a.table_index].table_name + "." +
                                  a.column;
      std::string fn = a.fn == AggregateFunction::kCountStar
                           ? "COUNT"
                           : AggregateFunctionToString(a.fn);
      having_parts.push_back(StrFormat("%s(%s) %s %s", fn.c_str(),
                                       arg.c_str(), CompareOpToString(h.op),
                                       h.operand.ToString().c_str()));
    }
    sql += " HAVING " + StrJoin(having_parts, " AND ");
  }
  return sql;
}

size_t QueryBuilder::TableIndex(const std::string& table) const {
  for (size_t i = 0; i < query_.tables.size(); ++i) {
    if (query_.tables[i].table_name == table) return i;
  }
  AGGCACHE_CHECK(false) << "table '" << table << "' not in query";
  return 0;
}

QueryBuilder& QueryBuilder::From(const std::string& table) {
  AGGCACHE_CHECK(query_.tables.empty()) << "From() must come first";
  query_.tables.push_back(TableRef{table});
  return *this;
}

QueryBuilder& QueryBuilder::Join(const std::string& table,
                                 const std::string& left_column,
                                 const std::string& right_column, int via) {
  AGGCACHE_CHECK(!query_.tables.empty()) << "Join() before From()";
  size_t left = via < 0 ? query_.tables.size() - 1 : static_cast<size_t>(via);
  AGGCACHE_CHECK_LT(left, query_.tables.size()) << "via out of range";
  query_.tables.push_back(TableRef{table});
  query_.joins.push_back(JoinCondition{left, left_column,
                                       query_.tables.size() - 1,
                                       right_column});
  return *this;
}

QueryBuilder& QueryBuilder::Filter(const std::string& table,
                                   const std::string& column, CompareOp op,
                                   Value operand) {
  query_.filters.push_back(
      FilterPredicate{TableIndex(table), column, op, std::move(operand)});
  return *this;
}

QueryBuilder& QueryBuilder::GroupBy(const std::string& table,
                                    const std::string& column) {
  query_.group_by.push_back(GroupByRef{TableIndex(table), column});
  return *this;
}

QueryBuilder& QueryBuilder::Having(CompareOp op, Value operand) {
  AGGCACHE_CHECK(!query_.aggregates.empty()) << "Having() before aggregates";
  query_.having.push_back(HavingPredicate{query_.aggregates.size() - 1, op,
                                          std::move(operand)});
  return *this;
}

QueryBuilder& QueryBuilder::AddAggregate(AggregateFunction fn,
                                         const std::string& table,
                                         const std::string& column,
                                         const std::string& output_name) {
  size_t index = table.empty() ? 0 : TableIndex(table);
  query_.aggregates.push_back(AggregateSpec{fn, index, column, output_name});
  return *this;
}

QueryBuilder& QueryBuilder::Sum(const std::string& table,
                                const std::string& column,
                                const std::string& output_name) {
  return AddAggregate(AggregateFunction::kSum, table, column, output_name);
}

QueryBuilder& QueryBuilder::Count(const std::string& table,
                                  const std::string& column,
                                  const std::string& output_name) {
  return AddAggregate(AggregateFunction::kCount, table, column, output_name);
}

QueryBuilder& QueryBuilder::Avg(const std::string& table,
                                const std::string& column,
                                const std::string& output_name) {
  return AddAggregate(AggregateFunction::kAvg, table, column, output_name);
}

QueryBuilder& QueryBuilder::Min(const std::string& table,
                                const std::string& column,
                                const std::string& output_name) {
  return AddAggregate(AggregateFunction::kMin, table, column, output_name);
}

QueryBuilder& QueryBuilder::Max(const std::string& table,
                                const std::string& column,
                                const std::string& output_name) {
  return AddAggregate(AggregateFunction::kMax, table, column, output_name);
}

QueryBuilder& QueryBuilder::CountStar(const std::string& output_name) {
  return AddAggregate(AggregateFunction::kCountStar, "", "", output_name);
}

}  // namespace aggcache
