#ifndef AGGCACHE_QUERY_AGGREGATE_RESULT_H_
#define AGGCACHE_QUERY_AGGREGATE_RESULT_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace aggcache {

/// Aggregate functions supported by the query engine. The aggregate cache
/// admits only the self-maintainable ones (SUM, COUNT, AVG, COUNT(*)), per
/// Section 2.1 of the paper; MIN/MAX cannot be compensated under deletions.
enum class AggregateFunction : uint8_t {
  kSum,
  kCount,
  kAvg,
  kMin,
  kMax,
  kCountStar,
};

const char* AggregateFunctionToString(AggregateFunction fn);

/// True for functions whose states support add and subtract.
bool IsSelfMaintainable(AggregateFunction fn);

/// Group-by key: one value per group-by column.
struct GroupKey {
  std::vector<Value> values;

  bool operator==(const GroupKey& other) const {
    return values == other.values;
  }
  std::string ToString() const;
};

struct GroupKeyHash {
  size_t operator()(const GroupKey& key) const;
};

/// Mergeable and (for self-maintainable functions) subtractable state of one
/// aggregate within one group. SUM keeps exact int64 arithmetic for integer
/// columns and doubles otherwise; AVG is derived as SUM/COUNT at
/// finalization, the classic summary-delta representation.
struct AggregateState {
  int64_t sum_int = 0;
  double sum_double = 0.0;
  int64_t count = 0;
  /// True once a double value contributed; decides the SUM output type.
  bool saw_double = false;
  Value min;  ///< NULL until the first value arrives.
  Value max;

  /// Folds one input value into the state.
  void Add(const Value& v);

  /// Folds another state in (set union).
  void Merge(const AggregateState& other);

  /// Removes another state's contribution (main compensation). MIN/MAX
  /// content becomes meaningless after subtraction; callers must only
  /// subtract states used for self-maintainable functions.
  void Subtract(const AggregateState& other);

  /// Final value under `fn`. COUNT/COUNT(*) return int64; AVG returns
  /// double; SUM returns int64 for integer inputs and double otherwise.
  Value Finalize(AggregateFunction fn) const;
};

/// The extent of an aggregate query: group keys mapped to per-aggregate
/// states plus a COUNT(*) kept for every group. The hidden COUNT(*) is what
/// the paper's aggregate cache value stores as well (Fig. 2): it detects
/// groups whose rows all disappeared, so compensation can drop them.
class AggregateResult {
 public:
  struct GroupEntry {
    std::vector<AggregateState> states;
    int64_t count_star = 0;
  };

  AggregateResult() = default;
  explicit AggregateResult(size_t num_aggregates)
      : num_aggregates_(num_aggregates) {}

  size_t num_aggregates() const { return num_aggregates_; }
  size_t num_groups() const { return groups_.size(); }
  bool empty() const { return groups_.empty(); }

  /// Folds one joined tuple into the result. `inputs` holds the input value
  /// for each aggregate (ignored for COUNT(*) entries, pass any value).
  void Accumulate(const GroupKey& key, const std::vector<Value>& inputs);

  /// Installs a fully formed group entry, replacing any existing one. Used
  /// when reconstructing a result from materialized storage (summary
  /// tables); `entry.states` must have num_aggregates() elements.
  void SetGroup(const GroupKey& key, GroupEntry entry);

  /// Set-union with another result over the same query shape.
  void MergeFrom(const AggregateResult& other);

  /// Removes `other`'s contribution; groups whose COUNT(*) reaches zero are
  /// deleted. Returns InvalidArgument on shape mismatch and
  /// FailedPrecondition when a group would go negative (a compensation
  /// bug).
  Status SubtractFrom(const AggregateResult& other);

  const std::unordered_map<GroupKey, GroupEntry, GroupKeyHash>& groups()
      const {
    return groups_;
  }

  /// Finalized rows, sorted by group key for deterministic output: each row
  /// is the group values followed by the finalized aggregates.
  std::vector<std::vector<Value>> Rows(
      const std::vector<AggregateFunction>& functions) const;

  /// Structural equality with numeric tolerance for double sums; used by
  /// the correctness property tests.
  bool ApproxEquals(const AggregateResult& other, double tolerance = 1e-6,
                    std::string* difference = nullptr) const;

  /// Approximate heap footprint, reported in cache metrics.
  size_t ByteSize() const;

 private:
  size_t num_aggregates_ = 0;
  std::unordered_map<GroupKey, GroupEntry, GroupKeyHash> groups_;
};

}  // namespace aggcache

#endif  // AGGCACHE_QUERY_AGGREGATE_RESULT_H_
