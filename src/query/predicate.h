#ifndef AGGCACHE_QUERY_PREDICATE_H_
#define AGGCACHE_QUERY_PREDICATE_H_

#include <optional>
#include <string>
#include <utility>

#include "common/value.h"
#include "storage/dictionary.h"

namespace aggcache {

/// Comparison operators supported in filter predicates.
enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpToString(CompareOp op);

/// A column-vs-constant filter, bound to one table of a query by index.
/// Conjunctions are expressed as multiple predicates.
struct FilterPredicate {
  size_t table_index = 0;
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value operand;

  std::string ToString() const;
};

/// Evaluates `lhs op rhs`.
bool EvalCompare(CompareOp op, const Value& lhs, const Value& rhs);

/// Conservative partition-level test using the dictionary's value range:
/// returns false only when no value in the dictionary can satisfy the
/// predicate, enabling static partition pruning during scans. Empty
/// dictionaries always return false (nothing can match).
bool PredicateCanMatch(CompareOp op, const Value& operand,
                       const Dictionary& dict);

/// Compiles a predicate against a *sorted* (main) dictionary into the
/// inclusive code range [lo, hi] whose values satisfy `op operand`: because
/// sorted dictionaries assign codes in value order, every range predicate
/// maps to a contiguous code interval, and scans can then compare integer
/// codes instead of decoded values — the value-id predicate evaluation of
/// dictionary-encoded column stores. Returns nullopt when the dictionary is
/// unsorted, empty, the operator is `<>`, or no code matches (callers fall
/// back to value comparison or skip the scan).
std::optional<std::pair<ValueId, ValueId>> SortedDictionaryCodeRange(
    CompareOp op, const Value& operand, const Dictionary& dict);

}  // namespace aggcache

#endif  // AGGCACHE_QUERY_PREDICATE_H_
