#include "query/aggregate_result.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace aggcache {

const char* AggregateFunctionToString(AggregateFunction fn) {
  switch (fn) {
    case AggregateFunction::kSum:
      return "SUM";
    case AggregateFunction::kCount:
      return "COUNT";
    case AggregateFunction::kAvg:
      return "AVG";
    case AggregateFunction::kMin:
      return "MIN";
    case AggregateFunction::kMax:
      return "MAX";
    case AggregateFunction::kCountStar:
      return "COUNT(*)";
  }
  return "?";
}

bool IsSelfMaintainable(AggregateFunction fn) {
  switch (fn) {
    case AggregateFunction::kSum:
    case AggregateFunction::kCount:
    case AggregateFunction::kAvg:
    case AggregateFunction::kCountStar:
      return true;
    case AggregateFunction::kMin:
    case AggregateFunction::kMax:
      return false;
  }
  return false;
}

std::string GroupKey::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values.size());
  for (const Value& v : values) parts.push_back(v.ToString());
  return "(" + StrJoin(parts, ", ") + ")";
}

size_t GroupKeyHash::operator()(const GroupKey& key) const {
  size_t seed = 0x9e3779b97f4a7c15ULL;
  for (const Value& v : key.values) {
    seed ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  }
  return seed;
}

void AggregateState::Add(const Value& v) {
  ++count;
  if (v.is_null()) return;
  if (v.is_int64()) {
    sum_int += v.AsInt64();
  } else if (v.is_double()) {
    sum_double += v.AsDouble();
    saw_double = true;
  }
  if (min.is_null() || v < min) min = v;
  if (max.is_null() || max < v) max = v;
}

void AggregateState::Merge(const AggregateState& other) {
  sum_int += other.sum_int;
  sum_double += other.sum_double;
  saw_double = saw_double || other.saw_double;
  count += other.count;
  if (!other.min.is_null() && (min.is_null() || other.min < min)) {
    min = other.min;
  }
  if (!other.max.is_null() && (max.is_null() || max < other.max)) {
    max = other.max;
  }
}

void AggregateState::Subtract(const AggregateState& other) {
  sum_int -= other.sum_int;
  sum_double -= other.sum_double;
  count -= other.count;
}

Value AggregateState::Finalize(AggregateFunction fn) const {
  switch (fn) {
    case AggregateFunction::kSum:
      if (saw_double) {
        return Value(static_cast<double>(sum_int) + sum_double);
      }
      return Value(sum_int);
    case AggregateFunction::kCount:
    case AggregateFunction::kCountStar:
      return Value(count);
    case AggregateFunction::kAvg: {
      if (count == 0) return Value();
      double total = static_cast<double>(sum_int) + sum_double;
      return Value(total / static_cast<double>(count));
    }
    case AggregateFunction::kMin:
      return min;
    case AggregateFunction::kMax:
      return max;
  }
  return Value();
}

void AggregateResult::Accumulate(const GroupKey& key,
                                 const std::vector<Value>& inputs) {
  AGGCACHE_CHECK_EQ(inputs.size(), num_aggregates_);
  GroupEntry& entry = groups_[key];
  if (entry.states.empty()) entry.states.resize(num_aggregates_);
  for (size_t i = 0; i < num_aggregates_; ++i) {
    entry.states[i].Add(inputs[i]);
  }
  ++entry.count_star;
}

void AggregateResult::SetGroup(const GroupKey& key, GroupEntry entry) {
  AGGCACHE_CHECK_EQ(entry.states.size(), num_aggregates_);
  groups_[key] = std::move(entry);
}

void AggregateResult::MergeFrom(const AggregateResult& other) {
  AGGCACHE_CHECK_EQ(num_aggregates_, other.num_aggregates_);
  for (const auto& [key, other_entry] : other.groups_) {
    GroupEntry& entry = groups_[key];
    if (entry.states.empty()) entry.states.resize(num_aggregates_);
    for (size_t i = 0; i < num_aggregates_; ++i) {
      entry.states[i].Merge(other_entry.states[i]);
    }
    entry.count_star += other_entry.count_star;
  }
}

Status AggregateResult::SubtractFrom(const AggregateResult& other) {
  if (num_aggregates_ != other.num_aggregates_) {
    return Status::InvalidArgument("aggregate arity mismatch in subtract");
  }
  for (const auto& [key, other_entry] : other.groups_) {
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      return Status::FailedPrecondition(
          "subtracting a group absent from the result: " + key.ToString());
    }
    GroupEntry& entry = it->second;
    if (entry.count_star < other_entry.count_star) {
      return Status::FailedPrecondition("group count underflow: " +
                                        key.ToString());
    }
    for (size_t i = 0; i < num_aggregates_; ++i) {
      entry.states[i].Subtract(other_entry.states[i]);
    }
    entry.count_star -= other_entry.count_star;
    if (entry.count_star == 0) groups_.erase(it);
  }
  return Status::Ok();
}

std::vector<std::vector<Value>> AggregateResult::Rows(
    const std::vector<AggregateFunction>& functions) const {
  AGGCACHE_CHECK_EQ(functions.size(), num_aggregates_);
  std::vector<std::vector<Value>> rows;
  rows.reserve(groups_.size());
  for (const auto& [key, entry] : groups_) {
    std::vector<Value> row = key.values;
    for (size_t i = 0; i < num_aggregates_; ++i) {
      row.push_back(entry.states[i].Finalize(functions[i]));
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const std::vector<Value>& a, const std::vector<Value>& b) {
              for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
                if (a[i] < b[i]) return true;
                if (b[i] < a[i]) return false;
              }
              return a.size() < b.size();
            });
  return rows;
}

namespace {

bool ApproxEqualNumber(double a, double b, double tolerance) {
  double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tolerance * scale;
}

}  // namespace

bool AggregateResult::ApproxEquals(const AggregateResult& other,
                                   double tolerance,
                                   std::string* difference) const {
  auto fail = [&](const std::string& message) {
    if (difference != nullptr) *difference = message;
    return false;
  };
  if (num_aggregates_ != other.num_aggregates_) {
    return fail("aggregate arity differs");
  }
  if (groups_.size() != other.groups_.size()) {
    return fail(StrFormat("group count differs: %zu vs %zu", groups_.size(),
                          other.groups_.size()));
  }
  for (const auto& [key, entry] : groups_) {
    auto it = other.groups_.find(key);
    if (it == other.groups_.end()) {
      return fail("group missing from other: " + key.ToString());
    }
    const GroupEntry& other_entry = it->second;
    if (entry.count_star != other_entry.count_star) {
      return fail(StrFormat("count(*) differs in group %s: %lld vs %lld",
                            key.ToString().c_str(),
                            static_cast<long long>(entry.count_star),
                            static_cast<long long>(other_entry.count_star)));
    }
    for (size_t i = 0; i < num_aggregates_; ++i) {
      const AggregateState& a = entry.states[i];
      const AggregateState& b = other_entry.states[i];
      if (a.count != b.count || a.sum_int != b.sum_int ||
          !ApproxEqualNumber(a.sum_double, b.sum_double, tolerance)) {
        return fail("aggregate state differs in group " + key.ToString());
      }
    }
  }
  return true;
}

size_t AggregateResult::ByteSize() const {
  size_t bytes = groups_.bucket_count() * sizeof(void*);
  for (const auto& [key, entry] : groups_) {
    bytes += sizeof(GroupEntry) + sizeof(void*);
    for (const Value& v : key.values) bytes += v.ByteSize();
    bytes += entry.states.size() * sizeof(AggregateState);
    for (const AggregateState& s : entry.states) {
      bytes += s.min.ByteSize() + s.max.ByteSize() - 2 * sizeof(Value);
    }
  }
  return bytes;
}

}  // namespace aggcache
