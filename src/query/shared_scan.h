#ifndef AGGCACHE_QUERY_SHARED_SCAN_H_
#define AGGCACHE_QUERY_SHARED_SCAN_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "query/vector_kernels.h"
#include "storage/partition.h"

namespace aggcache {

/// Cooperative shared scans over delta partitions.
///
/// Delta compensation makes every cache hit re-scan the delta partition, so
/// N concurrent queries over the same hot table issue N near-identical
/// scans. The manager coalesces them: the first arrival becomes the
/// *leader* of a session and walks the partition block by block, applying
/// every registered consumer's compiled filters to each block; later
/// arrivals *attach* to the in-flight session at its current block cursor,
/// scan the already-passed prefix themselves, and then wait for the leader
/// to deliver the remainder. Each consumer still performs its own filter
/// work (predicates differ per query) — what is shared is the block walk,
/// so the partition's code arrays cross the cache hierarchy once per
/// session instead of once per query.
///
/// Selection vectors come back in ascending row order exactly as a solo
/// SelectRowsRange would produce, so downstream join/aggregation results
/// (including float summation order) are unchanged.
///
/// Disabled with AGGCACHE_SHARED_SCAN=off|0 (default on).
class SharedScanManager {
 public:
  /// Partitions smaller than this scan faster than the coordination costs.
  static constexpr uint32_t kMinRows = 256;

  struct Result {
    bool led = false;       ///< Started a session (other queries may attach).
    bool attached = false;  ///< Joined another query's in-flight session.
    size_t batches = 0;     ///< Blocks scanned on behalf of this consumer.
  };

  static SharedScanManager& Instance();

  /// True when shared scans are enabled (env flag or test override).
  static bool Enabled();

  /// Test hook: 0 = force off, 1 = force on, -1 = follow the env flag.
  static void OverrideEnabledForTest(int enabled);

  /// Scans all rows of `p` through `in`, appending passing row ids to
  /// `out` in ascending order — the cooperative equivalent of
  /// SelectRowsRange(p, in, 0, p.num_rows(), out). `in` (and the filters
  /// it references) must stay alive for the duration of the call.
  Result Scan(const Partition& p, const SelectionInput& in,
              std::vector<uint32_t>* out);

 private:
  struct Consumer {
    explicit Consumer(const SelectionInput* in) : input(in) {}
    const SelectionInput* input;
    std::vector<uint32_t> rows;  ///< Leader-scanned blocks >= join_block.
    uint32_t join_block = 0;
    size_t batches = 0;  ///< Blocks the leader processed for this consumer.
    bool done = false;
  };

  struct Session {
    std::mutex mu;
    std::condition_variable cv;
    const Partition* partition = nullptr;
    uint32_t num_rows = 0;
    uint32_t num_blocks = 0;
    uint32_t next_block = 0;  ///< First block the leader has NOT started.
    /// First block the leader did NOT deliver: num_blocks on a complete
    /// walk, the abandon cursor when the leader's query aborted mid-walk
    /// (followers self-scan their tail from here).
    uint32_t delivered_until = 0;
    bool finished = false;
    std::vector<std::unique_ptr<Consumer>> consumers;
  };

  Result Lead(const Partition& p, const SelectionInput& in,
              const std::shared_ptr<Session>& session,
              std::vector<uint32_t>* out);
  Result Follow(const Partition& p, const SelectionInput& in,
                Consumer* consumer, const std::shared_ptr<Session>& session,
                std::vector<uint32_t>* out);

  std::mutex registry_mu_;
  std::map<const Partition*, std::shared_ptr<Session>> sessions_;
};

}  // namespace aggcache

#endif  // AGGCACHE_QUERY_SHARED_SCAN_H_
