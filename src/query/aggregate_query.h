#ifndef AGGCACHE_QUERY_AGGREGATE_QUERY_H_
#define AGGCACHE_QUERY_AGGREGATE_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/aggregate_result.h"
#include "query/predicate.h"
#include "storage/database.h"

namespace aggcache {

/// Reference to one table of a join query.
struct TableRef {
  std::string table_name;
};

/// Equi-join condition between two query tables. Validation requires the
/// join graph to be a left-deep-compatible tree: every table after the
/// first must be connected to an earlier table.
struct JoinCondition {
  size_t left_table = 0;
  std::string left_column;
  size_t right_table = 0;
  std::string right_column;

  std::string ToString() const;
};

/// One group-by column.
struct GroupByRef {
  size_t table_index = 0;
  std::string column;
};

/// One aggregate in the select list.
struct AggregateSpec {
  AggregateFunction fn = AggregateFunction::kSum;
  size_t table_index = 0;  ///< Unused for COUNT(*).
  std::string column;      ///< Empty for COUNT(*).
  std::string output_name;
};

/// A HAVING predicate: a comparison on the finalized value of one select
/// aggregate, applied to whole groups after compensation. HAVING never
/// affects what the cache stores — the entry holds the unfiltered
/// aggregate, so queries differing only in HAVING share one entry.
struct HavingPredicate {
  size_t aggregate_index = 0;  ///< Index into `aggregates`.
  CompareOp op = CompareOp::kGt;
  Value operand;

  std::string ToString() const;
};

/// Logical aggregate query over a join of tables: the class of queries the
/// aggregate cache serves (grouping + self-maintainable aggregates +
/// conjunctive column/constant filters over an equi-join).
class AggregateQuery {
 public:
  std::vector<TableRef> tables;
  std::vector<JoinCondition> joins;
  std::vector<FilterPredicate> filters;
  std::vector<GroupByRef> group_by;
  std::vector<AggregateSpec> aggregates;
  std::vector<HavingPredicate> having;

  /// Checks table/column existence, type compatibility of join columns, and
  /// join-graph connectivity against the catalog.
  Status Validate(const Database& db) const;

  /// True when every aggregate is self-maintainable, the admission
  /// precondition for the aggregate cache.
  bool IsCacheable() const;

  /// Aggregate functions in select-list order (for finalization).
  std::vector<AggregateFunction> AggregateFunctions() const;

  /// Canonical text of the query; equal queries produce equal strings, which
  /// is what the aggregate cache key is derived from. HAVING predicates are
  /// deliberately excluded: they filter finalized groups after compensation,
  /// so queries differing only in HAVING can share one cache entry.
  std::string CanonicalString() const;

  /// Filters `result` by the HAVING predicates (group-level comparisons on
  /// finalized aggregate values). A no-op when `having` is empty. Applied
  /// as the last step of query execution, after all compensation.
  AggregateResult ApplyHaving(AggregateResult result) const;

  /// Pretty SQL-ish rendering for logs and examples.
  std::string ToSql() const;
};

/// Fluent builder:
///
///   AggregateQuery q = QueryBuilder()
///       .From("Header").Join("Item", "HeaderID", "HeaderID")
///       .Join("ProductCategory", "CategoryID", "CategoryID", /*via=*/1)
///       .Filter("ProductCategory", "Language", CompareOp::kEq, Value("ENG"))
///       .GroupBy("ProductCategory", "Name")
///       .Sum("Item", "Price", "Profit")
///       .Build();
class QueryBuilder {
 public:
  QueryBuilder() = default;

  /// First (driving) table.
  QueryBuilder& From(const std::string& table);

  /// Adds `table`, joined on existing_tables[via].left_column = new
  /// table.right_column. `via` defaults to the most recently added table.
  QueryBuilder& Join(const std::string& table, const std::string& left_column,
                     const std::string& right_column, int via = -1);

  QueryBuilder& Filter(const std::string& table, const std::string& column,
                       CompareOp op, Value operand);
  QueryBuilder& GroupBy(const std::string& table, const std::string& column);

  /// Adds a HAVING predicate on the most recently added aggregate.
  QueryBuilder& Having(CompareOp op, Value operand);
  QueryBuilder& Sum(const std::string& table, const std::string& column,
                    const std::string& output_name);
  QueryBuilder& Count(const std::string& table, const std::string& column,
                      const std::string& output_name);
  QueryBuilder& Avg(const std::string& table, const std::string& column,
                    const std::string& output_name);
  QueryBuilder& Min(const std::string& table, const std::string& column,
                    const std::string& output_name);
  QueryBuilder& Max(const std::string& table, const std::string& column,
                    const std::string& output_name);
  QueryBuilder& CountStar(const std::string& output_name);

  AggregateQuery Build() const { return query_; }

 private:
  size_t TableIndex(const std::string& table) const;
  QueryBuilder& AddAggregate(AggregateFunction fn, const std::string& table,
                             const std::string& column,
                             const std::string& output_name);

  AggregateQuery query_;
};

}  // namespace aggcache

#endif  // AGGCACHE_QUERY_AGGREGATE_QUERY_H_
