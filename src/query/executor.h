#ifndef AGGCACHE_QUERY_EXECUTOR_H_
#define AGGCACHE_QUERY_EXECUTOR_H_

#include <atomic>
#include <vector>

#include "query/aggregate_query.h"
#include "query/aggregate_result.h"
#include "query/subjoin.h"
#include "storage/database.h"
#include "txn/types.h"

namespace aggcache {

/// An AggregateQuery with every table and column reference resolved against
/// the catalog. Binding happens once per execution; the pruning and
/// pushdown modules consume the same structure.
struct BoundQuery {
  const AggregateQuery* query = nullptr;
  std::vector<const Table*> tables;

  struct BoundJoin {
    size_t outer_table = 0;  ///< Earlier table in query order.
    size_t outer_column = 0;
    size_t inner_table = 0;  ///< Later table in query order.
    size_t inner_column = 0;
  };
  std::vector<BoundJoin> joins;

  struct BoundFilter {
    size_t table = 0;
    size_t column = 0;
    CompareOp op = CompareOp::kEq;
    Value operand;
  };
  std::vector<BoundFilter> filters;

  struct BoundGroupBy {
    size_t table = 0;
    size_t column = 0;
  };
  std::vector<BoundGroupBy> group_by;

  struct BoundAggregate {
    AggregateFunction fn = AggregateFunction::kSum;
    size_t table = 0;
    size_t column = 0;
    bool is_count_star = false;
  };
  std::vector<BoundAggregate> aggregates;

  /// Validates `query` and resolves all references.
  static StatusOr<BoundQuery> Bind(const Database& db,
                                   const AggregateQuery& query);
};

/// Counters accumulated across executor calls; benches and tests reset and
/// read them to observe how much work each strategy performed.
struct ExecutorStats {
  uint64_t subjoins_executed = 0;
  uint64_t rows_scanned = 0;
  uint64_t rows_selected = 0;
  uint64_t tuples_joined = 0;
  /// 1024-row blocks processed by the batched selection kernels.
  uint64_t selection_batches = 0;
  /// Join levels executed through the code-space hash table.
  uint64_t code_joins = 0;
  /// Aggregations that packed all group-by codes into one 64-bit key.
  uint64_t packed_groupings = 0;
  /// Aggregations that fell back to materialized group keys (> 64 bits).
  uint64_t fallback_groupings = 0;
  /// Cooperative delta scans this executor led / attached to.
  uint64_t shared_scan_leads = 0;
  uint64_t shared_scan_attaches = 0;

  void Reset() { *this = ExecutorStats(); }

  /// Folds another stats block in; used to merge per-task counters
  /// collected by parallel subjoin fan-outs back into the shared totals.
  void MergeFrom(const ExecutorStats& other) {
    subjoins_executed += other.subjoins_executed;
    rows_scanned += other.rows_scanned;
    rows_selected += other.rows_selected;
    tuples_joined += other.tuples_joined;
    selection_batches += other.selection_batches;
    code_joins += other.code_joins;
    packed_groupings += other.packed_groupings;
    fallback_groupings += other.fallback_groupings;
    shared_scan_leads += other.shared_scan_leads;
    shared_scan_attaches += other.shared_scan_attaches;
  }
};

/// The executor's shared counters: same fields as ExecutorStats, but atomic
/// so concurrent top-level executions on one Executor can all feed them.
/// Relaxed ordering — these are statistics, not synchronization. Reads
/// convert implicitly, so `executor.stats().subjoins_executed` keeps
/// working in tests and benches.
struct SharedExecutorStats {
  std::atomic<uint64_t> subjoins_executed{0};
  std::atomic<uint64_t> rows_scanned{0};
  std::atomic<uint64_t> rows_selected{0};
  std::atomic<uint64_t> tuples_joined{0};
  std::atomic<uint64_t> selection_batches{0};
  std::atomic<uint64_t> code_joins{0};
  std::atomic<uint64_t> packed_groupings{0};
  std::atomic<uint64_t> fallback_groupings{0};
  std::atomic<uint64_t> shared_scan_leads{0};
  std::atomic<uint64_t> shared_scan_attaches{0};

  void Reset() {
    subjoins_executed.store(0, std::memory_order_relaxed);
    rows_scanned.store(0, std::memory_order_relaxed);
    rows_selected.store(0, std::memory_order_relaxed);
    tuples_joined.store(0, std::memory_order_relaxed);
    selection_batches.store(0, std::memory_order_relaxed);
    code_joins.store(0, std::memory_order_relaxed);
    packed_groupings.store(0, std::memory_order_relaxed);
    fallback_groupings.store(0, std::memory_order_relaxed);
    shared_scan_leads.store(0, std::memory_order_relaxed);
    shared_scan_attaches.store(0, std::memory_order_relaxed);
  }

  void MergeFrom(const ExecutorStats& other) {
    subjoins_executed.fetch_add(other.subjoins_executed,
                                std::memory_order_relaxed);
    rows_scanned.fetch_add(other.rows_scanned, std::memory_order_relaxed);
    rows_selected.fetch_add(other.rows_selected, std::memory_order_relaxed);
    tuples_joined.fetch_add(other.tuples_joined, std::memory_order_relaxed);
    selection_batches.fetch_add(other.selection_batches,
                                std::memory_order_relaxed);
    code_joins.fetch_add(other.code_joins, std::memory_order_relaxed);
    packed_groupings.fetch_add(other.packed_groupings,
                               std::memory_order_relaxed);
    fallback_groupings.fetch_add(other.fallback_groupings,
                                 std::memory_order_relaxed);
    shared_scan_leads.fetch_add(other.shared_scan_leads,
                                std::memory_order_relaxed);
    shared_scan_attaches.fetch_add(other.shared_scan_attaches,
                                   std::memory_order_relaxed);
  }

  /// One coherent copy of all four counters. Callers that dump or diff
  /// stats should snapshot once instead of reading fields one by one, so
  /// the reported set comes from a single point in time (each field is
  /// still a relaxed load; the snapshot is consistent for quiesced
  /// executors and self-consistent code, not a fence).
  ExecutorStats Snapshot() const {
    ExecutorStats s;
    s.subjoins_executed = subjoins_executed.load(std::memory_order_relaxed);
    s.rows_scanned = rows_scanned.load(std::memory_order_relaxed);
    s.rows_selected = rows_selected.load(std::memory_order_relaxed);
    s.tuples_joined = tuples_joined.load(std::memory_order_relaxed);
    s.selection_batches = selection_batches.load(std::memory_order_relaxed);
    s.code_joins = code_joins.load(std::memory_order_relaxed);
    s.packed_groupings = packed_groupings.load(std::memory_order_relaxed);
    s.fallback_groupings = fallback_groupings.load(std::memory_order_relaxed);
    s.shared_scan_leads = shared_scan_leads.load(std::memory_order_relaxed);
    s.shared_scan_attaches =
        shared_scan_attaches.load(std::memory_order_relaxed);
    return s;
  }
};

/// Aggregate query executor over the main-delta columnar store: per-table
/// selection (with dictionary-range static pruning of filters), left-deep
/// hash joins in query-table order, and hash aggregation.
///
/// Threading model: ExecuteSubjoin is const and re-entrant — concurrent
/// calls on one instance are safe as long as each passes its own
/// ExecutorStats out-parameter (with `stats == nullptr` the call falls back
/// to the shared member counters and must not run concurrently). Top-level
/// entry points (ExecuteUncached and the cache manager) fan subjoins out
/// across the global ThreadPool with per-task stats and merge both results
/// and counters in enumeration order, so results and stats are
/// deterministic at any thread count.
class Executor {
 public:
  explicit Executor(const Database* db) : db_(db) {}

  /// Optional per-table row restriction for ExecuteSubjoin: when
  /// `rows[t]` is set, table t's selection considers only those row ids of
  /// its partition (visibility and filters still apply on top). Used by the
  /// incremental main compensation of join entries, whose correction joins
  /// restrict some tables to their invalidated ("negative delta") rows.
  struct RowRestriction {
    std::vector<std::optional<std::vector<uint32_t>>> rows;
    /// When true, restricted tables skip the per-row visibility check: the
    /// caller vouches for the row set. Main compensation passes the rows
    /// invalidated since the entry snapshot, which are exactly the rows a
    /// current snapshot would hide.
    bool bypass_visibility_for_restricted = false;
  };

  /// Executes the query over one subjoin combination under `snapshot`.
  /// `extra_filters` carries pushed-down predicates (Section 5.3) that
  /// apply only to this subjoin; `restriction`, when non-null, limits the
  /// candidate rows per table. Work counters accumulate into `stats` when
  /// given, otherwise into the shared stats() member; parallel callers must
  /// pass a per-task block.
  StatusOr<AggregateResult> ExecuteSubjoin(
      const BoundQuery& bound, const SubjoinCombination& combination,
      Snapshot snapshot,
      const std::vector<FilterPredicate>& extra_filters = {},
      const RowRestriction* restriction = nullptr,
      ExecutorStats* stats = nullptr) const;

  /// Uncached execution (Section 2.3.1): evaluates and unions every
  /// partition combination, fanning the subjoins out across the global
  /// ThreadPool and merging partials in enumeration order.
  StatusOr<AggregateResult> ExecuteUncached(const AggregateQuery& query,
                                            Snapshot snapshot) const;

  /// Same, for an already-bound query — used by callers that bind first to
  /// learn the table set (and take table locks) before executing.
  StatusOr<AggregateResult> ExecuteUncachedBound(const BoundQuery& bound,
                                                 Snapshot snapshot) const;

  SharedExecutorStats& stats() const { return stats_; }

 private:
  const Database* db_;
  /// Mutable so the const, re-entrant execution paths can keep feeding the
  /// shared counters that benches and the cache manager read. Atomic fields
  /// make the accumulation safe under concurrent top-level executions.
  mutable SharedExecutorStats stats_;
};

}  // namespace aggcache

#endif  // AGGCACHE_QUERY_EXECUTOR_H_
