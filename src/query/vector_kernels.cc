#include "query/vector_kernels.h"

#include <bit>

#include "common/logging.h"
#include "runtime/query_context.h"

namespace aggcache {

namespace {

/// splitmix64 finalizer — full-avalanche mix for code and packed-code keys
/// (sequential dictionary codes would otherwise cluster in a power-of-two
/// table).
inline uint64_t MixKey(uint64_t key) {
  key ^= key >> 30;
  key *= 0xbf58476d1ce4e5b9ULL;
  key ^= key >> 27;
  key *= 0x94d049bb133111ebULL;
  key ^= key >> 31;
  return key;
}

inline size_t PowerOfTwoCapacity(size_t expected) {
  // Load factor <= 0.5.
  size_t capacity = std::bit_ceil(std::max<size_t>(expected * 2, 16));
  return capacity;
}

}  // namespace

bool CompileColumnFilter(const Column& column, CompareOp op,
                         const Value& operand, CompiledColumnFilter* out) {
  const Dictionary& dict = column.dictionary();
  if (!PredicateCanMatch(op, operand, dict)) return false;
  out->column = &column;
  out->op = op;
  out->operand = &operand;
  if (auto range = SortedDictionaryCodeRange(op, operand, dict)) {
    out->kind = CompiledColumnFilter::Kind::kCodeRange;
    out->lo = range->first;
    out->hi = range->second;
    return true;
  }
  if (op == CompareOp::kEq) {
    std::optional<ValueId> code = dict.Find(operand);
    if (!code.has_value()) return false;  // Equality with an absent value.
    out->kind = CompiledColumnFilter::Kind::kCodeEq;
    out->lo = *code;
    return true;
  }
  if (op != CompareOp::kNe && dict.mode() == Dictionary::Mode::kSortedMain) {
    // A sorted dictionary yields no code range for a range/equality
    // predicate only when no code matches. (`<>` never compiles to a range
    // and must fall back to value comparison.)
    return false;
  }
  out->kind = CompiledColumnFilter::Kind::kValue;
  return true;
}

namespace {

/// Applies one filter to the block-local survivor set idx[0..n), using
/// `codes` as scratch. `dense_base` is the row id of the block start when
/// the survivors are still the full contiguous block (enabling bulk code
/// unpacking), or kSparse after earlier stages dropped rows.
constexpr uint32_t kSparse = 0xFFFFFFFFu;

size_t ApplyFilterToBlock(const CompiledColumnFilter& f, uint32_t* idx,
                          size_t n, uint32_t dense_base, ValueId* codes) {
  const Column& column = *f.column;
  switch (f.kind) {
    case CompiledColumnFilter::Kind::kCodeRange: {
      if (dense_base != kSparse) {
        column.UnpackCodes(dense_base, n, codes);
      } else {
        for (size_t i = 0; i < n; ++i) codes[i] = column.code(idx[i]);
      }
      size_t m = 0;
      const ValueId lo = f.lo;
      const ValueId hi = f.hi;
      for (size_t i = 0; i < n; ++i) {
        // Branch-light compaction: the comparison result indexes the write.
        idx[m] = idx[i];
        m += (lo <= codes[i] && codes[i] <= hi) ? 1 : 0;
      }
      return m;
    }
    case CompiledColumnFilter::Kind::kCodeEq: {
      if (dense_base != kSparse) {
        column.UnpackCodes(dense_base, n, codes);
      } else {
        for (size_t i = 0; i < n; ++i) codes[i] = column.code(idx[i]);
      }
      size_t m = 0;
      const ValueId want = f.lo;
      for (size_t i = 0; i < n; ++i) {
        idx[m] = idx[i];
        m += (codes[i] == want) ? 1 : 0;
      }
      return m;
    }
    case CompiledColumnFilter::Kind::kValue: {
      size_t m = 0;
      for (size_t i = 0; i < n; ++i) {
        if (EvalCompare(f.op, column.GetValue(idx[i]), *f.operand)) {
          idx[m++] = idx[i];
        }
      }
      return m;
    }
  }
  return 0;
}

}  // namespace

size_t SelectRowsRange(const Partition& p, const SelectionInput& in,
                       uint32_t begin, uint32_t end,
                       std::vector<uint32_t>* out) {
  if (begin >= end) return 0;
  uint32_t idx[kSelectionBlockRows];
  ValueId codes[kSelectionBlockRows];
  const Tid* create = p.create_tids().data();
  const Tid* invalidate = p.invalidate_tids().data();
  size_t blocks = 0;
  for (uint32_t block = begin; block < end;
       block += kSelectionBlockRows, ++blocks) {
    if (in.context != nullptr && in.context->IsAborted()) break;
    const uint32_t block_end =
        static_cast<uint32_t>(std::min<size_t>(block + kSelectionBlockRows,
                                               end));
    size_t n = block_end - block;
    uint32_t dense_base = block;
    if (in.check_visibility) {
      size_t m = 0;
      for (uint32_t r = block; r < block_end; ++r) {
        idx[m] = r;
        m += in.snapshot->RowVisible(create[r], invalidate[r]) ? 1 : 0;
      }
      if (m != n) dense_base = kSparse;
      n = m;
    } else {
      for (size_t i = 0; i < n; ++i) idx[i] = block + static_cast<uint32_t>(i);
    }
    for (const CompiledColumnFilter& f : in.filters) {
      if (n == 0) break;
      n = ApplyFilterToBlock(f, idx, n, dense_base, codes);
      dense_base = kSparse;  // Survivors may be sparse from here on.
    }
    out->insert(out->end(), idx, idx + n);
  }
  return blocks;
}

size_t SelectRowsGather(const Partition& p, const SelectionInput& in,
                        std::span<const uint32_t> candidates,
                        std::vector<uint32_t>* out) {
  uint32_t idx[kSelectionBlockRows];
  ValueId codes[kSelectionBlockRows];
  const Tid* create = p.create_tids().data();
  const Tid* invalidate = p.invalidate_tids().data();
  size_t blocks = 0;
  for (size_t base = 0; base < candidates.size();
       base += kSelectionBlockRows, ++blocks) {
    if (in.context != nullptr && in.context->IsAborted()) break;
    const size_t block_n =
        std::min(kSelectionBlockRows, candidates.size() - base);
    size_t n = 0;
    if (in.check_visibility) {
      for (size_t i = 0; i < block_n; ++i) {
        uint32_t r = candidates[base + i];
        idx[n] = r;
        n += in.snapshot->RowVisible(create[r], invalidate[r]) ? 1 : 0;
      }
    } else {
      for (size_t i = 0; i < block_n; ++i) idx[n++] = candidates[base + i];
    }
    for (const CompiledColumnFilter& f : in.filters) {
      if (n == 0) break;
      n = ApplyFilterToBlock(f, idx, n, kSparse, codes);
    }
    out->insert(out->end(), idx, idx + n);
  }
  return blocks;
}

CodeHashTable::CodeHashTable(size_t expected_entries) {
  size_t capacity = PowerOfTwoCapacity(expected_entries);
  mask_ = capacity - 1;
  slots_.resize(capacity);
  nodes_.reserve(expected_entries);
}

size_t CodeHashTable::FindSlot(uint64_t key) const {
  size_t slot = MixKey(key) & mask_;
  while (true) {
    const Slot& s = slots_[slot];
    if (s.head == kNil) return kNotFound;
    if (s.key == key) return slot;
    slot = (slot + 1) & mask_;
  }
}

void CodeHashTable::Insert(uint64_t key, uint32_t payload) {
  size_t slot = MixKey(key) & mask_;
  while (true) {
    Slot& s = slots_[slot];
    if (s.head == kNil) {
      // Probing needs at least one empty slot to terminate; duplicates only
      // append nodes, so the guard is on distinct keys, not inserts.
      AGGCACHE_CHECK_LT(used_slots_ + 1, slots_.size())
          << "CodeHashTable over capacity (expected_entries too small)";
      ++used_slots_;
      uint32_t node = static_cast<uint32_t>(nodes_.size());
      nodes_.push_back(Node{payload, kNil});
      s.key = key;
      s.head = node;
      s.tail = node;
      return;
    }
    if (s.key == key) {
      uint32_t node = static_cast<uint32_t>(nodes_.size());
      nodes_.push_back(Node{payload, kNil});
      nodes_[s.tail].next = node;
      s.tail = node;
      return;
    }
    slot = (slot + 1) & mask_;
  }
}

std::optional<PackedKeyLayout> PlanPackedKeyLayout(
    std::span<const int> bits_per_field) {
  PackedKeyLayout layout;
  int shift = 0;
  for (int bits : bits_per_field) {
    AGGCACHE_CHECK(bits >= 1 && bits <= 32) << "field width out of range";
    if (shift + bits > 64) return std::nullopt;
    PackedKeyLayout::Field field;
    field.shift = shift;
    field.bits = bits;
    field.mask = bits == 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
    layout.fields.push_back(field);
    shift += bits;
  }
  layout.total_bits = shift;
  return layout;
}

GroupIndexMap::GroupIndexMap(size_t expected_groups) {
  size_t capacity = PowerOfTwoCapacity(expected_groups);
  mask_ = capacity - 1;
  slots_.resize(capacity);
}

void GroupIndexMap::Grow() {
  std::vector<Slot> old = std::move(slots_);
  size_t capacity = old.size() * 2;
  mask_ = capacity - 1;
  slots_.assign(capacity, Slot{});
  for (const Slot& s : old) {
    if (s.group == kEmpty) continue;
    size_t slot = MixKey(s.key) & mask_;
    while (slots_[slot].group != kEmpty) slot = (slot + 1) & mask_;
    slots_[slot] = s;
  }
}

uint32_t GroupIndexMap::InsertOrGet(uint64_t key) {
  if (num_groups_ * 2 >= slots_.size()) Grow();
  size_t slot = MixKey(key) & mask_;
  while (true) {
    Slot& s = slots_[slot];
    if (s.group == kEmpty) {
      s.key = key;
      s.group = static_cast<uint32_t>(num_groups_++);
      return s.group;
    }
    if (s.key == key) return s.group;
    slot = (slot + 1) & mask_;
  }
}

}  // namespace aggcache
