#include "query/predicate.h"

#include "common/string_util.h"

namespace aggcache {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string FilterPredicate::ToString() const {
  return StrFormat("t%zu.%s %s %s", table_index, column.c_str(),
                   CompareOpToString(op), operand.ToString().c_str());
}

bool EvalCompare(CompareOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs <= rhs;
    case CompareOp::kGt:
      return lhs > rhs;
    case CompareOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

std::optional<std::pair<ValueId, ValueId>> SortedDictionaryCodeRange(
    CompareOp op, const Value& operand, const Dictionary& dict) {
  if (dict.mode() != Dictionary::Mode::kSortedMain || dict.empty() ||
      op == CompareOp::kNe) {
    return std::nullopt;
  }
  const ValueId size = static_cast<ValueId>(dict.size());
  // lower_bound: first code with value >= operand.
  ValueId lower = 0;
  {
    ValueId lo = 0;
    ValueId hi = size;
    while (lo < hi) {
      ValueId mid = lo + (hi - lo) / 2;
      if (dict.value(mid) < operand) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    lower = lo;
  }
  // upper_bound: first code with value > operand.
  ValueId upper = lower;
  while (upper < size && !(operand < dict.value(upper))) ++upper;

  ValueId lo = 0;
  ValueId hi = 0;
  switch (op) {
    case CompareOp::kEq:
      if (lower == upper) return std::nullopt;  // Operand absent.
      lo = lower;
      hi = upper - 1;
      break;
    case CompareOp::kLt:
      if (lower == 0) return std::nullopt;
      lo = 0;
      hi = lower - 1;
      break;
    case CompareOp::kLe:
      if (upper == 0) return std::nullopt;
      lo = 0;
      hi = upper - 1;
      break;
    case CompareOp::kGt:
      if (upper == size) return std::nullopt;
      lo = upper;
      hi = size - 1;
      break;
    case CompareOp::kGe:
      if (lower == size) return std::nullopt;
      lo = lower;
      hi = size - 1;
      break;
    case CompareOp::kNe:
      return std::nullopt;
  }
  return std::make_pair(lo, hi);
}

bool PredicateCanMatch(CompareOp op, const Value& operand,
                       const Dictionary& dict) {
  if (dict.empty()) return false;
  const Value& lo = dict.min_value();
  const Value& hi = dict.max_value();
  switch (op) {
    case CompareOp::kEq:
      return !(operand < lo) && !(hi < operand);
    case CompareOp::kNe:
      // Only a single-valued dictionary equal to the operand excludes all.
      return !(lo == hi && lo == operand);
    case CompareOp::kLt:
      return lo < operand;
    case CompareOp::kLe:
      return lo <= operand;
    case CompareOp::kGt:
      return operand < hi;
    case CompareOp::kGe:
      return operand <= hi;
  }
  return true;
}

}  // namespace aggcache
