#include "query/executor.h"

#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/engine_metrics.h"
#include "obs/trace_recorder.h"

namespace aggcache {

StatusOr<BoundQuery> BoundQuery::Bind(const Database& db,
                                      const AggregateQuery& query) {
  RETURN_IF_ERROR(query.Validate(db));
  BoundQuery bound;
  bound.query = &query;
  for (const TableRef& ref : query.tables) {
    ASSIGN_OR_RETURN(const Table* table, db.GetTable(ref.table_name));
    bound.tables.push_back(table);
  }
  for (const JoinCondition& join : query.joins) {
    // Normalize so the outer table precedes the inner table in query order;
    // the executor joins tables left-deep in that order.
    size_t lt = join.left_table;
    size_t rt = join.right_table;
    ASSIGN_OR_RETURN(size_t lc,
                     bound.tables[lt]->schema().ColumnIndex(join.left_column));
    ASSIGN_OR_RETURN(
        size_t rc, bound.tables[rt]->schema().ColumnIndex(join.right_column));
    BoundJoin bj;
    if (lt < rt) {
      bj = BoundJoin{lt, lc, rt, rc};
    } else {
      bj = BoundJoin{rt, rc, lt, lc};
    }
    bound.joins.push_back(bj);
  }
  for (const FilterPredicate& filter : query.filters) {
    ASSIGN_OR_RETURN(size_t col, bound.tables[filter.table_index]
                                     ->schema()
                                     .ColumnIndex(filter.column));
    bound.filters.push_back(
        BoundFilter{filter.table_index, col, filter.op, filter.operand});
  }
  for (const GroupByRef& g : query.group_by) {
    ASSIGN_OR_RETURN(
        size_t col, bound.tables[g.table_index]->schema().ColumnIndex(g.column));
    bound.group_by.push_back(BoundGroupBy{g.table_index, col});
  }
  for (const AggregateSpec& agg : query.aggregates) {
    if (agg.fn == AggregateFunction::kCountStar) {
      bound.aggregates.push_back(
          BoundAggregate{agg.fn, 0, 0, /*is_count_star=*/true});
      continue;
    }
    ASSIGN_OR_RETURN(size_t col, bound.tables[agg.table_index]
                                     ->schema()
                                     .ColumnIndex(agg.column));
    bound.aggregates.push_back(
        BoundAggregate{agg.fn, agg.table_index, col, false});
  }
  return bound;
}

namespace {

// Selection result for one table of a subjoin.
struct Selection {
  const Partition* partition = nullptr;
  std::vector<uint32_t> rows;
};

}  // namespace

StatusOr<AggregateResult> Executor::ExecuteSubjoin(
    const BoundQuery& bound, const SubjoinCombination& combination,
    Snapshot snapshot, const std::vector<FilterPredicate>& extra_filters,
    const RowRestriction* restriction, ExecutorStats* stats) const {
  const size_t num_tables = bound.tables.size();
  if (combination.size() != num_tables) {
    return Status::InvalidArgument("combination arity mismatch");
  }
  // Counters accumulate locally and flush on every return path: into the
  // caller's per-task block when given (parallel callers must pass one),
  // into the atomic shared stats otherwise, and always into the global
  // metrics registry — relaxed atomics, so the flush is lock-free even
  // from pool workers.
  ExecutorStats counters;
  struct FlushOnExit {
    const Executor* executor;
    ExecutorStats* caller;
    const ExecutorStats* local;
    ~FlushOnExit() {
      const EngineMetrics& metrics = EngineMetrics::Get();
      metrics.exec_subjoins->Increment(local->subjoins_executed);
      metrics.exec_rows_scanned->Increment(local->rows_scanned);
      metrics.exec_rows_selected->Increment(local->rows_selected);
      metrics.exec_tuples_joined->Increment(local->tuples_joined);
      if (caller != nullptr) {
        caller->MergeFrom(*local);
      } else {
        executor->stats_.MergeFrom(*local);
      }
    }
  } flush{this, stats, &counters};
  ++counters.subjoins_executed;
  AggregateResult result(bound.aggregates.size());

  // Resolve extra (pushed-down) filters against schemas.
  std::vector<BoundQuery::BoundFilter> all_filters = bound.filters;
  for (const FilterPredicate& filter : extra_filters) {
    if (filter.table_index >= num_tables) {
      return Status::InvalidArgument("extra filter table index out of range");
    }
    ASSIGN_OR_RETURN(size_t col, bound.tables[filter.table_index]
                                     ->schema()
                                     .ColumnIndex(filter.column));
    all_filters.push_back(BoundQuery::BoundFilter{filter.table_index, col,
                                                  filter.op, filter.operand});
  }

  // Selection (visibility + filters) runs lazily, per table, as the join
  // pipeline reaches it: once an intermediate result is empty, later tables
  // are never scanned. Dictionary range checks skip scanning partitions no
  // filter value can match (static partition pruning).
  std::vector<Selection> selections(num_tables);
  for (size_t t = 0; t < num_tables; ++t) {
    selections[t].partition =
        &ResolvePartition(*bound.tables[t], combination[t]);
  }
  // A filter compiled against one partition's column: integer code
  // comparisons where the dictionary allows it (sorted main -> contiguous
  // code ranges; delta equality -> a single code), value comparison
  // otherwise.
  struct CompiledFilter {
    const Column* column = nullptr;
    enum class Kind : uint8_t { kCodeRange, kCodeEq, kValue } kind =
        Kind::kValue;
    ValueId lo = 0;
    ValueId hi = 0;
    const BoundQuery::BoundFilter* filter = nullptr;

    bool Pass(uint32_t row) const {
      switch (kind) {
        case Kind::kCodeRange: {
          ValueId code = column->code(row);
          return lo <= code && code <= hi;
        }
        case Kind::kCodeEq:
          return column->code(row) == lo;
        case Kind::kValue:
          return EvalCompare(filter->op, column->GetValue(row),
                             filter->operand);
      }
      return false;
    }
  };

  auto select_rows = [&](size_t t) {
    Selection& sel = selections[t];
    const Partition& p = *sel.partition;
    if (p.empty()) return;

    bool can_match = true;
    std::vector<CompiledFilter> table_filters;
    for (const BoundQuery::BoundFilter& f : all_filters) {
      if (f.table != t) continue;
      const Column& column = p.column(f.column);
      if (!PredicateCanMatch(f.op, f.operand, column.dictionary())) {
        can_match = false;
        break;
      }
      CompiledFilter compiled;
      compiled.column = &column;
      compiled.filter = &f;
      if (auto range = SortedDictionaryCodeRange(f.op, f.operand,
                                                 column.dictionary())) {
        compiled.kind = CompiledFilter::Kind::kCodeRange;
        compiled.lo = range->first;
        compiled.hi = range->second;
      } else if (f.op == CompareOp::kEq) {
        std::optional<ValueId> code = column.dictionary().Find(f.operand);
        if (!code.has_value()) {
          can_match = false;  // Equality with an absent value: no rows.
          break;
        }
        compiled.kind = CompiledFilter::Kind::kCodeEq;
        compiled.lo = *code;
      } else if (f.op != CompareOp::kNe &&
                 column.dictionary().mode() ==
                     Dictionary::Mode::kSortedMain) {
        // A sorted dictionary yields no code range for a range/equality
        // predicate only when no code matches. (`<>` never compiles to a
        // range and must fall back to value comparison.)
        can_match = false;
        break;
      }
      table_filters.push_back(compiled);
    }
    if (!can_match) return;

    const std::vector<uint32_t>* candidates = nullptr;
    if (restriction != nullptr && t < restriction->rows.size() &&
        restriction->rows[t].has_value()) {
      candidates = &*restriction->rows[t];
    }
    bool check_visibility =
        candidates == nullptr ||
        !restriction->bypass_visibility_for_restricted;
    size_t num_candidates = candidates ? candidates->size() : p.num_rows();
    counters.rows_scanned += num_candidates;
    for (size_t i = 0; i < num_candidates; ++i) {
      uint32_t r = candidates ? (*candidates)[i] : static_cast<uint32_t>(i);
      if (check_visibility &&
          !snapshot.RowVisible(p.create_tid(r), p.invalidate_tid(r))) {
        continue;
      }
      bool pass = true;
      for (const CompiledFilter& f : table_filters) {
        if (!f.Pass(r)) {
          pass = false;
          break;
        }
      }
      if (pass) sel.rows.push_back(r);
    }
    counters.rows_selected += sel.rows.size();
  };

  // Left-deep hash joins in query-table order. `tuples` holds row ids
  // flattened with stride = number of joined tables so far.
  select_rows(0);
  std::vector<uint32_t> tuples;
  tuples.reserve(selections[0].rows.size());
  for (uint32_t r : selections[0].rows) tuples.push_back(r);
  size_t stride = 1;

  for (size_t t = 1; t < num_tables; ++t) {
    if (tuples.empty()) break;
    select_rows(t);
    // Join conditions attaching table t to earlier tables: the first drives
    // the hash join, the rest are evaluated as post-join filters.
    std::vector<const BoundQuery::BoundJoin*> conds;
    for (const BoundQuery::BoundJoin& j : bound.joins) {
      if (j.inner_table == t) conds.push_back(&j);
    }
    AGGCACHE_CHECK(!conds.empty()) << "table not connected (validated)";
    const BoundQuery::BoundJoin& drive = *conds[0];

    const Partition& inner = *selections[t].partition;
    const Column& inner_key = inner.column(drive.inner_column);
    const Partition& outer_part = *selections[drive.outer_table].partition;
    const Column& outer_key = outer_part.column(drive.outer_column);

    // Residual join conditions between table t and other earlier tables,
    // evaluated on each candidate (tuple, inner row) pair.
    auto residuals_pass = [&](size_t base, uint32_t inner_row) {
      for (size_t c = 1; c < conds.size(); ++c) {
        const BoundQuery::BoundJoin& extra = *conds[c];
        uint32_t other_row = tuples[base + extra.outer_table];
        const Value& lhs = selections[extra.outer_table]
                               .partition->column(extra.outer_column)
                               .GetValue(other_row);
        const Value& rhs =
            inner.column(extra.inner_column).GetValue(inner_row);
        if (!(lhs == rhs)) return false;
      }
      return true;
    };

    // Build the hash table on the smaller input — the optimization that
    // makes subjoins with a tiny delta on one side cheap even when the
    // other side is a large main partition.
    size_t num_tuples = stride == 0 ? 0 : tuples.size() / stride;
    std::vector<uint32_t> next;
    if (selections[t].rows.size() <= num_tuples) {
      // Build on the inner (new) table, probe with the joined tuples.
      std::unordered_map<Value, std::vector<uint32_t>, ValueHash> hash_table;
      hash_table.reserve(selections[t].rows.size());
      for (uint32_t r : selections[t].rows) {
        hash_table[inner_key.GetValue(r)].push_back(r);
      }
      for (size_t base = 0; base + stride <= tuples.size(); base += stride) {
        uint32_t outer_row = tuples[base + drive.outer_table];
        auto it = hash_table.find(outer_key.GetValue(outer_row));
        if (it == hash_table.end()) continue;
        for (uint32_t inner_row : it->second) {
          if (!residuals_pass(base, inner_row)) continue;
          for (size_t k = 0; k < stride; ++k) {
            next.push_back(tuples[base + k]);
          }
          next.push_back(inner_row);
        }
      }
    } else {
      // Build on the joined tuples, probe with the inner table's rows.
      std::unordered_map<Value, std::vector<uint32_t>, ValueHash> hash_table;
      hash_table.reserve(num_tuples);
      for (size_t base = 0; base + stride <= tuples.size(); base += stride) {
        uint32_t outer_row = tuples[base + drive.outer_table];
        hash_table[outer_key.GetValue(outer_row)].push_back(
            static_cast<uint32_t>(base));
      }
      for (uint32_t inner_row : selections[t].rows) {
        auto it = hash_table.find(inner_key.GetValue(inner_row));
        if (it == hash_table.end()) continue;
        for (uint32_t base : it->second) {
          if (!residuals_pass(base, inner_row)) continue;
          for (size_t k = 0; k < stride; ++k) {
            next.push_back(tuples[base + k]);
          }
          next.push_back(inner_row);
        }
      }
    }
    tuples = std::move(next);
    stride += 1;
    if (tuples.empty()) break;
  }

  if (stride != num_tables && num_tables > 1) {
    // Join pipeline ended early on an empty intermediate result.
    return result;
  }
  counters.tuples_joined += tuples.size() / stride;

  // Phase 3: hash aggregation over the joined tuples.
  GroupKey key;
  key.values.resize(bound.group_by.size());
  std::vector<Value> inputs(bound.aggregates.size());
  for (size_t base = 0; base + stride <= tuples.size(); base += stride) {
    for (size_t g = 0; g < bound.group_by.size(); ++g) {
      const BoundQuery::BoundGroupBy& gb = bound.group_by[g];
      key.values[g] = selections[gb.table]
                          .partition->column(gb.column)
                          .GetValue(tuples[base + gb.table]);
    }
    for (size_t a = 0; a < bound.aggregates.size(); ++a) {
      const BoundQuery::BoundAggregate& agg = bound.aggregates[a];
      if (agg.is_count_star) {
        inputs[a] = Value();
      } else {
        inputs[a] = selections[agg.table]
                        .partition->column(agg.column)
                        .GetValue(tuples[base + agg.table]);
      }
    }
    result.Accumulate(key, inputs);
  }
  return result;
}

StatusOr<AggregateResult> Executor::ExecuteUncached(
    const AggregateQuery& query, Snapshot snapshot) const {
  ASSIGN_OR_RETURN(BoundQuery bound, BoundQuery::Bind(*db_, query));
  return ExecuteUncachedBound(bound, snapshot);
}

StatusOr<AggregateResult> Executor::ExecuteUncachedBound(
    const BoundQuery& bound, Snapshot snapshot) const {
  std::vector<SubjoinCombination> combos =
      EnumerateAllCombinations(bound.tables);
  // Uncached unions execute every combination; the trace events (with tid
  // ranges) are recorded here on the calling thread, before the fan-out.
  RecordUncachedSubjoins(bound, combos);
  std::vector<AggregateResult> partials(combos.size());
  std::vector<ExecutorStats> task_stats(combos.size());
  std::vector<Status> task_status(combos.size());
  ParallelFor(combos.size(), [&](size_t i) {
    auto partial =
        ExecuteSubjoin(bound, combos[i], snapshot, /*extra_filters=*/{},
                       /*restriction=*/nullptr, &task_stats[i]);
    if (partial.ok()) {
      partials[i] = std::move(partial).value();
    } else {
      task_status[i] = partial.status();
    }
  });
  AggregateResult result(bound.aggregates.size());
  for (size_t i = 0; i < combos.size(); ++i) {
    RETURN_IF_ERROR(task_status[i]);
    stats_.MergeFrom(task_stats[i]);
    result.MergeFrom(partials[i]);
  }
  // HAVING applies to whole groups, so only after every subjoin is merged.
  return bound.query->ApplyHaving(std::move(result));
}

}  // namespace aggcache
