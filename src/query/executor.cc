#include "query/executor.h"

#include <algorithm>
#include <unordered_map>

#include "common/bit_packed_vector.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/engine_metrics.h"
#include "obs/span.h"
#include "obs/trace_recorder.h"
#include "query/shared_scan.h"
#include "query/vector_kernels.h"
#include "runtime/query_context.h"

namespace aggcache {

StatusOr<BoundQuery> BoundQuery::Bind(const Database& db,
                                      const AggregateQuery& query) {
  RETURN_IF_ERROR(query.Validate(db));
  BoundQuery bound;
  bound.query = &query;
  for (const TableRef& ref : query.tables) {
    ASSIGN_OR_RETURN(const Table* table, db.GetTable(ref.table_name));
    bound.tables.push_back(table);
  }
  for (const JoinCondition& join : query.joins) {
    // Normalize so the outer table precedes the inner table in query order;
    // the executor joins tables left-deep in that order.
    size_t lt = join.left_table;
    size_t rt = join.right_table;
    ASSIGN_OR_RETURN(size_t lc,
                     bound.tables[lt]->schema().ColumnIndex(join.left_column));
    ASSIGN_OR_RETURN(
        size_t rc, bound.tables[rt]->schema().ColumnIndex(join.right_column));
    BoundJoin bj;
    if (lt < rt) {
      bj = BoundJoin{lt, lc, rt, rc};
    } else {
      bj = BoundJoin{rt, rc, lt, lc};
    }
    bound.joins.push_back(bj);
  }
  for (const FilterPredicate& filter : query.filters) {
    ASSIGN_OR_RETURN(size_t col, bound.tables[filter.table_index]
                                     ->schema()
                                     .ColumnIndex(filter.column));
    bound.filters.push_back(
        BoundFilter{filter.table_index, col, filter.op, filter.operand});
  }
  for (const GroupByRef& g : query.group_by) {
    ASSIGN_OR_RETURN(
        size_t col, bound.tables[g.table_index]->schema().ColumnIndex(g.column));
    bound.group_by.push_back(BoundGroupBy{g.table_index, col});
  }
  for (const AggregateSpec& agg : query.aggregates) {
    if (agg.fn == AggregateFunction::kCountStar) {
      bound.aggregates.push_back(
          BoundAggregate{agg.fn, 0, 0, /*is_count_star=*/true});
      continue;
    }
    ASSIGN_OR_RETURN(size_t col, bound.tables[agg.table_index]
                                     ->schema()
                                     .ColumnIndex(agg.column));
    bound.aggregates.push_back(
        BoundAggregate{agg.fn, agg.table_index, col, false});
  }
  return bound;
}

namespace {

// Selection result for one table of a subjoin.
struct Selection {
  const Partition* partition = nullptr;
  std::vector<uint32_t> rows;
};

}  // namespace

StatusOr<AggregateResult> Executor::ExecuteSubjoin(
    const BoundQuery& bound, const SubjoinCombination& combination,
    Snapshot snapshot, const std::vector<FilterPredicate>& extra_filters,
    const RowRestriction* restriction, ExecutorStats* stats) const {
  const size_t num_tables = bound.tables.size();
  if (combination.size() != num_tables) {
    return Status::InvalidArgument("combination arity mismatch");
  }
  // Counters accumulate locally and flush on every return path: into the
  // caller's per-task block when given (parallel callers must pass one),
  // into the atomic shared stats otherwise, and always into the global
  // metrics registry — relaxed atomics, so the flush is lock-free even
  // from pool workers.
  ExecutorStats counters;
  // Governance: the installed QueryContext (if any) is polled per kernel
  // block inside the selection loops, per kSelectionBlockRows iterations in
  // the join build/probe and group-by loops, and converted into a typed
  // error at each phase boundary by Check(). Memory charged for selection
  // vectors, join tuples, hash tables and group maps is released
  // all-or-none on every return path, error or not.
  QueryContext* ctx = QueryContext::Current();
  size_t charged_bytes = 0;
  struct FlushOnExit {
    const Executor* executor;
    ExecutorStats* caller;
    const ExecutorStats* local;
    QueryContext* ctx;
    const size_t* charged_bytes;
    ~FlushOnExit() {
      if (ctx != nullptr && *charged_bytes != 0) {
        ctx->ReleaseMemory(*charged_bytes);
      }
      const EngineMetrics& metrics = EngineMetrics::Get();
      metrics.exec_subjoins->Increment(local->subjoins_executed);
      metrics.exec_rows_scanned->Increment(local->rows_scanned);
      metrics.exec_rows_selected->Increment(local->rows_selected);
      metrics.exec_tuples_joined->Increment(local->tuples_joined);
      metrics.exec_selection_batches->Increment(local->selection_batches);
      metrics.exec_code_joins->Increment(local->code_joins);
      metrics.exec_packed_groupings->Increment(local->packed_groupings);
      metrics.exec_fallback_groupings->Increment(local->fallback_groupings);
      metrics.sharedscan_leads->Increment(local->shared_scan_leads);
      metrics.sharedscan_attaches->Increment(local->shared_scan_attaches);
      if (caller != nullptr) {
        caller->MergeFrom(*local);
      } else {
        executor->stats_.MergeFrom(*local);
      }
    }
  } flush{this, stats, &counters, ctx, &charged_bytes};
  ++counters.subjoins_executed;
  if (ctx != nullptr) RETURN_IF_ERROR(ctx->Check());
  // Charges `bytes` against the query; refusals abort the query with a
  // typed error and charge nothing.
  auto charge = [&](size_t bytes) -> Status {
    if (ctx == nullptr || bytes == 0) return Status::Ok();
    Status charge_status = ctx->ChargeMemory(bytes);
    if (charge_status.ok()) charged_bytes += bytes;
    return charge_status;
  };
  // Phase-boundary check point: typed abort conversion plus a charge for
  // the phase's freshly materialized bytes.
  auto checkpoint = [&](size_t new_bytes) -> Status {
    if (ctx == nullptr) return Status::Ok();
    RETURN_IF_ERROR(ctx->Check());
    return charge(new_bytes);
  };
  // Block-granularity poll for the tight loops: one relaxed load every
  // kSelectionBlockRows iterations.
  auto poll_aborted = [&](size_t* since) {
    if (ctx == nullptr || ++*since < kSelectionBlockRows) return false;
    *since = 0;
    return ctx->IsAborted();
  };
  AggregateResult result(bound.aggregates.size());

  // Resolve extra (pushed-down) filters against schemas.
  std::vector<BoundQuery::BoundFilter> all_filters = bound.filters;
  for (const FilterPredicate& filter : extra_filters) {
    if (filter.table_index >= num_tables) {
      return Status::InvalidArgument("extra filter table index out of range");
    }
    ASSIGN_OR_RETURN(size_t col, bound.tables[filter.table_index]
                                     ->schema()
                                     .ColumnIndex(filter.column));
    all_filters.push_back(BoundQuery::BoundFilter{filter.table_index, col,
                                                  filter.op, filter.operand});
  }

  // Selection (visibility + filters) runs lazily, per table, as the join
  // pipeline reaches it: once an intermediate result is empty, later tables
  // are never scanned. Dictionary range checks skip scanning partitions no
  // filter value can match (static partition pruning).
  std::vector<Selection> selections(num_tables);
  for (size_t t = 0; t < num_tables; ++t) {
    selections[t].partition =
        &ResolvePartition(*bound.tables[t], combination[t]);
  }
  // Selection runs through the batched code-space kernels: filters compile
  // once per table (sorted main -> contiguous code ranges; delta equality
  // -> a single code; value comparison otherwise), then 1024-row blocks
  // stream through tight loops over dictionary codes. Unrestricted scans of
  // sizable delta partitions coalesce into cooperative shared scans when
  // other queries are walking the same partition concurrently.
  auto select_rows = [&](size_t t) {
    Selection& sel = selections[t];
    const Partition& p = *sel.partition;
    if (p.empty()) return;

    std::vector<CompiledColumnFilter> table_filters;
    for (const BoundQuery::BoundFilter& f : all_filters) {
      if (f.table != t) continue;
      CompiledColumnFilter compiled;
      if (!CompileColumnFilter(p.column(f.column), f.op, f.operand,
                               &compiled)) {
        return;  // The predicate provably matches no row of this partition.
      }
      table_filters.push_back(compiled);
    }

    const std::vector<uint32_t>* candidates = nullptr;
    if (restriction != nullptr && t < restriction->rows.size() &&
        restriction->rows[t].has_value()) {
      candidates = &*restriction->rows[t];
    }
    SelectionInput input;
    input.snapshot = &snapshot;
    input.context = ctx;
    input.check_visibility =
        candidates == nullptr ||
        !restriction->bypass_visibility_for_restricted;
    input.filters = table_filters;

    if (candidates != nullptr) {
      counters.rows_scanned += candidates->size();
      counters.selection_batches +=
          SelectRowsGather(p, input, *candidates, &sel.rows);
    } else {
      counters.rows_scanned += p.num_rows();
      if (p.kind() == PartitionKind::kDelta &&
          p.num_rows() >= SharedScanManager::kMinRows &&
          SharedScanManager::Enabled()) {
        SharedScanManager::Result shared =
            SharedScanManager::Instance().Scan(p, input, &sel.rows);
        counters.selection_batches += shared.batches;
        counters.shared_scan_leads += shared.led ? 1 : 0;
        counters.shared_scan_attaches += shared.attached ? 1 : 0;
      } else {
        counters.selection_batches += SelectRowsRange(
            p, input, 0, static_cast<uint32_t>(p.num_rows()), &sel.rows);
      }
    }
    counters.rows_selected += sel.rows.size();
  };

  // Left-deep hash joins in query-table order. `tuples` holds row ids
  // flattened with stride = number of joined tables so far. Joins run in
  // code space: the hash table is keyed on the build side's dictionary
  // codes, and the probe side translates its codes into the build side's
  // code space once per distinct value (Dictionary::Find has the same
  // Value-equality semantics the old Value-keyed table used, so results
  // are identical — including int64(5) != double(5.0)).
  select_rows(0);
  RETURN_IF_ERROR(checkpoint(selections[0].rows.size() * sizeof(uint32_t)));
  std::vector<uint32_t> tuples = std::move(selections[0].rows);
  size_t stride = 1;

  for (size_t t = 1; t < num_tables; ++t) {
    if (tuples.empty()) break;
    select_rows(t);
    RETURN_IF_ERROR(
        checkpoint(selections[t].rows.size() * sizeof(uint32_t)));
    // Join conditions attaching table t to earlier tables: the first drives
    // the hash join, the rest are evaluated as post-join filters.
    std::vector<const BoundQuery::BoundJoin*> conds;
    for (const BoundQuery::BoundJoin& j : bound.joins) {
      if (j.inner_table == t) conds.push_back(&j);
    }
    AGGCACHE_CHECK(!conds.empty()) << "table not connected (validated)";
    const BoundQuery::BoundJoin& drive = *conds[0];

    const Partition& inner = *selections[t].partition;
    const Column& inner_key = inner.column(drive.inner_column);
    const Partition& outer_part = *selections[drive.outer_table].partition;
    const Column& outer_key = outer_part.column(drive.outer_column);
    ++counters.code_joins;

    // Residual join conditions between table t and other earlier tables:
    // the inner row's code translates into the outer column's code space
    // and the comparison is a single integer equality per pair.
    struct Residual {
      const BoundQuery::BoundJoin* join;
      const Column* outer_column;
      const Column* inner_column;
      CodeTranslator translator;
    };
    std::vector<Residual> residual_conds;
    for (size_t c = 1; c < conds.size(); ++c) {
      const BoundQuery::BoundJoin& extra = *conds[c];
      const Column& outer_col = selections[extra.outer_table]
                                    .partition->column(extra.outer_column);
      const Column& inner_col = inner.column(extra.inner_column);
      residual_conds.push_back(
          Residual{&extra, &outer_col, &inner_col,
                   CodeTranslator(&inner_col.dictionary(),
                                  &outer_col.dictionary(),
                                  selections[t].rows.size())});
    }
    auto residuals_pass = [&](size_t base, uint32_t inner_row) {
      for (Residual& res : residual_conds) {
        uint32_t other_row = tuples[base + res.join->outer_table];
        ValueId translated =
            res.translator.Translate(res.inner_column->code(inner_row));
        if (translated == CodeTranslator::kNoMatch ||
            translated != res.outer_column->code(other_row)) {
          return false;
        }
      }
      return true;
    };

    // Build the hash table on the smaller input — the optimization that
    // makes subjoins with a tiny delta on one side cheap even when the
    // other side is a large main partition.
    size_t num_tuples = stride == 0 ? 0 : tuples.size() / stride;
    std::vector<uint32_t> next;
    // Open-addressing slots at load factor <= 0.5 plus one chain node per
    // entry — the tracker charge for one hash-join build entry.
    constexpr size_t kHashEntryBytes = 40;
    size_t since_poll = 0;
    if (selections[t].rows.size() <= num_tuples) {
      // Build on the inner (new) table, probe with the joined tuples.
      RETURN_IF_ERROR(charge(selections[t].rows.size() * kHashEntryBytes));
      CodeHashTable hash_table(selections[t].rows.size());
      for (uint32_t r : selections[t].rows) {
        if (poll_aborted(&since_poll)) break;
        hash_table.Insert(inner_key.code(r), r);
      }
      if (ctx != nullptr && ctx->IsAborted()) return ctx->status();
      CodeTranslator probe(&outer_key.dictionary(), &inner_key.dictionary(),
                           num_tuples);
      for (size_t base = 0; base + stride <= tuples.size(); base += stride) {
        if (poll_aborted(&since_poll)) break;
        uint32_t outer_row = tuples[base + drive.outer_table];
        ValueId key = probe.Translate(outer_key.code(outer_row));
        if (key == CodeTranslator::kNoMatch) continue;
        hash_table.ForEach(key, [&](uint32_t inner_row) {
          if (!residuals_pass(base, inner_row)) return;
          for (size_t k = 0; k < stride; ++k) {
            next.push_back(tuples[base + k]);
          }
          next.push_back(inner_row);
        });
      }
    } else {
      // Build on the joined tuples, probe with the inner table's rows.
      RETURN_IF_ERROR(charge(num_tuples * kHashEntryBytes));
      CodeHashTable hash_table(num_tuples);
      for (size_t base = 0; base + stride <= tuples.size(); base += stride) {
        if (poll_aborted(&since_poll)) break;
        uint32_t outer_row = tuples[base + drive.outer_table];
        hash_table.Insert(outer_key.code(outer_row),
                          static_cast<uint32_t>(base));
      }
      if (ctx != nullptr && ctx->IsAborted()) return ctx->status();
      CodeTranslator probe(&inner_key.dictionary(), &outer_key.dictionary(),
                           selections[t].rows.size());
      for (uint32_t inner_row : selections[t].rows) {
        if (poll_aborted(&since_poll)) break;
        ValueId key = probe.Translate(inner_key.code(inner_row));
        if (key == CodeTranslator::kNoMatch) continue;
        hash_table.ForEach(key, [&](uint32_t base32) {
          size_t base = base32;
          if (!residuals_pass(base, inner_row)) return;
          for (size_t k = 0; k < stride; ++k) {
            next.push_back(tuples[base + k]);
          }
          next.push_back(inner_row);
        });
      }
    }
    tuples = std::move(next);
    stride += 1;
    RETURN_IF_ERROR(checkpoint(tuples.size() * sizeof(uint32_t)));
    if (tuples.empty()) break;
  }

  if (stride != num_tables && num_tables > 1) {
    // Join pipeline ended early on an empty intermediate result.
    return result;
  }
  counters.tuples_joined += tuples.size() / stride;
  if (tuples.empty()) return result;

  // Phase 3: hash aggregation over the joined tuples. Whenever the group-by
  // columns' code widths fit, all group codes pack into one 64-bit key
  // (BitsForCardinality per dictionary), so the per-tuple cost is integer
  // packing plus one flat-map probe; group Values materialize only once per
  // distinct group at emission. Wider layouts fall back to materialized
  // GroupKeys.
  const size_t num_group_cols = bound.group_by.size();
  const size_t num_aggs = bound.aggregates.size();
  std::vector<const Column*> group_cols(num_group_cols);
  std::vector<int> group_bits(num_group_cols);
  for (size_t g = 0; g < num_group_cols; ++g) {
    const BoundQuery::BoundGroupBy& gb = bound.group_by[g];
    group_cols[g] = &selections[gb.table].partition->column(gb.column);
    group_bits[g] = BitPackedVector::BitsForCardinality(
        group_cols[g]->dictionary().size());
  }
  std::vector<const Column*> agg_cols(num_aggs, nullptr);
  for (size_t a = 0; a < num_aggs; ++a) {
    const BoundQuery::BoundAggregate& agg = bound.aggregates[a];
    if (!agg.is_count_star) {
      agg_cols[a] = &selections[agg.table].partition->column(agg.column);
    }
  }

  std::optional<PackedKeyLayout> layout = PlanPackedKeyLayout(group_bits);
  if (layout.has_value()) {
    ++counters.packed_groupings;
    GroupIndexMap group_map;
    std::vector<uint64_t> group_keys;
    std::vector<AggregateResult::GroupEntry> entries;
    std::vector<ValueId> group_codes(num_group_cols);
    size_t group_poll = 0;
    for (size_t base = 0; base + stride <= tuples.size(); base += stride) {
      if (poll_aborted(&group_poll)) break;
      for (size_t g = 0; g < num_group_cols; ++g) {
        group_codes[g] =
            group_cols[g]->code(tuples[base + bound.group_by[g].table]);
      }
      uint32_t idx = group_map.InsertOrGet(layout->Pack(group_codes));
      if (idx == entries.size()) {
        group_keys.push_back(layout->Pack(group_codes));
        entries.emplace_back();
        entries.back().states.resize(num_aggs);
      }
      AggregateResult::GroupEntry& entry = entries[idx];
      for (size_t a = 0; a < num_aggs; ++a) {
        if (agg_cols[a] == nullptr) {
          // COUNT(*): AggregateState::Add(NULL) only bumps the count.
          ++entry.states[a].count;
        } else {
          entry.states[a].Add(
              agg_cols[a]->GetValue(tuples[base + bound.aggregates[a].table]));
        }
      }
      ++entry.count_star;
    }
    // Group map slot + packed key + entry with its per-aggregate states.
    RETURN_IF_ERROR(checkpoint(
        entries.size() * (sizeof(AggregateResult::GroupEntry) +
                          num_aggs * sizeof(AggregateState) + 24)));
    // Materialize group Values, once per distinct group. Packed keys map
    // bijectively to group value tuples (codes are dense per dictionary),
    // so SetGroup never overwrites.
    GroupKey key;
    key.values.resize(num_group_cols);
    for (size_t idx = 0; idx < entries.size(); ++idx) {
      for (size_t g = 0; g < num_group_cols; ++g) {
        key.values[g] = group_cols[g]->dictionary().value(
            layout->Unpack(group_keys[idx], g));
      }
      result.SetGroup(key, std::move(entries[idx]));
    }
    return result;
  }

  ++counters.fallback_groupings;
  GroupKey key;
  key.values.resize(num_group_cols);
  std::vector<Value> inputs(num_aggs);
  size_t group_poll = 0;
  for (size_t base = 0; base + stride <= tuples.size(); base += stride) {
    if (poll_aborted(&group_poll)) break;
    for (size_t g = 0; g < num_group_cols; ++g) {
      key.values[g] = group_cols[g]->GetValue(tuples[base + bound.group_by[g].table]);
    }
    for (size_t a = 0; a < num_aggs; ++a) {
      if (agg_cols[a] == nullptr) {
        inputs[a] = Value();
      } else {
        inputs[a] =
            agg_cols[a]->GetValue(tuples[base + bound.aggregates[a].table]);
      }
    }
    result.Accumulate(key, inputs);
  }
  RETURN_IF_ERROR(checkpoint(0));
  return result;
}

StatusOr<AggregateResult> Executor::ExecuteUncached(
    const AggregateQuery& query, Snapshot snapshot) const {
  ASSIGN_OR_RETURN(BoundQuery bound, BoundQuery::Bind(*db_, query));
  return ExecuteUncachedBound(bound, snapshot);
}

StatusOr<AggregateResult> Executor::ExecuteUncachedBound(
    const BoundQuery& bound, Snapshot snapshot) const {
  std::vector<SubjoinCombination> combos =
      EnumerateAllCombinations(bound.tables);
  // Uncached unions execute every combination; the trace events (with tid
  // ranges) are recorded here on the calling thread, before the fan-out.
  RecordUncachedSubjoins(bound, combos);
  std::vector<AggregateResult> partials(combos.size());
  std::vector<ExecutorStats> task_stats(combos.size());
  std::vector<Status> task_status(combos.size());
  // Pool workers have no thread-local context of their own; re-install the
  // caller's so budget charges and abort polls govern the whole fan-out,
  // and the caller's span so tasks land under its trace tree.
  QueryContext* ctx = QueryContext::Current();
  SpanLink span_parent = CurrentSpanLink();
  ParallelFor(combos.size(), [&](size_t i) {
    ScopedQueryContext scope(ctx);
    ScopedSpan task_span(SpanKind::kSubjoinTask, span_parent, "uncached");
    auto partial =
        ExecuteSubjoin(bound, combos[i], snapshot, /*extra_filters=*/{},
                       /*restriction=*/nullptr, &task_stats[i]);
    if (partial.ok()) {
      partials[i] = std::move(partial).value();
    } else {
      task_status[i] = partial.status();
    }
  });
  // Merge the per-task counters all-or-none before inspecting task status:
  // every task already flushed into the global metrics registry from its
  // worker, so skipping later tasks on a mid-fanout failure would leave the
  // shared stats short of the registry and break reconciliation under fault
  // injection.
  Status first_error;
  for (size_t i = 0; i < combos.size(); ++i) {
    stats_.MergeFrom(task_stats[i]);
    if (first_error.ok() && !task_status[i].ok()) first_error = task_status[i];
  }
  RETURN_IF_ERROR(first_error);
  AggregateResult result(bound.aggregates.size());
  for (size_t i = 0; i < combos.size(); ++i) {
    result.MergeFrom(partials[i]);
  }
  // HAVING applies to whole groups, so only after every subjoin is merged.
  return bound.query->ApplyHaving(std::move(result));
}

}  // namespace aggcache
