#include "query/subjoin.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace aggcache {
namespace {

// Per-table list of partition refs, then cross product.
std::vector<PartitionRef> PartitionRefsFor(const Table& table,
                                           bool mains_only) {
  std::vector<PartitionRef> refs;
  for (uint32_t g = 0; g < table.num_groups(); ++g) {
    refs.push_back(PartitionRef{g, PartitionKind::kMain});
    if (!mains_only) refs.push_back(PartitionRef{g, PartitionKind::kDelta});
  }
  return refs;
}

std::vector<SubjoinCombination> CrossProduct(
    std::span<const Table* const> tables, bool mains_only) {
  std::vector<SubjoinCombination> result;
  if (tables.empty()) return result;
  result.push_back({});
  for (const Table* table : tables) {
    std::vector<PartitionRef> refs = PartitionRefsFor(*table, mains_only);
    std::vector<SubjoinCombination> extended;
    extended.reserve(result.size() * refs.size());
    for (const SubjoinCombination& combo : result) {
      for (const PartitionRef& ref : refs) {
        SubjoinCombination next = combo;
        next.push_back(ref);
        extended.push_back(std::move(next));
      }
    }
    result = std::move(extended);
  }
  return result;
}

}  // namespace

const Partition& ResolvePartition(const Table& table,
                                  const PartitionRef& ref) {
  AGGCACHE_CHECK_LT(ref.group, table.num_groups());
  const PartitionGroup& group = table.group(ref.group);
  return ref.kind == PartitionKind::kMain ? group.main : group.delta;
}

std::vector<SubjoinCombination> EnumerateAllCombinations(
    std::span<const Table* const> tables) {
  return CrossProduct(tables, /*mains_only=*/false);
}

bool IsAllMain(const SubjoinCombination& combination) {
  for (const PartitionRef& ref : combination) {
    if (ref.kind != PartitionKind::kMain) return false;
  }
  return true;
}

std::vector<SubjoinCombination> EnumerateCompensationCombinations(
    std::span<const Table* const> tables) {
  std::vector<SubjoinCombination> all = EnumerateAllCombinations(tables);
  std::vector<SubjoinCombination> result;
  result.reserve(all.size());
  for (SubjoinCombination& combo : all) {
    if (!IsAllMain(combo)) result.push_back(std::move(combo));
  }
  return result;
}

std::vector<SubjoinCombination> EnumerateAllMainCombinations(
    std::span<const Table* const> tables) {
  return CrossProduct(tables, /*mains_only=*/true);
}

std::string CombinationToString(const SubjoinCombination& combination) {
  std::vector<std::string> parts;
  parts.reserve(combination.size());
  for (const PartitionRef& ref : combination) {
    parts.push_back(StrFormat("g%u/%s", ref.group,
                              PartitionKindToString(ref.kind)));
  }
  return "[" + StrJoin(parts, ", ") + "]";
}

}  // namespace aggcache
