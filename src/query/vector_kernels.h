#ifndef AGGCACHE_QUERY_VECTOR_KERNELS_H_
#define AGGCACHE_QUERY_VECTOR_KERNELS_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "query/predicate.h"
#include "storage/partition.h"
#include "txn/types.h"

namespace aggcache {

class QueryContext;

/// Batched ("code-space") execution kernels for the subjoin executor.
///
/// Every kernel works directly on dictionary codes in tight loops over
/// fixed-size blocks instead of decoding per-row `Value` objects: selection
/// compares integer codes against precompiled ranges, joins hash 32-bit
/// codes through a flat open-addressing table (with a main<->delta
/// code-translation memo where the two sides use different dictionaries),
/// and group-by packs the group columns' codes into one 64-bit key.
/// Values materialize only at result emission. See DESIGN.md "Batched
/// execution core".

/// Rows per selection block. Block-local scratch (row indexes + codes)
/// lives on the stack, so the working set of a scan stays in L1.
inline constexpr size_t kSelectionBlockRows = 1024;

/// A filter compiled against one partition's column: integer code
/// comparisons where the dictionary allows it (sorted main -> contiguous
/// code ranges; delta equality -> a single code), value comparison
/// otherwise.
struct CompiledColumnFilter {
  const Column* column = nullptr;
  enum class Kind : uint8_t { kCodeRange, kCodeEq, kValue } kind = Kind::kValue;
  ValueId lo = 0;
  ValueId hi = 0;
  CompareOp op = CompareOp::kEq;
  const Value* operand = nullptr;  ///< Borrowed; must outlive the filter.
};

/// Compiles `op operand` against `column`. Returns false when the predicate
/// provably matches no row of the partition (static pruning): the caller
/// must then skip the scan entirely. On success `*out` holds the compiled
/// filter; `operand` is borrowed and must stay alive while the filter is
/// used.
bool CompileColumnFilter(const Column& column, CompareOp op,
                         const Value& operand, CompiledColumnFilter* out);

/// Everything a selection kernel needs besides the row range: the MVCC
/// visibility snapshot and the compiled conjunctive filters.
struct SelectionInput {
  const Snapshot* snapshot = nullptr;
  bool check_visibility = true;
  std::span<const CompiledColumnFilter> filters;
  /// Optional governance token: the selection kernels poll it once per
  /// block and stop early when the owning query aborted (the caller's
  /// QueryContext::Check() then surfaces the typed error). nullptr = no
  /// governance.
  const QueryContext* context = nullptr;
};

/// Appends the row ids in [begin, end) of `p` that pass visibility and all
/// filters to `out`, in ascending order. Returns the number of blocks
/// processed (for the executor's batch counters).
size_t SelectRowsRange(const Partition& p, const SelectionInput& in,
                       uint32_t begin, uint32_t end,
                       std::vector<uint32_t>* out);

/// Same, over an explicit candidate row list (the executor's
/// RowRestriction path). Candidates are processed in the given order.
size_t SelectRowsGather(const Partition& p, const SelectionInput& in,
                        std::span<const uint32_t> candidates,
                        std::vector<uint32_t>* out);

/// Flat open-addressing hash multimap from 64-bit keys to 32-bit payloads,
/// sized once for a known build-side cardinality (no rehash). Payload
/// chains preserve insertion order, so probe output order matches the
/// build order — results stay deterministic at any thread count.
class CodeHashTable {
 public:
  /// `expected_entries` is an upper bound on Insert calls.
  explicit CodeHashTable(size_t expected_entries);

  void Insert(uint64_t key, uint32_t payload);

  /// Invokes `fn(payload)` for every payload inserted under `key`, in
  /// insertion order.
  template <typename Fn>
  void ForEach(uint64_t key, Fn&& fn) const {
    size_t slot = FindSlot(key);
    if (slot == kNotFound) return;
    for (uint32_t n = slots_[slot].head; n != kNil; n = nodes_[n].next) {
      fn(nodes_[n].payload);
    }
  }

  size_t size() const { return nodes_.size(); }

 private:
  static constexpr uint32_t kNil = 0xFFFFFFFFu;
  static constexpr size_t kNotFound = ~size_t{0};

  struct Slot {
    uint64_t key = 0;
    uint32_t head = kNil;  ///< kNil marks an empty slot.
    uint32_t tail = kNil;
  };
  struct Node {
    uint32_t payload = 0;
    uint32_t next = kNil;
  };

  size_t FindSlot(uint64_t key) const;

  size_t mask_ = 0;
  size_t used_slots_ = 0;
  std::vector<Slot> slots_;
  std::vector<Node> nodes_;
};

/// Lazily memoized translation of codes from one dictionary into another's
/// code space, with Value-equality semantics (Dictionary::Find). This is
/// what lets joins between a main and a delta partition — or any two
/// distinct dictionaries — run on integer codes: the probe side's code is
/// translated once per distinct value, not hashed per row.
class CodeTranslator {
 public:
  static constexpr ValueId kNoMatch = kInvalidValueId;

  /// `expected_lookups` bounds the dense-memo investment: initializing the
  /// memo costs O(|from|), so it is only built when the probe volume can
  /// amortize it; small probes against huge dictionaries go straight to
  /// Dictionary::Find per call.
  CodeTranslator(const Dictionary* from, const Dictionary* to,
                 size_t expected_lookups = ~size_t{0})
      : from_(from), to_(to) {
    if (from_->size() / 4 <= expected_lookups) {
      memo_.assign(from_->size(), kUnresolved);
    }
  }

  /// `to`-space code for `from`-space `code`, or kNoMatch when the value
  /// does not exist in `to`.
  ValueId Translate(ValueId code) {
    if (memo_.empty()) return Lookup(code);
    ValueId& slot = memo_[code];
    if (slot == kUnresolved) slot = Lookup(code);
    return slot;
  }

 private:
  static constexpr ValueId kUnresolved = kInvalidValueId - 1;

  ValueId Lookup(ValueId code) const {
    std::optional<ValueId> found = to_->Find(from_->value(code));
    return found.has_value() ? *found : kNoMatch;
  }

  const Dictionary* from_;
  const Dictionary* to_;
  std::vector<ValueId> memo_;
};

/// Bit layout packing several group-by columns' codes into one uint64 key.
struct PackedKeyLayout {
  struct Field {
    int shift = 0;
    int bits = 0;
    uint64_t mask = 0;  ///< Unshifted mask: (1 << bits) - 1.
  };
  std::vector<Field> fields;
  int total_bits = 0;

  uint64_t Pack(std::span<const ValueId> codes) const {
    uint64_t key = 0;
    for (size_t i = 0; i < fields.size(); ++i) {
      key |= static_cast<uint64_t>(codes[i]) << fields[i].shift;
    }
    return key;
  }

  ValueId Unpack(uint64_t key, size_t field) const {
    return static_cast<ValueId>((key >> fields[field].shift) &
                                fields[field].mask);
  }
};

/// Plans a packed layout for fields of the given code widths (in bits,
/// each 1..32). Returns nullopt when the widths do not fit in 64 bits —
/// callers fall back to materialized group keys.
std::optional<PackedKeyLayout> PlanPackedKeyLayout(
    std::span<const int> bits_per_field);

/// Flat open-addressing map from 64-bit keys to dense group indexes,
/// assigning indexes 0,1,2,... in first-seen order. Grows by doubling.
class GroupIndexMap {
 public:
  explicit GroupIndexMap(size_t expected_groups = 16);

  /// Index for `key`, assigning the next dense index when absent.
  uint32_t InsertOrGet(uint64_t key);

  size_t size() const { return num_groups_; }

 private:
  static constexpr uint32_t kEmpty = 0xFFFFFFFFu;

  struct Slot {
    uint64_t key = 0;
    uint32_t group = kEmpty;
  };

  void Grow();

  size_t mask_ = 0;
  size_t num_groups_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace aggcache

#endif  // AGGCACHE_QUERY_VECTOR_KERNELS_H_
