#include "query/shared_scan.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "obs/span.h"
#include "runtime/query_context.h"

namespace aggcache {
namespace {

// -1 = follow the env flag; 0/1 = forced by OverrideEnabledForTest.
std::atomic<int> g_enabled_override{-1};

bool EnabledFromEnv() {
  const char* env = std::getenv("AGGCACHE_SHARED_SCAN");
  if (env == nullptr) return true;
  return std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0;
}

}  // namespace

SharedScanManager& SharedScanManager::Instance() {
  static SharedScanManager* manager = new SharedScanManager();
  return *manager;
}

bool SharedScanManager::Enabled() {
  int override = g_enabled_override.load(std::memory_order_relaxed);
  if (override >= 0) return override != 0;
  static const bool from_env = EnabledFromEnv();
  return from_env;
}

void SharedScanManager::OverrideEnabledForTest(int enabled) {
  g_enabled_override.store(enabled, std::memory_order_relaxed);
}

SharedScanManager::Result SharedScanManager::Scan(const Partition& p,
                                                  const SelectionInput& in,
                                                  std::vector<uint32_t>* out) {
  const uint32_t num_rows = static_cast<uint32_t>(p.num_rows());
  std::shared_ptr<Session> session;
  Consumer* consumer = nullptr;
  bool lead = false;
  {
    std::lock_guard<std::mutex> registry_lock(registry_mu_);
    auto it = sessions_.find(&p);
    if (it != sessions_.end() && it->second->num_rows == num_rows) {
      // Attach to the in-flight session at its current cursor. The session
      // lock nests inside the registry lock here and at erase time, so the
      // order is consistent.
      Session* s = it->second.get();
      std::lock_guard<std::mutex> session_lock(s->mu);
      if (!s->finished) {
        auto owned = std::make_unique<Consumer>(&in);
        owned->join_block = s->next_block;
        consumer = owned.get();
        s->consumers.push_back(std::move(owned));
        session = it->second;
      }
    }
    if (consumer == nullptr) {
      // No joinable session: lead a new one. A stale entry for a partition
      // whose row count moved on (delta appends) is replaced — its leader
      // has its own shared_ptr and finishes undisturbed.
      session = std::make_shared<Session>();
      session->partition = &p;
      session->num_rows = num_rows;
      session->num_blocks = static_cast<uint32_t>(
          (num_rows + kSelectionBlockRows - 1) / kSelectionBlockRows);
      auto owned = std::make_unique<Consumer>(&in);
      consumer = owned.get();
      session->consumers.push_back(std::move(owned));
      sessions_[&p] = session;
      lead = true;
    }
  }
  return lead ? Lead(p, in, session, out) : Follow(p, in, consumer, session, out);
}

SharedScanManager::Result SharedScanManager::Lead(
    const Partition& p, const SelectionInput& in,
    const std::shared_ptr<Session>& session, std::vector<uint32_t>* out) {
  ScopedSpan lead_span(SpanKind::kSharedScanLead);
  const uint32_t num_rows = session->num_rows;
  // Consumers admitted while a block is being processed join at the *next*
  // block (next_block is advanced before the work), so no block is skipped
  // or scanned twice for anyone.
  std::vector<Consumer*> active;
  uint32_t delivered_until = session->num_blocks;
  for (uint32_t block = 0; block < session->num_blocks; ++block) {
    // A leader whose query aborted hands the walk off instead of finishing
    // it: the session closes at the current cursor and every follower
    // self-scans its tail from here. The leader's own rows are about to be
    // discarded by its typed-error unwind, so no work is wasted on them.
    if (in.context != nullptr && in.context->IsAborted()) {
      delivered_until = block;
      break;
    }
    active.clear();
    {
      std::lock_guard<std::mutex> lock(session->mu);
      session->next_block = block + 1;
      for (const auto& c : session->consumers) {
        if (c->join_block <= block) active.push_back(c.get());
      }
    }
    const uint32_t begin = block * static_cast<uint32_t>(kSelectionBlockRows);
    const uint32_t end = std::min(
        num_rows, begin + static_cast<uint32_t>(kSelectionBlockRows));
    for (Consumer* c : active) {
      c->batches += SelectRowsRange(p, *c->input, begin, end, &c->rows);
    }
  }
  {
    // Close the registry entry first so nobody attaches to a finished
    // session, then release the waiters (same registry -> session order as
    // attach).
    std::lock_guard<std::mutex> registry_lock(registry_mu_);
    auto it = sessions_.find(&p);
    if (it != sessions_.end() && it->second == session) sessions_.erase(it);
    std::lock_guard<std::mutex> session_lock(session->mu);
    session->finished = true;
    session->delivered_until = delivered_until;
    for (const auto& c : session->consumers) c->done = true;
  }
  session->cv.notify_all();

  Consumer* self = session->consumers.front().get();
  AGGCACHE_CHECK_EQ(self->join_block, 0u);
  if (out->empty()) {
    *out = std::move(self->rows);
  } else {
    out->insert(out->end(), self->rows.begin(), self->rows.end());
  }
  Result result;
  result.led = true;
  result.batches = self->batches;
  (void)in;
  return result;
}

SharedScanManager::Result SharedScanManager::Follow(
    const Partition& p, const SelectionInput& in, Consumer* consumer,
    const std::shared_ptr<Session>& session, std::vector<uint32_t>* out) {
  ScopedSpan attach_span(SpanKind::kSharedScanAttach);
  // Scan the prefix the leader already passed ourselves, while the leader
  // keeps filling our tail; head + tail is the full ascending row range.
  std::vector<uint32_t> head;
  const uint32_t prefix_rows = std::min(
      session->num_rows, consumer->join_block *
                             static_cast<uint32_t>(kSelectionBlockRows));
  size_t batches = SelectRowsRange(p, in, 0, prefix_rows, &head);
  bool self_aborted = false;
  uint32_t delivered_until = 0;
  {
    std::unique_lock<std::mutex> lock(session->mu);
    if (in.context == nullptr) {
      session->cv.wait(lock, [consumer] { return consumer->done; });
    } else {
      // Governed followers poll their own token while parked so a
      // cancelled/expired query unwinds promptly instead of riding out the
      // leader's walk.
      while (!consumer->done) {
        if (in.context->IsAborted()) {
          self_aborted = true;
          break;
        }
        session->cv.wait_for(lock, std::chrono::milliseconds(2));
      }
    }
    delivered_until = session->delivered_until;
  }
  if (self_aborted) {
    // Leave consumer->rows untouched — the leader may still be filling it
    // (the Consumer is owned by the session, so nothing dangles). The
    // caller's QueryContext::Check() discards the scan's output anyway.
    Result result;
    result.attached = true;
    result.batches = batches;
    return result;
  }
  batches += consumer->batches;
  // Tail the leader abandoned mid-walk (its query aborted):
  // delivered_until == num_blocks after a complete walk, the abandon
  // cursor otherwise. consumer->rows covers [join_block, delivered_until).
  std::vector<uint32_t> tail;
  if (delivered_until < session->num_blocks) {
    const uint32_t tail_begin = std::min(
        session->num_rows, delivered_until *
                               static_cast<uint32_t>(kSelectionBlockRows));
    batches += SelectRowsRange(p, in, tail_begin, session->num_rows, &tail);
  }
  if (out->empty() && head.empty() && tail.empty()) {
    *out = std::move(consumer->rows);
  } else {
    out->insert(out->end(), head.begin(), head.end());
    out->insert(out->end(), consumer->rows.begin(), consumer->rows.end());
    out->insert(out->end(), tail.begin(), tail.end());
  }
  Result result;
  result.attached = true;
  result.batches = batches;
  return result;
}

}  // namespace aggcache
