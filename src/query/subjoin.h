#ifndef AGGCACHE_QUERY_SUBJOIN_H_
#define AGGCACHE_QUERY_SUBJOIN_H_

#include <span>
#include <string>
#include <vector>

#include "storage/table.h"

namespace aggcache {

/// Addresses one partition of a table: a group (hot/cold) and a kind
/// (main/delta).
struct PartitionRef {
  uint32_t group = 0;
  PartitionKind kind = PartitionKind::kMain;

  bool operator==(const PartitionRef& other) const {
    return group == other.group && kind == other.kind;
  }
  bool operator<(const PartitionRef& other) const {
    if (group != other.group) return group < other.group;
    return static_cast<int>(kind) < static_cast<int>(other.kind);
  }
};

/// One subjoin of a join query: the partition chosen for each query table,
/// in query-table order. A join of t tables with k_i partitions each has
/// prod(k_i) subjoins — the combinatorial blow-up of Section 2.3 that the
/// paper's pruning attacks.
using SubjoinCombination = std::vector<PartitionRef>;

/// Resolves a combination entry to the actual partition.
const Partition& ResolvePartition(const Table& table, const PartitionRef& ref);

/// All partition combinations for the given tables (the JnoCache set of
/// Section 2.3.1): the cross product over each table's partitions.
std::vector<SubjoinCombination> EnumerateAllCombinations(
    std::span<const Table* const> tables);

/// True when every entry references a main partition; the union of all-main
/// subjoins is exactly what the aggregate cache materializes.
bool IsAllMain(const SubjoinCombination& combination);

/// The compensation set JwithCache = JnoCache minus the all-main
/// combinations (Section 2.3.2): everything that must be computed on the
/// fly when answering from the cache.
std::vector<SubjoinCombination> EnumerateCompensationCombinations(
    std::span<const Table* const> tables);

/// The cached set: all-main combinations only. With a single partition
/// group per table this is one combination; with hot/cold groups there is
/// one per group assignment (Section 5.4's per-temperature caches).
std::vector<SubjoinCombination> EnumerateAllMainCombinations(
    std::span<const Table* const> tables);

/// Debug rendering like "[hot/main, hot/delta, cold/main]".
std::string CombinationToString(const SubjoinCombination& combination);

}  // namespace aggcache

#endif  // AGGCACHE_QUERY_SUBJOIN_H_
