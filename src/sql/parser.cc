#include "sql/parser.h"

#include <cstdlib>

#include "common/string_util.h"
#include "sql/tokenizer.h"

namespace aggcache {
namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  Parser(std::vector<Token> tokens, const Database& db)
      : tokens_(std::move(tokens)), db_(db) {}

  StatusOr<ParsedStatement> Parse() {
    ParsedStatement statement;
    if (Peek().IsKeyword("SELECT")) {
      statement.kind = ParsedStatement::Kind::kSelect;
      ASSIGN_OR_RETURN(statement.select, ParseSelect());
    } else if (Peek().IsKeyword("EXPLAIN")) {
      // EXPLAIN AGGREGATE [JSON] SELECT ...: run the SELECT through the
      // cache manager with a QueryTrace installed and return the trace.
      statement.kind = ParsedStatement::Kind::kExplain;
      Advance();
      RETURN_IF_ERROR(ExpectKeyword("AGGREGATE"));
      if (Peek().IsKeyword("JSON")) {
        statement.explain_json = true;
        Advance();
      }
      ASSIGN_OR_RETURN(statement.select, ParseSelect());
    } else if (Peek().IsKeyword("INSERT")) {
      statement.kind = ParsedStatement::Kind::kInsert;
      RETURN_IF_ERROR(ParseInsert(&statement));
    } else if (Peek().IsKeyword("CREATE")) {
      statement.kind = ParsedStatement::Kind::kCreateTable;
      RETURN_IF_ERROR(ParseCreateTable(&statement));
    } else {
      return Error("expected SELECT, EXPLAIN, INSERT, or CREATE");
    }
    if (Peek().IsSymbol(";")) Advance();
    if (!Peek().Is(TokenType::kEnd)) {
      return Error("unexpected trailing input");
    }
    return statement;
  }

 private:
  // --- Token helpers -----------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(StrFormat(
        "SQL parse error near position %zu ('%s'): %s", Peek().position,
        Peek().text.c_str(), message.c_str()));
  }

  Status ExpectKeyword(const std::string& keyword) {
    if (!Peek().IsKeyword(keyword)) return Error("expected " + keyword);
    Advance();
    return Status::Ok();
  }

  Status ExpectSymbol(const std::string& symbol) {
    if (!Peek().IsSymbol(symbol)) return Error("expected '" + symbol + "'");
    Advance();
    return Status::Ok();
  }

  StatusOr<std::string> ExpectIdentifier(const char* what) {
    if (!Peek().Is(TokenType::kIdentifier)) {
      return Error(std::string("expected ") + what);
    }
    return Advance().text;
  }

  // --- Shared pieces ------------------------------------------------------

  struct ColumnRef {
    std::string table;  ///< Empty when unqualified.
    std::string column;
  };

  StatusOr<ColumnRef> ParseColumnRef() {
    ColumnRef ref;
    ASSIGN_OR_RETURN(ref.column, ExpectIdentifier("column name"));
    if (Peek().IsSymbol(".")) {
      Advance();
      ref.table = ref.column;
      ASSIGN_OR_RETURN(ref.column, ExpectIdentifier("column name"));
    }
    return ref;
  }

  StatusOr<Value> ParseLiteral() {
    const Token& token = Peek();
    switch (token.type) {
      case TokenType::kInteger:
        Advance();
        return Value(static_cast<int64_t>(
            std::strtoll(token.text.c_str(), nullptr, 10)));
      case TokenType::kDouble:
        Advance();
        return Value(std::strtod(token.text.c_str(), nullptr));
      case TokenType::kString:
        Advance();
        return Value(token.text);
      default:
        return Error("expected a literal");
    }
  }

  static StatusOr<CompareOp> SymbolToOp(const std::string& symbol) {
    if (symbol == "=") return CompareOp::kEq;
    if (symbol == "<>") return CompareOp::kNe;
    if (symbol == "<") return CompareOp::kLt;
    if (symbol == "<=") return CompareOp::kLe;
    if (symbol == ">") return CompareOp::kGt;
    if (symbol == ">=") return CompareOp::kGe;
    return Status::InvalidArgument("unknown comparison operator " + symbol);
  }

  /// Coerces a numeric literal to the column's type (1 -> 1.0 for DOUBLE
  /// columns) so users need not spell exact literal types.
  static Value Coerce(const Value& v, ColumnType type) {
    if (type == ColumnType::kDouble && v.is_int64()) {
      return Value(static_cast<double>(v.AsInt64()));
    }
    if (type == ColumnType::kInt64 && v.is_double()) {
      double d = v.AsDouble();
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        return Value(static_cast<int64_t>(d));
      }
    }
    return v;
  }

  // --- SELECT -------------------------------------------------------------

  /// Resolves a column reference to (table index, column name) against the
  /// FROM tables; unqualified references must be unique.
  StatusOr<size_t> ResolveTable(const ColumnRef& ref) {
    if (!ref.table.empty()) {
      for (size_t t = 0; t < from_tables_.size(); ++t) {
        if (from_tables_[t]->name() == ref.table) return t;
      }
      return Status::InvalidArgument("table '" + ref.table +
                                     "' not in FROM clause");
    }
    size_t found = from_tables_.size();
    for (size_t t = 0; t < from_tables_.size(); ++t) {
      if (from_tables_[t]->schema().ColumnIndex(ref.column).ok()) {
        if (found != from_tables_.size()) {
          return Status::InvalidArgument("ambiguous column '" + ref.column +
                                         "'");
        }
        found = t;
      }
    }
    if (found == from_tables_.size()) {
      return Status::InvalidArgument("unknown column '" + ref.column + "'");
    }
    return found;
  }

  StatusOr<ColumnType> ColumnTypeOf(size_t table_index,
                                    const std::string& column) {
    ASSIGN_OR_RETURN(size_t col,
                     from_tables_[table_index]->schema().ColumnIndex(column));
    return from_tables_[table_index]->schema().columns[col].type;
  }

  struct SelectItem {
    bool is_aggregate = false;
    AggregateFunction fn = AggregateFunction::kSum;
    ColumnRef ref;           ///< Unset for COUNT(*).
    bool count_star = false;
    std::string alias;
  };

  StatusOr<SelectItem> ParseSelectItem() {
    SelectItem item;
    static const std::pair<const char*, AggregateFunction> kFunctions[] = {
        {"SUM", AggregateFunction::kSum},
        {"COUNT", AggregateFunction::kCount},
        {"AVG", AggregateFunction::kAvg},
        {"MIN", AggregateFunction::kMin},
        {"MAX", AggregateFunction::kMax},
    };
    for (const auto& [name, fn] : kFunctions) {
      if (Peek().IsKeyword(name) && Peek(1).IsSymbol("(")) {
        item.is_aggregate = true;
        item.fn = fn;
        Advance();
        Advance();  // '('
        if (Peek().IsSymbol("*")) {
          if (fn != AggregateFunction::kCount) {
            return Error("'*' is only valid in COUNT(*)");
          }
          item.count_star = true;
          item.fn = AggregateFunction::kCountStar;
          Advance();
        } else {
          ASSIGN_OR_RETURN(item.ref, ParseColumnRef());
        }
        RETURN_IF_ERROR(ExpectSymbol(")"));
        break;
      }
    }
    if (!item.is_aggregate) {
      ASSIGN_OR_RETURN(item.ref, ParseColumnRef());
    }
    if (Peek().IsKeyword("AS")) {
      Advance();
      ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
    }
    return item;
  }

  StatusOr<AggregateQuery> ParseSelect() {
    RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    std::vector<SelectItem> items;
    while (true) {
      ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      items.push_back(std::move(item));
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }

    RETURN_IF_ERROR(ExpectKeyword("FROM"));
    AggregateQuery query;
    while (true) {
      ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("table name"));
      ASSIGN_OR_RETURN(const Table* table, db_.GetTable(name));
      from_tables_.push_back(table);
      query.tables.push_back(TableRef{name});
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }

    if (Peek().IsKeyword("WHERE")) {
      Advance();
      while (true) {
        ASSIGN_OR_RETURN(ColumnRef left, ParseColumnRef());
        if (!Peek().Is(TokenType::kSymbol)) {
          return Error("expected a comparison operator");
        }
        ASSIGN_OR_RETURN(CompareOp op, SymbolToOp(Advance().text));
        ASSIGN_OR_RETURN(size_t left_table, ResolveTable(left));
        if (Peek().Is(TokenType::kIdentifier)) {
          // Column-vs-column: an equi-join condition.
          if (op != CompareOp::kEq) {
            return Error("join conditions must use '='");
          }
          ASSIGN_OR_RETURN(ColumnRef right, ParseColumnRef());
          ASSIGN_OR_RETURN(size_t right_table, ResolveTable(right));
          query.joins.push_back(JoinCondition{left_table, left.column,
                                              right_table, right.column});
        } else {
          ASSIGN_OR_RETURN(Value literal, ParseLiteral());
          ASSIGN_OR_RETURN(ColumnType type,
                           ColumnTypeOf(left_table, left.column));
          query.filters.push_back(FilterPredicate{
              left_table, left.column, op, Coerce(literal, type)});
        }
        if (!Peek().IsKeyword("AND")) break;
        Advance();
      }
    }

    RETURN_IF_ERROR(ExpectKeyword("GROUP"));
    RETURN_IF_ERROR(ExpectKeyword("BY"));
    while (true) {
      ASSIGN_OR_RETURN(ColumnRef ref, ParseColumnRef());
      ASSIGN_OR_RETURN(size_t table, ResolveTable(ref));
      query.group_by.push_back(GroupByRef{table, ref.column});
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }

    // HAVING: each predicate references an aggregate from the select list
    // (matched by function and argument after the list is assembled below,
    // so we record the raw pieces here).
    struct RawHaving {
      SelectItem item;
      CompareOp op;
      Value operand;
    };
    std::vector<RawHaving> raw_having;
    if (Peek().IsKeyword("HAVING")) {
      Advance();
      while (true) {
        RawHaving raw;
        ASSIGN_OR_RETURN(raw.item, ParseSelectItem());
        if (!raw.item.is_aggregate) {
          return Error("HAVING requires an aggregate function");
        }
        if (!Peek().Is(TokenType::kSymbol)) {
          return Error("expected a comparison operator in HAVING");
        }
        ASSIGN_OR_RETURN(raw.op, SymbolToOp(Advance().text));
        ASSIGN_OR_RETURN(raw.operand, ParseLiteral());
        raw_having.push_back(std::move(raw));
        if (!Peek().IsKeyword("AND")) break;
        Advance();
      }
    }

    // Map select items: aggregates become AggregateSpecs; plain columns
    // must appear in GROUP BY (the engine emits group columns implicitly).
    for (const SelectItem& item : items) {
      if (!item.is_aggregate) {
        ASSIGN_OR_RETURN(size_t table, ResolveTable(item.ref));
        bool grouped = false;
        for (const GroupByRef& g : query.group_by) {
          if (g.table_index == table && g.column == item.ref.column) {
            grouped = true;
          }
        }
        if (!grouped) {
          return Status::InvalidArgument(
              "column '" + item.ref.column +
              "' must appear in the GROUP BY clause");
        }
        continue;
      }
      AggregateSpec spec;
      spec.fn = item.fn;
      spec.output_name = item.alias;
      if (!item.count_star) {
        ASSIGN_OR_RETURN(spec.table_index, ResolveTable(item.ref));
        spec.column = item.ref.column;
      }
      query.aggregates.push_back(std::move(spec));
    }
    if (query.aggregates.empty()) {
      return Status::InvalidArgument(
          "SELECT list needs at least one aggregate function");
    }

    // Match HAVING aggregates against the select list.
    for (const RawHaving& raw : raw_having) {
      size_t matched = query.aggregates.size();
      size_t raw_table = 0;
      if (!raw.item.count_star) {
        ASSIGN_OR_RETURN(raw_table, ResolveTable(raw.item.ref));
      }
      for (size_t a = 0; a < query.aggregates.size(); ++a) {
        const AggregateSpec& spec = query.aggregates[a];
        if (spec.fn != raw.item.fn) continue;
        if (raw.item.count_star) {
          matched = a;
          break;
        }
        if (spec.table_index == raw_table &&
            spec.column == raw.item.ref.column) {
          matched = a;
          break;
        }
      }
      if (matched == query.aggregates.size()) {
        return Status::InvalidArgument(
            "HAVING aggregate does not appear in the SELECT list");
      }
      // Type-check the comparison literal. SUM/COUNT/AVG (and COUNT(*))
      // always finalize to a number; MIN/MAX finalize to the column's
      // type. Comparing across that divide can never be meant literally,
      // so it is rejected here instead of evaluating to false per group.
      const AggregateSpec& spec = query.aggregates[matched];
      bool numeric_aggregate = true;
      if (spec.fn == AggregateFunction::kMin ||
          spec.fn == AggregateFunction::kMax) {
        ASSIGN_OR_RETURN(
            const Table* table,
            db_.GetTable(query.tables[spec.table_index].table_name));
        ASSIGN_OR_RETURN(size_t col,
                         table->schema().ColumnIndex(spec.column));
        numeric_aggregate =
            table->schema().columns[col].type != ColumnType::kString;
      }
      bool numeric_operand =
          raw.operand.is_int64() || raw.operand.is_double();
      if (!raw.operand.is_null() && numeric_aggregate != numeric_operand) {
        return Status::InvalidArgument(
            "HAVING compares " +
            std::string(numeric_aggregate ? "a numeric aggregate"
                                          : "a string aggregate") +
            " with " +
            std::string(numeric_operand ? "a numeric literal"
                                        : "a string literal"));
      }
      query.having.push_back(
          HavingPredicate{matched, raw.op, raw.operand});
    }
    RETURN_IF_ERROR(query.Validate(db_));
    return query;
  }

  // --- INSERT -------------------------------------------------------------

  Status ParseInsert(ParsedStatement* statement) {
    RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    RETURN_IF_ERROR(ExpectKeyword("INTO"));
    ASSIGN_OR_RETURN(statement->insert_table,
                     ExpectIdentifier("table name"));
    ASSIGN_OR_RETURN(const Table* table,
                     db_.GetTable(statement->insert_table));
    RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    RETURN_IF_ERROR(ExpectSymbol("("));
    // Coerce literals to the user-column types in schema order.
    std::vector<ColumnType> user_types;
    for (const ColumnDef& def : table->schema().columns) {
      if (!def.is_tid) user_types.push_back(def.type);
    }
    while (true) {
      ASSIGN_OR_RETURN(Value literal, ParseLiteral());
      size_t index = statement->insert_values.size();
      if (index < user_types.size()) {
        literal = Coerce(literal, user_types[index]);
      }
      statement->insert_values.push_back(std::move(literal));
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    RETURN_IF_ERROR(ExpectSymbol(")"));
    if (statement->insert_values.size() != user_types.size()) {
      return Status::InvalidArgument(StrFormat(
          "table '%s' expects %zu values, got %zu",
          statement->insert_table.c_str(), user_types.size(),
          statement->insert_values.size()));
    }
    return Status::Ok();
  }

  // --- CREATE TABLE -------------------------------------------------------

  StatusOr<ColumnType> ParseColumnType() {
    if (Peek().IsKeyword("BIGINT") || Peek().IsKeyword("INT") ||
        Peek().IsKeyword("INTEGER")) {
      Advance();
      return ColumnType::kInt64;
    }
    if (Peek().IsKeyword("DOUBLE") || Peek().IsKeyword("FLOAT") ||
        Peek().IsKeyword("REAL")) {
      Advance();
      return ColumnType::kDouble;
    }
    if (Peek().IsKeyword("VARCHAR") || Peek().IsKeyword("STRING") ||
        Peek().IsKeyword("TEXT")) {
      Advance();
      // Optional length suffix: VARCHAR(32).
      if (Peek().IsSymbol("(")) {
        Advance();
        if (!Peek().Is(TokenType::kInteger)) {
          return Error("expected a length in VARCHAR(n)");
        }
        Advance();
        RETURN_IF_ERROR(ExpectSymbol(")"));
      }
      return ColumnType::kString;
    }
    return Error("expected a column type (BIGINT, DOUBLE, VARCHAR)");
  }

  Status ParseCreateTable(ParsedStatement* statement) {
    RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("table name"));
    SchemaBuilder builder(name);
    RETURN_IF_ERROR(ExpectSymbol("("));
    bool first = true;
    while (!Peek().IsSymbol(")")) {
      if (!first) RETURN_IF_ERROR(ExpectSymbol(","));
      first = false;
      if (Peek().IsKeyword("OWN")) {
        Advance();
        RETURN_IF_ERROR(ExpectKeyword("TID"));
        ASSIGN_OR_RETURN(std::string tid_name,
                         ExpectIdentifier("tid column name"));
        builder.OwnTid(tid_name);
        continue;
      }
      ASSIGN_OR_RETURN(std::string column, ExpectIdentifier("column name"));
      ASSIGN_OR_RETURN(ColumnType type, ParseColumnType());
      builder.AddColumn(column, type);
      if (Peek().IsKeyword("PRIMARY")) {
        Advance();
        RETURN_IF_ERROR(ExpectKeyword("KEY"));
        builder.PrimaryKey();
      }
      if (Peek().IsKeyword("REFERENCES")) {
        Advance();
        ASSIGN_OR_RETURN(std::string ref, ExpectIdentifier("table name"));
        std::string md_tid;
        if (Peek().IsKeyword("TID")) {
          Advance();
          ASSIGN_OR_RETURN(md_tid, ExpectIdentifier("tid column name"));
        }
        builder.References(ref, md_tid);
      }
    }
    RETURN_IF_ERROR(ExpectSymbol(")"));
    ASSIGN_OR_RETURN(statement->create_schema, builder.TryBuild());
    return Status::Ok();
  }

  std::vector<Token> tokens_;
  const Database& db_;
  size_t pos_ = 0;
  std::vector<const Table*> from_tables_;
};

}  // namespace

StatusOr<ParsedStatement> ParseStatement(const std::string& sql,
                                         const Database& db) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens), db);
  return parser.Parse();
}

Status ApplyStatement(const ParsedStatement& statement, Database* db) {
  switch (statement.kind) {
    case ParsedStatement::Kind::kSelect:
    case ParsedStatement::Kind::kExplain:
      return Status::InvalidArgument(
          "SELECT statements are executed through the cache manager");
    case ParsedStatement::Kind::kInsert: {
      ASSIGN_OR_RETURN(Table * table, db->GetTable(statement.insert_table));
      Transaction txn = db->Begin();
      return table->Insert(txn, statement.insert_values);
    }
    case ParsedStatement::Kind::kCreateTable: {
      ASSIGN_OR_RETURN(Table * table,
                       db->CreateTable(statement.create_schema));
      (void)table;
      return Status::Ok();
    }
  }
  return Status::Internal("unknown statement kind");
}

}  // namespace aggcache
