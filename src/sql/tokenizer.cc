#include "sql/tokenizer.h"

#include <cctype>

#include "common/string_util.h"

namespace aggcache {

bool Token::IsKeyword(const std::string& keyword) const {
  if (type != TokenType::kIdentifier) return false;
  if (text.size() != keyword.size()) return false;
  for (size_t i = 0; i < text.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) !=
        std::toupper(static_cast<unsigned char>(keyword[i]))) {
      return false;
    }
  }
  return true;
}

StatusOr<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      tokens.push_back(
          {TokenType::kIdentifier, sql.substr(start, i - start), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      if (c == '-') ++i;
      bool is_double = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.')) {
        if (sql[i] == '.') {
          if (is_double) break;  // Second dot ends the literal.
          is_double = true;
        }
        ++i;
      }
      tokens.push_back({is_double ? TokenType::kDouble : TokenType::kInteger,
                        sql.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          // Doubled quote is an escaped quote.
          if (i + 1 < n && sql[i + 1] == '\'') {
            value += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value += sql[i++];
      }
      if (!closed) {
        return Status::InvalidArgument(StrFormat(
            "unterminated string literal at position %zu", start));
      }
      tokens.push_back({TokenType::kString, value, start});
      continue;
    }
    // Two-character operators first.
    if (i + 1 < n) {
      std::string two = sql.substr(i, 2);
      if (two == "<>" || two == "<=" || two == ">=" || two == "!=") {
        tokens.push_back({TokenType::kSymbol, two == "!=" ? "<>" : two,
                          start});
        i += 2;
        continue;
      }
    }
    if (std::string("(),.*=<>;").find(c) != std::string::npos) {
      tokens.push_back({TokenType::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::InvalidArgument(
        StrFormat("unexpected character '%c' at position %zu", c, start));
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace aggcache
