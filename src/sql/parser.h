#ifndef AGGCACHE_SQL_PARSER_H_
#define AGGCACHE_SQL_PARSER_H_

#include <string>
#include <vector>

#include "query/aggregate_query.h"
#include "storage/database.h"

namespace aggcache {

/// A parsed SQL statement, dispatched on `kind`.
struct ParsedStatement {
  enum class Kind : uint8_t { kSelect, kInsert, kCreateTable, kExplain };

  Kind kind = Kind::kSelect;
  /// kSelect and kExplain: the aggregate query (already validated against
  /// the catalog).
  AggregateQuery select;
  /// kExplain: render the trace as JSON instead of text
  /// (EXPLAIN AGGREGATE JSON SELECT ...).
  bool explain_json = false;
  /// kInsert: target table and the user-column values in schema order
  /// (numeric literals coerced to the column types).
  std::string insert_table;
  std::vector<Value> insert_values;
  /// kCreateTable: the schema to create.
  TableSchema create_schema;
};

/// Parses one SQL statement of the dialect this engine supports:
///
///   SELECT <group columns and aggregates>
///   FROM t1, t2, ...
///   [WHERE <equi-join conditions AND column-vs-literal filters>]
///   GROUP BY col [, col ...]
///
///   EXPLAIN AGGREGATE [JSON] SELECT ...
///
///   INSERT INTO t VALUES (v1, v2, ...)
///
///   CREATE TABLE t (
///     col BIGINT|DOUBLE|VARCHAR [PRIMARY KEY]
///         [REFERENCES other [TID md_tid_column]],
///     ...,
///     [OWN TID tid_column]
///   )
///
/// Aggregates: SUM, COUNT, AVG, MIN, MAX, COUNT(*). Column references may
/// be qualified (`table.column`) or unqualified when unambiguous across
/// the FROM tables. `REFERENCES ... TID c` declares a foreign key with a
/// matching-dependency tid column; `OWN TID c` declares the table's own
/// temporal column (Section 5 of the paper). A trailing semicolon is
/// allowed. SELECT statements are validated against `db`.
StatusOr<ParsedStatement> ParseStatement(const std::string& sql,
                                         const Database& db);

/// Executes a parsed non-SELECT statement against the database (INSERT
/// runs in its own transaction; CREATE TABLE registers the schema).
Status ApplyStatement(const ParsedStatement& statement, Database* db);

}  // namespace aggcache

#endif  // AGGCACHE_SQL_PARSER_H_
