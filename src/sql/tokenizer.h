#ifndef AGGCACHE_SQL_TOKENIZER_H_
#define AGGCACHE_SQL_TOKENIZER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace aggcache {

/// Token kinds produced by the SQL tokenizer.
enum class TokenType : uint8_t {
  kIdentifier,  ///< Unquoted name (keywords are identifiers until parsed).
  kInteger,     ///< 64-bit integer literal.
  kDouble,      ///< Floating-point literal.
  kString,      ///< 'single-quoted' string literal (quotes stripped).
  kSymbol,      ///< Punctuation / operator: ( ) , . * = <> < <= > >= ;
  kEnd,         ///< End of input sentinel.
};

/// One token with its source position (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  ///< Identifier/symbol text or literal spelling.
  size_t position = 0;

  bool Is(TokenType t) const { return type == t; }
  /// Case-insensitive identifier comparison (SQL keywords).
  bool IsKeyword(const std::string& keyword) const;
  bool IsSymbol(const std::string& symbol) const {
    return type == TokenType::kSymbol && text == symbol;
  }
};

/// Splits `sql` into tokens. Supports identifiers, integer/double and
/// string literals, the comparison operators, and basic punctuation; SQL
/// line comments (`-- ...`) are skipped. Returns InvalidArgument on
/// malformed input (unterminated string, stray character).
StatusOr<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace aggcache

#endif  // AGGCACHE_SQL_TOKENIZER_H_
