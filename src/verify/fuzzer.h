#ifndef AGGCACHE_VERIFY_FUZZER_H_
#define AGGCACHE_VERIFY_FUZZER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace aggcache {

/// Knobs for one differential fuzz run (one seed).
struct FuzzOptions {
  /// Workload steps interleaving inserts, updates, deletes, merges,
  /// hot/cold splits, fault-schedule changes, and query checkpoints.
  size_t steps = 60;
  /// A query checkpoint is forced at least every `check_every` steps.
  size_t check_every = 6;
  /// Global thread-pool parallelism values swept per checkpoint query.
  std::vector<size_t> thread_counts = {1, 4};
  /// Interleave randomized AGGCACHE_FAULT-style schedules into the
  /// workload (maintenance, merge, and eviction failures).
  bool with_faults = false;
  /// Per-point arming probability when drawing a fault schedule.
  double fault_probability = 0.35;
  /// Corrupt the oracle at the first checkpoint to prove the harness
  /// reports a divergence (self-test of the reporting pipeline).
  bool inject_divergence = false;
  /// Relative tolerance for double aggregates (summation order differs).
  double tolerance = 1e-9;
  /// Run the engine on a durable data directory and interleave simulated
  /// kills + recoveries (plain, mid-atomic-scope, mid-merge, and at every
  /// WAL/checkpoint crash point), diffing post-recovery state against the
  /// oracle's committed state. Requires data_dir.
  bool with_crashes = false;
  /// Base directory for durable state; each seed uses data_dir/seed<N>,
  /// wiped at the start of the run.
  std::string data_dir;
};

/// First divergence (or unexpected error) found by a run.
struct FuzzFailure {
  /// Strategy/pushdown/threads combination, or the failing operation.
  std::string where;
  /// SQL of the diverging query, when applicable.
  std::string query_sql;
  /// Oracle-vs-engine diff or error status.
  std::string description;
};

/// Outcome of one seed.
struct FuzzReport {
  bool ok = true;
  uint64_t seed = 0;
  size_t steps_executed = 0;
  size_t queries_checked = 0;
  /// Strategy × pushdown × threads executions diffed against the oracle.
  size_t combos_checked = 0;
  /// Simulated kill + recovery cycles survived with clean oracle diffs.
  size_t crashes_survived = 0;
  /// Injected faults that actually fired during the run.
  uint64_t faults_fired = 0;
  /// Checkpoint executions aborted by an injected runtime.alloc /
  /// runtime.deadline fault and verified to unwind cleanly (reservations
  /// balanced, clean re-execution matched the oracle).
  size_t governance_aborts = 0;
  std::optional<FuzzFailure> failure;
  /// Replayable trace (workload/trace.h format) of everything executed,
  /// including fault-schedule meta ops; printed on failure so any seed can
  /// be reproduced and minimized by hand.
  std::string trace;

  std::string Summary() const;
};

/// Runs one seeded schema + workload fuzz: generates a random
/// header/item/dimension schema with matching-dependency tid columns,
/// interleaves a randomized workload, and at every checkpoint executes the
/// current query through all {strategy} × {pushdown} × {threads}
/// combinations, diffing each against the reference oracle
/// (verify/oracle.h). Always restores global state (fault injector
/// disarmed, parallelism 1) before returning.
FuzzReport RunFuzzSeed(uint64_t seed, const FuzzOptions& options);

}  // namespace aggcache

#endif  // AGGCACHE_VERIFY_FUZZER_H_
