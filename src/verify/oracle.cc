#include "verify/oracle.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <utility>

#include "common/string_util.h"
#include "query/predicate.h"
#include "storage/partition.h"
#include "storage/table.h"

namespace aggcache {
namespace {

/// One table's MVCC-visible rows, fully decoded. The oracle materializes
/// everything up front — main and delta, hot and cold — so the scan order
/// and representation share nothing with the executor's partition-wise
/// dictionary scans.
struct VisibleTable {
  const Table* table = nullptr;
  std::vector<std::vector<Value>> rows;
};

VisibleTable CollectVisibleRows(const Table& table, Snapshot snapshot) {
  VisibleTable out;
  out.table = &table;
  for (size_t g = 0; g < table.num_groups(); ++g) {
    const PartitionGroup& group = table.group(g);
    for (const Partition* partition : {&group.main, &group.delta}) {
      for (size_t r = 0; r < partition->num_rows(); ++r) {
        if (snapshot.RowVisible(partition->create_tid(r),
                                partition->invalidate_tid(r))) {
          out.rows.push_back(partition->GetRow(r));
        }
      }
    }
  }
  return out;
}

/// Own comparison evaluation (kept separate from query/predicate.cc's
/// EvalCompare on purpose, even though the semantics must agree).
bool OracleCompare(CompareOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return !(rhs < lhs);
    case CompareOp::kGt:
      return rhs < lhs;
    case CompareOp::kGe:
      return !(lhs < rhs);
  }
  return false;
}

/// The oracle's own accumulator. Field-for-field it mirrors the specified
/// semantics of AggregateState (NULL still counts toward COUNT, exact int64
/// sums, separate double sums, Value-ordered min/max) but none of that
/// class's methods are used for the arithmetic.
struct OracleState {
  int64_t sum_int = 0;
  double sum_double = 0.0;
  int64_t count = 0;
  bool saw_double = false;
  Value min;
  Value max;

  void Add(const Value& v) {
    ++count;
    if (v.is_null()) return;
    if (v.is_int64()) {
      sum_int += v.AsInt64();
    } else if (v.is_double()) {
      sum_double += v.AsDouble();
      saw_double = true;
    }
    if (min.is_null() || v < min) min = v;
    if (max.is_null() || max < v) max = v;
  }
};

struct OracleGroup {
  std::vector<OracleState> states;
  int64_t count_star = 0;
};

/// Lexicographic key order for the oracle's deterministic group map.
struct GroupKeyLess {
  bool operator()(const GroupKey& a, const GroupKey& b) const {
    for (size_t i = 0; i < a.values.size() && i < b.values.size(); ++i) {
      if (a.values[i] < b.values[i]) return true;
      if (b.values[i] < a.values[i]) return false;
    }
    return a.values.size() < b.values.size();
  }
};

/// Independent finalization of one oracle state, mirroring the documented
/// output rules: COUNT/COUNT(*) int64; AVG double (NULL on empty groups);
/// SUM int64 until a double contributed.
Value OracleFinalize(const OracleState& s, AggregateFunction fn) {
  switch (fn) {
    case AggregateFunction::kSum:
      return s.saw_double ? Value(static_cast<double>(s.sum_int) +
                                  s.sum_double)
                          : Value(s.sum_int);
    case AggregateFunction::kCount:
      return Value(s.count);
    case AggregateFunction::kCountStar:
      return Value(s.count);
    case AggregateFunction::kAvg:
      if (s.count == 0) return Value();
      return Value((static_cast<double>(s.sum_int) + s.sum_double) /
                   static_cast<double>(s.count));
    case AggregateFunction::kMin:
      return s.min;
    case AggregateFunction::kMax:
      return s.max;
  }
  return Value();
}

/// A column reference resolved to (table position, column position).
struct ColumnSlot {
  size_t table = 0;
  size_t column = 0;
};

StatusOr<ColumnSlot> ResolveColumn(const std::vector<VisibleTable>& tables,
                                   size_t table_index,
                                   const std::string& column) {
  if (table_index >= tables.size()) {
    return Status::InvalidArgument(
        StrFormat("oracle: table index %zu out of range", table_index));
  }
  ASSIGN_OR_RETURN(size_t col,
                   tables[table_index].table->schema().ColumnIndex(column));
  return ColumnSlot{table_index, col};
}

}  // namespace

StatusOr<AggregateResult> OracleExecute(const Database& db,
                                        const AggregateQuery& query,
                                        Snapshot snapshot) {
  if (query.tables.empty()) {
    return Status::InvalidArgument("oracle: query has no tables");
  }

  // Materialize every visible row of every query table.
  std::vector<VisibleTable> tables;
  tables.reserve(query.tables.size());
  for (const TableRef& ref : query.tables) {
    ASSIGN_OR_RETURN(const Table* table, db.GetTable(ref.table_name));
    tables.push_back(CollectVisibleRows(*table, snapshot));
  }

  // Resolve every column reference once.
  struct ResolvedFilter {
    ColumnSlot slot;
    CompareOp op;
    Value operand;
  };
  std::vector<ResolvedFilter> filters;
  for (const FilterPredicate& f : query.filters) {
    ASSIGN_OR_RETURN(ColumnSlot slot,
                     ResolveColumn(tables, f.table_index, f.column));
    filters.push_back({slot, f.op, f.operand});
  }

  struct ResolvedJoin {
    ColumnSlot left;
    ColumnSlot right;
    size_t ready_at;  ///< Both sides bound once this table is assigned.
  };
  std::vector<ResolvedJoin> joins;
  for (const JoinCondition& j : query.joins) {
    ASSIGN_OR_RETURN(ColumnSlot left,
                     ResolveColumn(tables, j.left_table, j.left_column));
    ASSIGN_OR_RETURN(ColumnSlot right,
                     ResolveColumn(tables, j.right_table, j.right_column));
    joins.push_back({left, right, std::max(j.left_table, j.right_table)});
  }

  std::vector<ColumnSlot> group_slots;
  for (const GroupByRef& g : query.group_by) {
    ASSIGN_OR_RETURN(ColumnSlot slot,
                     ResolveColumn(tables, g.table_index, g.column));
    group_slots.push_back(slot);
  }

  // COUNT(*) needs no input column; mark it with table == npos.
  constexpr size_t kNoColumn = static_cast<size_t>(-1);
  std::vector<ColumnSlot> agg_slots;
  for (const AggregateSpec& a : query.aggregates) {
    if (a.fn == AggregateFunction::kCountStar) {
      agg_slots.push_back({kNoColumn, kNoColumn});
      continue;
    }
    ASSIGN_OR_RETURN(ColumnSlot slot,
                     ResolveColumn(tables, a.table_index, a.column));
    agg_slots.push_back(slot);
  }

  // Per-table filters apply before the join; everything else is evaluated
  // on complete combinations inside the nested loop.
  for (const ResolvedFilter& f : filters) {
    std::vector<std::vector<Value>>& rows = tables[f.slot.table].rows;
    std::vector<std::vector<Value>> kept;
    for (std::vector<Value>& row : rows) {
      if (OracleCompare(f.op, row[f.slot.column], f.operand)) {
        kept.push_back(std::move(row));
      }
    }
    rows = std::move(kept);
  }

  // Nested-loop join: bind tables left to right, checking each equi-join
  // as soon as both of its sides are bound. std::map keeps group iteration
  // deterministic without relying on GroupKeyHash.
  std::map<GroupKey, OracleGroup, GroupKeyLess> groups;
  std::vector<const std::vector<Value>*> bound(tables.size(), nullptr);

  auto emit = [&]() {
    GroupKey key;
    key.values.reserve(group_slots.size());
    for (const ColumnSlot& slot : group_slots) {
      key.values.push_back((*bound[slot.table])[slot.column]);
    }
    OracleGroup& group = groups[key];
    if (group.states.empty()) group.states.resize(agg_slots.size());
    for (size_t i = 0; i < agg_slots.size(); ++i) {
      const ColumnSlot& slot = agg_slots[i];
      group.states[i].Add(slot.table == kNoColumn
                              ? Value(int64_t{1})
                              : (*bound[slot.table])[slot.column]);
    }
    ++group.count_star;
  };

  // Recursive lambda via explicit self-reference.
  std::function<void(size_t)> descend = [&](size_t depth) {
    if (depth == tables.size()) {
      emit();
      return;
    }
    for (const std::vector<Value>& row : tables[depth].rows) {
      bound[depth] = &row;
      bool joins_hold = true;
      for (const ResolvedJoin& j : joins) {
        if (j.ready_at != depth) continue;
        if ((*bound[j.left.table])[j.left.column] !=
            (*bound[j.right.table])[j.right.column]) {
          joins_hold = false;
          break;
        }
      }
      if (joins_hold) descend(depth + 1);
    }
    bound[depth] = nullptr;
  };
  descend(0);

  // HAVING on the oracle's own finalized values, with the same cross-type
  // numeric coercion the engine documents for ApplyHaving.
  std::vector<AggregateFunction> functions = query.AggregateFunctions();
  auto passes_having = [&](const OracleGroup& group) {
    for (const HavingPredicate& h : query.having) {
      Value finalized =
          OracleFinalize(group.states[h.aggregate_index],
                         functions[h.aggregate_index]);
      bool ok;
      if (!finalized.is_null() && !h.operand.is_null() &&
          !finalized.is_string() && !h.operand.is_string() &&
          finalized.type() != h.operand.type()) {
        ok = OracleCompare(h.op, Value(finalized.NumericAsDouble()),
                           Value(h.operand.NumericAsDouble()));
      } else {
        ok = OracleCompare(h.op, finalized, h.operand);
      }
      if (!ok) return false;
    }
    return true;
  };

  // Package into the shared result container. Only the container is shared:
  // the states' fields were accumulated by the oracle's own arithmetic.
  AggregateResult result(query.aggregates.size());
  for (const auto& [key, group] : groups) {
    if (!passes_having(group)) continue;
    AggregateResult::GroupEntry entry;
    entry.count_star = group.count_star;
    entry.states.reserve(group.states.size());
    for (const OracleState& s : group.states) {
      AggregateState state;
      state.sum_int = s.sum_int;
      state.sum_double = s.sum_double;
      state.count = s.count;
      state.saw_double = s.saw_double;
      state.min = s.min;
      state.max = s.max;
      entry.states.push_back(std::move(state));
    }
    result.SetGroup(key, std::move(entry));
  }
  return result;
}

namespace {

bool ValuesApproxEqual(const Value& a, const Value& b, double tolerance) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.is_string() || b.is_string()) return a == b;
  if (a.is_int64() && b.is_int64()) return a.AsInt64() == b.AsInt64();
  // At least one double: compare numerically with scaled tolerance.
  double da = a.NumericAsDouble();
  double db = b.NumericAsDouble();
  double scale = std::max({1.0, std::fabs(da), std::fabs(db)});
  return std::fabs(da - db) <= tolerance * scale;
}

std::string RowToString(const std::vector<Value>& row) {
  std::vector<std::string> parts;
  parts.reserve(row.size());
  for (const Value& v : row) parts.push_back(v.ToString());
  return "[" + StrJoin(parts, ", ") + "]";
}

/// Finalizes and sorts one result with the oracle's own arithmetic —
/// deliberately NOT AggregateResult::Rows, so the comparison is asymmetric:
/// DiffResults feeds the expected side through this path and the actual
/// side through the engine's Finalize, covering finalization bugs too.
std::vector<std::vector<Value>> OwnRows(
    const AggregateResult& result,
    const std::vector<AggregateFunction>& functions) {
  std::vector<std::vector<Value>> rows;
  rows.reserve(result.num_groups());
  for (const auto& [key, entry] : result.groups()) {
    std::vector<Value> row = key.values;
    for (size_t i = 0; i < functions.size(); ++i) {
      OracleState s;
      s.sum_int = entry.states[i].sum_int;
      s.sum_double = entry.states[i].sum_double;
      s.count = entry.states[i].count;
      s.saw_double = entry.states[i].saw_double;
      s.min = entry.states[i].min;
      s.max = entry.states[i].max;
      row.push_back(OracleFinalize(s, functions[i]));
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const std::vector<Value>& a, const std::vector<Value>& b) {
              for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
                if (a[i] < b[i]) return true;
                if (b[i] < a[i]) return false;
              }
              return a.size() < b.size();
            });
  return rows;
}

}  // namespace

std::optional<std::string> DiffResults(
    const AggregateResult& expected, const AggregateResult& actual,
    const std::vector<AggregateFunction>& functions, double tolerance) {
  std::vector<std::vector<Value>> want = OwnRows(expected, functions);
  std::vector<std::vector<Value>> got = actual.Rows(functions);
  if (want.size() != got.size()) {
    return StrFormat("group count differs: oracle has %zu, engine has %zu",
                     want.size(), got.size());
  }
  for (size_t r = 0; r < want.size(); ++r) {
    if (want[r].size() != got[r].size()) {
      return StrFormat("row %zu width differs: oracle %s vs engine %s", r,
                       RowToString(want[r]).c_str(),
                       RowToString(got[r]).c_str());
    }
    for (size_t c = 0; c < want[r].size(); ++c) {
      if (!ValuesApproxEqual(want[r][c], got[r][c], tolerance)) {
        return StrFormat(
            "row %zu column %zu differs: oracle %s vs engine %s\n  oracle "
            "row: %s\n  engine row: %s",
            r, c, want[r][c].ToString().c_str(), got[r][c].ToString().c_str(),
            RowToString(want[r]).c_str(), RowToString(got[r]).c_str());
      }
    }
  }
  return std::nullopt;
}

}  // namespace aggcache
