#include "verify/fuzzer.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <utility>

#include "cache/aggregate_cache_manager.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "runtime/memory_tracker.h"
#include "runtime/query_context.h"
#include "sql/parser.h"
#include "storage/database.h"
#include "storage/recovery.h"
#include "verify/fault_injector.h"
#include "verify/oracle.h"
#include "workload/trace.h"

namespace aggcache {

std::string FuzzReport::Summary() const {
  if (ok) {
    return StrFormat(
        "seed %llu: OK (%zu steps, %zu queries, %zu combos, %llu faults "
        "fired, %zu governance aborts, %zu crashes survived)",
        static_cast<unsigned long long>(seed), steps_executed,
        queries_checked, combos_checked,
        static_cast<unsigned long long>(faults_fired), governance_aborts,
        crashes_survived);
  }
  std::string out = StrFormat("seed %llu: FAILED at %s\n",
                              static_cast<unsigned long long>(seed),
                              failure->where.c_str());
  if (!failure->query_sql.empty()) {
    out += "query: " + failure->query_sql + "\n";
  }
  out += failure->description;
  return out;
}

namespace {

/// One generated data column (group-by or measure).
struct FuzzColumn {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  bool groupable = false;  ///< Low-cardinality: usable in GROUP BY.
};

/// Bookkeeping for one live row, keyed by primary key.
struct FuzzRow {
  /// Temperature-relevant tid: the row's own tid for root tables, the
  /// referenced root object's tid for tables joined through a matching
  /// dependency. Governs the consistent-aging constraint after a split.
  int64_t temp_tid = 0;
  int64_t parent_pk = 0;
};

struct FuzzTable {
  std::string name;
  int parent = -1;  ///< Index of the referenced table, -1 for roots.
  std::string fk_col;      ///< Local FK column name (children only).
  std::string md_tid_col;  ///< Local MD tid column name (children only).
  std::string own_tid_col;
  std::vector<FuzzColumn> cols;     ///< Data columns (excludes id/fk/tids).
  std::map<int64_t, FuzzRow> rows;  ///< Live rows only.
  int64_t next_pk = 1;
  bool in_aging_group = false;
};

const char* kStrings[] = {"red", "green", "blue", "gold", "grey"};

/// The whole per-seed state machine. Every mutation is emitted as trace
/// text first and then executed through TraceReplayer, so the recorded
/// trace is the exact program that ran — a replay cannot drift from the
/// original by construction.
class FuzzRun : public TraceEngineHost {
 public:
  FuzzRun(uint64_t seed, const FuzzOptions& options)
      : options_(options), rng_(seed) {
    report_.seed = seed;
    static const size_t kMaxEntries[] = {0, 2, 8, 64};
    config_.max_entries = kMaxEntries[rng_.UniformInt(0, 3)];
    config_.incremental_join_main_compensation = rng_.Chance(0.5);
    db_ = std::make_unique<Database>();
    if (options_.with_crashes) {
      data_dir_ = StrFormat("%s/seed%llu", options_.data_dir.c_str(),
                            static_cast<unsigned long long>(seed));
      std::error_code ec;
      std::filesystem::remove_all(data_dir_, ec);
      // Simulated kills preserve everything write(2)-ten, so sync and async
      // behave identically under this harness and both get coverage; kOff
      // would lose committed work the oracle cannot model, so it is only
      // exercised by the perf benchmarks.
      durability_options_.wal_policy = rng_.Chance(0.5)
                                           ? WalSyncPolicy::kSync
                                           : WalSyncPolicy::kAsync;
      auto durability_or =
          DurabilityManager::Open(data_dir_, db_.get(), durability_options_);
      if (!durability_or.ok()) {
        Fail("durability open", "", durability_or.status().ToString());
      } else {
        durability_ = std::move(durability_or).value();
      }
    }
    cache_ = std::make_unique<AggregateCacheManager>(db_.get(), config_);
    if (durability_ != nullptr) durability_->SetDescriptorSource(cache_.get());
    replayer_ = std::make_unique<TraceReplayer>(db_.get(), cache_.get());
    replayer_->SetEngineHost(this);
    trace_ += StrFormat(
        "# verify_fuzz seed=%llu max_entries=%zu incremental_join=%d "
        "crashes=%d\n",
        static_cast<unsigned long long>(seed), config_.max_entries,
        config_.incremental_join_main_compensation ? 1 : 0,
        options_.with_crashes ? 1 : 0);
  }

  ~FuzzRun() override {
    // Teardown order mirrors ownership: the cache unregisters its merge
    // observer from the database, the durability manager detaches from it.
    cache_.reset();
    durability_.reset();
    db_.reset();
  }

  // --- TraceEngineHost ------------------------------------------------------

  Status Crash() override {
    if (durability_ == nullptr) {
      return Status::FailedPrecondition("crash without durability");
    }
    durability_->SimulateCrash();
    return Status::Ok();
  }

  Status Recover() override {
    if (durability_ == nullptr) {
      return Status::FailedPrecondition("recover without a prior crash");
    }
    cache_.reset();
    durability_.reset();
    db_ = std::make_unique<Database>();
    ASSIGN_OR_RETURN(durability_, DurabilityManager::Open(
                                      data_dir_, db_.get(),
                                      durability_options_));
    cache_ = std::make_unique<AggregateCacheManager>(db_.get(), config_);
    cache_->ImportWarmDescriptors(durability_->TakeWarmDescriptors());
    durability_->SetDescriptorSource(cache_.get());
    replayer_->Rebind(db_.get(), cache_.get());
    return Status::Ok();
  }

  Status Checkpoint() override {
    if (durability_ == nullptr) {
      return Status::FailedPrecondition("checkpoint without durability");
    }
    return durability_->Checkpoint().status();
  }

  FuzzReport Run() {
    FaultInjector& injector = FaultInjector::Global();
    injector.DisarmAll();
    uint64_t fired_before = injector.TotalFired();
    if (options_.with_faults) {
      Exec(StrFormat("!faultseed %llu",
                     static_cast<unsigned long long>(report_.seed)));
    }

    GenerateSchema();
    for (FuzzTable& table : tables_) {
      size_t warmup = rng_.UniformInt(4, 8);
      for (size_t i = 0; i < warmup && !failed_; ++i) DoInsert(table);
    }

    size_t since_check = 0;
    for (size_t step = 0; step < options_.steps && !failed_; ++step) {
      ++report_.steps_executed;
      if (++since_check >= options_.check_every) {
        since_check = 0;
        DoCheckpoint();
        continue;
      }
      int dice = rng_.UniformInt(0, 99);
      if (dice < 31) {
        DoInsert(tables_[rng_.UniformInt(0, tables_.size() - 1)]);
      } else if (dice < 43) {
        DoUpdate();
      } else if (dice < 51) {
        DoDelete();
      } else if (dice < 59) {
        DoMerge();
      } else if (dice < 65) {
        DoSplitAndAge();
      } else if (dice < 69) {
        Exec("!clearcache");
      } else if (dice < 75) {
        DoAtomicBurst();
      } else if (dice < 85 && options_.with_faults) {
        DoFaultSchedule();
      } else if (dice < 93 && options_.with_crashes) {
        since_check = 0;  // Ends in a full differential sweep.
        DoCrashRecover();
      } else {
        since_check = 0;
        DoCheckpoint();
      }
    }
    // Every crash seed ends with at least one kill + recovery, so no seed
    // can pass without exercising the recovery path.
    if (!failed_ && options_.with_crashes) DoCrashRecover();
    if (!failed_) DoCheckpoint();

    report_.faults_fired = injector.TotalFired() - fired_before;
    injector.DisarmAll();
    ThreadPool::SetGlobalParallelism(1);
    report_.trace = trace_;
    return report_;
  }

 private:
  // --- Trace-driven execution --------------------------------------------

  /// Appends `text` to the trace and executes it. Any error that is not an
  /// expected injected-fault outcome fails the run.
  void Exec(const std::string& text) {
    if (failed_) return;
    trace_ += text + "\n";
    auto report_or = replayer_->ReplayString(text);
    if (!report_or.ok()) {
      Fail("operation: " + text, "", report_or.status().ToString());
    }
  }

  void Fail(const std::string& where, const std::string& sql,
            const std::string& description) {
    if (failed_) return;
    failed_ = true;
    report_.ok = false;
    report_.failure = FuzzFailure{where, sql, description};
    trace_ += "# FAILURE at " + where + "\n";
  }

  // --- Schema generation --------------------------------------------------

  void GenerateSchema() {
    size_t n = rng_.Chance(0.5) ? 3 : 2;
    for (size_t i = 0; i < n; ++i) {
      FuzzTable table;
      table.name = StrFormat("T%zu", i);
      if (i == 1) {
        table.parent = 0;
      } else if (i == 2) {
        table.parent = rng_.Chance(0.5) ? 0 : 1;
      }
      table.own_tid_col = "tid_" + table.name;
      std::string ddl =
          "CREATE TABLE " + table.name + " (id BIGINT PRIMARY KEY";
      if (table.parent >= 0) {
        const std::string& parent = tables_[table.parent].name;
        table.fk_col = "fk" + parent;
        table.md_tid_col = "ptid_" + parent;
        ddl += StrFormat(", %s BIGINT REFERENCES %s TID %s",
                         table.fk_col.c_str(), parent.c_str(),
                         table.md_tid_col.c_str());
      }
      table.cols.push_back(
          {StrFormat("g%zu", i),
           rng_.Chance(0.5) ? ColumnType::kInt64 : ColumnType::kString,
           true});
      if (rng_.Chance(0.5)) {
        table.cols.push_back({StrFormat("h%zu", i), ColumnType::kInt64, true});
      }
      table.cols.push_back({StrFormat("v%zu", i),
                            rng_.Chance(0.5) ? ColumnType::kInt64
                                             : ColumnType::kDouble,
                            false});
      if (rng_.Chance(0.5)) {
        table.cols.push_back(
            {StrFormat("w%zu", i), ColumnType::kDouble, false});
      }
      for (const FuzzColumn& col : table.cols) {
        const char* type = col.type == ColumnType::kInt64    ? "BIGINT"
                           : col.type == ColumnType::kDouble ? "DOUBLE"
                                                             : "VARCHAR";
        ddl += ", " + col.name + " " + type;
      }
      ddl += ", OWN TID " + table.own_tid_col + ");";
      tables_.push_back(std::move(table));
      Exec(ddl);
    }
  }

  // --- Value generation ---------------------------------------------------

  std::string RandomLiteral(const FuzzColumn& col) {
    switch (col.type) {
      case ColumnType::kInt64:
        return StrFormat("%lld",
                         static_cast<long long>(col.groupable
                                                    ? rng_.UniformInt(0, 4)
                                                    : rng_.UniformInt(0, 100)));
      case ColumnType::kDouble:
        return StrFormat("%.2f", rng_.UniformDouble(0.0, 100.0));
      case ColumnType::kString:
        return StrFormat("'%s'", kStrings[rng_.UniformInt(0, 4)]);
    }
    return "0";
  }

  // --- Workload operations ------------------------------------------------

  /// Primary keys eligible as a join parent for new/updated child rows:
  /// live, and — once the aging group exists — hot (temperature tid at or
  /// above the split point), so matching rows never straddle the hot/cold
  /// boundary (the consistent-aging contract of Section 5.4).
  std::vector<int64_t> EligibleParents(const FuzzTable& parent) {
    std::vector<int64_t> pks;
    for (const auto& [pk, row] : parent.rows) {
      if (parent.in_aging_group && row.temp_tid < split_tid_) continue;
      pks.push_back(pk);
    }
    return pks;
  }

  void DoInsert(FuzzTable& table) {
    int64_t parent_pk = 0;
    std::string values =
        StrFormat("%lld", static_cast<long long>(table.next_pk));
    if (table.parent >= 0) {
      FuzzTable& parent = tables_[table.parent];
      std::vector<int64_t> pks = EligibleParents(parent);
      if (pks.empty()) return;  // No valid referent; skip this op.
      parent_pk = pks[rng_.UniformInt(0, pks.size() - 1)];
      values += StrFormat(", %lld", static_cast<long long>(parent_pk));
    }
    for (const FuzzColumn& col : table.cols) {
      values += ", " + RandomLiteral(col);
    }
    Exec("INSERT INTO " + table.name + " VALUES (" + values + ");");
    if (failed_) return;
    int64_t temp_tid;
    if (table.parent >= 0) {
      temp_tid = tables_[table.parent].rows[parent_pk].temp_tid;
    } else {
      temp_tid = static_cast<int64_t>(db_->txn_manager().last_committed());
    }
    table.rows[table.next_pk] = FuzzRow{temp_tid, parent_pk};
    ++table.next_pk;
  }

  void DoUpdate() {
    FuzzTable& table = tables_[rng_.UniformInt(0, tables_.size() - 1)];
    // An update re-inserts the surviving version into the *hot* delta, so
    // under an aging group only hot objects may be updated; and the MD tid
    // re-lookup needs the referenced parent row to still exist.
    std::vector<int64_t> pks;
    for (const auto& [pk, row] : table.rows) {
      if (table.in_aging_group && row.temp_tid < split_tid_) continue;
      if (table.parent >= 0 &&
          !tables_[table.parent].rows.count(row.parent_pk)) {
        continue;
      }
      pks.push_back(pk);
    }
    if (pks.empty()) return;
    int64_t pk = pks[rng_.UniformInt(0, pks.size() - 1)];
    // New user values in schema order: id and fk are preserved (updates
    // change measures/dimensions, not object identity), the rest redrawn.
    std::string values = StrFormat("%lld", static_cast<long long>(pk));
    if (table.parent >= 0) {
      values +=
          StrFormat(" %lld", static_cast<long long>(table.rows[pk].parent_pk));
    }
    for (const FuzzColumn& col : table.cols) {
      values += " " + RandomLiteral(col);
    }
    Exec(StrFormat("!update %s %lld %s", table.name.c_str(),
                   static_cast<long long>(pk), values.c_str()));
  }

  void DoDelete() {
    FuzzTable& table = tables_[rng_.UniformInt(0, tables_.size() - 1)];
    // Deletion is pure invalidation (no new row version), so it is safe on
    // both temperatures; keep a floor of rows so joins stay non-trivial.
    if (table.rows.size() < 3) return;
    auto it = table.rows.begin();
    std::advance(it, rng_.UniformInt(0, table.rows.size() - 1));
    Exec(StrFormat("!delete %s %lld", table.name.c_str(),
                   static_cast<long long>(it->first)));
    if (!failed_) table.rows.erase(it);
  }

  void DoMerge() {
    if (rng_.Chance(0.5)) {
      Exec("!merge");
    } else {
      const FuzzTable& table = tables_[rng_.UniformInt(0, tables_.size() - 1)];
      Exec("!merge " + table.name);
    }
  }

  /// Splits a root and its direct child on one tid threshold and registers
  /// them as an aging group — the §5.4 scenario. Runs at most once; fault
  /// injection is suspended so the preparatory merge cannot abort (replay
  /// stays deterministic and the split precondition — empty deltas —
  /// holds).
  void DoSplitAndAge() {
    if (aging_active_ || tables_.size() < 2 || tables_[1].parent != 0) {
      return;
    }
    if (options_.with_faults) Exec("!fault off");
    Exec("!merge");
    if (failed_) return;
    for (const FuzzTable& t : tables_) {
      const Table* table = db_->GetTable(t.name).value();
      for (size_t g = 0; g < table->num_groups(); ++g) {
        if (!table->group(g).delta.empty()) return;  // Unexpected; skip.
      }
    }
    split_tid_ = rng_.UniformInt(
        1, static_cast<int64_t>(db_->txn_manager().last_committed()));
    Exec(StrFormat("!split T0 %s %lld", tables_[0].own_tid_col.c_str(),
                   static_cast<long long>(split_tid_)));
    Exec(StrFormat("!split T1 %s %lld", tables_[1].md_tid_col.c_str(),
                   static_cast<long long>(split_tid_)));
    Exec("!aging T0 T1");
    if (failed_) return;
    aging_active_ = true;
    tables_[0].in_aging_group = true;
    tables_[1].in_aging_group = true;
  }

  void DoFaultSchedule() {
    if (rng_.Chance(0.3)) {
      Exec("!fault off");
      return;
    }
    static const char* kPoints[] = {
        "storage.merge",       "maintenance.bind", "maintenance.compensate",
        "maintenance.rebuild", "maintenance.fold", "cache.evict_all",
    };
    std::string spec;
    for (const char* point : kPoints) {
      if (!rng_.Chance(options_.fault_probability)) continue;
      if (!spec.empty()) spec += ",";
      // storage.merge is capped: an always-failing merge would let deltas
      // grow for the rest of the run and starve the maintenance paths.
      if (std::string(point) == "storage.merge") {
        spec +=
            StrFormat("%s:%.2f:%lld", point, rng_.UniformDouble(0.3, 1.0),
                      static_cast<long long>(rng_.UniformInt(1, 3)));
      } else {
        spec += StrFormat("%s:%.2f", point, rng_.UniformDouble(0.2, 0.8));
      }
    }
    if (spec.empty()) spec = "maintenance.fold:0.5";
    Exec(StrFormat("!faultseed %lld",
                   static_cast<long long>(rng_.UniformInt(1, 1 << 20))));
    Exec("!fault " + spec);
  }

  // --- Durability: atomic scopes, crashes, recovery -----------------------

  /// One committed atomic write scope: a short burst of inserts that become
  /// visible (and durable) together when the scope closes.
  void DoAtomicBurst() {
    Exec("!atomic begin");
    size_t n = rng_.UniformInt(2, 4);
    for (size_t i = 0; i < n && !failed_; ++i) {
      DoInsert(tables_[rng_.UniformInt(0, tables_.size() - 1)]);
    }
    Exec("!atomic end");
  }

  /// An INSERT into the root table that is intentionally NOT recorded in
  /// the oracle: for rows the upcoming crash is expected to destroy
  /// (uncommitted scopes, WAL appends swallowed by an armed crash point).
  /// The primary key is burned so a later real insert cannot collide.
  void DoomedInsert() {
    FuzzTable& root = tables_[0];
    std::string values = StrFormat("%lld", static_cast<long long>(root.next_pk));
    ++root.next_pk;
    for (const FuzzColumn& col : root.cols) {
      values += ", " + RandomLiteral(col);
    }
    Exec("INSERT INTO " + root.name + " VALUES (" + values + ");");
  }

  /// Kills the engine at a randomly chosen crash point, recovers it from
  /// disk, and proves the recovered engine equals the oracle: a structural
  /// visible-row check per table, then a full differential query sweep.
  void DoCrashRecover() {
    if (failed_ || durability_ == nullptr) return;
    // The crash points below need the injector to themselves.
    Exec("!fault off");
    switch (rng_.UniformInt(0, 8)) {
      case 0:  // Plain kill between statements.
        break;
      case 1:  // Kill inside an open atomic scope: recovery rolls it back.
        Exec("!atomic begin");
        for (int i = 0; i < 2 && !failed_; ++i) DoomedInsert();
        break;
      case 2:  // Kill with a delta merge aborted mid-flight.
        Exec("!fault storage.merge:1:1");
        Exec("!merge");
        break;
      case 3:  // Statement lost before its WAL frame is written.
        Exec("!fault wal.append:1:1");
        DoomedInsert();
        break;
      case 4:  // Torn frame: only half the record reaches the log.
        Exec("!fault wal.append.torn:1:1");
        DoomedInsert();
        break;
      case 5:  // Kill right after the fsync: the statement IS durable.
        Exec("!fault wal.sync:1:1");
        DoInsert(tables_[rng_.UniformInt(0, tables_.size() - 1)]);
        break;
      case 6:  // Checkpoint dies writing its segment file.
        Exec("!fault checkpoint.write:1:1");
        Exec("!checkpoint");
        break;
      case 7:  // Checkpoint dies before the atomic rename publishes it.
        Exec("!fault checkpoint.publish:1:1");
        Exec("!checkpoint");
        break;
      case 8:  // Checkpoint published but the WAL truncation is lost.
        Exec("!fault checkpoint.truncate:1:1");
        Exec("!checkpoint");
        break;
    }
    if (failed_) return;
    Exec("!crash");
    Exec("!fault off");  // Nothing may fire inside recovery replay.
    Exec("!recover");
    if (failed_) return;
    Snapshot snapshot = db_->txn_manager().GlobalSnapshot();
    for (const FuzzTable& t : tables_) {
      auto table_or = db_->GetTable(t.name);
      if (!table_or.ok()) {
        Fail("recovery: " + t.name, "", table_or.status().ToString());
        return;
      }
      size_t visible = table_or.value()->VisibleRows(snapshot);
      if (visible != t.rows.size()) {
        Fail("recovery: " + t.name, "",
             StrFormat("%zu rows visible after recovery, oracle has %zu",
                       visible, t.rows.size()));
        return;
      }
    }
    ++report_.crashes_survived;
    DoCheckpoint();  // Differential sweep against the recovered engine.
  }

  // --- Query generation ---------------------------------------------------

  /// Random connected subset of the table tree (tables are only ever
  /// related through parent edges, and parents have smaller indices, so
  /// sorting the subset by index yields a valid left-deep join order).
  std::vector<size_t> PickJoinSubset() {
    std::vector<size_t> subset{
        static_cast<size_t>(rng_.UniformInt(0, tables_.size() - 1))};
    size_t extra = rng_.UniformInt(0, tables_.size() - 1);
    for (size_t round = 0; round < extra; ++round) {
      std::vector<size_t> candidates;
      for (size_t t = 0; t < tables_.size(); ++t) {
        if (std::count(subset.begin(), subset.end(), t)) continue;
        bool related = false;
        for (size_t member : subset) {
          if (tables_[t].parent == static_cast<int>(member) ||
              tables_[member].parent == static_cast<int>(t)) {
            related = true;
          }
        }
        if (related) candidates.push_back(t);
      }
      if (candidates.empty()) break;
      subset.push_back(candidates[rng_.UniformInt(0, candidates.size() - 1)]);
    }
    std::sort(subset.begin(), subset.end());
    return subset;
  }

  std::string GenerateQuerySql() {
    std::vector<size_t> subset = PickJoinSubset();

    // Group-by columns: 1-2 low-cardinality columns across the subset.
    struct QualifiedCol {
      std::string text;
      const FuzzColumn* col;
    };
    std::vector<QualifiedCol> groupable;
    std::vector<QualifiedCol> measures;
    for (size_t t : subset) {
      for (const FuzzColumn& col : tables_[t].cols) {
        QualifiedCol qc{tables_[t].name + "." + col.name, &col};
        (col.groupable ? groupable : measures).push_back(qc);
      }
    }
    size_t num_groups =
        rng_.UniformInt(1, std::min<size_t>(2, groupable.size()));
    std::vector<QualifiedCol> group_cols;
    for (size_t i = 0; i < num_groups; ++i) {
      QualifiedCol pick = groupable[rng_.UniformInt(0, groupable.size() - 1)];
      bool dup = false;
      for (const QualifiedCol& g : group_cols) dup |= g.text == pick.text;
      if (!dup) group_cols.push_back(pick);
    }

    // Aggregates: biased toward self-maintainable functions so both the
    // cached paths and the MIN/MAX uncached fallback get coverage.
    struct Agg {
      std::string fn_text;  ///< e.g. "SUM(T1.v1)".
    };
    std::vector<Agg> aggs;
    size_t num_aggs = rng_.UniformInt(1, 3);
    for (size_t i = 0; i < num_aggs; ++i) {
      int fn = rng_.Chance(0.6) ? rng_.UniformInt(0, 3)   // SUM/COUNT/AVG/*.
                                : rng_.UniformInt(4, 5);  // MIN/MAX.
      if (fn == 3 || measures.empty()) {
        aggs.push_back({"COUNT(*)"});
        continue;
      }
      const QualifiedCol& m = measures[rng_.UniformInt(0, measures.size() - 1)];
      static const char* kFn[] = {"SUM", "COUNT", "AVG", "", "MIN", "MAX"};
      aggs.push_back({StrFormat("%s(%s)", kFn[fn], m.text.c_str())});
    }

    std::string sql = "SELECT ";
    for (size_t i = 0; i < group_cols.size(); ++i) {
      sql += group_cols[i].text + ", ";
    }
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += StrFormat("%s AS a%zu", aggs[i].fn_text.c_str(), i);
    }
    sql += " FROM ";
    for (size_t i = 0; i < subset.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += tables_[subset[i]].name;
    }

    // WHERE: join conditions for every subset edge, then 0-2 filters, with
    // an occasional raw tid-column predicate to stress MD-range pruning.
    std::vector<std::string> conjuncts;
    for (size_t i = 1; i < subset.size(); ++i) {
      const FuzzTable& child = tables_[subset[i]];
      if (child.parent < 0) continue;
      if (!std::count(subset.begin(), subset.end(),
                      static_cast<size_t>(child.parent))) {
        continue;
      }
      conjuncts.push_back(StrFormat(
          "%s.id = %s.%s", tables_[child.parent].name.c_str(),
          child.name.c_str(), child.fk_col.c_str()));
    }
    static const char* kOps[] = {"=", "<>", "<", "<=", ">", ">="};
    size_t num_filters = rng_.UniformInt(0, 2);
    for (size_t i = 0; i < num_filters; ++i) {
      std::vector<QualifiedCol> all = groupable;
      all.insert(all.end(), measures.begin(), measures.end());
      const QualifiedCol& c = all[rng_.UniformInt(0, all.size() - 1)];
      conjuncts.push_back(StrFormat("%s %s %s", c.text.c_str(),
                                    kOps[rng_.UniformInt(0, 5)],
                                    RandomLiteral(*c.col).c_str()));
    }
    if (rng_.Chance(0.15)) {
      const FuzzTable& t =
          tables_[subset[rng_.UniformInt(0, subset.size() - 1)]];
      const std::string& tid_col = (!t.md_tid_col.empty() && rng_.Chance(0.5))
                                       ? t.md_tid_col
                                       : t.own_tid_col;
      conjuncts.push_back(StrFormat(
          "%s.%s %s %lld", t.name.c_str(), tid_col.c_str(),
          rng_.Chance(0.5) ? "<=" : ">",
          static_cast<long long>(rng_.UniformInt(
              1, static_cast<int64_t>(db_->txn_manager().last_committed())))));
    }
    if (!conjuncts.empty()) {
      sql += " WHERE " + StrJoin(conjuncts, " AND ");
    }

    sql += " GROUP BY ";
    for (size_t i = 0; i < group_cols.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += group_cols[i].text;
    }

    // HAVING references select-list aggregates by (function, argument).
    if (rng_.Chance(0.25)) {
      const Agg& agg = aggs[rng_.UniformInt(0, aggs.size() - 1)];
      sql += StrFormat(" HAVING %s %s %lld", agg.fn_text.c_str(),
                       kOps[rng_.UniformInt(0, 5)],
                       static_cast<long long>(rng_.UniformInt(0, 200)));
    }
    return sql + ";";
  }

  // --- Differential checkpoint -------------------------------------------

  void DoCheckpoint() {
    if (failed_) return;
    std::string sql;
    if (!query_pool_.empty() && rng_.Chance(0.35)) {
      // Re-run an earlier query: exercises cache hits and compensation of
      // entries that aged across merges, splits, and fault storms.
      sql = query_pool_[rng_.UniformInt(0, query_pool_.size() - 1)];
    } else {
      sql = GenerateQuerySql();
      query_pool_.push_back(sql);
    }
    auto stmt_or = ParseStatement(sql, *db_);
    if (!stmt_or.ok()) {
      Fail("parse", sql, stmt_or.status().ToString());
      return;
    }
    const AggregateQuery& query = stmt_or.value().select;
    std::vector<AggregateFunction> functions = query.AggregateFunctions();

    // One transaction for the whole sweep: every engine combination and
    // the oracle read the exact same snapshot. The trace records the query
    // once (replay executes it under default options).
    trace_ += sql + "\n";
    Transaction txn = db_->Begin();
    auto oracle_or = OracleExecute(*db_, query, txn.snapshot());
    if (!oracle_or.ok()) {
      Fail("oracle", sql, oracle_or.status().ToString());
      return;
    }
    AggregateResult oracle = std::move(oracle_or).value();
    if (options_.inject_divergence && report_.queries_checked == 0) {
      // Self-test: corrupt the oracle so the first comparison must report.
      GroupKey key;
      for (size_t i = 0; i < query.group_by.size(); ++i) {
        key.values.push_back(Value(int64_t{424242}));
      }
      AggregateResult::GroupEntry entry;
      entry.states.resize(query.aggregates.size());
      entry.count_star = 1;
      for (AggregateState& s : entry.states) s.Add(Value(int64_t{1}));
      oracle.SetGroup(key, std::move(entry));
    }
    ++report_.queries_checked;

    static const ExecutionStrategy kStrategies[] = {
        ExecutionStrategy::kUncached,
        ExecutionStrategy::kCachedNoPruning,
        ExecutionStrategy::kCachedEmptyDeltaPruning,
        ExecutionStrategy::kCachedFullPruning,
    };
    for (size_t threads : options_.thread_counts) {
      ThreadPool::SetGlobalParallelism(threads);
      for (ExecutionStrategy strategy : kStrategies) {
        for (bool pushdown : {false, true}) {
          ExecutionOptions exec;
          exec.strategy = strategy;
          exec.use_predicate_pushdown = pushdown;
          std::string label =
              StrFormat("strategy=%s pushdown=%d threads=%zu",
                        ExecutionStrategyToString(strategy), pushdown ? 1 : 0,
                        threads);
          auto result_or = cache_->Execute(query, txn, exec);
          if (!result_or.ok()) {
            Fail(label, sql, result_or.status().ToString());
            return;
          }
          ++report_.combos_checked;
          std::optional<std::string> diff = DiffResults(
              oracle, result_or.value(), functions, options_.tolerance);
          if (diff.has_value()) {
            Fail(label, sql, "oracle divergence: " + *diff);
            return;
          }
        }
      }
    }
    if (options_.with_faults) {
      DoGovernanceSweep(query, txn, oracle, functions, sql);
    }
    ThreadPool::SetGlobalParallelism(1);
  }

  /// Re-executes the checkpoint query with the runtime.alloc and
  /// runtime.deadline points armed, so governance aborts strike at random
  /// charge/check sites inside scans, builds, and compensation. An
  /// execution may finish clean (the draw passed) — then it must match the
  /// oracle — or abort with a typed governance status. Either way, after
  /// disarming, per-query reservations must balance back to the pre-sweep
  /// level and a clean re-execution must still match the oracle: an abort
  /// may not leak reservations or leave partial cache state behind.
  void DoGovernanceSweep(const AggregateQuery& query, const Transaction& txn,
                         const AggregateResult& oracle,
                         const std::vector<AggregateFunction>& functions,
                         const std::string& sql) {
    if (failed_) return;
    static const char* kRuntimePoints[] = {"runtime.alloc",
                                           "runtime.deadline"};
    FaultInjector& injector = FaultInjector::Global();
    size_t balance_before = MemoryTracker::Queries().used();
    ThreadPool::SetGlobalParallelism(
        options_.thread_counts[rng_.UniformInt(
            0, options_.thread_counts.size() - 1)]);
    bool armed_any = false;
    for (const char* point : kRuntimePoints) {
      if (!rng_.Chance(0.6)) continue;
      FaultInjector::PointConfig config;
      config.probability = rng_.UniformDouble(0.3, 1.0);
      config.max_fires = rng_.UniformInt(1, 3);
      injector.Arm(point, config);
      armed_any = true;
    }
    if (!armed_any) {
      FaultInjector::PointConfig config;
      config.max_fires = 1;
      injector.Arm(kRuntimePoints[rng_.UniformInt(0, 1)], config);
    }
    {
      QueryContext context;
      ScopedQueryContext scope(&context);
      auto result_or = cache_->Execute(query, txn);
      if (result_or.ok()) {
        std::optional<std::string> diff = DiffResults(
            oracle, result_or.value(), functions, options_.tolerance);
        if (diff.has_value()) {
          Fail("governance sweep (no fault fired)", sql,
               "oracle divergence: " + *diff);
        }
      } else if (result_or.status().IsGovernanceAbort()) {
        ++report_.governance_aborts;
      } else {
        Fail("governance sweep", sql,
             "expected a typed governance abort, got: " +
                 result_or.status().ToString());
      }
    }
    for (const char* point : kRuntimePoints) injector.Disarm(point);
    if (failed_) return;
    size_t balance_after = MemoryTracker::Queries().used();
    if (balance_after != balance_before) {
      Fail("governance sweep", sql,
           StrFormat("per-query reservations leaked: %zu bytes tracked "
                     "before the sweep, %zu after",
                     balance_before, balance_after));
      return;
    }
    auto clean_or = cache_->Execute(query, txn);
    if (!clean_or.ok()) {
      Fail("governance sweep (clean re-execution)", sql,
           clean_or.status().ToString());
      return;
    }
    std::optional<std::string> diff =
        DiffResults(oracle, clean_or.value(), functions, options_.tolerance);
    if (diff.has_value()) {
      Fail("governance sweep (clean re-execution)", sql,
           "oracle divergence: " + *diff);
    }
  }

  FuzzOptions options_;
  Rng rng_;
  AggregateCacheManager::Config config_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<DurabilityManager> durability_;
  std::unique_ptr<AggregateCacheManager> cache_;
  std::unique_ptr<TraceReplayer> replayer_;
  std::vector<FuzzTable> tables_;
  std::vector<std::string> query_pool_;
  std::string trace_;
  std::string data_dir_;
  DurabilityOptions durability_options_;
  FuzzReport report_;
  bool failed_ = false;
  bool aging_active_ = false;
  int64_t split_tid_ = 0;
};

}  // namespace

FuzzReport RunFuzzSeed(uint64_t seed, const FuzzOptions& options) {
  FuzzRun run(seed, options);
  return run.Run();
}

}  // namespace aggcache
