#ifndef AGGCACHE_VERIFY_ORACLE_H_
#define AGGCACHE_VERIFY_ORACLE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/aggregate_query.h"
#include "query/aggregate_result.h"
#include "storage/database.h"
#include "txn/types.h"

namespace aggcache {

/// Reference oracle engine for the differential correctness harness.
///
/// Deliberately naive by design: it materializes every MVCC-visible row of
/// every partition (main and delta, hot and cold) into decoded value
/// vectors, evaluates filters row at a time, joins with nested loops, and
/// aggregates with its own accumulator — no cache, no pruning, no
/// dictionary-code tricks, no subjoin enumeration. It shares nothing with
/// query/executor.cc (including BoundQuery::Bind and AggregateState
/// arithmetic), so an executor bug and an oracle bug cannot cancel out.
/// O(product of table sizes); intended for harness-sized data only.
StatusOr<AggregateResult> OracleExecute(const Database& db,
                                        const AggregateQuery& query,
                                        Snapshot snapshot);

/// Compares two results by their finalized, deterministically sorted rows.
/// Strings, int64s, and NULLs compare exactly; doubles within
/// `tolerance * max(1, |a|, |b|)` (summation order differs between the
/// engines, so double sums carry rounding noise). Returns nullopt when
/// equal, otherwise a human-readable description of the first difference.
std::optional<std::string> DiffResults(
    const AggregateResult& expected, const AggregateResult& actual,
    const std::vector<AggregateFunction>& functions, double tolerance = 1e-9);

}  // namespace aggcache

#endif  // AGGCACHE_VERIFY_ORACLE_H_
