#ifndef AGGCACHE_VERIFY_FAULT_INJECTOR_H_
#define AGGCACHE_VERIFY_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "common/status.h"

namespace aggcache {

/// Process-wide fault-injection registry consulted by the failure-handling
/// paths of the engine (cache maintenance, entry rebuild, eviction, delta
/// merge). Production code calls MaybeFail("point") at each hook; when the
/// point is armed the call returns an error Status with a recognizable
/// message, and the surrounding code must degrade gracefully — the property
/// the differential harness (src/verify/fuzzer.h) asserts under randomized
/// fault schedules.
///
/// Points shipped with the engine:
///   storage.merge           Database::Merge, before a group merge runs.
///   storage.merge.publish   Delta merge, just before the rebuilt main is
///                           swapped in (after the expensive copy work).
///   maintenance.bind        Merge-time query re-bind against the catalog.
///   maintenance.compensate  Merge-time main compensation of an entry.
///   maintenance.rebuild     Merge-time rebuild of a stale-shaped entry.
///   maintenance.fold        Folding the merging delta into a cached partial.
///   cache.build             Entry materialization (RebuildEntry), covering
///                           both the single-flight creator and rebuilds.
///   cache.evict_all         EvictIfNeeded; firing simulates memory pressure
///                           by dropping every evictable entry.
///   cache.delta_comp        Each delta-compensation subjoin task, before it
///                           executes. Armed as kDelay it holds queries
///                           inside the phase (how the tests park a query so
///                           the active-query registry and remote cancel can
///                           observe it mid-flight); as kError it fails the
///                           fan-out.
///   runtime.alloc           QueryContext::ChargeMemory; firing simulates a
///                           refused reservation — the query aborts with a
///                           typed kResourceExhausted and must unwind with
///                           no side effects.
///   runtime.deadline        QueryContext::Check; firing simulates deadline
///                           expiry at a cooperative check point (typed
///                           kDeadlineExceeded).
///
/// A point fires in one of two ways:
///   kError  MaybeFail returns an Internal error tagged kInjectedFaultTag;
///           the surrounding code must degrade gracefully.
///   kDelay  MaybeFail sleeps delay_ms plus seeded jitter and returns OK —
///           a schedule perturbator for the concurrent stress harness: it
///           widens race windows (e.g. holding a merge mid-publish while
///           readers run) without changing any result.
///
/// Arming is programmatic (Arm/ArmFromSpec) or via the AGGCACHE_FAULT
/// environment variable, read once on first use:
///
///   AGGCACHE_FAULT="maintenance.fold:0.5,storage.merge:0.1:3"
///   AGGCACHE_FAULT="storage.merge.publish:delay:5:10:0.5"
///
/// Each comma-separated element is point:probability[:max_fires] for error
/// faults, or point:delay:delay_ms[:jitter_ms[:probability]] for delays.
/// The draw sequence is deterministic for a given seed (AGGCACHE_FAULT_SEED,
/// default 42) and arming order; delays themselves sleep outside the
/// injector lock so concurrent hooks are never serialized by a sleeping
/// peer.
///
/// With nothing armed, MaybeFail is a single relaxed atomic load — cheap
/// enough to leave the hooks in production builds.
class FaultInjector {
 public:
  /// What an armed point does when it fires.
  enum class FaultKind : uint8_t {
    kError = 0,  ///< Return an injected-fault Status.
    kDelay = 1,  ///< Sleep (schedule perturbation), then return OK.
  };

  struct PointConfig {
    /// Chance that one MaybeFail call at this point fires.
    double probability = 1.0;
    /// Maximum number of fires this point may produce since it was last
    /// armed (Arm resets the budget); < 0 = unlimited.
    int64_t max_fires = -1;
    FaultKind kind = FaultKind::kError;
    /// kDelay only: base sleep per fire, plus uniform jitter in
    /// [0, jitter_ms] drawn from the injector's seeded rng.
    double delay_ms = 0.0;
    double jitter_ms = 0.0;
  };

  /// Counters for one point, for tests and the fuzz report.
  struct PointStats {
    uint64_t hits = 0;   ///< MaybeFail calls while armed.
    uint64_t fired = 0;  ///< Calls that returned an error.
  };

  /// The process-wide injector. First use parses AGGCACHE_FAULT.
  static FaultInjector& Global();

  /// Arms `point`; MaybeFail(point) then fails per `config`.
  void Arm(const std::string& point, PointConfig config);

  /// Disarms one point / every point. Counters survive until
  /// ResetCounters().
  void Disarm(const std::string& point);
  void DisarmAll();

  /// Parses "point:prob[:max],point:prob[:max],..." and arms each element.
  /// "off" (or an empty spec) disarms everything.
  Status ArmFromSpec(const std::string& spec);

  /// Reseeds the deterministic draw sequence.
  void Reseed(uint64_t seed);

  /// Consulted by engine hooks: OK when the point is not armed or the draw
  /// passes, an Internal error carrying kInjectedFaultTag otherwise.
  Status MaybeFail(const char* point);

  /// True when any point is currently armed (cheap pre-check; also lets
  /// replay tooling decide whether a failed merge was expected).
  bool AnyArmed() const;

  PointStats stats(const std::string& point) const;
  uint64_t TotalFired() const;
  void ResetCounters();

  /// Marker embedded in every injected error message.
  static constexpr const char* kInjectedFaultTag = "[injected-fault]";

  /// True when `status` was produced by MaybeFail (vs. a genuine failure).
  static bool IsInjectedFault(const Status& status);

 private:
  FaultInjector();

  struct Point {
    PointConfig config;
    PointStats stats;
    bool armed = false;
  };

  mutable std::mutex mu_;
  std::map<std::string, Point> points_;
  /// Fires from earlier armings of since-rearmed points, so TotalFired()
  /// stays monotonic even though Arm() resets per-point budgets.
  uint64_t retired_fired_ = 0;
  std::mt19937_64 rng_;
  /// Lock-free fast path: set iff any point is armed.
  std::atomic<bool> any_armed_{false};
};

}  // namespace aggcache

#endif  // AGGCACHE_VERIFY_FAULT_INJECTOR_H_
