#include "verify/fault_injector.h"

#include <cstdlib>
#include <iostream>

#include "common/string_util.h"

namespace aggcache {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* fi = new FaultInjector();
    if (const char* seed = std::getenv("AGGCACHE_FAULT_SEED")) {
      fi->Reseed(std::strtoull(seed, nullptr, 10));
    }
    if (const char* spec = std::getenv("AGGCACHE_FAULT")) {
      Status status = fi->ArmFromSpec(spec);
      if (!status.ok()) {
        std::cerr << "aggcache: ignoring malformed AGGCACHE_FAULT: "
                  << status.ToString() << "\n";
      }
    }
    return fi;
  }();
  return *injector;
}

FaultInjector::FaultInjector() : rng_(42) {}

void FaultInjector::Arm(const std::string& point, PointConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& p = points_[point];
  p.config = config;
  p.armed = true;
  any_armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it != points_.end()) it->second.armed = false;
  bool any = false;
  for (const auto& [name, p] : points_) any = any || p.armed;
  any_armed_.store(any, std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, p] : points_) p.armed = false;
  any_armed_.store(false, std::memory_order_relaxed);
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  std::string trimmed;
  for (char c : spec) {
    if (c != ' ' && c != '\t') trimmed += c;
  }
  if (trimmed.empty() || trimmed == "off") {
    DisarmAll();
    return Status::Ok();
  }
  size_t begin = 0;
  while (begin <= trimmed.size()) {
    size_t end = trimmed.find(',', begin);
    if (end == std::string::npos) end = trimmed.size();
    std::string element = trimmed.substr(begin, end - begin);
    begin = end + 1;
    if (element.empty()) continue;
    size_t colon = element.find(':');
    std::string point = element.substr(0, colon);
    if (point.empty()) {
      return Status::InvalidArgument("fault spec element has no point name: '" +
                                     element + "'");
    }
    PointConfig config;
    if (colon != std::string::npos) {
      std::string rest = element.substr(colon + 1);
      size_t colon2 = rest.find(':');
      std::string prob = rest.substr(0, colon2);
      char* endp = nullptr;
      config.probability = std::strtod(prob.c_str(), &endp);
      if (endp == prob.c_str() || *endp != '\0' || config.probability < 0.0 ||
          config.probability > 1.0) {
        return Status::InvalidArgument("bad fault probability in '" + element +
                                       "'");
      }
      if (colon2 != std::string::npos) {
        std::string max = rest.substr(colon2 + 1);
        config.max_fires = std::strtoll(max.c_str(), &endp, 10);
        if (endp == max.c_str() || *endp != '\0') {
          return Status::InvalidArgument("bad fault max_fires in '" + element +
                                         "'");
        }
      }
    }
    Arm(point, config);
  }
  return Status::Ok();
}

void FaultInjector::Reseed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_.seed(seed);
}

Status FaultInjector::MaybeFail(const char* point) {
  if (!any_armed_.load(std::memory_order_relaxed)) return Status::Ok();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.armed) return Status::Ok();
  Point& p = it->second;
  ++p.stats.hits;
  if (p.config.max_fires >= 0 &&
      p.stats.fired >= static_cast<uint64_t>(p.config.max_fires)) {
    return Status::Ok();
  }
  if (p.config.probability < 1.0 &&
      std::uniform_real_distribution<double>(0.0, 1.0)(rng_) >=
          p.config.probability) {
    return Status::Ok();
  }
  ++p.stats.fired;
  return Status::Internal(StrFormat("%s fault at %s (#%llu)",
                                    kInjectedFaultTag, point,
                                    static_cast<unsigned long long>(
                                        p.stats.fired)));
}

bool FaultInjector::AnyArmed() const {
  return any_armed_.load(std::memory_order_relaxed);
}

FaultInjector::PointStats FaultInjector::stats(
    const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? PointStats() : it->second.stats;
}

uint64_t FaultInjector::TotalFired() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t fired = 0;
  for (const auto& [name, p] : points_) fired += p.stats.fired;
  return fired;
}

void FaultInjector::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, p] : points_) p.stats = PointStats();
}

bool FaultInjector::IsInjectedFault(const Status& status) {
  return !status.ok() &&
         status.message().find(kInjectedFaultTag) != std::string::npos;
}

}  // namespace aggcache
