#include "verify/fault_injector.h"

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "obs/flight_recorder.h"

namespace aggcache {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* fi = new FaultInjector();
    if (const char* seed = std::getenv("AGGCACHE_FAULT_SEED")) {
      fi->Reseed(std::strtoull(seed, nullptr, 10));
    }
    if (const char* spec = std::getenv("AGGCACHE_FAULT")) {
      Status status = fi->ArmFromSpec(spec);
      if (!status.ok()) {
        std::cerr << "aggcache: ignoring malformed AGGCACHE_FAULT: "
                  << status.ToString() << "\n";
      }
    }
    return fi;
  }();
  return *injector;
}

FaultInjector::FaultInjector() : rng_(42) {}

void FaultInjector::Arm(const std::string& point, PointConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& p = points_[point];
  p.config = config;
  // max_fires budgets are per-arming, not per-process: re-arming a point
  // that already exhausted its budget must make it fire again, or repeated
  // crash schedules silently degrade into no-ops.
  retired_fired_ += p.stats.fired;
  p.stats = PointStats();
  p.armed = true;
  any_armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it != points_.end()) it->second.armed = false;
  bool any = false;
  for (const auto& [name, p] : points_) any = any || p.armed;
  any_armed_.store(any, std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, p] : points_) p.armed = false;
  any_armed_.store(false, std::memory_order_relaxed);
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  std::string trimmed;
  for (char c : spec) {
    if (c != ' ' && c != '\t') trimmed += c;
  }
  if (trimmed.empty() || trimmed == "off") {
    DisarmAll();
    return Status::Ok();
  }
  size_t begin = 0;
  while (begin <= trimmed.size()) {
    size_t end = trimmed.find(',', begin);
    if (end == std::string::npos) end = trimmed.size();
    std::string element = trimmed.substr(begin, end - begin);
    begin = end + 1;
    if (element.empty()) continue;
    std::vector<std::string> tokens;
    size_t tok_begin = 0;
    while (tok_begin <= element.size()) {
      size_t tok_end = element.find(':', tok_begin);
      if (tok_end == std::string::npos) tok_end = element.size();
      tokens.push_back(element.substr(tok_begin, tok_end - tok_begin));
      tok_begin = tok_end + 1;
    }
    const std::string& point = tokens[0];
    if (point.empty()) {
      return Status::InvalidArgument("fault spec element has no point name: '" +
                                     element + "'");
    }
    auto parse_double = [](const std::string& s, double* out) {
      char* endp = nullptr;
      *out = std::strtod(s.c_str(), &endp);
      return endp != s.c_str() && *endp == '\0';
    };
    PointConfig config;
    if (tokens.size() > 1 && tokens[1] == "delay") {
      // point:delay:delay_ms[:jitter_ms[:probability]]
      config.kind = FaultKind::kDelay;
      if (tokens.size() < 3 || !parse_double(tokens[2], &config.delay_ms) ||
          config.delay_ms < 0.0) {
        return Status::InvalidArgument("bad delay_ms in '" + element + "'");
      }
      if (tokens.size() > 3 &&
          (!parse_double(tokens[3], &config.jitter_ms) ||
           config.jitter_ms < 0.0)) {
        return Status::InvalidArgument("bad jitter_ms in '" + element + "'");
      }
      if (tokens.size() > 4 &&
          (!parse_double(tokens[4], &config.probability) ||
           config.probability < 0.0 || config.probability > 1.0)) {
        return Status::InvalidArgument("bad delay probability in '" + element +
                                       "'");
      }
      if (tokens.size() > 5) {
        return Status::InvalidArgument("trailing tokens in '" + element + "'");
      }
    } else if (tokens.size() > 1) {
      // point:probability[:max_fires]
      if (!parse_double(tokens[1], &config.probability) ||
          config.probability < 0.0 || config.probability > 1.0) {
        return Status::InvalidArgument("bad fault probability in '" + element +
                                       "'");
      }
      if (tokens.size() > 2) {
        char* endp = nullptr;
        config.max_fires = std::strtoll(tokens[2].c_str(), &endp, 10);
        if (endp == tokens[2].c_str() || *endp != '\0') {
          return Status::InvalidArgument("bad fault max_fires in '" + element +
                                         "'");
        }
      }
      if (tokens.size() > 3) {
        return Status::InvalidArgument("trailing tokens in '" + element + "'");
      }
    }
    Arm(point, config);
  }
  return Status::Ok();
}

void FaultInjector::Reseed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_.seed(seed);
}

Status FaultInjector::MaybeFail(const char* point) {
  if (!any_armed_.load(std::memory_order_relaxed)) return Status::Ok();
  // Draws (and therefore the fire sequence) happen under the lock for
  // determinism; a delay's sleep happens after it is released so one
  // sleeping hook never serializes the others.
  double sleep_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(point);
    if (it == points_.end() || !it->second.armed) return Status::Ok();
    Point& p = it->second;
    ++p.stats.hits;
    if (p.config.max_fires >= 0 &&
        p.stats.fired >= static_cast<uint64_t>(p.config.max_fires)) {
      return Status::Ok();
    }
    if (p.config.probability < 1.0 &&
        std::uniform_real_distribution<double>(0.0, 1.0)(rng_) >=
            p.config.probability) {
      return Status::Ok();
    }
    ++p.stats.fired;
    RecordFlightEvent(FlightEventType::kFaultInjected, p.stats.fired,
                      p.config.kind == FaultKind::kDelay ? 1 : 0, point);
    if (p.config.kind == FaultKind::kError) {
      return Status::Internal(StrFormat("%s fault at %s (#%llu)",
                                        kInjectedFaultTag, point,
                                        static_cast<unsigned long long>(
                                            p.stats.fired)));
    }
    sleep_ms = p.config.delay_ms;
    if (p.config.jitter_ms > 0.0) {
      sleep_ms += std::uniform_real_distribution<double>(
          0.0, p.config.jitter_ms)(rng_);
    }
  }
  if (sleep_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms));
  }
  return Status::Ok();
}

bool FaultInjector::AnyArmed() const {
  return any_armed_.load(std::memory_order_relaxed);
}

FaultInjector::PointStats FaultInjector::stats(
    const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? PointStats() : it->second.stats;
}

uint64_t FaultInjector::TotalFired() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t fired = retired_fired_;
  for (const auto& [name, p] : points_) fired += p.stats.fired;
  return fired;
}

void FaultInjector::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  retired_fired_ = 0;
  for (auto& [name, p] : points_) p.stats = PointStats();
}

bool FaultInjector::IsInjectedFault(const Status& status) {
  return !status.ok() &&
         status.message().find(kInjectedFaultTag) != std::string::npos;
}

}  // namespace aggcache
