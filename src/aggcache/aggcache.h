#ifndef AGGCACHE_AGGCACHE_AGGCACHE_H_
#define AGGCACHE_AGGCACHE_AGGCACHE_H_

/// Umbrella header for the aggcache library: a columnar main-delta
/// in-memory store with an object-aware aggregate cache, reproducing
/// Müller et al., "Using Object-Awareness to Optimize Join Processing in
/// the SAP HANA Aggregate Cache" (EDBT 2015).
///
/// Typical usage:
///
///   aggcache::Database db;
///   auto table = db.CreateTable(
///       aggcache::SchemaBuilder("Header")
///           .AddColumn("HeaderID", aggcache::ColumnType::kInt64)
///           .PrimaryKey()
///           .OwnTid("tid_Header")
///           .Build());
///   aggcache::AggregateCacheManager cache(&db);
///   auto query = aggcache::QueryBuilder()
///                    .From("Header")... .Build();
///   auto txn = db.Begin();
///   auto result = cache.Execute(query, txn);

#include "cache/aggregate_cache_manager.h"
#include "cache/maintenance.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/value.h"
#include "objectaware/join_pruning.h"
#include "objectaware/matching_dependency.h"
#include "objectaware/predicate_pushdown.h"
#include "obs/active_queries.h"
#include "obs/build_info.h"
#include "obs/engine_metrics.h"
#include "obs/metrics_history.h"
#include "obs/metrics_registry.h"
#include "obs/obs_endpoints.h"
#include "obs/obs_server.h"
#include "obs/perf_counters.h"
#include "obs/query_trace.h"
#include "obs/slow_log.h"
#include "obs/span.h"
#include "query/aggregate_query.h"
#include "query/executor.h"
#include "runtime/admission_controller.h"
#include "runtime/memory_tracker.h"
#include "runtime/query_context.h"
#include "sql/parser.h"
#include "storage/database.h"
#include "storage/delta_merge.h"
#include "storage/merge_daemon.h"
#include "storage/recovery.h"
#include "storage/schema.h"
#include "storage/snapshot.h"
#include "storage/table.h"
#include "txn/transaction_manager.h"
#include "workload/chbench.h"
#include "workload/csv_loader.h"
#include "workload/erp_generator.h"
#include "workload/mixed_workload.h"
#include "workload/trace.h"

#endif  // AGGCACHE_AGGCACHE_AGGCACHE_H_
