#ifndef AGGCACHE_OBJECTAWARE_PREDICATE_PUSHDOWN_H_
#define AGGCACHE_OBJECTAWARE_PREDICATE_PUSHDOWN_H_

#include <vector>

#include "objectaware/matching_dependency.h"
#include "query/executor.h"
#include "query/predicate.h"
#include "query/subjoin.h"

namespace aggcache {

/// Join predicate pushdown (Section 5.3): when the tid-range prefilter
/// fails for a subjoin, the matching dependency still bounds which rows can
/// participate. For each MD-covered join edge, each side receives a local
/// filter restricting its tid column to the other side's [min, max] tid
/// range, e.g. for Header_delta ⋈ Item_main:
///
///   f(Item)   = tid_H >= min(Header_delta[tid_H])
///   f(Header) = tid_H <= max(Item_main[tid_H])
///
/// shrinking the scan and hash-build input of the large main partition.
/// Returns filters keyed by query-table index, ready to pass to
/// Executor::ExecuteSubjoin as extra filters. Derived filters are implied
/// by the MD, so applying them never changes the subjoin's result.
std::vector<FilterPredicate> DerivePushdownFilters(
    const BoundQuery& bound, const std::vector<MdBinding>& mds,
    const SubjoinCombination& combination);

}  // namespace aggcache

#endif  // AGGCACHE_OBJECTAWARE_PREDICATE_PUSHDOWN_H_
