#include "objectaware/join_pruning.h"

#include "obs/engine_metrics.h"
#include "obs/flight_recorder.h"

namespace aggcache {

const char* PruneLevelToString(PruneLevel level) {
  switch (level) {
    case PruneLevel::kNone:
      return "none";
    case PruneLevel::kEmptyPartitions:
      return "empty-partitions";
    case PruneLevel::kFull:
      return "full";
  }
  return "?";
}

JoinPruner::JoinPruner(const Database* db, PruneLevel level)
    : db_(db), level_(level) {}

bool TidRangesDisjoint(const Partition& left, size_t left_tid_column,
                       const Partition& right, size_t right_tid_column) {
  // Empty partitions have empty ranges; the paper defines min()/max() so
  // the prefilter is true for all pairs involving an empty partition.
  if (left.empty() || right.empty()) return true;
  const Dictionary& ld = left.column(left_tid_column).dictionary();
  const Dictionary& rd = right.column(right_tid_column).dictionary();
  return ld.max_value() < rd.min_value() || rd.max_value() < ld.min_value();
}

PruneDecision JoinPruner::ShouldPrune(const BoundQuery& bound,
                                      const std::vector<MdBinding>& mds,
                                      const SubjoinCombination& combination) {
  ++stats_.considered;
  const EngineMetrics& metrics = EngineMetrics::Get();
  metrics.prune_considered->Increment();
  if (level_ == PruneLevel::kNone) return PruneDecision{};

  // Rule 1: any empty partition empties the whole subjoin.
  for (size_t t = 0; t < combination.size(); ++t) {
    if (ResolvePartition(*bound.tables[t], combination[t]).empty()) {
      ++stats_.pruned_empty;
      metrics.pruned_empty->Increment();
      RecordFlightEvent(FlightEventType::kPruneVerdict, 1, t,
                        "empty-partition");
      return PruneDecision{true, "empty-partition"};
    }
  }
  if (level_ != PruneLevel::kFull) return PruneDecision{};

  // Rule 2: logical pruning across temperatures under a consistent aging
  // definition (Section 5.4).
  for (const BoundQuery::BoundJoin& join : bound.joins) {
    const PartitionRef& a = combination[join.outer_table];
    const PartitionRef& b = combination[join.inner_table];
    const Table& ta = *bound.tables[join.outer_table];
    const Table& tb = *bound.tables[join.inner_table];
    if (ta.group(a.group).age == tb.group(b.group).age) continue;
    if (db_->InSameAgingGroup(ta.name(), tb.name())) {
      ++stats_.pruned_aging;
      metrics.pruned_aging->Increment();
      RecordFlightEvent(FlightEventType::kPruneVerdict, 1, 0, "aging-group");
      return PruneDecision{true, "aging-group"};
    }
  }

  // Rule 3: the Eq. 5 tid-range prefilter on every MD-covered join edge.
  for (const MdBinding& md : mds) {
    const Partition& left =
        ResolvePartition(*bound.tables[md.left_table],
                         combination[md.left_table]);
    const Partition& right =
        ResolvePartition(*bound.tables[md.right_table],
                         combination[md.right_table]);
    if (TidRangesDisjoint(left, md.left_tid_column, right,
                          md.right_tid_column)) {
      ++stats_.pruned_tid_range;
      metrics.pruned_tid_range->Increment();
      RecordFlightEvent(FlightEventType::kPruneVerdict, 1, 0, "tid-range");
      return PruneDecision{true, "tid-range"};
    }
  }
  return PruneDecision{};
}

}  // namespace aggcache
