#include "objectaware/matching_dependency.h"

#include "common/string_util.h"

namespace aggcache {

std::string MdBinding::ToString() const {
  return StrFormat("MD(join#%zu: t%zu.tid#%zu = t%zu.tid#%zu)", join_index,
                   left_table, left_tid_column, right_table,
                   right_tid_column);
}

namespace {

// Checks one direction: does `ref` (query table index) own the primary key
// side and `fk_side` the foreign key side of this join, with an MD tid
// column declared?
std::optional<MdBinding> TryDirection(const BoundQuery& bound,
                                      size_t join_index, size_t ref,
                                      size_t ref_column, size_t fk_side,
                                      size_t fk_column) {
  const TableSchema& ref_schema = bound.tables[ref]->schema();
  const TableSchema& fk_schema = bound.tables[fk_side]->schema();
  if (!ref_schema.primary_key || *ref_schema.primary_key != ref_column) {
    return std::nullopt;
  }
  if (!ref_schema.own_tid_column) return std::nullopt;
  for (const ForeignKeyDef& fk : fk_schema.foreign_keys) {
    if (fk.column != fk_column) continue;
    if (fk.ref_table != ref_schema.name) continue;
    if (!fk.tid_column) continue;
    MdBinding binding;
    binding.join_index = join_index;
    binding.left_table = ref;
    binding.left_tid_column = *ref_schema.own_tid_column;
    binding.right_table = fk_side;
    binding.right_tid_column = *fk.tid_column;
    return binding;
  }
  return std::nullopt;
}

}  // namespace

std::optional<MdBinding> ResolveMdForJoin(const BoundQuery& bound,
                                          size_t join_index) {
  const BoundQuery::BoundJoin& join = bound.joins[join_index];
  if (auto md = TryDirection(bound, join_index, join.outer_table,
                             join.outer_column, join.inner_table,
                             join.inner_column)) {
    return md;
  }
  return TryDirection(bound, join_index, join.inner_table, join.inner_column,
                      join.outer_table, join.outer_column);
}

std::vector<MdBinding> ResolveMds(const BoundQuery& bound) {
  std::vector<MdBinding> result;
  for (size_t j = 0; j < bound.joins.size(); ++j) {
    if (auto md = ResolveMdForJoin(bound, j)) result.push_back(*md);
  }
  return result;
}

StatusOr<bool> VerifyMdHolds(const Database& db, const std::string& ref_table,
                             const std::string& fk_table) {
  ASSIGN_OR_RETURN(const Table* ref, db.GetTable(ref_table));
  ASSIGN_OR_RETURN(const Table* fk_t, db.GetTable(fk_table));
  if (!ref->schema().own_tid_column) {
    return Status::InvalidArgument("referenced table has no own-tid column");
  }
  const ForeignKeyDef* fk_def = nullptr;
  for (const ForeignKeyDef& fk : fk_t->schema().foreign_keys) {
    if (fk.ref_table == ref_table && fk.tid_column) {
      fk_def = &fk;
      break;
    }
  }
  if (fk_def == nullptr) {
    return Status::InvalidArgument(
        "no MD foreign key from " + fk_table + " to " + ref_table);
  }
  size_t ref_tid_col = *ref->schema().own_tid_column;
  for (size_t g = 0; g < fk_t->num_groups(); ++g) {
    const PartitionGroup& group = fk_t->group(g);
    for (const Partition* p : {&group.main, &group.delta}) {
      for (size_t r = 0; r < p->num_rows(); ++r) {
        const Value& fk_value = p->column(fk_def->column).GetValue(r);
        std::optional<RowLocation> loc = ref->FindByPk(fk_value);
        if (!loc) continue;  // Referenced row version replaced or deleted.
        const Value& ref_tid = ref->ValueAt(*loc, ref_tid_col);
        const Value& local_tid = p->column(*fk_def->tid_column).GetValue(r);
        if (!(ref_tid == local_tid)) return false;
      }
    }
  }
  return true;
}

}  // namespace aggcache
