#ifndef AGGCACHE_OBJECTAWARE_MATCHING_DEPENDENCY_H_
#define AGGCACHE_OBJECTAWARE_MATCHING_DEPENDENCY_H_

#include <optional>
#include <string>
#include <vector>

#include "query/executor.h"
#include "storage/database.h"

namespace aggcache {

/// A matching dependency (Definition 2 / Eq. 3 of the paper) bound to a
/// query's join condition:
///
///   MD = (R, S, (R[pk] = S[fk]) => (R[tid] = S[tid]))
///
/// i.e., whenever two tuples join on pk = fk, their tid columns agree as
/// well, because inserts copy the referenced row's own-tid into the
/// referencing row (storage/table.cc, BuildRow). The binding carries the
/// query-table indexes and the schema column indexes of the two tid
/// columns, which is all the pruner and the pushdown need.
struct MdBinding {
  size_t join_index = 0;       ///< Index into the query's join list.
  size_t left_table = 0;       ///< Query table index (referenced side, pk).
  size_t left_tid_column = 0;  ///< Own-tid column of the referenced table.
  size_t right_table = 0;      ///< Query table index (referencing side, fk).
  size_t right_tid_column = 0; ///< MD tid column of the referencing table.

  std::string ToString() const;
};

/// Resolves the matching dependency (if any) implied by a bound query's
/// join condition `join_index`: the join must equate one table's primary
/// key with another table's foreign key that declares an MD tid column, and
/// the referenced table must have an own-tid column.
std::optional<MdBinding> ResolveMdForJoin(const BoundQuery& bound,
                                          size_t join_index);

/// All MD bindings for a bound query, one per join condition that has one.
std::vector<MdBinding> ResolveMds(const BoundQuery& bound);

/// Verifies that the MD actually holds on the current table contents (every
/// matching pair agrees on the tid columns). O(|R| + |S|); used by tests
/// and debugging, never on the query path.
StatusOr<bool> VerifyMdHolds(const Database& db, const std::string& ref_table,
                             const std::string& fk_table);

}  // namespace aggcache

#endif  // AGGCACHE_OBJECTAWARE_MATCHING_DEPENDENCY_H_
