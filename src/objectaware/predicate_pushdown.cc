#include "objectaware/predicate_pushdown.h"

#include "obs/flight_recorder.h"

namespace aggcache {

std::vector<FilterPredicate> DerivePushdownFilters(
    const BoundQuery& bound, const std::vector<MdBinding>& mds,
    const SubjoinCombination& combination) {
  std::vector<FilterPredicate> filters;
  for (const MdBinding& md : mds) {
    const Partition& left = ResolvePartition(*bound.tables[md.left_table],
                                             combination[md.left_table]);
    const Partition& right = ResolvePartition(*bound.tables[md.right_table],
                                              combination[md.right_table]);
    if (left.empty() || right.empty()) continue;
    // Only derive filters across the main/delta boundary: same-kind pairs
    // (delta-delta, main-main) overlap almost completely under temporal
    // locality, so the filters would select everything.
    if (combination[md.left_table].kind == combination[md.right_table].kind) {
      continue;
    }
    const Dictionary& ld = left.column(md.left_tid_column).dictionary();
    const Dictionary& rd = right.column(md.right_tid_column).dictionary();
    const std::string& left_name =
        bound.tables[md.left_table]->schema().columns[md.left_tid_column].name;
    const std::string& right_name = bound.tables[md.right_table]
                                        ->schema()
                                        .columns[md.right_tid_column]
                                        .name;
    // Each side's tid must fall inside the other side's range for the MD
    // join predicate to be satisfiable.
    filters.push_back(FilterPredicate{md.left_table, left_name,
                                      CompareOp::kGe, rd.min_value()});
    filters.push_back(FilterPredicate{md.left_table, left_name,
                                      CompareOp::kLe, rd.max_value()});
    filters.push_back(FilterPredicate{md.right_table, right_name,
                                      CompareOp::kGe, ld.min_value()});
    filters.push_back(FilterPredicate{md.right_table, right_name,
                                      CompareOp::kLe, ld.max_value()});
  }
  // Only positive verdicts hit the flight recorder: "no filter derivable"
  // is the overwhelmingly common case on same-kind pairs and would flood
  // the ring without adding signal.
  if (!filters.empty()) {
    RecordFlightEvent(FlightEventType::kPushdownVerdict, filters.size(),
                      mds.size());
  }
  return filters;
}

}  // namespace aggcache
