#ifndef AGGCACHE_OBJECTAWARE_JOIN_PRUNING_H_
#define AGGCACHE_OBJECTAWARE_JOIN_PRUNING_H_

#include <string>
#include <vector>

#include "objectaware/matching_dependency.h"
#include "query/executor.h"
#include "query/subjoin.h"

namespace aggcache {

/// How aggressively subjoins are pruned during delta compensation. The
/// levels mirror the paper's Section 6.4 strategies.
enum class PruneLevel : uint8_t {
  kNone = 0,             ///< Execute every compensation subjoin.
  kEmptyPartitions = 1,  ///< Skip subjoins containing an empty partition.
  kFull = 2,             ///< Empty + MD tid-range + aging-group pruning.
};

const char* PruneLevelToString(PruneLevel level);

/// Outcome of a pruning test for one subjoin combination.
struct PruneDecision {
  bool pruned = false;
  /// Which rule fired: "empty-partition", "aging-group", "tid-range", or
  /// empty when not pruned.
  std::string reason;
};

/// Per-query statistics for benches and tests.
struct PruneStats {
  uint64_t considered = 0;
  uint64_t pruned_empty = 0;
  uint64_t pruned_aging = 0;
  uint64_t pruned_tid_range = 0;

  uint64_t total_pruned() const {
    return pruned_empty + pruned_aging + pruned_tid_range;
  }
};

/// Dynamic join partition pruner (Sections 4 and 5.1).
///
/// For a subjoin combination it applies, in order:
///  1. empty-partition pruning (a cheap dynamic rule: any empty partition
///     makes the subjoin empty),
///  2. logical aging-group pruning: with a consistent aging definition,
///     matching tuples share a temperature, so a hot partition of one table
///     never joins a cold partition of another (Section 5.4),
///  3. the MD tid-range prefilter of Eq. 5: for each join edge with a
///     matching dependency, the subjoin is empty when the tid ranges of the
///     two partitions (dictionary min/max) do not overlap.
///
/// Rules 2 and 3 are only consulted at PruneLevel::kFull; rule 1 also runs
/// at kEmptyPartitions. Every rule is conservative: a pruned subjoin is
/// provably empty, so pruning never changes query results.
class JoinPruner {
 public:
  JoinPruner(const Database* db, PruneLevel level);

  /// Decides whether `combination` can be skipped. `mds` must come from
  /// ResolveMds(bound) for the same bound query.
  PruneDecision ShouldPrune(const BoundQuery& bound,
                            const std::vector<MdBinding>& mds,
                            const SubjoinCombination& combination);

  PruneLevel level() const { return level_; }
  const PruneStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PruneStats(); }

 private:
  const Database* db_;
  PruneLevel level_;
  PruneStats stats_;
};

/// The Eq. 5 prefilter in isolation: true when the tid ranges of the two
/// partitions' tid columns are disjoint (or either partition is empty), so
/// the MD-joined pair is provably empty. Exposed for tests and the merge-
/// synchronization ablation.
bool TidRangesDisjoint(const Partition& left, size_t left_tid_column,
                       const Partition& right, size_t right_tid_column);

}  // namespace aggcache

#endif  // AGGCACHE_OBJECTAWARE_JOIN_PRUNING_H_
