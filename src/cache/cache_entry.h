#ifndef AGGCACHE_CACHE_CACHE_ENTRY_H_
#define AGGCACHE_CACHE_CACHE_ENTRY_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "cache/cache_key.h"
#include "cache/cache_metrics.h"
#include "common/bit_vector.h"
#include "obs/flight_recorder.h"
#include "query/aggregate_result.h"
#include "query/subjoin.h"
#include "txn/types.h"

namespace aggcache {

/// Lifecycle of a cache entry under concurrency (DESIGN.md §6).
///
///   kBuilding --> kReady <--> kRebuilding
///       |            |
///       +--> kEvicted <--+
///
/// A freshly inserted entry is kBuilding: exactly one creator materializes
/// it while concurrent misses on the same key wait (single-flight). kReady
/// entries serve reads; an access that must recompute from scratch (shape
/// change) moves through kRebuilding so eviction leaves it alone. kEvicted
/// is terminal: the entry has left the map, waiters give up and retry, and
/// the memory is freed when the last shared_ptr holder drops it.
enum class EntryState : uint8_t {
  kBuilding = 0,
  kReady = 1,
  kRebuilding = 2,
  kEvicted = 3,
};

/// One aggregate cache entry: the result of the query computed on main
/// partitions only (the cache value), the visibility snapshot of those main
/// partitions at computation time, and profit metrics — the structure of
/// Fig. 2 in the paper.
///
/// The main-only result is stored per all-main subjoin combination rather
/// than as one blob. With a single partition group this is exactly one
/// partial; with hot/cold groups it realizes the paper's per-temperature
/// caches (Section 5.4): a merge of the hot group only touches partials
/// whose combination involves that group's main.
///
/// Concurrency: the cached value (partials + snapshots + base_tid) is
/// guarded by value_mutex() — shared to read, exclusive to compensate or
/// rebuild. State transitions and waiting use their own small mutex so
/// eviction never blocks on a long-running compensation. Metrics are
/// atomics. The raw accessors do not lock; callers hold the value lock.
class CacheEntry {
 public:
  CacheEntry(CacheKey key, AggregateQuery query)
      : key_(std::move(key)), query_(std::move(query)) {}

  /// Moving is for single-threaded construction code (tests, prewarm
  /// helpers) only: the synchronization members are NOT moved — the
  /// destination starts with fresh locks and the source's state.
  CacheEntry(CacheEntry&& other) noexcept
      : key_(std::move(other.key_)),
        query_(std::move(other.query_)),
        main_partials_(std::move(other.main_partials_)),
        snapshots_(std::move(other.snapshots_)),
        metrics_(other.metrics_),
        base_tid_(other.base_tid_),
        state_(other.state_),
        needs_rebuild_(
            other.needs_rebuild_.load(std::memory_order_relaxed)) {}

  CacheEntry(const CacheEntry&) = delete;
  CacheEntry& operator=(const CacheEntry&) = delete;

  const CacheKey& key() const { return key_; }
  const AggregateQuery& query() const { return query_; }

  /// Visibility snapshot of one main partition at entry (re)computation.
  struct MainSnapshot {
    BitVector visibility;
    size_t row_count = 0;
    /// Invalidation counter at snapshot time; the difference to the
    /// partition's current counter is the entry's dirty counter.
    uint64_t invalidation_count = 0;
  };

  /// Cached partial results keyed by all-main subjoin combination.
  std::map<SubjoinCombination, AggregateResult>& main_partials() {
    return main_partials_;
  }
  const std::map<SubjoinCombination, AggregateResult>& main_partials() const {
    return main_partials_;
  }

  /// Union of all cached partials: the main-only query result.
  AggregateResult MergedMainResult(size_t num_aggregates) const;

  /// Snapshots indexed [query table][partition group].
  std::vector<std::vector<MainSnapshot>>& snapshots() { return snapshots_; }
  const std::vector<std::vector<MainSnapshot>>& snapshots() const {
    return snapshots_;
  }

  CacheEntryMetrics& metrics() { return metrics_; }
  const CacheEntryMetrics& metrics() const { return metrics_; }

  /// True when any referenced main partition saw invalidations since the
  /// snapshot was taken (the dirty counter is non-zero), i.e. main
  /// compensation is required before the entry can be used.
  bool IsDirty(const std::vector<const Table*>& tables) const;

  /// True when the stored snapshot structure still matches the tables'
  /// partition-group layout (a hot/cold split changes it; the entry must
  /// then be rebuilt). Also false while the entry is marked for rebuild.
  bool ShapeMatches(const std::vector<const Table*>& tables) const;

  /// Flags the cached value as unusable until the next rebuild — set when
  /// merge-time maintenance fails partway, instead of aborting the process.
  /// ShapeMatches() reports false until RebuildEntry clears the mark.
  void MarkForRebuild() {
    needs_rebuild_.store(true, std::memory_order_relaxed);
  }
  void ClearRebuildMark() {
    needs_rebuild_.store(false, std::memory_order_relaxed);
  }
  bool needs_rebuild() const {
    return needs_rebuild_.load(std::memory_order_relaxed);
  }

  /// Recomputes metrics().size_bytes from the stored partials + snapshots.
  void RefreshSizeBytes();

  /// Reader-writer lock over the cached value (partials, snapshots,
  /// base_tid): shared to read a clean entry, exclusive to compensate,
  /// fold, or rebuild it.
  std::shared_mutex& value_mutex() const { return value_mu_; }

  /// The snapshot tid the cached value is based on: the tid of the last
  /// rebuild or compensation. A reader whose own snapshot is OLDER than
  /// this cannot use the entry (compensation only moves forward in time)
  /// and falls back to uncached execution. Guarded by value_mutex().
  Tid base_tid() const { return base_tid_; }
  void set_base_tid(Tid tid) { base_tid_ = tid; }

  // -- State machine -------------------------------------------------------

  EntryState state() const {
    std::lock_guard<std::mutex> lock(state_mu_);
    return state_;
  }

  /// Unconditional transition; wakes all waiters.
  void SetState(EntryState next) {
    EntryState prev;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      prev = state_;
      state_ = next;
    }
    RecordStateTransition(prev, next);
    state_cv_.notify_all();
  }

  /// Transition only when currently in `expected`; returns whether it
  /// happened. Eviction uses this to claim kReady entries race-free.
  bool TryTransition(EntryState expected, EntryState next) {
    bool transitioned = false;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      if (state_ == expected) {
        state_ = next;
        transitioned = true;
      }
    }
    if (transitioned) {
      RecordStateTransition(expected, next);
      state_cv_.notify_all();
    }
    return transitioned;
  }

  /// Blocks while the entry is kBuilding or kRebuilding; returns the first
  /// settled state observed (kReady or kEvicted). This is the wait side of
  /// single-flight: concurrent misses park here while the creator runs.
  /// `waited`, when given, reports whether the caller actually parked (the
  /// entry was unsettled on arrival) — observed under the state lock this
  /// call takes anyway, so metrics need no extra acquisition.
  EntryState WaitUntilSettled(bool* waited = nullptr) const {
    std::unique_lock<std::mutex> lock(state_mu_);
    auto settled = [this] {
      return state_ == EntryState::kReady || state_ == EntryState::kEvicted;
    };
    if (waited != nullptr) *waited = !settled();
    state_cv_.wait(lock, settled);
    return state_;
  }

  /// Byte-accounting residency flag, owned by AggregateCacheManager and
  /// guarded by its byte-accounting mutex — true while this entry's
  /// size_bytes is included in the manager's running total.
  bool bytes_accounted = false;

 private:
  /// Ships every lifecycle edge to the flight recorder: a = key hash (the
  /// entry's stable id across its whole life), b = from<<8 | to. Called
  /// outside state_mu_ — the recorder is lock-free and ordering across
  /// racing transitions is whatever the state machine itself allowed.
  void RecordStateTransition(EntryState from, EntryState to) const {
    RecordFlightEvent(FlightEventType::kEntryState,
                      static_cast<uint64_t>(key_.hash),
                      (static_cast<uint64_t>(from) << 8) |
                          static_cast<uint64_t>(to));
  }

  CacheKey key_;
  AggregateQuery query_;
  std::map<SubjoinCombination, AggregateResult> main_partials_;
  std::vector<std::vector<MainSnapshot>> snapshots_;
  CacheEntryMetrics metrics_;
  Tid base_tid_ = 0;

  mutable std::shared_mutex value_mu_;
  mutable std::mutex state_mu_;
  mutable std::condition_variable state_cv_;
  EntryState state_ = EntryState::kBuilding;
  std::atomic<bool> needs_rebuild_{false};
};

}  // namespace aggcache

#endif  // AGGCACHE_CACHE_CACHE_ENTRY_H_
