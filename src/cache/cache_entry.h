#ifndef AGGCACHE_CACHE_CACHE_ENTRY_H_
#define AGGCACHE_CACHE_CACHE_ENTRY_H_

#include <map>
#include <vector>

#include "cache/cache_key.h"
#include "cache/cache_metrics.h"
#include "common/bit_vector.h"
#include "query/aggregate_result.h"
#include "query/subjoin.h"

namespace aggcache {

/// One aggregate cache entry: the result of the query computed on main
/// partitions only (the cache value), the visibility snapshot of those main
/// partitions at computation time, and profit metrics — the structure of
/// Fig. 2 in the paper.
///
/// The main-only result is stored per all-main subjoin combination rather
/// than as one blob. With a single partition group this is exactly one
/// partial; with hot/cold groups it realizes the paper's per-temperature
/// caches (Section 5.4): a merge of the hot group only touches partials
/// whose combination involves that group's main.
class CacheEntry {
 public:
  CacheEntry(CacheKey key, AggregateQuery query)
      : key_(std::move(key)), query_(std::move(query)) {}

  const CacheKey& key() const { return key_; }
  const AggregateQuery& query() const { return query_; }

  /// Visibility snapshot of one main partition at entry (re)computation.
  struct MainSnapshot {
    BitVector visibility;
    size_t row_count = 0;
    /// Invalidation counter at snapshot time; the difference to the
    /// partition's current counter is the entry's dirty counter.
    uint64_t invalidation_count = 0;
  };

  /// Cached partial results keyed by all-main subjoin combination.
  std::map<SubjoinCombination, AggregateResult>& main_partials() {
    return main_partials_;
  }
  const std::map<SubjoinCombination, AggregateResult>& main_partials() const {
    return main_partials_;
  }

  /// Union of all cached partials: the main-only query result.
  AggregateResult MergedMainResult(size_t num_aggregates) const;

  /// Snapshots indexed [query table][partition group].
  std::vector<std::vector<MainSnapshot>>& snapshots() { return snapshots_; }
  const std::vector<std::vector<MainSnapshot>>& snapshots() const {
    return snapshots_;
  }

  CacheEntryMetrics& metrics() { return metrics_; }
  const CacheEntryMetrics& metrics() const { return metrics_; }

  /// True when any referenced main partition saw invalidations since the
  /// snapshot was taken (the dirty counter is non-zero), i.e. main
  /// compensation is required before the entry can be used.
  bool IsDirty(const std::vector<const Table*>& tables) const;

  /// True when the stored snapshot structure still matches the tables'
  /// partition-group layout (a hot/cold split changes it; the entry must
  /// then be rebuilt). Also false while the entry is marked for rebuild.
  bool ShapeMatches(const std::vector<const Table*>& tables) const;

  /// Flags the cached value as unusable until the next rebuild — set when
  /// merge-time maintenance fails partway, instead of aborting the process.
  /// ShapeMatches() reports false until RebuildEntry clears the mark.
  void MarkForRebuild() { needs_rebuild_ = true; }
  void ClearRebuildMark() { needs_rebuild_ = false; }
  bool needs_rebuild() const { return needs_rebuild_; }

  /// Recomputes metrics().size_bytes from the stored partials + snapshots.
  void RefreshSizeBytes();

 private:
  CacheKey key_;
  AggregateQuery query_;
  std::map<SubjoinCombination, AggregateResult> main_partials_;
  std::vector<std::vector<MainSnapshot>> snapshots_;
  CacheEntryMetrics metrics_;
  bool needs_rebuild_ = false;
};

}  // namespace aggcache

#endif  // AGGCACHE_CACHE_CACHE_ENTRY_H_
