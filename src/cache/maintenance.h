#ifndef AGGCACHE_CACHE_MAINTENANCE_H_
#define AGGCACHE_CACHE_MAINTENANCE_H_

#include <memory>

#include "cache/aggregate_cache_manager.h"
#include "query/executor.h"

namespace aggcache {

/// Maintenance strategies compared in the paper's Section 6.1 (Fig. 6)
/// experiment: how a materialized single-table aggregate is kept consistent
/// in a mixed workload of inserts and aggregate queries.
enum class MaintenanceStrategy : uint8_t {
  /// Classical eager incremental view maintenance: the view is updated with
  /// every insert (Blakeley et al.).
  kEagerIncremental = 0,
  /// Classical lazy/deferred maintenance: inserts are logged and applied to
  /// the view right before it is used by a query (Zhou & Larson).
  kLazyIncremental = 1,
  /// The paper's aggregate cache: the view covers main partitions only;
  /// inserts cost nothing, queries pay delta compensation.
  kAggregateCache = 2,
  /// No materialization at all: recompute on every query (baseline).
  kFullRecompute = 3,
};

const char* MaintenanceStrategyToString(MaintenanceStrategy strategy);

/// A single-table materialized aggregate maintained under one of the
/// strategies above. The Fig. 6 driver inserts into the base table and then
/// calls OnInsertCommitted(); queries go through Query().
///
/// The experiment protocol is insert-only (as in the paper, whose evaluation
/// workload has no updates/deletes); eager/lazy views here do not observe
/// invalidations.
class MaterializedAggregate {
 public:
  virtual ~MaterializedAggregate() = default;

  /// Notifies the view that one row was just appended to the base table's
  /// hot delta (the view reads it from there).
  virtual Status OnInsertCommitted() = 0;

  /// Consistent result for the reading transaction. The lazy strategy
  /// first applies pending maintenance (committing its own transaction)
  /// and reads under the post-maintenance snapshot — the engine executes
  /// serially, so this is the caller's logical read time.
  virtual StatusOr<AggregateResult> Query(const Transaction& txn) = 0;

  /// Number of maintenance statements (summary-table updates/inserts)
  /// executed since the last call; the counter resets. The mixed-workload
  /// driver uses this to charge per-statement overhead to the strategies
  /// that issue extra statements (classical view maintenance runs through
  /// the SQL stack, the aggregate cache does not).
  virtual uint64_t ConsumeMaintenanceStatements() { return 0; }
};

/// Factory. `manager` is required for kAggregateCache and ignored
/// otherwise; the query must be single-table and validated.
StatusOr<std::unique_ptr<MaterializedAggregate>> CreateMaterializedAggregate(
    MaintenanceStrategy strategy, Database* db, const AggregateQuery& query,
    AggregateCacheManager* manager);

}  // namespace aggcache

#endif  // AGGCACHE_CACHE_MAINTENANCE_H_
