#include "cache/aggregate_cache_manager.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <iostream>
#include <optional>
#include <shared_mutex>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/active_queries.h"
#include "obs/engine_metrics.h"
#include "obs/flight_recorder.h"
#include "obs/perf_counters.h"
#include "obs/slow_log.h"
#include "obs/span.h"
#include "obs/trace_recorder.h"
#include "runtime/admission_controller.h"
#include "runtime/memory_tracker.h"
#include "runtime/query_context.h"
#include "storage/table_lock.h"
#include "txn/consistent_view_manager.h"
#include "verify/fault_injector.h"

namespace aggcache {

const char* ExecutionStrategyToString(ExecutionStrategy strategy) {
  switch (strategy) {
    case ExecutionStrategy::kUncached:
      return "uncached";
    case ExecutionStrategy::kCachedNoPruning:
      return "cached-no-pruning";
    case ExecutionStrategy::kCachedEmptyDeltaPruning:
      return "cached-empty-delta-pruning";
    case ExecutionStrategy::kCachedFullPruning:
      return "cached-full-pruning";
  }
  return "?";
}

namespace {

PruneLevel PruneLevelFor(ExecutionStrategy strategy) {
  switch (strategy) {
    case ExecutionStrategy::kUncached:
    case ExecutionStrategy::kCachedNoPruning:
      return PruneLevel::kNone;
    case ExecutionStrategy::kCachedEmptyDeltaPruning:
      return PruneLevel::kEmptyPartitions;
    case ExecutionStrategy::kCachedFullPruning:
      return PruneLevel::kFull;
  }
  return PruneLevel::kNone;
}

/// Cheap membership test on table names — avoids re-binding every cached
/// query against the catalog on every merge just to discover the entry does
/// not reference the merged table.
bool QueryUsesTable(const AggregateQuery& query, const Table& table) {
  for (const TableRef& ref : query.tables) {
    if (ref.table_name == table.name()) return true;
  }
  return false;
}

void AppendJsonEscapedTo(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      *out += StrFormat("\\u%04x", c);
    } else {
      *out += c;
    }
  }
}

void AppendPerfJson(std::string* out, const PerfDelta& delta) {
  *out += StrFormat(
      "{\"cycles\":%llu,\"instructions\":%llu,\"ipc\":%.2f,"
      "\"llc_misses\":%llu,\"branch_misses\":%llu,\"task_clock_ns\":%llu}",
      static_cast<unsigned long long>(delta.cycles),
      static_cast<unsigned long long>(delta.instructions), delta.Ipc(),
      static_cast<unsigned long long>(delta.llc_misses),
      static_cast<unsigned long long>(delta.branch_misses),
      static_cast<unsigned long long>(delta.task_clock_ns));
}

/// Assembles one slow-query record: identity, wall outcome, the governance
/// line, perf deltas when the host can read counters, the full EXPLAIN
/// trace when one was installed, and this query's span subtree when the
/// span recorder is on. Only runs for queries already over the threshold —
/// cost is irrelevant next to the query itself.
std::string BuildSlowQueryRecord(const std::string& statement,
                                 const char* strategy, double elapsed_ms,
                                 uint64_t admission_wait_us,
                                 const QueryContext& ctx, const Status& status,
                                 const QueryTrace* trace,
                                 const PerfDelta& perf_total,
                                 uint64_t span_query_id) {
  int64_t t_unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count();
  std::string out = StrFormat(
      "{\"t_unix_ms\":%lld,\"elapsed_ms\":%.3f,\"strategy\":\"%s\","
      "\"statement\":\"",
      static_cast<long long>(t_unix_ms), elapsed_ms, strategy);
  AppendJsonEscapedTo(&out, statement);
  out += "\",\"status\":\"";
  AppendJsonEscapedTo(&out, status.ok() ? "ok" : status.message());
  out += StrFormat(
      "\",\"governance\":{\"admission_wait_us\":%llu,"
      "\"mem_peak_bytes\":%zu,\"rows_scanned\":%llu,\"abort\":\"%s\"}",
      static_cast<unsigned long long>(admission_wait_us),
      ctx.memory_high_water(),
      static_cast<unsigned long long>(ctx.rows_scanned()),
      ctx.abort_reason() == QueryAbortReason::kNone
          ? ""
          : QueryAbortReasonToString(ctx.abort_reason()));
  if (perf_total.valid) {
    out += ",\"perf\":";
    AppendPerfJson(&out, perf_total);
  }
  if (trace != nullptr) {
    out += ",\"trace\":";
    out += trace->ToJson();
  }
  SpanRecorder& recorder = SpanRecorder::Global();
  if (span_query_id != 0 && recorder.enabled()) {
    // The root span itself records at destruction (after this), so the
    // subtree holds the completed child spans.
    out += ",\"spans\":[";
    bool first = true;
    for (const SpanRecorder::Span& span : recorder.Collect()) {
      if (span.query_id != span_query_id) continue;
      if (!first) out += ',';
      first = false;
      out += StrFormat(
          "{\"name\":\"%s\",\"ts\":%llu,\"dur\":%llu,\"id\":%llu,"
          "\"parent\":%llu,\"detail\":\"",
          SpanKindToString(span.kind),
          static_cast<unsigned long long>(span.start_us),
          static_cast<unsigned long long>(span.dur_us),
          static_cast<unsigned long long>(span.span_id),
          static_cast<unsigned long long>(span.parent_id));
      AppendJsonEscapedTo(&out, span.detail);
      out += "\"}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

}  // namespace

AggregateCacheManager::AggregateCacheManager(Database* db, Config config)
    : db_(db), config_(config), executor_(db) {
  db_->AddMergeObserver(this);
}

AggregateCacheManager::~AggregateCacheManager() {
  db_->RemoveMergeObserver(this);
}

AggregateCacheManager::Shard& AggregateCacheManager::ShardFor(
    const CacheKey& key) const {
  return const_cast<Shard&>(shards_[CacheKeyHash{}(key) % kNumShards]);
}

size_t AggregateCacheManager::num_entries() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.entries.size();
  }
  return n;
}

size_t AggregateCacheManager::RecomputeTotalBytes() const {
  // Shard locks before bytes_mu_, per the lock hierarchy; bytes_accounted
  // is guarded by bytes_mu_.
  std::array<std::unique_lock<std::mutex>, kNumShards> shard_locks;
  for (size_t i = 0; i < kNumShards; ++i) {
    shard_locks[i] = std::unique_lock<std::mutex>(shards_[i].mu);
  }
  std::lock_guard<std::mutex> bytes_lock(bytes_mu_);
  size_t bytes = 0;
  for (const Shard& shard : shards_) {
    for (const auto& [key, entry] : shard.entries) {
      if (entry->bytes_accounted) bytes += entry->metrics().size_bytes;
    }
  }
  return bytes;
}

size_t AggregateCacheManager::total_bytes() const {
  std::lock_guard<std::mutex> lock(bytes_mu_);
  return total_bytes_;
}

void AggregateCacheManager::AssertByteAccountingLocked() const {
#ifndef NDEBUG
  std::lock_guard<std::mutex> bytes_lock(bytes_mu_);
  size_t recomputed = 0;
  for (const Shard& shard : shards_) {
    for (const auto& [key, entry] : shard.entries) {
      if (entry->bytes_accounted) recomputed += entry->metrics().size_bytes;
    }
  }
  AGGCACHE_CHECK(total_bytes_ == recomputed)
      << "running byte total " << total_bytes_ << " != recomputed "
      << recomputed;
#endif
}

void AggregateCacheManager::RefreshEntrySize(CacheEntry& entry) {
  std::lock_guard<std::mutex> lock(bytes_mu_);
  // The Cache() tracker mirrors total_bytes_ exactly, so process-level
  // pressure sees cached values alongside query reservations.
  if (entry.bytes_accounted) {
    total_bytes_ -= entry.metrics().size_bytes;
    MemoryTracker::Cache().Release(entry.metrics().size_bytes);
  }
  entry.RefreshSizeBytes();
  if (entry.bytes_accounted) {
    total_bytes_ += entry.metrics().size_bytes;
    MemoryTracker::Cache().Reserve(entry.metrics().size_bytes);
  }
}

void AggregateCacheManager::Clear() {
  std::array<std::unique_lock<std::mutex>, kNumShards> shard_locks;
  for (size_t i = 0; i < kNumShards; ++i) {
    shard_locks[i] = std::unique_lock<std::mutex>(shards_[i].mu);
  }
  for (Shard& shard : shards_) {
    for (auto& [key, entry] : shard.entries) {
      {
        std::lock_guard<std::mutex> bytes_lock(bytes_mu_);
        if (entry->bytes_accounted) {
          total_bytes_ -= entry->metrics().size_bytes;
          MemoryTracker::Cache().Release(entry->metrics().size_bytes);
          entry->bytes_accounted = false;
        }
      }
      // In-flight creators notice the eviction at finalization (their
      // residency check fails); waiters wake, see kEvicted, and retry.
      entry->SetState(EntryState::kEvicted);
    }
    shard.entries.clear();
  }
}

const CacheEntry* AggregateCacheManager::Find(
    const AggregateQuery& query) const {
  CacheKey key = MakeCacheKey(query);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  return it == shard.entries.end() ? nullptr : it->second.get();
}

void AggregateCacheManager::TouchEntry(CacheEntry& entry) {
  entry.metrics().last_access_ns =
      access_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::vector<std::shared_ptr<CacheEntry>>
AggregateCacheManager::SnapshotEntries() const {
  std::vector<std::shared_ptr<CacheEntry>> entries;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.entries) {
      entries.push_back(entry);
    }
  }
  return entries;
}

std::vector<CacheDescriptor> AggregateCacheManager::ExportCacheDescriptors()
    const {
  std::vector<CacheDescriptor> descriptors;
  for (const std::shared_ptr<CacheEntry>& entry : SnapshotEntries()) {
    if (entry->state() != EntryState::kReady) continue;
    CacheDescriptor d;
    d.query = entry->query();
    d.hit_count = entry->metrics().hit_count.load(std::memory_order_relaxed);
    d.main_exec_ms =
        entry->metrics().main_exec_ms.load(std::memory_order_relaxed);
    {
      // base_tid is guarded by the value lock; shared is enough to read.
      std::shared_lock<std::shared_mutex> value_lock(entry->value_mutex());
      d.base_tid = entry->base_tid();
    }
    descriptors.push_back(std::move(d));
  }
  return descriptors;
}

void AggregateCacheManager::ImportWarmDescriptors(
    std::vector<CacheDescriptor> descriptors) {
  std::lock_guard<std::mutex> lock(warm_mu_);
  for (CacheDescriptor& d : descriptors) {
    std::string key = d.query.CanonicalString();
    warm_descriptors_.emplace(std::move(key), std::move(d));
  }
}

size_t AggregateCacheManager::warm_descriptors_pending() const {
  std::lock_guard<std::mutex> lock(warm_mu_);
  return warm_descriptors_.size();
}

void AggregateCacheManager::RemoveEntry(
    const std::shared_ptr<CacheEntry>& entry) {
  Shard& shard = ShardFor(entry->key());
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(entry->key());
  if (it == shard.entries.end() || it->second != entry) return;
  {
    std::lock_guard<std::mutex> bytes_lock(bytes_mu_);
    if (entry->bytes_accounted) {
      total_bytes_ -= entry->metrics().size_bytes;
      MemoryTracker::Cache().Release(entry->metrics().size_bytes);
      entry->bytes_accounted = false;
    }
  }
  shard.entries.erase(it);
}

Status AggregateCacheManager::RebuildEntry(CacheEntry& entry,
                                           const BoundQuery& bound,
                                           Snapshot snapshot) {
  RETURN_IF_ERROR(FaultInjector::Global().MaybeFail("cache.build"));
  EngineMetrics::Get().cache_rebuilds->Increment();
  ScopedSpan build_span(SpanKind::kEntryBuild);
  PerfPhaseRegion build_perf(SpanKindToString(SpanKind::kEntryBuild),
                             &build_span);
  ActiveQueryGuard::CurrentSetPhase(SpanKindToString(SpanKind::kEntryBuild));
  Stopwatch watch;
  entry.main_partials().clear();
  // Cross-temperature all-main combos can be pruned logically at build time
  // (Section 5.4); tid-range pruning is sound here as well. Prune decisions
  // stay on the calling thread; the surviving subjoins fan out.
  JoinPruner pruner(db_, PruneLevel::kFull);
  std::vector<MdBinding> mds = ResolveMds(bound);
  std::vector<SubjoinCombination> combos =
      EnumerateAllMainCombinations(bound.tables);
  std::vector<char> pruned(combos.size(), 0);
  for (size_t i = 0; i < combos.size(); ++i) {
    PruneDecision decision = pruner.ShouldPrune(bound, mds, combos[i]);
    pruned[i] = decision.pruned ? 1 : 0;
    RecordSubjoin(bound, mds, combos[i], "build", decision, {});
  }
  std::vector<AggregateResult> partials(combos.size());
  std::vector<ExecutorStats> task_stats(combos.size());
  std::vector<Status> task_status(combos.size());
  // Re-install the building query's governance context on the pool workers,
  // plus the span parent so build subjoins land under the build span.
  QueryContext* ctx = QueryContext::Current();
  SpanLink span_parent = CurrentSpanLink();
  ParallelFor(combos.size(), [&](size_t i) {
    ScopedQueryContext scope(ctx);
    if (pruned[i]) {
      partials[i] = AggregateResult(bound.aggregates.size());
      return;
    }
    ScopedSpan task_span(SpanKind::kSubjoinTask, span_parent, "build");
    auto partial =
        executor_.ExecuteSubjoin(bound, combos[i], snapshot,
                                 /*extra_filters=*/{},
                                 /*restriction=*/nullptr, &task_stats[i]);
    if (partial.ok()) {
      partials[i] = std::move(partial).value();
    } else {
      task_status[i] = partial.status();
    }
  });
  // Stats merge all-or-none before the error check, matching the registry
  // flushes each subjoin already performed on its worker.
  uint64_t rows_aggregated = 0;
  Status first_error;
  for (size_t i = 0; i < combos.size(); ++i) {
    executor_.stats().MergeFrom(task_stats[i]);
    rows_aggregated += task_stats[i].rows_scanned;
    if (first_error.ok() && !task_status[i].ok()) first_error = task_status[i];
  }
  RETURN_IF_ERROR(first_error);
  for (size_t i = 0; i < combos.size(); ++i) {
    entry.main_partials()[std::move(combos[i])] = std::move(partials[i]);
  }
  RefreshSnapshots(entry, bound, snapshot);
  RefreshEntrySize(entry);
  entry.metrics().main_exec_ms = watch.ElapsedMillis();
  entry.metrics().main_rows_aggregated = rows_aggregated;
  CacheEntryMetrics::Ewma(entry.metrics().ewma_rebuild_ms,
                          watch.ElapsedMillis());
  entry.ClearRebuildMark();
  EngineMetrics::Get().cache_build_us->Observe(
      static_cast<uint64_t>(watch.ElapsedNanos() / 1000));
  return Status::Ok();
}

void AggregateCacheManager::RefreshSnapshots(CacheEntry& entry,
                                             const BoundQuery& bound,
                                             Snapshot snapshot) {
  entry.snapshots().clear();
  entry.snapshots().resize(bound.tables.size());
  for (size_t t = 0; t < bound.tables.size(); ++t) {
    const Table& table = *bound.tables[t];
    entry.snapshots()[t].resize(table.num_groups());
    for (size_t g = 0; g < table.num_groups(); ++g) {
      const Partition& main = table.group(g).main;
      CacheEntry::MainSnapshot& snap = entry.snapshots()[t][g];
      snap.visibility = ConsistentViewManager::ComputeVisibility(
          main.create_tids(), main.invalidate_tids(), snapshot);
      snap.row_count = main.num_rows();
      snap.invalidation_count = main.invalidation_count();
    }
  }
  // The visibility just computed reflects exactly this snapshot: readers
  // older than it can no longer use the entry.
  entry.set_base_tid(snapshot.read_tid);
}

StatusOr<std::shared_ptr<CacheEntry>> AggregateCacheManager::GetOrCreateEntry(
    const BoundQuery& bound, Snapshot snapshot, CacheExecStats* stats) {
  CacheKey key = MakeCacheKey(*bound.query);
  Shard& shard = ShardFor(key);

  // Degradation ladder: while the process tracker reports memory pressure,
  // existing entries keep serving hits but no new value is built — the
  // caller streams the answer uncached (delta compensation needs no
  // resident value) and eviction below frees headroom.
  const bool under_pressure = MemoryTracker::Process().UnderPressure();
  UpdateDegradedMode(under_pressure);

  // Bounded retries: each kEvicted wake-up means the winning creator was
  // rejected by admission, failed, or got evicted immediately; after a few
  // rounds this caller gives up and answers uncached instead of livelocking
  // against a hostile eviction pattern.
  for (int attempt = 0; attempt < 3; ++attempt) {
    std::shared_ptr<CacheEntry> entry;
    bool creator = false;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.entries.find(key);
      if (it != shard.entries.end()) {
        entry = it->second;
      } else if (under_pressure) {
        entry = nullptr;
      } else {
        // Insert a kBuilding placeholder while still holding the shard
        // lock: concurrent misses on this key find it and wait instead of
        // building the same aggregate N times (single-flight).
        entry = std::make_shared<CacheEntry>(key, *bound.query);
        shard.entries.emplace(key, entry);
        creator = true;
      }
    }

    if (entry == nullptr) {
      // Build refused under memory pressure. Evict low-profit entries to
      // restore headroom before answering uncached; the lookup counts as a
      // miss at the caller's fallback site.
      EngineMetrics::Get().mem_pressure_rejects->Increment();
      EvictIfNeeded();
      return std::shared_ptr<CacheEntry>();
    }

    if (!creator) {
      bool waited = false;
      uint64_t wait_start_us = SpanRecorder::Global().NowMicros();
      EntryState state = entry->WaitUntilSettled(&waited);
      if (waited) {
        EngineMetrics::Get().cache_singleflight_waits->Increment();
        RecordFlightEvent(FlightEventType::kSingleFlightWait,
                          static_cast<uint64_t>(key.hash));
        RecordSpanSince(SpanKind::kSingleFlightWait, wait_start_us);
      }
      if (state == EntryState::kEvicted) continue;
      TouchEntry(*entry);
      return entry;
    }

    // This thread won the build. Materialize under the exclusive value
    // lock; waiters park on the state machine, not the value lock, so a
    // failure below can still wake them with kEvicted.
    Status build_status;
    {
      std::unique_lock<std::shared_mutex> value_lock(entry->value_mutex());
      build_status = RebuildEntry(*entry, bound, snapshot);
    }
    if (!build_status.ok()) {
      RemoveEntry(entry);
      entry->SetState(EntryState::kEvicted);
      return build_status;
    }
    if (stats != nullptr) {
      stats->entry_created = true;
      stats->main_exec_ms = entry->metrics().main_exec_ms;
    }

    // Warm restart: a descriptor recovered from the last checkpoint proves
    // this aggregate earned its place before the restart, so it bypasses
    // the admission gate and inherits its profit history. The value itself
    // was just rebuilt from current data above — the descriptor's stale
    // base tid never reaches the entry.
    bool warm_admitted = false;
    {
      std::lock_guard<std::mutex> warm_lock(warm_mu_);
      auto warm = warm_descriptors_.find(key.canonical);
      if (warm != warm_descriptors_.end()) {
        entry->metrics().hit_count.store(warm->second.hit_count,
                                         std::memory_order_relaxed);
        warm_descriptors_.erase(warm);
        warm_admitted = true;
      }
    }
    if (warm_admitted) {
      EngineMetrics::Get().recovery_warm_admissions->Increment();
    }

    // Admission: creating the entry already produced the main result; an
    // unprofitable aggregate is simply not stored (Fig. 3's "profitable
    // enough" gate) and the caller falls back to uncached execution.
    if (!warm_admitted &&
        entry->metrics().main_exec_ms < config_.min_main_exec_ms) {
      RecordFlightEvent(FlightEventType::kAdmissionReject,
                        static_cast<uint64_t>(key.hash), 0,
                        "below-min-exec-ms");
      RemoveEntry(entry);
      entry->SetState(EntryState::kEvicted);
      return std::shared_ptr<CacheEntry>();
    }

    // Finalize: account the bytes only if the entry is still resident — a
    // concurrent Clear() may have dropped the placeholder while we built.
    bool resident = false;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.entries.find(key);
      resident = it != shard.entries.end() && it->second == entry;
      if (resident) {
        std::lock_guard<std::mutex> bytes_lock(bytes_mu_);
        entry->bytes_accounted = true;
        total_bytes_ += entry->metrics().size_bytes;
        MemoryTracker::Cache().Reserve(entry->metrics().size_bytes);
      }
    }
    entry->SetState(resident ? EntryState::kReady : EntryState::kEvicted);
    TouchEntry(*entry);
    if (resident) EvictIfNeeded(entry.get());
    // Even when no longer resident the freshly built value is consistent
    // for this snapshot, so the caller uses it; it dies with the last
    // holder.
    return entry;
  }
  return std::shared_ptr<CacheEntry>();
}

Status AggregateCacheManager::MainCompensate(CacheEntry& entry,
                                             const BoundQuery& bound,
                                             Snapshot snapshot,
                                             CacheExecStats* stats) {
  if (!entry.IsDirty(bound.tables)) return Status::Ok();
  ScopedSpan comp_span(SpanKind::kMainCorrection);
  PerfPhaseRegion comp_perf(SpanKindToString(SpanKind::kMainCorrection),
                            &comp_span);
  ActiveQueryGuard::CurrentSetPhase(
      SpanKindToString(SpanKind::kMainCorrection));
  Stopwatch watch;
  auto observe_latency = [&watch] {
    EngineMetrics::Get().cache_main_comp_us->Observe(
        static_cast<uint64_t>(watch.ElapsedNanos() / 1000));
  };
  if (bound.tables.size() > 1) {
    if (config_.incremental_join_main_compensation) {
      RETURN_IF_ERROR(JoinMainCompensate(entry, bound, snapshot));
      if (stats != nullptr) stats->main_comp_ms += watch.ElapsedMillis();
    } else {
      // The paper's baseline behaviour: recompute the entry.
      RETURN_IF_ERROR(RebuildEntry(entry, bound, snapshot));
      if (stats != nullptr) {
        stats->entry_rebuilt = true;
        stats->main_exec_ms = entry.metrics().main_exec_ms;
        stats->main_comp_ms += watch.ElapsedMillis();
      }
    }
    observe_latency();
    return Status::Ok();
  }

  // Single-table entry: bit-vector comparison finds rows invalidated since
  // the snapshot; subtract their contribution (Section 2.2).
  const Table& table = *bound.tables[0];
  for (size_t g = 0; g < table.num_groups(); ++g) {
    const Partition& main = table.group(g).main;
    CacheEntry::MainSnapshot& snap = entry.snapshots()[0][g];
    if (main.invalidation_count() == snap.invalidation_count) continue;
    BitVector current = ConsistentViewManager::ComputeVisibility(
        main.create_tids(), main.invalidate_tids(), snapshot);
    std::vector<uint32_t> invalidated =
        snap.visibility.OnesClearedIn(current);
    ASSIGN_OR_RETURN(AggregateResult contribution,
                     ComputeRowsContribution(bound, g, invalidated));
    SubjoinCombination combo{
        PartitionRef{static_cast<uint32_t>(g), PartitionKind::kMain}};
    auto it = entry.main_partials().find(combo);
    if (it == entry.main_partials().end()) {
      return Status::Internal("missing main partial for group");
    }
    RETURN_IF_ERROR(it->second.SubtractFrom(contribution));
    snap.visibility = std::move(current);
    snap.invalidation_count = main.invalidation_count();
  }
  entry.set_base_tid(snapshot.read_tid);
  RefreshEntrySize(entry);
  if (stats != nullptr) stats->main_comp_ms += watch.ElapsedMillis();
  observe_latency();
  return Status::Ok();
}

Status AggregateCacheManager::JoinMainCompensate(CacheEntry& entry,
                                                 const BoundQuery& bound,
                                                 Snapshot snapshot) {
  const size_t num_tables = bound.tables.size();

  // Invalidated ("negative delta") rows per (table, group) since the entry
  // snapshot, computed once and shared across combos; snapshots are
  // refreshed only after every combo is corrected.
  std::vector<std::vector<std::vector<uint32_t>>> negative(num_tables);
  std::vector<std::vector<BitVector>> current_visibility(num_tables);
  for (size_t t = 0; t < num_tables; ++t) {
    const Table& table = *bound.tables[t];
    negative[t].resize(table.num_groups());
    current_visibility[t].resize(table.num_groups());
    for (size_t g = 0; g < table.num_groups(); ++g) {
      const Partition& main = table.group(g).main;
      CacheEntry::MainSnapshot& snap = entry.snapshots()[t][g];
      if (main.invalidation_count() == snap.invalidation_count) continue;
      current_visibility[t][g] = ConsistentViewManager::ComputeVisibility(
          main.create_tids(), main.invalidate_tids(), snapshot);
      negative[t][g] = snap.visibility.OnesClearedIn(current_visibility[t][g]);
    }
  }

  // One correction join per (dirty combo, non-empty subset of its dirty
  // tables): subset members restricted to their negative-delta rows, the
  // rest to rows visible now. All corrections are subtracted (no
  // alternating signs: prod(C+N) expands into a plain sum over subsets).
  // The 2^d - 1 joins per combo are independent, so every (combo, mask)
  // pair fans out across the pool; corrections merge back per combo in
  // mask order for determinism.
  struct CorrectionJob {
    size_t combo_index = 0;
    const SubjoinCombination* combo = nullptr;
    Executor::RowRestriction restriction;
  };
  std::vector<AggregateResult*> dirty_partials;
  std::vector<CorrectionJob> jobs;
  for (auto& [combo, partial] : entry.main_partials()) {
    std::vector<size_t> dirty_tables;
    for (size_t t = 0; t < num_tables; ++t) {
      if (!negative[t][combo[t].group].empty()) dirty_tables.push_back(t);
    }
    if (dirty_tables.empty()) continue;
    size_t combo_index = dirty_partials.size();
    dirty_partials.push_back(&partial);
    for (uint32_t mask = 1; mask < (1u << dirty_tables.size()); ++mask) {
      CorrectionJob job;
      job.combo_index = combo_index;
      job.combo = &combo;
      job.restriction.rows.resize(num_tables);
      job.restriction.bypass_visibility_for_restricted = true;
      for (size_t i = 0; i < dirty_tables.size(); ++i) {
        if (mask & (1u << i)) {
          size_t t = dirty_tables[i];
          job.restriction.rows[t] = negative[t][combo[t].group];
        }
      }
      jobs.push_back(std::move(job));
    }
  }

  // Correction joins are part of the answer an EXPLAIN-ing caller sees:
  // record them (no MD bindings — restrictions, not tid ranges, select the
  // rows here).
  if (TraceContext::Current() != nullptr) {
    for (const CorrectionJob& job : jobs) {
      RecordSubjoin(bound, {}, *job.combo, "main-correction", PruneDecision{},
                    {});
    }
  }

  std::vector<AggregateResult> terms(jobs.size());
  std::vector<ExecutorStats> task_stats(jobs.size());
  std::vector<Status> task_status(jobs.size());
  QueryContext* ctx = QueryContext::Current();
  SpanLink span_parent = CurrentSpanLink();
  ParallelFor(jobs.size(), [&](size_t j) {
    ScopedQueryContext scope(ctx);
    ScopedSpan task_span(SpanKind::kSubjoinTask, span_parent, "correction");
    auto term =
        executor_.ExecuteSubjoin(bound, *jobs[j].combo, snapshot,
                                 /*extra_filters=*/{}, &jobs[j].restriction,
                                 &task_stats[j]);
    if (term.ok()) {
      terms[j] = std::move(term).value();
    } else {
      task_status[j] = term.status();
    }
  });

  // Stats merge all-or-none first, so a failed correction term cannot leave
  // the shared counters short of what the registry already recorded.
  Status first_error;
  for (size_t j = 0; j < jobs.size(); ++j) {
    executor_.stats().MergeFrom(task_stats[j]);
    if (first_error.ok() && !task_status[j].ok()) first_error = task_status[j];
  }
  RETURN_IF_ERROR(first_error);

  // Jobs were emitted combo-major in mask order; replay that order exactly.
  size_t j = 0;
  for (size_t c = 0; c < dirty_partials.size(); ++c) {
    AggregateResult corrections(bound.aggregates.size());
    for (; j < jobs.size() && jobs[j].combo_index == c; ++j) {
      corrections.MergeFrom(terms[j]);
    }
    RETURN_IF_ERROR(dirty_partials[c]->SubtractFrom(corrections));
  }

  // All combos corrected: refresh the snapshots.
  for (size_t t = 0; t < num_tables; ++t) {
    const Table& table = *bound.tables[t];
    for (size_t g = 0; g < table.num_groups(); ++g) {
      if (negative[t][g].empty()) continue;
      CacheEntry::MainSnapshot& snap = entry.snapshots()[t][g];
      snap.visibility = std::move(current_visibility[t][g]);
      snap.invalidation_count = table.group(g).main.invalidation_count();
    }
  }
  entry.set_base_tid(snapshot.read_tid);
  RefreshEntrySize(entry);
  return Status::Ok();
}

StatusOr<AggregateResult> AggregateCacheManager::Execute(
    const AggregateQuery& query, const Transaction& txn,
    const ExecutionOptions& options) {
  // Governance entry point. Callers that installed their own QueryContext
  // keep it (the scope re-installs the same pointer); everyone else gets
  // one built from the env defaults, so AGGCACHE_QUERY_DEADLINE_MS /
  // AGGCACHE_QUERY_MEM_BUDGET govern standalone callers too.
  std::optional<QueryContext> env_context;
  QueryContext* ctx = QueryContext::Current();
  if (ctx == nullptr) {
    env_context.emplace(QueryContext::FromEnv());
    ctx = &*env_context;
  }
  ScopedQueryContext scope(ctx);
  // Span root for the whole execution: every phase span below (admission
  // wait, lookup, build, compensation, subjoin tasks) chains under it.
  QueryRootSpan root_span(ExecutionStrategyToString(options.strategy));
  QueryTrace* trace = TraceContext::Current();
  // Live introspection: registered before admission so a query parked in
  // the admission queue is already visible in /queries (phase
  // "admission_wait") and remotely cancellable while it waits.
  const std::string statement = trace != nullptr && !trace->statement.empty()
                                    ? trace->statement
                                    : MakeCacheKey(query).canonical;
  const char* strategy_name = ExecutionStrategyToString(options.strategy);
  ActiveQueryGuard aq_guard(statement, strategy_name, ctx);
  Stopwatch exec_watch;
  // Whole-execution hardware-counter sample. Unconditional (unlike the
  // phase regions): the ledger's hit EWMAs and the slow-query log consume
  // it even when no trace or span is listening, and after the first latch
  // on perf-denied hosts it costs one relaxed load.
  PerfDelta perf_begin = PerfCounters::Read();
  // The admission slot is held for the whole execution (ticket releases on
  // every return path); shed/timeout surfaces as a typed error before any
  // table lock is taken.
  Stopwatch admit_watch;
  aq_guard.SetPhase(SpanKindToString(SpanKind::kAdmissionWait));
  StatusOr<AdmissionController::Ticket> ticket_or = [&] {
    ScopedSpan admit_span(SpanKind::kAdmissionWait);
    return AdmissionController::Global().Admit(ctx);
  }();
  uint64_t admission_wait_us =
      static_cast<uint64_t>(admit_watch.ElapsedNanos() / 1000);
  aq_guard.SetAdmissionWait(admission_wait_us);
  if (trace != nullptr) trace->admission_wait_us = admission_wait_us;
  auto fill_governance = [&] {
    if (trace == nullptr) return;
    trace->mem_peak_bytes = ctx->memory_high_water();
    if (ctx->abort_reason() != QueryAbortReason::kNone) {
      trace->abort_cause = QueryAbortReasonToString(ctx->abort_reason());
    }
  };
  if (!ticket_or.ok()) {
    fill_governance();
    return ticket_or.status();
  }
  AdmissionController::Ticket ticket = std::move(ticket_or).value();
  CacheExecStats stats;
  PruneStats prune_acc;
  auto result =
      ExecuteInternal(query, txn, options, perf_begin, &stats, &prune_acc);
  PerfDelta perf_total = PerfCounters::Delta(perf_begin, PerfCounters::Read());
  if (trace != nullptr && perf_total.valid) {
    trace->perf_available = true;
    trace->perf_total = perf_total;
  }
  fill_governance();
  SlowQueryLog& slow_log = SlowQueryLog::Global();
  if (slow_log.enabled()) {
    double elapsed_ms = exec_watch.ElapsedMillis();
    if (elapsed_ms >= slow_log.threshold_ms()) {
      slow_log.Record(BuildSlowQueryRecord(
          statement, strategy_name, elapsed_ms, admission_wait_us, *ctx,
          result.status(), trace, perf_total, root_span.link().query_id));
    }
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  last_stats_ = stats;
  prune_stats_.considered += prune_acc.considered;
  prune_stats_.pruned_empty += prune_acc.pruned_empty;
  prune_stats_.pruned_aging += prune_acc.pruned_aging;
  prune_stats_.pruned_tid_range += prune_acc.pruned_tid_range;
  return result;
}

StatusOr<AggregateResult> AggregateCacheManager::ExecuteTraced(
    const AggregateQuery& query, const Transaction& txn,
    const ExecutionOptions& options, QueryTrace* trace) {
  AGGCACHE_CHECK(trace != nullptr);
  trace->strategy = ExecutionStrategyToString(options.strategy);
  trace->use_pushdown = options.use_predicate_pushdown;
  if (trace->statement.empty()) {
    trace->statement = MakeCacheKey(query).canonical;
  }
  Stopwatch watch;
  TraceContext scope(trace);
  auto result = Execute(query, txn, options);
  trace->total_ms = watch.ElapsedMillis();
  return result;
}

StatusOr<AggregateResult> AggregateCacheManager::ExecuteInternal(
    const AggregateQuery& query, const Transaction& txn,
    const ExecutionOptions& options, const PerfDelta& perf_begin,
    CacheExecStats* stats, PruneStats* prune_acc) {
  const EngineMetrics& metrics = EngineMetrics::Get();
  QueryTrace* trace = TraceContext::Current();
  // The subjoin count is exact single-threaded; under concurrent Execute
  // calls the shared counter makes the delta approximate (observability
  // only, never correctness).
  uint64_t subjoins_before = executor_.stats().Snapshot().subjoins_executed;
  Stopwatch total_watch;

  // The lookup span covers bind + consistent-view acquisition + entry
  // resolution + main repair; it ends (reset) before delta compensation so
  // the root's children tile the execution instead of overlapping.
  std::optional<ScopedSpan> lookup_span;
  if (options.strategy != ExecutionStrategy::kUncached) {
    lookup_span.emplace(SpanKind::kCacheLookup);
    ActiveQueryGuard::CurrentSetPhase(
        SpanKindToString(SpanKind::kCacheLookup));
  }

  ASSIGN_OR_RETURN(BoundQuery bound, BoundQuery::Bind(*db_, query));
  // The consistent view — shared locks on every bound table plus an epoch
  // pin — freezes main/delta/visibility state across all of them for the
  // whole execution (DESIGN.md §6).
  ReadView view = ReadView::Acquire(*db_, bound.tables, txn.snapshot());
  Snapshot snapshot = view.snapshot();
  if (trace != nullptr) trace->snapshot_tid = snapshot.read_tid;

  if (options.strategy == ExecutionStrategy::kUncached ||
      !query.IsCacheable()) {
    if (trace != nullptr) {
      trace->cache_outcome = options.strategy == ExecutionStrategy::kUncached
                                 ? "uncached"
                                 : "not-cacheable";
    }
    lookup_span.reset();
    ScopedSpan exec_span(SpanKind::kUncachedExec);
    PerfPhaseRegion exec_perf(SpanKindToString(SpanKind::kUncachedExec),
                              &exec_span);
    ActiveQueryGuard::CurrentSetPhase(
        SpanKindToString(SpanKind::kUncachedExec));
    ASSIGN_OR_RETURN(AggregateResult result,
                     executor_.ExecuteUncachedBound(bound, snapshot));
    stats->subjoins_executed =
        executor_.stats().Snapshot().subjoins_executed - subjoins_before;
    return result;
  }
  stats->used_cache = true;

  ASSIGN_OR_RETURN(std::shared_ptr<CacheEntry> entry,
                   GetOrCreateEntry(bound, snapshot, stats));
  if (entry == nullptr) {
    // Not admitted (or starved by eviction): answer without the cache. The
    // lookup still consulted the cache, so it counts — as a miss.
    metrics.cache_lookups->Increment();
    metrics.cache_misses->Increment();
    metrics.cache_admission_rejects->Increment();
    metrics.cache_uncached_fallbacks->Increment();
    if (trace != nullptr) trace->cache_outcome = "admission-rejected";
    stats->used_cache = false;
    lookup_span.reset();
    ScopedSpan exec_span(SpanKind::kUncachedExec);
    PerfPhaseRegion exec_perf(SpanKindToString(SpanKind::kUncachedExec),
                              &exec_span);
    ActiveQueryGuard::CurrentSetPhase(
        SpanKindToString(SpanKind::kUncachedExec));
    ASSIGN_OR_RETURN(AggregateResult result,
                     executor_.ExecuteUncachedBound(bound, snapshot));
    stats->subjoins_executed =
        executor_.stats().Snapshot().subjoins_executed - subjoins_before;
    return result;
  }

  // Read or repair the cached main result under the entry's value lock.
  // Fast path: a clean entry only needs the shared lock — concurrent hits
  // on one entry proceed in parallel.
  AggregateResult main_result;
  bool have_main = false;
  {
    std::shared_lock<std::shared_mutex> value_lock(entry->value_mutex());
    if (entry->base_tid() <= snapshot.read_tid &&
        entry->ShapeMatches(bound.tables) && !entry->IsDirty(bound.tables)) {
      main_result = entry->MergedMainResult(bound.aggregates.size());
      have_main = true;
      if (!stats->entry_created) stats->cache_hit = true;
    }
  }
  if (!have_main) {
    std::unique_lock<std::shared_mutex> value_lock(entry->value_mutex());
    if (entry->base_tid() > snapshot.read_tid) {
      // The entry moved past this reader's snapshot (compensation only
      // goes forward in time); answer uncached rather than stall the
      // entry for everyone else.
      value_lock.unlock();
      metrics.cache_lookups->Increment();
      metrics.cache_misses->Increment();
      metrics.cache_uncached_fallbacks->Increment();
      if (trace != nullptr) trace->cache_outcome = "snapshot-fallback";
      stats->used_cache = false;
      stats->cache_hit = false;
      lookup_span.reset();
      ScopedSpan exec_span(SpanKind::kUncachedExec);
      ASSIGN_OR_RETURN(AggregateResult result,
                       executor_.ExecuteUncachedBound(bound, snapshot));
      stats->subjoins_executed =
          executor_.stats().Snapshot().subjoins_executed - subjoins_before;
      return result;
    }
    if (!entry->ShapeMatches(bound.tables)) {
      // Partition layout changed (hot/cold split or a failed maintenance
      // pass): rebuild from scratch. kRebuilding shields the entry from
      // eviction while the recompute runs.
      bool claimed =
          entry->TryTransition(EntryState::kReady, EntryState::kRebuilding);
      Status rebuild_status = RebuildEntry(*entry, bound, snapshot);
      if (claimed) {
        entry->TryTransition(EntryState::kRebuilding, EntryState::kReady);
      }
      if (!rebuild_status.ok()) {
        entry->MarkForRebuild();
        return rebuild_status;
      }
      stats->entry_rebuilt = true;
      stats->main_exec_ms = entry->metrics().main_exec_ms;
    } else if (!stats->entry_created) {
      stats->cache_hit = true;
    }
    RETURN_IF_ERROR(MainCompensate(*entry, bound, snapshot, stats));
    // Capture the merged result before dropping the lock — the partials
    // may be compensated further the moment it is released.
    main_result = entry->MergedMainResult(bound.aggregates.size());
  }
  TouchEntry(*entry);
  lookup_span.reset();

  // Delta compensation needs no entry lock: it reads only table state,
  // which the ReadView keeps frozen.
  Stopwatch delta_watch;
  JoinPruner pruner(db_, PruneLevelFor(options.strategy));
  std::vector<MdBinding> mds = ResolveMds(bound);
  CompensationStats comp_stats;
  StatusOr<AggregateResult> delta_or = [&] {
    ScopedSpan delta_span(SpanKind::kDeltaCompensation);
    PerfPhaseRegion delta_perf(
        SpanKindToString(SpanKind::kDeltaCompensation), &delta_span);
    ActiveQueryGuard::CurrentSetPhase(
        SpanKindToString(SpanKind::kDeltaCompensation));
    return DeltaCompensate(executor_, bound, mds, pruner,
                           options.use_predicate_pushdown, snapshot,
                           &comp_stats);
  }();
  RETURN_IF_ERROR(delta_or.status());
  main_result.MergeFrom(delta_or.value());
  AggregateResult result = query.ApplyHaving(std::move(main_result));

  double delta_ms = delta_watch.ElapsedMillis();
  // Only true hits count toward profit: the miss that just created (or the
  // access that rebuilt) the entry saved nothing, and crediting it would
  // inflate Profit() for new entries and skew eviction.
  if (stats->cache_hit) {
    CacheEntryMetrics& em = entry->metrics();
    CacheEntryMetrics::Add(em.total_delta_comp_ms, delta_ms);
    em.delta_comp_count.fetch_add(1, std::memory_order_relaxed);
    em.hit_count.fetch_add(1, std::memory_order_relaxed);
    // Ledger: what this hit cost and what it saved. "Saved" is the entry's
    // recorded main execution cost (what recomputing the mains would have
    // taken) minus the compensation actually paid — negative when the
    // deltas have outgrown the entry.
    double hit_ms = total_watch.ElapsedMillis();
    double comp_paid_ms = delta_ms + stats->main_comp_ms;
    double saved_ms =
        em.main_exec_ms.load(std::memory_order_relaxed) - comp_paid_ms;
    CacheEntryMetrics::Ewma(em.ewma_hit_ms, hit_ms);
    CacheEntryMetrics::Ewma(em.ewma_delta_comp_ms, delta_ms);
    CacheEntryMetrics::Ewma(em.ewma_delta_rows,
                            static_cast<double>(comp_stats.rows_scanned));
    // Hardware grounding for the ledger: what this hit cost the
    // orchestration thread in cycles and LLC misses. Invalid (skipped)
    // when the host cannot read counters — the EWMAs then stay 0 ("not
    // measured"), never fabricate.
    PerfDelta hit_perf =
        PerfCounters::Delta(perf_begin, PerfCounters::Read());
    if (hit_perf.valid) {
      CacheEntryMetrics::Ewma(em.ewma_hit_cycles,
                              static_cast<double>(hit_perf.cycles));
      CacheEntryMetrics::Ewma(em.ewma_hit_llc_miss,
                              static_cast<double>(hit_perf.llc_misses));
    }
    CacheEntryMetrics::Add(em.saved_ms_total, saved_ms);
    em.delta_rows_scanned.fetch_add(comp_stats.rows_scanned,
                                    std::memory_order_relaxed);
    metrics.entry_hit_us->Observe(static_cast<uint64_t>(hit_ms * 1000.0));
    if (saved_ms >= 0) {
      metrics.entry_saved_us->Increment(
          static_cast<uint64_t>(saved_ms * 1000.0));
    } else {
      metrics.entry_comp_overrun_us->Increment(
          static_cast<uint64_t>(-saved_ms * 1000.0));
    }
    metrics.entry_delta_rows->Increment(comp_stats.rows_scanned);
  }

  stats->delta_comp_ms = delta_ms;
  stats->subjoins_pruned = comp_stats.subjoins_pruned;
  stats->subjoins_executed =
      executor_.stats().Snapshot().subjoins_executed - subjoins_before;
  prune_acc->considered += pruner.stats().considered;
  prune_acc->pruned_empty += pruner.stats().pruned_empty;
  prune_acc->pruned_aging += pruner.stats().pruned_aging;
  prune_acc->pruned_tid_range += pruner.stats().pruned_tid_range;

  // Exactly one of the four outcome sites counts each consulted lookup
  // (here, the two fallbacks above, or the admission reject), so
  // hits + misses == lookups holds registry-wide. Error returns count
  // nothing: the lookup never produced an answer.
  metrics.cache_lookups->Increment();
  if (stats->cache_hit) {
    metrics.cache_hits->Increment();
  } else {
    metrics.cache_misses->Increment();
  }
  metrics.cache_delta_comp_us->Observe(
      static_cast<uint64_t>(delta_ms * 1000.0));
  if (trace != nullptr) {
    trace->cache_outcome = stats->entry_rebuilt ? "rebuilt"
                           : stats->cache_hit  ? "hit"
                                               : "miss";
    trace->build_ms = stats->main_exec_ms;
    trace->main_comp_ms = stats->main_comp_ms;
    trace->delta_comp_ms = stats->delta_comp_ms;
  }
  return result;
}

Status AggregateCacheManager::Prewarm(const AggregateQuery& query) {
  if (!query.IsCacheable()) {
    return Status::InvalidArgument("query does not qualify for the cache");
  }
  ASSIGN_OR_RETURN(BoundQuery bound, BoundQuery::Bind(*db_, query));
  ReadView view = ReadView::Acquire(*db_, bound.tables);
  Snapshot snapshot = view.snapshot();
  ASSIGN_OR_RETURN(std::shared_ptr<CacheEntry> entry,
                   GetOrCreateEntry(bound, snapshot, nullptr));
  if (entry == nullptr) {
    return Status::FailedPrecondition("aggregate not profitable enough");
  }
  std::unique_lock<std::shared_mutex> value_lock(entry->value_mutex());
  if (entry->base_tid() > snapshot.read_tid) return Status::Ok();
  return MainCompensate(*entry, bound, snapshot, nullptr);
}

CacheExecStats AggregateCacheManager::last_exec_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return last_stats_;
}

namespace {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      *out += StrFormat("\\u%04x", c);
    } else {
      *out += c;
    }
  }
}

}  // namespace

std::vector<AggregateCacheManager::LedgerEntry>
AggregateCacheManager::LedgerSnapshot() const {
  std::vector<LedgerEntry> ledger;
  for (const std::shared_ptr<CacheEntry>& entry : SnapshotEntries()) {
    const CacheEntryMetrics& m = entry->metrics();
    LedgerEntry row;
    row.query = entry->key().canonical;
    row.hits = m.hit_count.load(std::memory_order_relaxed);
    row.size_bytes = m.size_bytes.load(std::memory_order_relaxed);
    row.main_exec_ms = m.main_exec_ms.load(std::memory_order_relaxed);
    row.ewma_hit_ms = m.ewma_hit_ms.load(std::memory_order_relaxed);
    row.ewma_delta_comp_ms =
        m.ewma_delta_comp_ms.load(std::memory_order_relaxed);
    row.ewma_rebuild_ms = m.ewma_rebuild_ms.load(std::memory_order_relaxed);
    row.ewma_delta_rows = m.ewma_delta_rows.load(std::memory_order_relaxed);
    row.delta_rows_scanned =
        m.delta_rows_scanned.load(std::memory_order_relaxed);
    row.saved_ms_total = m.saved_ms_total.load(std::memory_order_relaxed);
    row.profit = m.Profit();
    row.ewma_hit_cycles = m.ewma_hit_cycles.load(std::memory_order_relaxed);
    row.ewma_hit_llc_miss =
        m.ewma_hit_llc_miss.load(std::memory_order_relaxed);
    ledger.push_back(std::move(row));
  }
  // Biggest net winners first; ties broken by key so the ordering is
  // deterministic for goldens and diffs.
  std::sort(ledger.begin(), ledger.end(),
            [](const LedgerEntry& x, const LedgerEntry& y) {
              if (x.saved_ms_total != y.saved_ms_total) {
                return x.saved_ms_total > y.saved_ms_total;
              }
              return x.query < y.query;
            });
  return ledger;
}

std::string AggregateCacheManager::LedgerJson() const {
  std::vector<LedgerEntry> ledger = LedgerSnapshot();
  std::string out;
  out.reserve(64 + ledger.size() * 256);
  out += "{\"schema\":\"aggcache-ledger-v1\",\"entries\":[";
  bool first = true;
  for (const LedgerEntry& row : ledger) {
    if (!first) out += ",";
    first = false;
    out += "{\"query\":\"";
    AppendJsonEscaped(&out, row.query);
    out += "\",\"hits\":";
    out += std::to_string(row.hits);
    out += ",\"size_bytes\":";
    out += std::to_string(row.size_bytes);
    out += StrFormat(",\"main_exec_ms\":%.3f", row.main_exec_ms);
    out += StrFormat(",\"ewma_hit_ms\":%.3f", row.ewma_hit_ms);
    out += StrFormat(",\"ewma_delta_comp_ms\":%.3f", row.ewma_delta_comp_ms);
    out += StrFormat(",\"ewma_rebuild_ms\":%.3f", row.ewma_rebuild_ms);
    out += StrFormat(",\"ewma_delta_rows\":%.1f", row.ewma_delta_rows);
    out += ",\"delta_rows_scanned\":";
    out += std::to_string(row.delta_rows_scanned);
    out += StrFormat(",\"saved_ms_total\":%.3f", row.saved_ms_total);
    out += StrFormat(",\"profit\":%.3f", row.profit);
    out += StrFormat(",\"ewma_hit_cycles\":%.0f", row.ewma_hit_cycles);
    out += StrFormat(",\"ewma_hit_llc_miss\":%.0f}", row.ewma_hit_llc_miss);
  }
  out += "]}";
  return out;
}

std::string AggregateCacheManager::LedgerText(size_t top_n) const {
  std::vector<LedgerEntry> ledger = LedgerSnapshot();
  std::string out = StrFormat(
      "aggregate cache ledger: %zu entries, showing %zu (by saved ms)\n",
      ledger.size(), std::min(top_n, ledger.size()));
  out +=
      "   saved_ms    hits  hit_ms  comp_ms  rebuild_ms  delta_rows"
      "       bytes  hit_Mcyc  query\n";
  size_t shown = 0;
  for (const LedgerEntry& row : ledger) {
    if (shown++ >= top_n) break;
    out += StrFormat(
        "%11.3f %7llu %7.3f %8.3f %11.3f %11llu %11zu %9.2f  %s\n",
        row.saved_ms_total, static_cast<unsigned long long>(row.hits),
        row.ewma_hit_ms, row.ewma_delta_comp_ms, row.ewma_rebuild_ms,
        static_cast<unsigned long long>(row.delta_rows_scanned),
        row.size_bytes, row.ewma_hit_cycles / 1e6, row.query.c_str());
  }
  return out;
}

PruneStats AggregateCacheManager::prune_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return prune_stats_;
}

void AggregateCacheManager::ResetPruneStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  prune_stats_ = PruneStats();
}

void AggregateCacheManager::UpdateDegradedMode(bool under_pressure) {
  if (degraded_.exchange(under_pressure, std::memory_order_relaxed) ==
      under_pressure) {
    return;
  }
  EngineMetrics::Get().degraded_flips->Increment();
  EngineMetrics::Get().degraded_mode->Set(under_pressure ? 1 : 0);
  RecordFlightEvent(FlightEventType::kDegradedFlip, under_pressure ? 1 : 0);
}

void AggregateCacheManager::EvictIfNeeded(const CacheEntry* keep) {
  // All shard locks in index order (the only multi-shard order used) so
  // the budget check and victim ranking see one consistent map state.
  std::array<std::unique_lock<std::mutex>, kNumShards> shard_locks;
  for (size_t i = 0; i < kNumShards; ++i) {
    shard_locks[i] = std::unique_lock<std::mutex>(shards_[i].mu);
  }
  AssertByteAccountingLocked();

  // Claiming a victim = winning its kReady -> kEvicted transition; entries
  // that are building or rebuilding are never touched, and readers that
  // already hold a shared_ptr keep the value alive regardless. Eviction
  // therefore never blocks on (or frees under) a long-running computation.
  using EntryIter = decltype(Shard::entries)::iterator;
  auto claim_and_erase = [&](Shard& shard, EntryIter it) {
    std::shared_ptr<CacheEntry>& entry = it->second;
    if (!entry->TryTransition(EntryState::kReady, EntryState::kEvicted)) {
      return false;
    }
    {
      std::lock_guard<std::mutex> bytes_lock(bytes_mu_);
      if (entry->bytes_accounted) {
        total_bytes_ -= entry->metrics().size_bytes;
        MemoryTracker::Cache().Release(entry->metrics().size_bytes);
        entry->bytes_accounted = false;
      }
    }
    shard.entries.erase(it);
    EngineMetrics::Get().cache_evictions->Increment();
    return true;
  };

  if (!FaultInjector::Global().MaybeFail("cache.evict_all").ok()) {
    // Simulated memory pressure: drop every entry except the one the
    // caller still holds a pointer to. Results must stay correct — the
    // next access simply rebuilds from scratch.
    for (Shard& shard : shards_) {
      for (auto it = shard.entries.begin(); it != shard.entries.end();) {
        auto next = std::next(it);
        if (it->second.get() != keep) claim_and_erase(shard, it);
        it = next;
      }
    }
    AssertByteAccountingLocked();
    return;
  }

  size_t num_entries = 0;
  for (const Shard& shard : shards_) num_entries += shard.entries.size();
  auto current_bytes = [&] {
    std::lock_guard<std::mutex> bytes_lock(bytes_mu_);
    return total_bytes_;
  };
  auto over_budget = [&] {
    bool over_count =
        config_.max_entries != 0 && num_entries > config_.max_entries;
    bool over_bytes =
        config_.max_bytes != 0 && current_bytes() > config_.max_bytes;
    // Under process memory pressure the cache sheds entries even below its
    // configured budget — re-evaluated per victim, so eviction stops the
    // moment the released bytes bring the tracker back under the line.
    bool pressure = MemoryTracker::Process().UnderPressure() &&
                    current_bytes() > 0;
    return (over_count || over_bytes || pressure) && num_entries > 1;
  };
  if (!over_budget()) return;

  // Rank victims once by (profit asc, recency asc); the just-created entry
  // (`keep`) is never evicted so its creator can keep using it.
  struct Victim {
    Shard* shard;
    EntryIter it;
  };
  std::vector<Victim> victims;
  victims.reserve(num_entries);
  for (Shard& shard : shards_) {
    for (auto it = shard.entries.begin(); it != shard.entries.end(); ++it) {
      if (it->second.get() != keep) victims.push_back({&shard, it});
    }
  }
  std::sort(victims.begin(), victims.end(),
            [](const Victim& a, const Victim& b) {
              const CacheEntryMetrics& ma = a.it->second->metrics();
              const CacheEntryMetrics& mb = b.it->second->metrics();
              if (ma.Profit() != mb.Profit()) {
                return ma.Profit() < mb.Profit();
              }
              return ma.last_access_ns.load(std::memory_order_relaxed) <
                     mb.last_access_ns.load(std::memory_order_relaxed);
            });
  for (const Victim& victim : victims) {
    if (!over_budget()) break;
    if (claim_and_erase(*victim.shard, victim.it)) --num_entries;
  }
  AssertByteAccountingLocked();
}

void AggregateCacheManager::RecordMaintenanceFailure(CacheEntry& entry,
                                                     const Status& status) {
  // Merge-time maintenance is best-effort: an executor error must not take
  // the process down. The entry is marked so the next access rebuilds it
  // from scratch instead of serving a half-maintained value.
  ++entry.metrics().maintenance_failures;
  entry.MarkForRebuild();
  RecordFlightEvent(FlightEventType::kMaintenanceFailure,
                    static_cast<uint64_t>(entry.key().hash), 0,
                    status.message().c_str());
  std::cerr << "aggcache: merge maintenance failed for entry "
            << entry.key().canonical << ": " << status.ToString()
            << " (marked for rebuild)\n";
}

void AggregateCacheManager::OnBeforeMerge(Table& table, size_t group_index,
                                          const Snapshot& snapshot) {
  // The merge snapshot pins the delta rows this merge moves; recording its
  // issuance here (once per merged group, not per transaction) timestamps
  // the visibility boundary every maintenance fold below runs under.
  RecordFlightEvent(FlightEventType::kSnapshotIssued,
                    static_cast<uint64_t>(snapshot.read_tid), group_index,
                    table.name().c_str());
  // Runs under the merge's table locks: exclusive on `table`, shared on
  // every other catalog table. No reader of an entry referencing `table`
  // can be in flight (it would hold a shared lock the merge excludes), so
  // each entry's value lock below is immediately available — taking it
  // still orders this pass against readers of entries we end up skipping.
  //
  // `snapshot` is the merge snapshot: the delta rows visible under it are
  // exactly the rows this merge moves into main, so the fold below and the
  // physical merge agree row-for-row even with atomic write scopes in
  // flight (their unstable rows are invisible here and stay in the delta).
  for (const std::shared_ptr<CacheEntry>& entry : SnapshotEntries()) {
    // Skip entries that don't reference the merging table before paying for
    // a catalog bind.
    if (!QueryUsesTable(entry->query(), table)) continue;
    std::unique_lock<std::shared_mutex> value_lock(entry->value_mutex());
    Status bind_fault = FaultInjector::Global().MaybeFail("maintenance.bind");
    auto bound_or = bind_fault.ok() ? BoundQuery::Bind(*db_, entry->query())
                                    : StatusOr<BoundQuery>(bind_fault);
    if (!bound_or.ok()) {
      RecordMaintenanceFailure(*entry, bound_or.status());
      continue;
    }
    BoundQuery bound = std::move(bound_or).value();
    size_t table_pos = bound.tables.size();
    for (size_t t = 0; t < bound.tables.size(); ++t) {
      if (bound.tables[t] == &table) table_pos = t;
    }
    if (table_pos == bound.tables.size()) continue;

    Stopwatch watch;
    if (!entry->ShapeMatches(bound.tables)) {
      // Stale shape; rebuild now, the delta rows are still visible so the
      // rebuilt entry is folded below only if needed. Rebuilding computes
      // mains only, so fold the delta in unconditionally afterwards.
      Status status =
          FaultInjector::Global().MaybeFail("maintenance.rebuild");
      if (status.ok()) status = RebuildEntry(*entry, bound, snapshot);
      if (!status.ok()) {
        RecordMaintenanceFailure(*entry, status);
        continue;
      }
    } else {
      Status status =
          FaultInjector::Global().MaybeFail("maintenance.compensate");
      if (status.ok()) {
        status = MainCompensate(*entry, bound, snapshot, nullptr);
      }
      if (!status.ok()) {
        RecordMaintenanceFailure(*entry, status);
        continue;
      }
    }

    // Fold the merging delta into every cached partial whose combination
    // will absorb it: partial(C) += result(C with this table's main
    // replaced by its delta), computed while the delta still exists.
    JoinPruner pruner(db_, PruneLevel::kFull);
    std::vector<MdBinding> mds = ResolveMds(bound);
    bool fold_failed = false;
    for (auto& [combo, partial] : entry->main_partials()) {
      if (combo[table_pos].group != group_index) continue;
      SubjoinCombination delta_combo = combo;
      delta_combo[table_pos].kind = PartitionKind::kDelta;
      if (pruner.ShouldPrune(bound, mds, delta_combo).pruned) continue;
      Status fold_fault = FaultInjector::Global().MaybeFail("maintenance.fold");
      if (!fold_fault.ok()) {
        RecordMaintenanceFailure(*entry, fold_fault);
        fold_failed = true;
        break;
      }
      auto partial_or =
          executor_.ExecuteSubjoin(bound, delta_combo, snapshot);
      if (!partial_or.ok()) {
        RecordMaintenanceFailure(*entry, partial_or.status());
        fold_failed = true;
        break;
      }
      partial.MergeFrom(partial_or.value());
    }
    if (fold_failed) continue;
    RefreshEntrySize(*entry);
    CacheEntryMetrics::Add(entry->metrics().maintenance_ms,
                           watch.ElapsedMillis());
  }
}

void AggregateCacheManager::OnAfterMerge(Table& table, size_t group_index,
                                         const Snapshot& snapshot) {
  (void)group_index;
  for (const std::shared_ptr<CacheEntry>& entry : SnapshotEntries()) {
    if (!QueryUsesTable(entry->query(), table)) continue;
    if (entry->needs_rebuild()) continue;  // Deferred to the next access.
    std::unique_lock<std::shared_mutex> value_lock(entry->value_mutex());
    Status bind_fault = FaultInjector::Global().MaybeFail("maintenance.bind");
    auto bound_or = bind_fault.ok() ? BoundQuery::Bind(*db_, entry->query())
                                    : StatusOr<BoundQuery>(bind_fault);
    if (!bound_or.ok()) {
      RecordMaintenanceFailure(*entry, bound_or.status());
      continue;
    }
    BoundQuery bound = std::move(bound_or).value();
    bool uses_table = false;
    for (const Table* t : bound.tables) {
      if (t == &table) uses_table = true;
    }
    if (!uses_table) continue;
    RefreshSnapshots(*entry, bound, snapshot);
    RefreshEntrySize(*entry);
  }
}

void AggregateCacheManager::OnMergeAborted(Table& table, size_t group_index) {
  (void)group_index;
  // OnBeforeMerge already folded the merging delta into the affected
  // entries, but the delta survived the abort — a cached read would now
  // double-count it. There is no cheap undo (the fold mutated the
  // partials), so every entry touching the table degrades to a rebuild on
  // next access.
  for (const std::shared_ptr<CacheEntry>& entry : SnapshotEntries()) {
    if (!QueryUsesTable(entry->query(), table)) continue;
    RecordMaintenanceFailure(
        *entry, Status::Internal("merge of '" + table.name() +
                                 "' aborted after forward maintenance"));
  }
}

}  // namespace aggcache
