#include "cache/aggregate_cache_manager.h"

#include <algorithm>
#include <iostream>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "txn/consistent_view_manager.h"
#include "verify/fault_injector.h"

namespace aggcache {

const char* ExecutionStrategyToString(ExecutionStrategy strategy) {
  switch (strategy) {
    case ExecutionStrategy::kUncached:
      return "uncached";
    case ExecutionStrategy::kCachedNoPruning:
      return "cached-no-pruning";
    case ExecutionStrategy::kCachedEmptyDeltaPruning:
      return "cached-empty-delta-pruning";
    case ExecutionStrategy::kCachedFullPruning:
      return "cached-full-pruning";
  }
  return "?";
}

namespace {

PruneLevel PruneLevelFor(ExecutionStrategy strategy) {
  switch (strategy) {
    case ExecutionStrategy::kUncached:
    case ExecutionStrategy::kCachedNoPruning:
      return PruneLevel::kNone;
    case ExecutionStrategy::kCachedEmptyDeltaPruning:
      return PruneLevel::kEmptyPartitions;
    case ExecutionStrategy::kCachedFullPruning:
      return PruneLevel::kFull;
  }
  return PruneLevel::kNone;
}

/// Cheap membership test on table names — avoids re-binding every cached
/// query against the catalog on every merge just to discover the entry does
/// not reference the merged table.
bool QueryUsesTable(const AggregateQuery& query, const Table& table) {
  for (const TableRef& ref : query.tables) {
    if (ref.table_name == table.name()) return true;
  }
  return false;
}

}  // namespace

AggregateCacheManager::AggregateCacheManager(Database* db, Config config)
    : db_(db), config_(config), executor_(db) {
  db_->AddMergeObserver(this);
}

AggregateCacheManager::~AggregateCacheManager() {
  db_->RemoveMergeObserver(this);
}

size_t AggregateCacheManager::RecomputeTotalBytes() const {
  size_t bytes = 0;
  for (const auto& [key, entry] : entries_) {
    bytes += entry->metrics().size_bytes;
  }
  return bytes;
}

size_t AggregateCacheManager::total_bytes() const {
  AssertByteAccounting();
  return total_bytes_;
}

void AggregateCacheManager::AssertByteAccounting() const {
#ifndef NDEBUG
  AGGCACHE_CHECK(total_bytes_ == RecomputeTotalBytes())
      << "running byte total " << total_bytes_
      << " != recomputed " << RecomputeTotalBytes();
#endif
}

void AggregateCacheManager::RefreshEntrySize(CacheEntry& entry) {
  auto it = entries_.find(entry.key());
  bool resident = it != entries_.end() && it->second.get() == &entry;
  if (resident) total_bytes_ -= entry.metrics().size_bytes;
  entry.RefreshSizeBytes();
  if (resident) total_bytes_ += entry.metrics().size_bytes;
}

void AggregateCacheManager::Clear() {
  entries_.clear();
  total_bytes_ = 0;
}

const CacheEntry* AggregateCacheManager::Find(
    const AggregateQuery& query) const {
  auto it = entries_.find(MakeCacheKey(query));
  return it == entries_.end() ? nullptr : it->second.get();
}

void AggregateCacheManager::TouchEntry(CacheEntry& entry) {
  entry.metrics().last_access_ns = ++access_clock_;
}

Status AggregateCacheManager::RebuildEntry(CacheEntry& entry,
                                           const BoundQuery& bound,
                                           Snapshot snapshot) {
  Stopwatch watch;
  entry.main_partials().clear();
  // Cross-temperature all-main combos can be pruned logically at build time
  // (Section 5.4); tid-range pruning is sound here as well. Prune decisions
  // stay on the calling thread; the surviving subjoins fan out.
  JoinPruner pruner(db_, PruneLevel::kFull);
  std::vector<MdBinding> mds = ResolveMds(bound);
  std::vector<SubjoinCombination> combos =
      EnumerateAllMainCombinations(bound.tables);
  std::vector<char> pruned(combos.size(), 0);
  for (size_t i = 0; i < combos.size(); ++i) {
    pruned[i] = pruner.ShouldPrune(bound, mds, combos[i]).pruned ? 1 : 0;
  }
  std::vector<AggregateResult> partials(combos.size());
  std::vector<ExecutorStats> task_stats(combos.size());
  std::vector<Status> task_status(combos.size());
  ParallelFor(combos.size(), [&](size_t i) {
    if (pruned[i]) {
      partials[i] = AggregateResult(bound.aggregates.size());
      return;
    }
    auto partial =
        executor_.ExecuteSubjoin(bound, combos[i], snapshot,
                                 /*extra_filters=*/{},
                                 /*restriction=*/nullptr, &task_stats[i]);
    if (partial.ok()) {
      partials[i] = std::move(partial).value();
    } else {
      task_status[i] = partial.status();
    }
  });
  uint64_t rows_aggregated = 0;
  for (size_t i = 0; i < combos.size(); ++i) {
    RETURN_IF_ERROR(task_status[i]);
    executor_.stats().MergeFrom(task_stats[i]);
    rows_aggregated += task_stats[i].rows_scanned;
    entry.main_partials()[std::move(combos[i])] = std::move(partials[i]);
  }
  RefreshSnapshots(entry, bound, snapshot);
  RefreshEntrySize(entry);
  entry.metrics().main_exec_ms = watch.ElapsedMillis();
  entry.metrics().main_rows_aggregated = rows_aggregated;
  entry.ClearRebuildMark();
  return Status::Ok();
}

void AggregateCacheManager::RefreshSnapshots(CacheEntry& entry,
                                             const BoundQuery& bound,
                                             Snapshot snapshot) {
  entry.snapshots().clear();
  entry.snapshots().resize(bound.tables.size());
  for (size_t t = 0; t < bound.tables.size(); ++t) {
    const Table& table = *bound.tables[t];
    entry.snapshots()[t].resize(table.num_groups());
    for (size_t g = 0; g < table.num_groups(); ++g) {
      const Partition& main = table.group(g).main;
      CacheEntry::MainSnapshot& snap = entry.snapshots()[t][g];
      snap.visibility = ConsistentViewManager::ComputeVisibility(
          main.create_tids(), main.invalidate_tids(), snapshot);
      snap.row_count = main.num_rows();
      snap.invalidation_count = main.invalidation_count();
    }
  }
}

StatusOr<CacheEntry*> AggregateCacheManager::GetOrCreateEntry(
    const BoundQuery& bound, Snapshot snapshot, CacheExecStats* stats) {
  CacheKey key = MakeCacheKey(*bound.query);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    CacheEntry* entry = it->second.get();
    if (!entry->ShapeMatches(bound.tables)) {
      // Partition layout changed (hot/cold split or an unobserved merge):
      // rebuild from scratch.
      RETURN_IF_ERROR(RebuildEntry(*entry, bound, snapshot));
      if (stats != nullptr) {
        stats->entry_rebuilt = true;
        stats->main_exec_ms = entry->metrics().main_exec_ms;
      }
    } else if (stats != nullptr) {
      stats->cache_hit = true;
    }
    TouchEntry(*entry);
    return entry;
  }

  auto entry = std::make_unique<CacheEntry>(key, *bound.query);
  RETURN_IF_ERROR(RebuildEntry(*entry, bound, snapshot));
  if (stats != nullptr) {
    stats->entry_created = true;
    stats->main_exec_ms = entry->metrics().main_exec_ms;
  }

  // Admission: creating the entry already produced the main result; an
  // unprofitable aggregate is simply not stored (Fig. 3's "profitable
  // enough" gate) and the caller falls back to uncached execution.
  if (entry->metrics().main_exec_ms < config_.min_main_exec_ms) {
    return static_cast<CacheEntry*>(nullptr);
  }
  CacheEntry* raw = entry.get();
  TouchEntry(*raw);
  entries_.emplace(key, std::move(entry));
  total_bytes_ += raw->metrics().size_bytes;
  EvictIfNeeded(raw);
  return raw;
}

Status AggregateCacheManager::MainCompensate(CacheEntry& entry,
                                             const BoundQuery& bound,
                                             Snapshot snapshot,
                                             CacheExecStats* stats) {
  if (!entry.IsDirty(bound.tables)) return Status::Ok();
  Stopwatch watch;
  if (bound.tables.size() > 1) {
    if (config_.incremental_join_main_compensation) {
      RETURN_IF_ERROR(JoinMainCompensate(entry, bound, snapshot));
      if (stats != nullptr) stats->main_comp_ms += watch.ElapsedMillis();
    } else {
      // The paper's baseline behaviour: recompute the entry.
      RETURN_IF_ERROR(RebuildEntry(entry, bound, snapshot));
      if (stats != nullptr) {
        stats->entry_rebuilt = true;
        stats->main_exec_ms = entry.metrics().main_exec_ms;
        stats->main_comp_ms += watch.ElapsedMillis();
      }
    }
    return Status::Ok();
  }

  // Single-table entry: bit-vector comparison finds rows invalidated since
  // the snapshot; subtract their contribution (Section 2.2).
  const Table& table = *bound.tables[0];
  for (size_t g = 0; g < table.num_groups(); ++g) {
    const Partition& main = table.group(g).main;
    CacheEntry::MainSnapshot& snap = entry.snapshots()[0][g];
    if (main.invalidation_count() == snap.invalidation_count) continue;
    BitVector current = ConsistentViewManager::ComputeVisibility(
        main.create_tids(), main.invalidate_tids(), snapshot);
    std::vector<uint32_t> invalidated =
        snap.visibility.OnesClearedIn(current);
    ASSIGN_OR_RETURN(AggregateResult contribution,
                     ComputeRowsContribution(bound, g, invalidated));
    SubjoinCombination combo{
        PartitionRef{static_cast<uint32_t>(g), PartitionKind::kMain}};
    auto it = entry.main_partials().find(combo);
    if (it == entry.main_partials().end()) {
      return Status::Internal("missing main partial for group");
    }
    RETURN_IF_ERROR(it->second.SubtractFrom(contribution));
    snap.visibility = std::move(current);
    snap.invalidation_count = main.invalidation_count();
  }
  RefreshEntrySize(entry);
  if (stats != nullptr) stats->main_comp_ms += watch.ElapsedMillis();
  return Status::Ok();
}

Status AggregateCacheManager::JoinMainCompensate(CacheEntry& entry,
                                                 const BoundQuery& bound,
                                                 Snapshot snapshot) {
  const size_t num_tables = bound.tables.size();

  // Invalidated ("negative delta") rows per (table, group) since the entry
  // snapshot, computed once and shared across combos; snapshots are
  // refreshed only after every combo is corrected.
  std::vector<std::vector<std::vector<uint32_t>>> negative(num_tables);
  std::vector<std::vector<BitVector>> current_visibility(num_tables);
  for (size_t t = 0; t < num_tables; ++t) {
    const Table& table = *bound.tables[t];
    negative[t].resize(table.num_groups());
    current_visibility[t].resize(table.num_groups());
    for (size_t g = 0; g < table.num_groups(); ++g) {
      const Partition& main = table.group(g).main;
      CacheEntry::MainSnapshot& snap = entry.snapshots()[t][g];
      if (main.invalidation_count() == snap.invalidation_count) continue;
      current_visibility[t][g] = ConsistentViewManager::ComputeVisibility(
          main.create_tids(), main.invalidate_tids(), snapshot);
      negative[t][g] = snap.visibility.OnesClearedIn(current_visibility[t][g]);
    }
  }

  // One correction join per (dirty combo, non-empty subset of its dirty
  // tables): subset members restricted to their negative-delta rows, the
  // rest to rows visible now. All corrections are subtracted (no
  // alternating signs: prod(C+N) expands into a plain sum over subsets).
  // The 2^d - 1 joins per combo are independent, so every (combo, mask)
  // pair fans out across the pool; corrections merge back per combo in
  // mask order for determinism.
  struct CorrectionJob {
    size_t combo_index = 0;
    const SubjoinCombination* combo = nullptr;
    Executor::RowRestriction restriction;
  };
  std::vector<AggregateResult*> dirty_partials;
  std::vector<CorrectionJob> jobs;
  for (auto& [combo, partial] : entry.main_partials()) {
    std::vector<size_t> dirty_tables;
    for (size_t t = 0; t < num_tables; ++t) {
      if (!negative[t][combo[t].group].empty()) dirty_tables.push_back(t);
    }
    if (dirty_tables.empty()) continue;
    size_t combo_index = dirty_partials.size();
    dirty_partials.push_back(&partial);
    for (uint32_t mask = 1; mask < (1u << dirty_tables.size()); ++mask) {
      CorrectionJob job;
      job.combo_index = combo_index;
      job.combo = &combo;
      job.restriction.rows.resize(num_tables);
      job.restriction.bypass_visibility_for_restricted = true;
      for (size_t i = 0; i < dirty_tables.size(); ++i) {
        if (mask & (1u << i)) {
          size_t t = dirty_tables[i];
          job.restriction.rows[t] = negative[t][combo[t].group];
        }
      }
      jobs.push_back(std::move(job));
    }
  }

  std::vector<AggregateResult> terms(jobs.size());
  std::vector<ExecutorStats> task_stats(jobs.size());
  std::vector<Status> task_status(jobs.size());
  ParallelFor(jobs.size(), [&](size_t j) {
    auto term =
        executor_.ExecuteSubjoin(bound, *jobs[j].combo, snapshot,
                                 /*extra_filters=*/{}, &jobs[j].restriction,
                                 &task_stats[j]);
    if (term.ok()) {
      terms[j] = std::move(term).value();
    } else {
      task_status[j] = term.status();
    }
  });

  // Jobs were emitted combo-major in mask order; replay that order exactly.
  size_t j = 0;
  for (size_t c = 0; c < dirty_partials.size(); ++c) {
    AggregateResult corrections(bound.aggregates.size());
    for (; j < jobs.size() && jobs[j].combo_index == c; ++j) {
      RETURN_IF_ERROR(task_status[j]);
      executor_.stats().MergeFrom(task_stats[j]);
      corrections.MergeFrom(terms[j]);
    }
    RETURN_IF_ERROR(dirty_partials[c]->SubtractFrom(corrections));
  }

  // All combos corrected: refresh the snapshots.
  for (size_t t = 0; t < num_tables; ++t) {
    const Table& table = *bound.tables[t];
    for (size_t g = 0; g < table.num_groups(); ++g) {
      if (negative[t][g].empty()) continue;
      CacheEntry::MainSnapshot& snap = entry.snapshots()[t][g];
      snap.visibility = std::move(current_visibility[t][g]);
      snap.invalidation_count = table.group(g).main.invalidation_count();
    }
  }
  RefreshEntrySize(entry);
  return Status::Ok();
}

StatusOr<AggregateResult> AggregateCacheManager::Execute(
    const AggregateQuery& query, const Transaction& txn,
    const ExecutionOptions& options) {
  last_stats_ = CacheExecStats();
  Snapshot snapshot = txn.snapshot();
  uint64_t subjoins_before = executor_.stats().subjoins_executed;

  if (options.strategy == ExecutionStrategy::kUncached ||
      !query.IsCacheable()) {
    ASSIGN_OR_RETURN(AggregateResult result,
                     executor_.ExecuteUncached(query, snapshot));
    last_stats_.subjoins_executed =
        executor_.stats().subjoins_executed - subjoins_before;
    return result;
  }

  ASSIGN_OR_RETURN(BoundQuery bound, BoundQuery::Bind(*db_, query));
  last_stats_.used_cache = true;

  ASSIGN_OR_RETURN(CacheEntry * entry,
                   GetOrCreateEntry(bound, snapshot, &last_stats_));
  if (entry == nullptr) {
    // Not admitted: answer without the cache.
    last_stats_.used_cache = false;
    ASSIGN_OR_RETURN(AggregateResult result,
                     executor_.ExecuteUncached(query, snapshot));
    last_stats_.subjoins_executed =
        executor_.stats().subjoins_executed - subjoins_before;
    return result;
  }
  RETURN_IF_ERROR(MainCompensate(*entry, bound, snapshot, &last_stats_));

  Stopwatch delta_watch;
  JoinPruner pruner(db_, PruneLevelFor(options.strategy));
  std::vector<MdBinding> mds = ResolveMds(bound);
  CompensationStats comp_stats;
  ASSIGN_OR_RETURN(
      AggregateResult delta_result,
      DeltaCompensate(executor_, bound, mds, pruner,
                      options.use_predicate_pushdown, snapshot, &comp_stats));
  AggregateResult result =
      entry->MergedMainResult(bound.aggregates.size());
  result.MergeFrom(delta_result);
  result = query.ApplyHaving(std::move(result));

  double delta_ms = delta_watch.ElapsedMillis();
  // Only true hits count toward profit: the miss that just created (or the
  // access that rebuilt) the entry saved nothing, and crediting it would
  // inflate Profit() for new entries and skew eviction.
  if (last_stats_.cache_hit) {
    CacheEntryMetrics& metrics = entry->metrics();
    metrics.total_delta_comp_ms += delta_ms;
    ++metrics.delta_comp_count;
    ++metrics.hit_count;
  }

  last_stats_.delta_comp_ms = delta_ms;
  last_stats_.subjoins_pruned = comp_stats.subjoins_pruned;
  last_stats_.subjoins_executed =
      executor_.stats().subjoins_executed - subjoins_before;
  prune_stats_.considered += pruner.stats().considered;
  prune_stats_.pruned_empty += pruner.stats().pruned_empty;
  prune_stats_.pruned_aging += pruner.stats().pruned_aging;
  prune_stats_.pruned_tid_range += pruner.stats().pruned_tid_range;
  return result;
}

Status AggregateCacheManager::Prewarm(const AggregateQuery& query) {
  if (!query.IsCacheable()) {
    return Status::InvalidArgument("query does not qualify for the cache");
  }
  ASSIGN_OR_RETURN(BoundQuery bound, BoundQuery::Bind(*db_, query));
  Snapshot snapshot = db_->txn_manager().GlobalSnapshot();
  ASSIGN_OR_RETURN(CacheEntry * entry,
                   GetOrCreateEntry(bound, snapshot, nullptr));
  if (entry == nullptr) {
    return Status::FailedPrecondition("aggregate not profitable enough");
  }
  return MainCompensate(*entry, bound, snapshot, nullptr);
}

void AggregateCacheManager::EvictIfNeeded(const CacheEntry* keep) {
  AssertByteAccounting();
  if (!FaultInjector::Global().MaybeFail("cache.evict_all").ok()) {
    // Simulated memory pressure: drop every entry except the one the
    // caller still holds a pointer to. Results must stay correct — the
    // next access simply rebuilds from scratch.
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second.get() == keep) {
        ++it;
        continue;
      }
      total_bytes_ -= it->second->metrics().size_bytes;
      it = entries_.erase(it);
    }
    AssertByteAccounting();
    return;
  }
  // The running byte total makes the budget check O(1); the old
  // implementation recomputed total_bytes() (O(entries)) on every loop
  // iteration and rescanned all entries per victim — O(n^2) per eviction
  // storm.
  auto over_budget = [&] {
    bool over_count =
        config_.max_entries != 0 && entries_.size() > config_.max_entries;
    bool over_bytes =
        config_.max_bytes != 0 && total_bytes_ > config_.max_bytes;
    return (over_count || over_bytes) && entries_.size() > 1;
  };
  if (!over_budget()) return;

  // Rank victims once by (profit asc, recency asc); metrics do not change
  // while evicting, so one sort replaces the per-victim rescans. The
  // just-created entry (`keep`) is never evicted so callers can hold its
  // pointer.
  using EntryIter = decltype(entries_)::iterator;
  std::vector<EntryIter> victims;
  victims.reserve(entries_.size());
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.get() != keep) victims.push_back(it);
  }
  std::sort(victims.begin(), victims.end(),
            [](const EntryIter& a, const EntryIter& b) {
              const CacheEntryMetrics& ma = a->second->metrics();
              const CacheEntryMetrics& mb = b->second->metrics();
              if (ma.Profit() != mb.Profit()) {
                return ma.Profit() < mb.Profit();
              }
              return ma.last_access_ns < mb.last_access_ns;
            });
  for (EntryIter victim : victims) {
    if (!over_budget()) break;
    total_bytes_ -= victim->second->metrics().size_bytes;
    entries_.erase(victim);
  }
  AssertByteAccounting();
}

void AggregateCacheManager::RecordMaintenanceFailure(CacheEntry& entry,
                                                     const Status& status) {
  // Merge-time maintenance is best-effort: an executor error must not take
  // the process down. The entry is marked so the next access rebuilds it
  // from scratch instead of serving a half-maintained value.
  ++entry.metrics().maintenance_failures;
  entry.MarkForRebuild();
  std::cerr << "aggcache: merge maintenance failed for entry "
            << entry.key().canonical << ": " << status.ToString()
            << " (marked for rebuild)\n";
}

void AggregateCacheManager::OnBeforeMerge(Table& table, size_t group_index) {
  Snapshot snapshot = db_->txn_manager().GlobalSnapshot();
  for (auto& [key, entry] : entries_) {
    // Skip entries that don't reference the merging table before paying for
    // a catalog bind.
    if (!QueryUsesTable(entry->query(), table)) continue;
    Status bind_fault = FaultInjector::Global().MaybeFail("maintenance.bind");
    auto bound_or = bind_fault.ok() ? BoundQuery::Bind(*db_, entry->query())
                                    : StatusOr<BoundQuery>(bind_fault);
    if (!bound_or.ok()) {
      RecordMaintenanceFailure(*entry, bound_or.status());
      continue;
    }
    BoundQuery bound = std::move(bound_or).value();
    size_t table_pos = bound.tables.size();
    for (size_t t = 0; t < bound.tables.size(); ++t) {
      if (bound.tables[t] == &table) table_pos = t;
    }
    if (table_pos == bound.tables.size()) continue;

    Stopwatch watch;
    if (!entry->ShapeMatches(bound.tables)) {
      // Stale shape; rebuild now, the delta rows are still visible so the
      // rebuilt entry is folded below only if needed. Rebuilding computes
      // mains only, so fold the delta in unconditionally afterwards.
      Status status =
          FaultInjector::Global().MaybeFail("maintenance.rebuild");
      if (status.ok()) status = RebuildEntry(*entry, bound, snapshot);
      if (!status.ok()) {
        RecordMaintenanceFailure(*entry, status);
        continue;
      }
    } else {
      Status status =
          FaultInjector::Global().MaybeFail("maintenance.compensate");
      if (status.ok()) {
        status = MainCompensate(*entry, bound, snapshot, nullptr);
      }
      if (!status.ok()) {
        RecordMaintenanceFailure(*entry, status);
        continue;
      }
    }

    // Fold the merging delta into every cached partial whose combination
    // will absorb it: partial(C) += result(C with this table's main
    // replaced by its delta), computed while the delta still exists.
    JoinPruner pruner(db_, PruneLevel::kFull);
    std::vector<MdBinding> mds = ResolveMds(bound);
    bool fold_failed = false;
    for (auto& [combo, partial] : entry->main_partials()) {
      if (combo[table_pos].group != group_index) continue;
      SubjoinCombination delta_combo = combo;
      delta_combo[table_pos].kind = PartitionKind::kDelta;
      if (pruner.ShouldPrune(bound, mds, delta_combo).pruned) continue;
      Status fold_fault = FaultInjector::Global().MaybeFail("maintenance.fold");
      if (!fold_fault.ok()) {
        RecordMaintenanceFailure(*entry, fold_fault);
        fold_failed = true;
        break;
      }
      auto partial_or =
          executor_.ExecuteSubjoin(bound, delta_combo, snapshot);
      if (!partial_or.ok()) {
        RecordMaintenanceFailure(*entry, partial_or.status());
        fold_failed = true;
        break;
      }
      partial.MergeFrom(partial_or.value());
    }
    if (fold_failed) continue;
    RefreshEntrySize(*entry);
    entry->metrics().maintenance_ms += watch.ElapsedMillis();
  }
}

void AggregateCacheManager::OnAfterMerge(Table& table, size_t group_index) {
  (void)group_index;
  Snapshot snapshot = db_->txn_manager().GlobalSnapshot();
  for (auto& [key, entry] : entries_) {
    if (!QueryUsesTable(entry->query(), table)) continue;
    if (entry->needs_rebuild()) continue;  // Deferred to the next access.
    Status bind_fault = FaultInjector::Global().MaybeFail("maintenance.bind");
    auto bound_or = bind_fault.ok() ? BoundQuery::Bind(*db_, entry->query())
                                    : StatusOr<BoundQuery>(bind_fault);
    if (!bound_or.ok()) {
      RecordMaintenanceFailure(*entry, bound_or.status());
      continue;
    }
    BoundQuery bound = std::move(bound_or).value();
    bool uses_table = false;
    for (const Table* t : bound.tables) {
      if (t == &table) uses_table = true;
    }
    if (!uses_table) continue;
    RefreshSnapshots(*entry, bound, snapshot);
    RefreshEntrySize(*entry);
  }
}

void AggregateCacheManager::OnMergeAborted(Table& table, size_t group_index) {
  (void)group_index;
  // OnBeforeMerge already folded the merging delta into the affected
  // entries, but the delta survived the abort — a cached read would now
  // double-count it. There is no cheap undo (the fold mutated the
  // partials), so every entry touching the table degrades to a rebuild on
  // next access.
  for (auto& [key, entry] : entries_) {
    if (!QueryUsesTable(entry->query(), table)) continue;
    RecordMaintenanceFailure(
        *entry, Status::Internal("merge of '" + table.name() +
                                 "' aborted after forward maintenance"));
  }
}

}  // namespace aggcache
