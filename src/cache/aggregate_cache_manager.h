#ifndef AGGCACHE_CACHE_AGGREGATE_CACHE_MANAGER_H_
#define AGGCACHE_CACHE_AGGREGATE_CACHE_MANAGER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache_entry.h"
#include "cache/compensation.h"
#include "objectaware/join_pruning.h"
#include "query/executor.h"
#include "storage/database.h"
#include "storage/merge_observer.h"

namespace aggcache {

/// How a query is executed — the four strategies compared throughout the
/// paper's Section 6 experiments.
enum class ExecutionStrategy : uint8_t {
  /// No cache: union of every partition subjoin (Section 2.3.1).
  kUncached = 0,
  /// Cache the all-main result; execute every compensation subjoin.
  kCachedNoPruning = 1,
  /// Cache + skip compensation subjoins containing an empty partition.
  kCachedEmptyDeltaPruning = 2,
  /// Cache + empty, aging-group, and MD tid-range pruning (Section 5.1).
  kCachedFullPruning = 3,
};

const char* ExecutionStrategyToString(ExecutionStrategy strategy);

/// Per-call knobs for AggregateCacheManager::Execute.
struct ExecutionOptions {
  ExecutionStrategy strategy = ExecutionStrategy::kCachedFullPruning;
  /// Apply MD-derived local predicates to non-pruned subjoins
  /// (Section 5.3).
  bool use_predicate_pushdown = false;
};

/// Observability for the most recent Execute call.
struct CacheExecStats {
  bool used_cache = false;
  bool cache_hit = false;
  bool entry_created = false;
  bool entry_rebuilt = false;
  uint64_t subjoins_executed = 0;
  uint64_t subjoins_pruned = 0;
  double main_exec_ms = 0.0;         ///< Entry build time (on miss).
  double main_comp_ms = 0.0;         ///< Main compensation time.
  double delta_comp_ms = 0.0;        ///< Delta compensation time.
};

/// The aggregate cache manager (Fig. 1/3 of the paper): dynamically caches
/// aggregate query results computed on main partitions, answers queries by
/// main + delta compensation, maintains entries incrementally during delta
/// merges, and manages admission/eviction by profit.
///
/// Callers drive the manager from one thread; internally, independent
/// subjoins (entry builds, delta compensation, correction joins) fan out
/// across the global ThreadPool and merge deterministically in enumeration
/// order. Register it as a merge observer (done in the constructor) so
/// merges keep entries consistent.
class AggregateCacheManager : public MergeObserver {
 public:
  struct Config {
    /// Maximum number of entries; 0 = unlimited.
    size_t max_entries = 64;
    /// Maximum total bytes across entries; 0 = unlimited.
    size_t max_bytes = 256 << 20;
    /// Entries whose build time is below this are not admitted (cheap
    /// aggregates are not worth caching). 0 admits everything, which the
    /// benchmarks rely on for determinism.
    double min_main_exec_ms = 0.0;
    /// Compensate main-partition invalidations of join entries
    /// incrementally via negative-delta correction joins (this library's
    /// implementation of the paper's Section 8 future work). When false,
    /// a dirty join entry is rebuilt from scratch instead.
    bool incremental_join_main_compensation = true;
  };

  explicit AggregateCacheManager(Database* db)
      : AggregateCacheManager(db, Config()) {}
  AggregateCacheManager(Database* db, Config config);
  ~AggregateCacheManager() override;

  AggregateCacheManager(const AggregateCacheManager&) = delete;
  AggregateCacheManager& operator=(const AggregateCacheManager&) = delete;

  /// Executes `query` under `txn`'s snapshot with the chosen strategy,
  /// returning the consistent result. Cached strategies fall back to
  /// uncached execution when the query does not qualify for the cache
  /// (non-self-maintainable aggregates).
  StatusOr<AggregateResult> Execute(const AggregateQuery& query,
                                    const Transaction& txn,
                                    const ExecutionOptions& options =
                                        ExecutionOptions());

  /// Builds (or refreshes) the cache entry for `query` without computing a
  /// full result, e.g. to warm the cache before a benchmark.
  Status Prewarm(const AggregateQuery& query);

  /// Entry lookup for inspection; nullptr when absent.
  const CacheEntry* Find(const AggregateQuery& query) const;

  size_t num_entries() const { return entries_.size(); }
  /// O(1): a running total maintained on insert, erase, and size refresh;
  /// asserted against RecomputeTotalBytes() in debug builds.
  size_t total_bytes() const;
  /// O(entries) recomputation from per-entry metrics, for debug assertions
  /// and tests of the running total.
  size_t RecomputeTotalBytes() const;
  void Clear();

  /// Stats of the most recent Execute call.
  const CacheExecStats& last_exec_stats() const { return last_stats_; }

  /// Cumulative pruning statistics across all cached executions.
  const PruneStats& prune_stats() const { return prune_stats_; }
  void ResetPruneStats() { prune_stats_ = PruneStats(); }

  // MergeObserver: incremental maintenance during the delta merge
  // (Section 5.2).
  void OnBeforeMerge(Table& table, size_t group_index) override;
  void OnAfterMerge(Table& table, size_t group_index) override;
  void OnMergeAborted(Table& table, size_t group_index) override;

 private:
  /// Returns the entry for the bound query, building it on a miss. Returns
  /// nullptr when the admission policy rejects the aggregate.
  StatusOr<CacheEntry*> GetOrCreateEntry(const BoundQuery& bound,
                                         Snapshot snapshot,
                                         CacheExecStats* stats);

  /// Recomputes all main partials and snapshots under `snapshot`.
  Status RebuildEntry(CacheEntry& entry, const BoundQuery& bound,
                      Snapshot snapshot);

  /// Applies pending main-partition invalidations to the entry: bit-vector
  /// diff + subtract for single-table entries (Section 2.2); for join
  /// entries, negative-delta correction joins (incremental, see
  /// JoinMainCompensate) or a full rebuild per the config.
  Status MainCompensate(CacheEntry& entry, const BoundQuery& bound,
                        Snapshot snapshot, CacheExecStats* stats);

  /// Incremental main compensation for join entries. Expanding the cached
  /// all-main join over per-table entry-visible rows V_i = C_i + N_i
  /// (current rows plus rows invalidated since the snapshot) gives
  ///
  ///   prod V_i  =  sum over subsets S of join(N_i for i in S, C_j else),
  ///
  /// so the up-to-date result prod C_i is the cached value minus every
  /// correction join with at least one table restricted to its invalidated
  /// ("negative delta") rows. The N_i sets are tiny, so each correction is
  /// cheap — realizing the paper's Section 8 proposal.
  Status JoinMainCompensate(CacheEntry& entry, const BoundQuery& bound,
                            Snapshot snapshot);

  void RefreshSnapshots(CacheEntry& entry, const BoundQuery& bound,
                        Snapshot snapshot);

  void TouchEntry(CacheEntry& entry);
  void EvictIfNeeded(const CacheEntry* keep = nullptr);

  /// Refreshes the entry's size_bytes, keeping the running byte total in
  /// step when the entry is resident in the map (entries under construction
  /// are counted at insertion instead).
  void RefreshEntrySize(CacheEntry& entry);

  /// Records a failed merge-time maintenance attempt: the entry is marked
  /// for rebuild on next access instead of crashing the process.
  void RecordMaintenanceFailure(CacheEntry& entry, const Status& status);

  /// Debug-build consistency check of the running byte total.
  void AssertByteAccounting() const;

  Database* db_;
  Config config_;
  Executor executor_;
  std::unordered_map<CacheKey, std::unique_ptr<CacheEntry>, CacheKeyHash>
      entries_;
  /// Sum of metrics().size_bytes over entries_, maintained incrementally so
  /// eviction decisions are O(1) instead of O(entries).
  size_t total_bytes_ = 0;
  CacheExecStats last_stats_;
  PruneStats prune_stats_;
  int64_t access_clock_ = 0;
};

}  // namespace aggcache

#endif  // AGGCACHE_CACHE_AGGREGATE_CACHE_MANAGER_H_
