#ifndef AGGCACHE_CACHE_AGGREGATE_CACHE_MANAGER_H_
#define AGGCACHE_CACHE_AGGREGATE_CACHE_MANAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache_entry.h"
#include "cache/compensation.h"
#include "objectaware/join_pruning.h"
#include "obs/query_trace.h"
#include "query/executor.h"
#include "storage/checkpoint.h"
#include "storage/database.h"
#include "storage/merge_observer.h"

namespace aggcache {

/// How a query is executed — the four strategies compared throughout the
/// paper's Section 6 experiments.
enum class ExecutionStrategy : uint8_t {
  /// No cache: union of every partition subjoin (Section 2.3.1).
  kUncached = 0,
  /// Cache the all-main result; execute every compensation subjoin.
  kCachedNoPruning = 1,
  /// Cache + skip compensation subjoins containing an empty partition.
  kCachedEmptyDeltaPruning = 2,
  /// Cache + empty, aging-group, and MD tid-range pruning (Section 5.1).
  kCachedFullPruning = 3,
};

const char* ExecutionStrategyToString(ExecutionStrategy strategy);

/// Per-call knobs for AggregateCacheManager::Execute.
struct ExecutionOptions {
  ExecutionStrategy strategy = ExecutionStrategy::kCachedFullPruning;
  /// Apply MD-derived local predicates to non-pruned subjoins
  /// (Section 5.3).
  bool use_predicate_pushdown = false;
};

/// Observability for the most recent Execute call.
struct CacheExecStats {
  bool used_cache = false;
  bool cache_hit = false;
  bool entry_created = false;
  bool entry_rebuilt = false;
  uint64_t subjoins_executed = 0;
  uint64_t subjoins_pruned = 0;
  double main_exec_ms = 0.0;         ///< Entry build time (on miss).
  double main_comp_ms = 0.0;         ///< Main compensation time.
  double delta_comp_ms = 0.0;        ///< Delta compensation time.
};

/// The aggregate cache manager (Fig. 1/3 of the paper): dynamically caches
/// aggregate query results computed on main partitions, answers queries by
/// main + delta compensation, maintains entries incrementally during delta
/// merges, and manages admission/eviction by profit.
///
/// Threading model (DESIGN.md §6): Execute is safe from any number of
/// threads. Each call takes shared table locks + an epoch pin (ReadView)
/// for its whole duration, so the snapshot it computes over is frozen.
/// The entry map is striped across shards; concurrent misses on one key
/// are single-flight (one creator builds, the rest wait on the entry's
/// state machine); per-entry values are guarded by a reader-writer lock;
/// eviction claims only kReady entries and never frees memory a reader
/// still references (entries are shared_ptr-owned). Merge-time maintenance
/// runs under the merge's table locks, which exclude every reader of the
/// affected tables. Register it as a merge observer (done in the
/// constructor) so merges keep entries consistent.
class AggregateCacheManager : public MergeObserver,
                              public CacheDescriptorSource {
 public:
  struct Config {
    /// Maximum number of entries; 0 = unlimited.
    size_t max_entries = 64;
    /// Maximum total bytes across entries; 0 = unlimited.
    size_t max_bytes = 256 << 20;
    /// Entries whose build time is below this are not admitted (cheap
    /// aggregates are not worth caching). 0 admits everything, which the
    /// benchmarks rely on for determinism.
    double min_main_exec_ms = 0.0;
    /// Compensate main-partition invalidations of join entries
    /// incrementally via negative-delta correction joins (this library's
    /// implementation of the paper's Section 8 future work). When false,
    /// a dirty join entry is rebuilt from scratch instead.
    bool incremental_join_main_compensation = true;
  };

  explicit AggregateCacheManager(Database* db)
      : AggregateCacheManager(db, Config()) {}
  AggregateCacheManager(Database* db, Config config);
  ~AggregateCacheManager() override;

  AggregateCacheManager(const AggregateCacheManager&) = delete;
  AggregateCacheManager& operator=(const AggregateCacheManager&) = delete;

  /// Executes `query` under `txn`'s snapshot with the chosen strategy,
  /// returning the consistent result. Cached strategies fall back to
  /// uncached execution when the query does not qualify for the cache
  /// (non-self-maintainable aggregates), when admission rejects it, or
  /// when the caller's snapshot is older than the entry's base (the cache
  /// only compensates forward in time).
  StatusOr<AggregateResult> Execute(const AggregateQuery& query,
                                    const Transaction& txn,
                                    const ExecutionOptions& options =
                                        ExecutionOptions());

  /// Execute with a structured trace: installs `trace` as the calling
  /// thread's TraceContext so the lookup/build/compensation paths record
  /// their outcomes, subjoin verdicts (with tid ranges), and phase timings
  /// into it. Backs the SQL layer's EXPLAIN AGGREGATE. `trace` must
  /// outlive the call; its statement field is defaulted to the canonical
  /// cache key when the caller left it empty.
  StatusOr<AggregateResult> ExecuteTraced(const AggregateQuery& query,
                                          const Transaction& txn,
                                          const ExecutionOptions& options,
                                          QueryTrace* trace);

  /// Builds (or refreshes) the cache entry for `query` without computing a
  /// full result, e.g. to warm the cache before a benchmark.
  Status Prewarm(const AggregateQuery& query);

  /// Entry lookup for inspection; nullptr when absent. Single-threaded use
  /// only: the pointer is not lifetime-protected against concurrent
  /// eviction.
  const CacheEntry* Find(const AggregateQuery& query) const;

  size_t num_entries() const;
  /// The running byte total maintained on insert, erase, and size refresh;
  /// asserted against RecomputeTotalBytes() in debug builds.
  size_t total_bytes() const;
  /// O(entries) recomputation from per-entry metrics, for debug assertions
  /// and tests of the running total.
  size_t RecomputeTotalBytes() const;
  void Clear();

  /// Stats of the most recent completed Execute call (any thread's).
  CacheExecStats last_exec_stats() const;

  /// One resident entry's row in the cost/benefit ledger: the observed
  /// economics (EWMA hit latency, compensation and rebuild cost, delta
  /// volume, net ms saved) that admission/eviction/merge-scheduling
  /// policies consume. Values are relaxed snapshots of the entry's atomics.
  struct LedgerEntry {
    std::string query;        ///< Canonical cache key.
    uint64_t hits = 0;
    size_t size_bytes = 0;
    double main_exec_ms = 0;  ///< Recorded build cost (what a hit saves).
    double ewma_hit_ms = 0;
    double ewma_delta_comp_ms = 0;
    double ewma_rebuild_ms = 0;
    double ewma_delta_rows = 0;
    uint64_t delta_rows_scanned = 0;
    double saved_ms_total = 0;
    double profit = 0;        ///< CacheEntryMetrics::Profit().
    /// Hardware cost of serving a hit (orchestration-thread counters);
    /// 0 = not measured (perf counters unavailable on this host).
    double ewma_hit_cycles = 0;
    double ewma_hit_llc_miss = 0;
  };

  /// The ledger, sorted by saved_ms_total descending (biggest winners
  /// first; net-loss entries at the bottom).
  std::vector<LedgerEntry> LedgerSnapshot() const;
  /// Ledger as JSON: {"schema":"aggcache-ledger-v1","entries":[...]}.
  std::string LedgerJson() const;
  /// Human-readable top-N ledger table (shell `\cache`).
  std::string LedgerText(size_t top_n = 10) const;

  /// True while the manager refuses new builds under memory pressure.
  bool degraded() const { return degraded_.load(std::memory_order_relaxed); }

  /// Cumulative pruning statistics across all cached executions.
  PruneStats prune_stats() const;
  void ResetPruneStats();

  // CacheDescriptorSource: cache-entry descriptors (key + snapshot tid +
  // profit stats, no payload) persisted into checkpoints so a restarted
  // engine knows which aggregates were worth caching.
  std::vector<CacheDescriptor> ExportCacheDescriptors() const override;

  /// Seeds the warm-restart map with descriptors recovered from the last
  /// checkpoint. The next miss on a warm query bypasses the min-exec-ms
  /// admission gate and inherits the descriptor's hit count — lazy
  /// revalidation: the entry's value is always rebuilt from current data
  /// (the persisted base tid only tells us the descriptor predates the
  /// restart), so a stale snapshot tid can never serve stale rows.
  void ImportWarmDescriptors(std::vector<CacheDescriptor> descriptors);

  /// Warm descriptors not yet consumed by a re-admission.
  size_t warm_descriptors_pending() const;

  // MergeObserver: incremental maintenance during the delta merge
  // (Section 5.2). Called with the merge's table locks held — exclusive on
  // the merging table, shared on all others — so no reader of the affected
  // entries can be in flight.
  void OnBeforeMerge(Table& table, size_t group_index,
                     const Snapshot& snapshot) override;
  void OnAfterMerge(Table& table, size_t group_index,
                    const Snapshot& snapshot) override;
  void OnMergeAborted(Table& table, size_t group_index) override;

 private:
  /// Entry-map stripe: an independent mutex + hash map so concurrent
  /// lookups on different keys rarely contend.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<CacheKey, std::shared_ptr<CacheEntry>, CacheKeyHash>
        entries;
  };
  static constexpr size_t kNumShards = 16;

  Shard& ShardFor(const CacheKey& key) const;

  /// Body of Execute; accumulates into the caller-local stats blocks which
  /// Execute publishes at the end. `perf_begin` is the hardware-counter
  /// reading Execute took at entry ({valid=false} when counters are
  /// unavailable) — the cache-hit path differences it to feed the ledger's
  /// hardware EWMAs.
  StatusOr<AggregateResult> ExecuteInternal(const AggregateQuery& query,
                                            const Transaction& txn,
                                            const ExecutionOptions& options,
                                            const PerfDelta& perf_begin,
                                            CacheExecStats* stats,
                                            PruneStats* prune_acc);

  /// Returns the entry for the bound query, building it on a miss with
  /// single-flight semantics. Returns nullptr when the admission policy
  /// rejects the aggregate or repeated evictions starve this caller (the
  /// caller then answers uncached).
  StatusOr<std::shared_ptr<CacheEntry>> GetOrCreateEntry(
      const BoundQuery& bound, Snapshot snapshot, CacheExecStats* stats);

  /// Recomputes all main partials and snapshots under `snapshot`. Caller
  /// holds the entry's value lock exclusively.
  Status RebuildEntry(CacheEntry& entry, const BoundQuery& bound,
                      Snapshot snapshot);

  /// Applies pending main-partition invalidations to the entry: bit-vector
  /// diff + subtract for single-table entries (Section 2.2); for join
  /// entries, negative-delta correction joins (incremental, see
  /// JoinMainCompensate) or a full rebuild per the config. Caller holds the
  /// entry's value lock exclusively.
  Status MainCompensate(CacheEntry& entry, const BoundQuery& bound,
                        Snapshot snapshot, CacheExecStats* stats);

  /// Incremental main compensation for join entries. Expanding the cached
  /// all-main join over per-table entry-visible rows V_i = C_i + N_i
  /// (current rows plus rows invalidated since the snapshot) gives
  ///
  ///   prod V_i  =  sum over subsets S of join(N_i for i in S, C_j else),
  ///
  /// so the up-to-date result prod C_i is the cached value minus every
  /// correction join with at least one table restricted to its invalidated
  /// ("negative delta") rows. The N_i sets are tiny, so each correction is
  /// cheap — realizing the paper's Section 8 proposal.
  Status JoinMainCompensate(CacheEntry& entry, const BoundQuery& bound,
                            Snapshot snapshot);

  void RefreshSnapshots(CacheEntry& entry, const BoundQuery& bound,
                        Snapshot snapshot);

  void TouchEntry(CacheEntry& entry);
  void EvictIfNeeded(const CacheEntry* keep = nullptr);

  /// Refreshes the entry's size_bytes, keeping the running byte total in
  /// step while the entry's bytes are accounted (see
  /// CacheEntry::bytes_accounted).
  void RefreshEntrySize(CacheEntry& entry);

  /// Removes `entry` from its shard if still resident (deaccounting its
  /// bytes) — used when a build fails or admission rejects it.
  void RemoveEntry(const std::shared_ptr<CacheEntry>& entry);

  /// All resident entries, for merge-time maintenance sweeps.
  std::vector<std::shared_ptr<CacheEntry>> SnapshotEntries() const;

  /// Records a failed merge-time maintenance attempt: the entry is marked
  /// for rebuild on next access instead of crashing the process.
  void RecordMaintenanceFailure(CacheEntry& entry, const Status& status);

  /// Debug-build consistency check of the running byte total; the caller
  /// must hold every shard mutex.
  void AssertByteAccountingLocked() const;

  /// Latches the observed process-memory-pressure state into the degraded
  /// flag, bumping the flip metric + flight event on each transition. While
  /// degraded, GetOrCreateEntry refuses new builds (queries stream
  /// uncached) and eviction runs below the configured budget.
  void UpdateDegradedMode(bool under_pressure);

  Database* db_;
  Config config_;
  Executor executor_;
  Shard shards_[kNumShards];
  /// Guards total_bytes_ and every entry's bytes_accounted flag.
  mutable std::mutex bytes_mu_;
  /// Sum of metrics().size_bytes over accounted entries, maintained
  /// incrementally so eviction decisions are O(1) instead of O(entries).
  size_t total_bytes_ = 0;
  /// Guards last_stats_ and prune_stats_.
  mutable std::mutex stats_mu_;
  CacheExecStats last_stats_;
  PruneStats prune_stats_;
  std::atomic<int64_t> access_clock_{0};
  /// True while the process tracker reports memory pressure (degraded
  /// mode): new builds are refused and eviction frees headroom.
  std::atomic<bool> degraded_{false};
  /// Warm-restart descriptors keyed by canonical query string, consumed on
  /// first miss of the matching query.
  mutable std::mutex warm_mu_;
  std::unordered_map<std::string, CacheDescriptor> warm_descriptors_;
};

}  // namespace aggcache

#endif  // AGGCACHE_CACHE_AGGREGATE_CACHE_MANAGER_H_
