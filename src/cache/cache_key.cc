#include "cache/cache_key.h"

namespace aggcache {

CacheKey MakeCacheKey(const AggregateQuery& query) {
  CacheKey key;
  key.canonical = query.CanonicalString();
  key.hash = std::hash<std::string>()(key.canonical);
  return key;
}

}  // namespace aggcache
