#include "cache/cache_entry.h"

#include "common/logging.h"
#include "storage/table.h"

namespace aggcache {

AggregateResult CacheEntry::MergedMainResult(size_t num_aggregates) const {
  AggregateResult merged(num_aggregates);
  for (const auto& [combo, partial] : main_partials_) {
    merged.MergeFrom(partial);
  }
  return merged;
}

bool CacheEntry::IsDirty(const std::vector<const Table*>& tables) const {
  AGGCACHE_CHECK_EQ(tables.size(), snapshots_.size());
  for (size_t t = 0; t < tables.size(); ++t) {
    for (size_t g = 0; g < snapshots_[t].size(); ++g) {
      if (tables[t]->group(g).main.invalidation_count() !=
          snapshots_[t][g].invalidation_count) {
        return true;
      }
    }
  }
  return false;
}

bool CacheEntry::ShapeMatches(const std::vector<const Table*>& tables) const {
  if (needs_rebuild_) return false;
  if (snapshots_.size() != tables.size()) return false;
  for (size_t t = 0; t < tables.size(); ++t) {
    if (snapshots_[t].size() != tables[t]->num_groups()) return false;
    for (size_t g = 0; g < snapshots_[t].size(); ++g) {
      if (snapshots_[t][g].row_count != tables[t]->group(g).main.num_rows()) {
        return false;
      }
    }
  }
  return true;
}

void CacheEntry::RefreshSizeBytes() {
  size_t bytes = 0;
  for (const auto& [combo, partial] : main_partials_) {
    bytes += partial.ByteSize() + combo.size() * sizeof(PartitionRef);
  }
  for (const auto& per_table : snapshots_) {
    for (const MainSnapshot& snapshot : per_table) {
      bytes += snapshot.visibility.ByteSize() + sizeof(MainSnapshot);
    }
  }
  metrics_.size_bytes = bytes;
}

}  // namespace aggcache
