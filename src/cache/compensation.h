#ifndef AGGCACHE_CACHE_COMPENSATION_H_
#define AGGCACHE_CACHE_COMPENSATION_H_

#include <span>
#include <vector>

#include "objectaware/join_pruning.h"
#include "objectaware/matching_dependency.h"
#include "query/executor.h"

namespace aggcache {

/// Work counters for one compensation pass.
struct CompensationStats {
  uint64_t subjoins_considered = 0;
  uint64_t subjoins_executed = 0;
  uint64_t subjoins_pruned = 0;
  /// Delta rows read across all executed subjoins — the ledger's measure of
  /// how much delta volume this compensation had to chew through.
  uint64_t rows_scanned = 0;
};

/// Delta compensation (Section 2.3.2): executes the non-all-main subjoin
/// combinations under `snapshot`, skipping those the pruner proves empty
/// and, when `use_pushdown` is set, applying MD-derived local predicates to
/// the non-prunable ones (Section 5.3). The union of the returned result
/// with the cached main result is the consistent query answer.
StatusOr<AggregateResult> DeltaCompensate(Executor& executor,
                                          const BoundQuery& bound,
                                          const std::vector<MdBinding>& mds,
                                          JoinPruner& pruner,
                                          bool use_pushdown, Snapshot snapshot,
                                          CompensationStats* stats);

/// Contribution of specific rows of one main partition to a single-table
/// aggregate query (filters applied). Used by main compensation to subtract
/// invalidated rows from a cached entry.
StatusOr<AggregateResult> ComputeRowsContribution(const BoundQuery& bound,
                                                  size_t group_index,
                                                  std::span<const uint32_t> rows);

}  // namespace aggcache

#endif  // AGGCACHE_CACHE_COMPENSATION_H_
