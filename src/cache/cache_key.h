#ifndef AGGCACHE_CACHE_CACHE_KEY_H_
#define AGGCACHE_CACHE_CACHE_KEY_H_

#include <functional>
#include <string>

#include "query/aggregate_query.h"

namespace aggcache {

/// Unique identifier of an aggregate cache entry, derived from the full
/// query definition (tables, join conditions, filters, grouping attributes,
/// aggregate functions) — the "aggregate cache key" of Fig. 2 in the paper.
struct CacheKey {
  std::string canonical;
  size_t hash = 0;

  bool operator==(const CacheKey& other) const {
    return canonical == other.canonical;
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const { return key.hash; }
};

/// Builds the key for `query`. Queries with identical canonical structure
/// map to the same entry (exact-match caching, as in the paper's prototype;
/// subsumption matching is future work there as well).
CacheKey MakeCacheKey(const AggregateQuery& query);

}  // namespace aggcache

#endif  // AGGCACHE_CACHE_CACHE_KEY_H_
