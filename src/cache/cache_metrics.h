#ifndef AGGCACHE_CACHE_CACHE_METRICS_H_
#define AGGCACHE_CACHE_CACHE_METRICS_H_

#include <atomic>
#include <cstdint>

namespace aggcache {

/// Per-entry profit metrics (the "aggregate cache metrics" of Fig. 2):
/// execution times on main and delta partitions, aggregated record counts,
/// maintenance cost, and usage information. The cache manager uses them for
/// admission, eviction, and maintenance decisions.
///
/// Every field is an atomic: hit counters bump on the lock-free read path,
/// and the eviction ranker reads sizes and profit inputs without taking the
/// entry's value lock. Fields use relaxed ordering — each is an independent
/// statistic, never a synchronization point; cross-field consistency (e.g.
/// total_delta_comp_ms vs delta_comp_count) is approximate by design.
struct CacheEntryMetrics {
  /// Approximate bytes held by the cached value (result + snapshots).
  std::atomic<size_t> size_bytes{0};
  /// Rows aggregated when the entry was built on the main partitions.
  std::atomic<uint64_t> main_rows_aggregated{0};
  /// Time to compute the entry on the main partitions (what a cache hit
  /// saves).
  std::atomic<double> main_exec_ms{0.0};
  /// Accumulated delta-compensation time across uses.
  std::atomic<double> total_delta_comp_ms{0.0};
  std::atomic<uint64_t> delta_comp_count{0};
  /// Accumulated merge-time maintenance cost.
  std::atomic<double> maintenance_ms{0.0};
  /// Merge-time maintenance attempts that failed and left the entry marked
  /// for rebuild instead of aborting the process.
  std::atomic<uint64_t> maintenance_failures{0};
  std::atomic<uint64_t> hit_count{0};
  /// Monotonic timestamp (ns) of the last use, for eviction tie-breaks.
  std::atomic<int64_t> last_access_ns{0};

  // --- Cost/benefit ledger (EWMAs, alpha = kEwmaAlpha) ---------------------
  /// Smoothed end-to-end latency of serving a hit from this entry.
  std::atomic<double> ewma_hit_ms{0.0};
  /// Smoothed per-hit delta-compensation cost.
  std::atomic<double> ewma_delta_comp_ms{0.0};
  /// Smoothed cost of (re)building the entry on the main partitions.
  std::atomic<double> ewma_rebuild_ms{0.0};
  /// Smoothed delta rows scanned per compensation pass.
  std::atomic<double> ewma_delta_rows{0.0};
  /// Net milliseconds this entry has saved so far: per hit, the recorded
  /// main_exec_ms (what recomputing would have cost) minus the compensation
  /// actually paid. Can go negative for entries whose deltas outgrew them.
  std::atomic<double> saved_ms_total{0.0};
  /// Total delta rows scanned across all compensation passes.
  std::atomic<uint64_t> delta_rows_scanned{0};
  /// Smoothed hardware cost of serving a hit (orchestration-thread perf
  /// counters); 0 while the host cannot read counters — consumers treat 0
  /// as "not measured", same convention as the EWMAs above.
  std::atomic<double> ewma_hit_cycles{0.0};
  std::atomic<double> ewma_hit_llc_miss{0.0};

  CacheEntryMetrics() = default;
  CacheEntryMetrics(const CacheEntryMetrics& other) { *this = other; }
  CacheEntryMetrics& operator=(const CacheEntryMetrics& other) {
    size_bytes = other.size_bytes.load(std::memory_order_relaxed);
    main_rows_aggregated =
        other.main_rows_aggregated.load(std::memory_order_relaxed);
    main_exec_ms = other.main_exec_ms.load(std::memory_order_relaxed);
    total_delta_comp_ms =
        other.total_delta_comp_ms.load(std::memory_order_relaxed);
    delta_comp_count = other.delta_comp_count.load(std::memory_order_relaxed);
    maintenance_ms = other.maintenance_ms.load(std::memory_order_relaxed);
    maintenance_failures =
        other.maintenance_failures.load(std::memory_order_relaxed);
    hit_count = other.hit_count.load(std::memory_order_relaxed);
    last_access_ns = other.last_access_ns.load(std::memory_order_relaxed);
    ewma_hit_ms = other.ewma_hit_ms.load(std::memory_order_relaxed);
    ewma_delta_comp_ms =
        other.ewma_delta_comp_ms.load(std::memory_order_relaxed);
    ewma_rebuild_ms = other.ewma_rebuild_ms.load(std::memory_order_relaxed);
    ewma_delta_rows = other.ewma_delta_rows.load(std::memory_order_relaxed);
    saved_ms_total = other.saved_ms_total.load(std::memory_order_relaxed);
    delta_rows_scanned =
        other.delta_rows_scanned.load(std::memory_order_relaxed);
    ewma_hit_cycles = other.ewma_hit_cycles.load(std::memory_order_relaxed);
    ewma_hit_llc_miss =
        other.ewma_hit_llc_miss.load(std::memory_order_relaxed);
    return *this;
  }

  /// Atomic add for the accumulated-time fields (C++20 fetch_add on atomic
  /// floating point).
  static void Add(std::atomic<double>& field, double delta) {
    field.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Smoothing factor for the ledger EWMAs: heavy enough that one outlier
  /// compensation pass does not whipsaw eviction/admission inputs, light
  /// enough to follow a growing delta within ~10 uses.
  static constexpr double kEwmaAlpha = 0.2;

  /// Folds `sample` into an EWMA field with a CAS loop (concurrent hits
  /// update the same entry). The first sample seeds the average directly —
  /// 0.0 doubles as "no sample yet", which biases only pathological
  /// genuinely-zero-cost entries and spares a separate has-sample flag.
  static void Ewma(std::atomic<double>& field, double sample) {
    double current = field.load(std::memory_order_relaxed);
    double next;
    do {
      next = current == 0.0 ? sample
                            : current + kEwmaAlpha * (sample - current);
    } while (!field.compare_exchange_weak(current, next,
                                          std::memory_order_relaxed));
  }

  double AvgDeltaCompMs() const {
    uint64_t count = delta_comp_count.load(std::memory_order_relaxed);
    return count == 0 ? 0.0
                      : total_delta_comp_ms.load(std::memory_order_relaxed) /
                            static_cast<double>(count);
  }

  /// Estimated net benefit of keeping the entry: per-use savings (main
  /// execution avoided minus delta compensation paid) times observed uses,
  /// minus what maintenance has cost so far. Entries with higher profit
  /// survive eviction longer.
  double Profit() const {
    double per_use =
        main_exec_ms.load(std::memory_order_relaxed) - AvgDeltaCompMs();
    return per_use * static_cast<double>(
                         1 + hit_count.load(std::memory_order_relaxed)) -
           maintenance_ms.load(std::memory_order_relaxed);
  }
};

}  // namespace aggcache

#endif  // AGGCACHE_CACHE_CACHE_METRICS_H_
