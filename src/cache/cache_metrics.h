#ifndef AGGCACHE_CACHE_CACHE_METRICS_H_
#define AGGCACHE_CACHE_CACHE_METRICS_H_

#include <cstdint>

namespace aggcache {

/// Per-entry profit metrics (the "aggregate cache metrics" of Fig. 2):
/// execution times on main and delta partitions, aggregated record counts,
/// maintenance cost, and usage information. The cache manager uses them for
/// admission, eviction, and maintenance decisions.
struct CacheEntryMetrics {
  /// Approximate bytes held by the cached value (result + snapshots).
  size_t size_bytes = 0;
  /// Rows aggregated when the entry was built on the main partitions.
  uint64_t main_rows_aggregated = 0;
  /// Time to compute the entry on the main partitions (what a cache hit
  /// saves).
  double main_exec_ms = 0.0;
  /// Accumulated delta-compensation time across uses.
  double total_delta_comp_ms = 0.0;
  uint64_t delta_comp_count = 0;
  /// Accumulated merge-time maintenance cost.
  double maintenance_ms = 0.0;
  /// Merge-time maintenance attempts that failed and left the entry marked
  /// for rebuild instead of aborting the process.
  uint64_t maintenance_failures = 0;
  uint64_t hit_count = 0;
  /// Monotonic timestamp (ns) of the last use, for eviction tie-breaks.
  int64_t last_access_ns = 0;

  double AvgDeltaCompMs() const {
    return delta_comp_count == 0
               ? 0.0
               : total_delta_comp_ms / static_cast<double>(delta_comp_count);
  }

  /// Estimated net benefit of keeping the entry: per-use savings (main
  /// execution avoided minus delta compensation paid) times observed uses,
  /// minus what maintenance has cost so far. Entries with higher profit
  /// survive eviction longer.
  double Profit() const {
    double per_use = main_exec_ms - AvgDeltaCompMs();
    return per_use * static_cast<double>(1 + hit_count) - maintenance_ms;
  }
};

}  // namespace aggcache

#endif  // AGGCACHE_CACHE_CACHE_METRICS_H_
