#include "cache/compensation.h"

#include "objectaware/predicate_pushdown.h"

namespace aggcache {

StatusOr<AggregateResult> DeltaCompensate(Executor& executor,
                                          const BoundQuery& bound,
                                          const std::vector<MdBinding>& mds,
                                          JoinPruner& pruner,
                                          bool use_pushdown, Snapshot snapshot,
                                          CompensationStats* stats) {
  AggregateResult result(bound.aggregates.size());
  for (const SubjoinCombination& combo :
       EnumerateCompensationCombinations(bound.tables)) {
    if (stats != nullptr) ++stats->subjoins_considered;
    PruneDecision decision = pruner.ShouldPrune(bound, mds, combo);
    if (decision.pruned) {
      if (stats != nullptr) ++stats->subjoins_pruned;
      continue;
    }
    std::vector<FilterPredicate> extra;
    if (use_pushdown) {
      extra = DerivePushdownFilters(bound, mds, combo);
    }
    ASSIGN_OR_RETURN(AggregateResult partial,
                     executor.ExecuteSubjoin(bound, combo, snapshot, extra));
    if (stats != nullptr) ++stats->subjoins_executed;
    result.MergeFrom(partial);
  }
  return result;
}

StatusOr<AggregateResult> ComputeRowsContribution(
    const BoundQuery& bound, size_t group_index,
    std::span<const uint32_t> rows) {
  if (bound.tables.size() != 1) {
    return Status::InvalidArgument(
        "row-level contribution is defined for single-table queries");
  }
  const Partition& main = bound.tables[0]->group(group_index).main;
  AggregateResult result(bound.aggregates.size());
  GroupKey key;
  key.values.resize(bound.group_by.size());
  std::vector<Value> inputs(bound.aggregates.size());
  for (uint32_t r : rows) {
    bool pass = true;
    for (const BoundQuery::BoundFilter& f : bound.filters) {
      if (!EvalCompare(f.op, main.column(f.column).GetValue(r), f.operand)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    for (size_t g = 0; g < bound.group_by.size(); ++g) {
      key.values[g] = main.column(bound.group_by[g].column).GetValue(r);
    }
    for (size_t a = 0; a < bound.aggregates.size(); ++a) {
      const BoundQuery::BoundAggregate& agg = bound.aggregates[a];
      inputs[a] = agg.is_count_star ? Value()
                                    : main.column(agg.column).GetValue(r);
    }
    result.Accumulate(key, inputs);
  }
  return result;
}

}  // namespace aggcache
