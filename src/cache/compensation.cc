#include "cache/compensation.h"

#include "common/thread_pool.h"
#include "objectaware/predicate_pushdown.h"
#include "obs/engine_metrics.h"
#include "obs/span.h"
#include "obs/trace_recorder.h"
#include "runtime/query_context.h"
#include "verify/fault_injector.h"

namespace aggcache {

StatusOr<AggregateResult> DeltaCompensate(Executor& executor,
                                          const BoundQuery& bound,
                                          const std::vector<MdBinding>& mds,
                                          JoinPruner& pruner,
                                          bool use_pushdown, Snapshot snapshot,
                                          CompensationStats* stats) {
  // Prune decisions (and pushdown derivation) stay on the calling thread:
  // they are cheap, and JoinPruner accumulates stats that must stay
  // race-free. Only the surviving subjoins fan out.
  struct Subjoin {
    SubjoinCombination combo;
    std::vector<FilterPredicate> extra;
  };
  std::vector<Subjoin> subjoins;
  for (SubjoinCombination& combo :
       EnumerateCompensationCombinations(bound.tables)) {
    if (stats != nullptr) ++stats->subjoins_considered;
    PruneDecision decision = pruner.ShouldPrune(bound, mds, combo);
    if (decision.pruned) {
      if (stats != nullptr) ++stats->subjoins_pruned;
      RecordSubjoin(bound, mds, combo, "delta-compensation", decision, {});
      continue;
    }
    std::vector<FilterPredicate> extra;
    if (use_pushdown) {
      extra = DerivePushdownFilters(bound, mds, combo);
      if (!extra.empty()) {
        EngineMetrics::Get().pushdown_predicates->Increment(extra.size());
      }
    }
    RecordSubjoin(bound, mds, combo, "delta-compensation", decision, extra);
    subjoins.push_back(Subjoin{std::move(combo), std::move(extra)});
  }

  std::vector<AggregateResult> partials(subjoins.size());
  std::vector<ExecutorStats> task_stats(subjoins.size());
  std::vector<Status> task_status(subjoins.size());
  // Re-install the calling query's governance context on the pool workers —
  // and the span parent, so each task shows up under this compensation in
  // the trace tree.
  QueryContext* ctx = QueryContext::Current();
  SpanLink span_parent = CurrentSpanLink();
  ParallelFor(subjoins.size(), [&](size_t i) {
    ScopedQueryContext scope(ctx);
    ScopedSpan task_span(SpanKind::kSubjoinTask, span_parent,
                         "delta-comp");
    // `cache.delta_comp` lets the harnesses hold a query inside delta
    // compensation deterministically (kDelay) so the active-query registry
    // and remote cancellation can be exercised against a live phase.
    Status fault = FaultInjector::Global().MaybeFail("cache.delta_comp");
    if (!fault.ok()) {
      task_status[i] = fault;
      return;
    }
    auto partial =
        executor.ExecuteSubjoin(bound, subjoins[i].combo, snapshot,
                                subjoins[i].extra,
                                /*restriction=*/nullptr, &task_stats[i]);
    if (partial.ok()) {
      partials[i] = std::move(partial).value();
    } else {
      task_status[i] = partial.status();
    }
    // Progress accounting for the registry: one add per completed subjoin.
    if (ctx != nullptr) ctx->AddRowsScanned(task_stats[i].rows_scanned);
  });

  // Counters merge all-or-none before any error check: each task already
  // flushed into the global metrics registry, so dropping later tasks'
  // stats on a mid-fanout failure would desynchronize the two.
  Status first_error;
  for (size_t i = 0; i < subjoins.size(); ++i) {
    executor.stats().MergeFrom(task_stats[i]);
    if (stats != nullptr) {
      ++stats->subjoins_executed;
      stats->rows_scanned += task_stats[i].rows_scanned;
    }
    if (first_error.ok() && !task_status[i].ok()) first_error = task_status[i];
  }
  RETURN_IF_ERROR(first_error);
  // Merge in enumeration order so results are deterministic at any thread
  // count (floating-point sums are order-sensitive).
  AggregateResult result(bound.aggregates.size());
  for (size_t i = 0; i < subjoins.size(); ++i) {
    result.MergeFrom(partials[i]);
  }
  return result;
}

StatusOr<AggregateResult> ComputeRowsContribution(
    const BoundQuery& bound, size_t group_index,
    std::span<const uint32_t> rows) {
  if (bound.tables.size() != 1) {
    return Status::InvalidArgument(
        "row-level contribution is defined for single-table queries");
  }
  const Partition& main = bound.tables[0]->group(group_index).main;
  AggregateResult result(bound.aggregates.size());
  GroupKey key;
  key.values.resize(bound.group_by.size());
  std::vector<Value> inputs(bound.aggregates.size());
  for (uint32_t r : rows) {
    bool pass = true;
    for (const BoundQuery::BoundFilter& f : bound.filters) {
      if (!EvalCompare(f.op, main.column(f.column).GetValue(r), f.operand)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    for (size_t g = 0; g < bound.group_by.size(); ++g) {
      key.values[g] = main.column(bound.group_by[g].column).GetValue(r);
    }
    for (size_t a = 0; a < bound.aggregates.size(); ++a) {
      const BoundQuery::BoundAggregate& agg = bound.aggregates[a];
      inputs[a] = agg.is_count_star ? Value()
                                    : main.column(agg.column).GetValue(r);
    }
    result.Accumulate(key, inputs);
  }
  return result;
}

}  // namespace aggcache
