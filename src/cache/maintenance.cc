#include "cache/maintenance.h"

#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"

namespace aggcache {

const char* MaintenanceStrategyToString(MaintenanceStrategy strategy) {
  switch (strategy) {
    case MaintenanceStrategy::kEagerIncremental:
      return "eager-incremental";
    case MaintenanceStrategy::kLazyIncremental:
      return "lazy-incremental";
    case MaintenanceStrategy::kAggregateCache:
      return "aggregate-cache";
    case MaintenanceStrategy::kFullRecompute:
      return "full-recompute";
  }
  return "?";
}

namespace {

/// Shared base for the two classical strategies. The view is materialized
/// as a real summary table inside the column store — one row per group,
/// keyed by the group value — exactly the "predefined summary tables"
/// pattern the paper's introduction describes. Maintenance is therefore an
/// out-of-place column-store update per affected group (invalidate the old
/// version, insert the new one into the summary table's delta), which is
/// what makes classical maintenance expensive under high insert rates.
class SummaryTableViewBase : public MaterializedAggregate {
 public:
  SummaryTableViewBase(Database* db, AggregateQuery query)
      : db_(db), executor_(db), query_(std::move(query)) {}

  Status Initialize() {
    ASSIGN_OR_RETURN(bound_, BoundQuery::Bind(*db_, query_));
    if (bound_.group_by.size() != 1) {
      return Status::Unimplemented(
          "summary-table views support exactly one group-by column");
    }
    for (const BoundQuery::BoundAggregate& agg : bound_.aggregates) {
      if (!IsSelfMaintainable(agg.fn)) {
        return Status::InvalidArgument(
            "summary-table views require self-maintainable aggregates");
      }
    }

    // Schema: the group value (primary key), then per aggregate the
    // decomposed state (sum_int, sum_double, saw_double, count), then the
    // hidden COUNT(*).
    const Table& base = *bound_.tables[0];
    ColumnType group_type =
        base.schema().columns[bound_.group_by[0].column].type;
    static int counter = 0;
    SchemaBuilder builder(StrFormat("_mv_%d_%s", counter++,
                                    base.name().c_str()));
    builder.AddColumn("grp", group_type).PrimaryKey();
    for (size_t a = 0; a < bound_.aggregates.size(); ++a) {
      builder.AddColumn(StrFormat("sum_int_%zu", a), ColumnType::kInt64);
      builder.AddColumn(StrFormat("sum_double_%zu", a),
                        ColumnType::kDouble);
      builder.AddColumn(StrFormat("saw_double_%zu", a), ColumnType::kInt64);
      builder.AddColumn(StrFormat("count_%zu", a), ColumnType::kInt64);
    }
    builder.AddColumn("count_star", ColumnType::kInt64);
    ASSIGN_OR_RETURN(view_table_, db_->CreateTable(builder.Build()));

    // Populate from the current base-table contents.
    Snapshot snapshot = db_->txn_manager().GlobalSnapshot();
    ASSIGN_OR_RETURN(AggregateResult initial,
                     executor_.ExecuteUncached(query_, snapshot));
    Transaction txn = db_->Begin();
    for (const auto& [key, entry] : initial.groups()) {
      RETURN_IF_ERROR(view_table_->Insert(txn, EncodeRow(key, entry)));
    }
    applied_delta_rows_ = bound_.tables[0]->group(0).delta.num_rows();
    return Status::Ok();
  }

  StatusOr<AggregateResult> Query(const Transaction& txn) override {
    return ReadViewTable(txn.snapshot());
  }

 protected:
  std::vector<Value> EncodeRow(const GroupKey& key,
                               const AggregateResult::GroupEntry& entry) {
    std::vector<Value> row;
    row.push_back(key.values[0]);
    for (const AggregateState& state : entry.states) {
      row.push_back(Value(state.sum_int));
      row.push_back(Value(state.sum_double));
      row.push_back(Value(int64_t{state.saw_double ? 1 : 0}));
      row.push_back(Value(state.count));
    }
    row.push_back(Value(entry.count_star));
    return row;
  }

  AggregateResult::GroupEntry DecodeRow(const Table& table,
                                        const RowLocation& loc) {
    AggregateResult::GroupEntry entry;
    size_t col = 1;
    entry.states.resize(bound_.aggregates.size());
    for (AggregateState& state : entry.states) {
      state.sum_int = table.ValueAt(loc, col++).AsInt64();
      state.sum_double = table.ValueAt(loc, col++).AsDouble();
      state.saw_double = table.ValueAt(loc, col++).AsInt64() != 0;
      state.count = table.ValueAt(loc, col++).AsInt64();
    }
    entry.count_star = table.ValueAt(loc, col).AsInt64();
    return entry;
  }

  /// Scans the summary table under `snapshot` and reconstructs the result.
  /// The scan visits every stored row version — updated groups accumulate
  /// invalidated versions in the view's delta until a merge, the usual
  /// column-store update cost.
  StatusOr<AggregateResult> ReadViewTable(Snapshot snapshot) {
    AggregateResult result(bound_.aggregates.size());
    for (size_t g = 0; g < view_table_->num_groups(); ++g) {
      const PartitionGroup& group = view_table_->group(g);
      for (PartitionKind kind :
           {PartitionKind::kMain, PartitionKind::kDelta}) {
        const Partition& p =
            kind == PartitionKind::kMain ? group.main : group.delta;
        for (uint32_t r = 0; r < p.num_rows(); ++r) {
          if (!snapshot.RowVisible(p.create_tid(r), p.invalidate_tid(r))) {
            continue;
          }
          RowLocation loc{static_cast<uint32_t>(g), kind, r};
          GroupKey key{{p.column(0).GetValue(r)}};
          result.SetGroup(key, DecodeRow(*view_table_, loc));
        }
      }
    }
    return result;
  }

  /// Locates the visible summary row for `grp` the way a generic
  /// column-store UPDATE statement does: by evaluating the predicate over
  /// the summary table's partitions. Summary tables in the paper's setting
  /// are maintained through SQL update statements, whose WHERE clause is
  /// processed as a column scan — this statement-level cost is exactly what
  /// makes classical maintenance expensive in the Fig. 6 experiment.
  std::optional<RowLocation> ScanForGroup(const Value& grp,
                                          Snapshot snapshot) {
    for (size_t g = 0; g < view_table_->num_groups(); ++g) {
      const PartitionGroup& group = view_table_->group(g);
      for (PartitionKind kind :
           {PartitionKind::kMain, PartitionKind::kDelta}) {
        const Partition& p =
            kind == PartitionKind::kMain ? group.main : group.delta;
        const Column& grp_column = p.column(0);
        for (uint32_t r = 0; r < p.num_rows(); ++r) {
          if (!(grp_column.GetValue(r) == grp)) continue;
          if (!snapshot.RowVisible(p.create_tid(r), p.invalidate_tid(r))) {
            continue;
          }
          return RowLocation{static_cast<uint32_t>(g), kind, r};
        }
      }
    }
    return std::nullopt;
  }

  /// Applies base-table delta rows [applied_delta_rows_, end) to the
  /// summary table: aggregate the pending rows per group, then one
  /// out-of-place update (or insert) per touched group.
  Status ApplyPendingRows() {
    const Partition& delta = bound_.tables[0]->group(0).delta;
    if (applied_delta_rows_ == delta.num_rows()) return Status::Ok();

    std::unordered_map<GroupKey, AggregateResult::GroupEntry, GroupKeyHash>
        pending;
    for (size_t r = applied_delta_rows_; r < delta.num_rows(); ++r) {
      bool pass = true;
      for (const BoundQuery::BoundFilter& f : bound_.filters) {
        if (!EvalCompare(f.op, delta.column(f.column).GetValue(r),
                         f.operand)) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      GroupKey key{{delta.column(bound_.group_by[0].column).GetValue(r)}};
      AggregateResult::GroupEntry& entry = pending[key];
      if (entry.states.empty()) entry.states.resize(bound_.aggregates.size());
      for (size_t a = 0; a < bound_.aggregates.size(); ++a) {
        const BoundQuery::BoundAggregate& agg = bound_.aggregates[a];
        entry.states[a].Add(agg.is_count_star
                                ? Value()
                                : delta.column(agg.column).GetValue(r));
      }
      ++entry.count_star;
    }
    applied_delta_rows_ = delta.num_rows();

    Transaction txn = db_->Begin();
    for (auto& [key, delta_entry] : pending) {
      ++maintenance_statements_;
      std::optional<RowLocation> loc =
          ScanForGroup(key.values[0], txn.snapshot());
      if (!loc) {
        RETURN_IF_ERROR(
            view_table_->Insert(txn, EncodeRow(key, delta_entry)));
        continue;
      }
      AggregateResult::GroupEntry merged = DecodeRow(*view_table_, *loc);
      for (size_t a = 0; a < merged.states.size(); ++a) {
        merged.states[a].Merge(delta_entry.states[a]);
      }
      merged.count_star += delta_entry.count_star;
      RETURN_IF_ERROR(view_table_->UpdateByPk(txn, key.values[0],
                                              EncodeRow(key, merged)));
    }
    return Status::Ok();
  }

  uint64_t ConsumeMaintenanceStatements() override {
    uint64_t n = maintenance_statements_;
    maintenance_statements_ = 0;
    return n;
  }

  Database* db_;
  Executor executor_;
  AggregateQuery query_;
  BoundQuery bound_;
  Table* view_table_ = nullptr;
  size_t applied_delta_rows_ = 0;
  uint64_t maintenance_statements_ = 0;
};

class EagerIncrementalView final : public SummaryTableViewBase {
 public:
  using SummaryTableViewBase::SummaryTableViewBase;

  Status OnInsertCommitted() override {
    // Maintain the summary table within the inserting "transaction".
    return ApplyPendingRows();
  }
};

class LazyIncrementalView final : public SummaryTableViewBase {
 public:
  using SummaryTableViewBase::SummaryTableViewBase;

  Status OnInsertCommitted() override {
    // Deferred maintenance still keeps an explicit log of the insert
    // operations (Zhou & Larson): copy the new base rows into the log. The
    // log write is the lazy strategy's per-insert cost.
    const Partition& delta = bound_.tables[0]->group(0).delta;
    for (size_t r = logged_rows_; r < delta.num_rows(); ++r) {
      log_.push_back(delta.GetRow(r));
    }
    logged_rows_ = delta.num_rows();
    return Status::Ok();
  }

  StatusOr<AggregateResult> Query(const Transaction& txn) override {
    (void)txn;
    // Deferred maintenance runs before the read and commits its own
    // transaction; the read happens under the post-maintenance snapshot
    // (the engine is serial, so this is the caller's logical read time).
    RETURN_IF_ERROR(ApplyPendingRows());
    log_.clear();  // The logged operations are now applied.
    return ReadViewTable(db_->txn_manager().GlobalSnapshot());
  }

 private:
  std::vector<std::vector<Value>> log_;
  size_t logged_rows_ = 0;
};

class AggregateCacheView final : public MaterializedAggregate {
 public:
  AggregateCacheView(AggregateCacheManager* manager, AggregateQuery query)
      : manager_(manager), query_(std::move(query)) {}

  Status OnInsertCommitted() override {
    // The cache is defined on main partitions only; inserts never touch it.
    return Status::Ok();
  }

  StatusOr<AggregateResult> Query(const Transaction& txn) override {
    ExecutionOptions options;
    options.strategy = ExecutionStrategy::kCachedFullPruning;
    return manager_->Execute(query_, txn, options);
  }

 private:
  AggregateCacheManager* manager_;
  AggregateQuery query_;
};

class FullRecomputeView final : public MaterializedAggregate {
 public:
  FullRecomputeView(Database* db, AggregateQuery query)
      : executor_(db), query_(std::move(query)) {}

  Status OnInsertCommitted() override { return Status::Ok(); }

  StatusOr<AggregateResult> Query(const Transaction& txn) override {
    return executor_.ExecuteUncached(query_, txn.snapshot());
  }

 private:
  Executor executor_;
  AggregateQuery query_;
};

}  // namespace

StatusOr<std::unique_ptr<MaterializedAggregate>> CreateMaterializedAggregate(
    MaintenanceStrategy strategy, Database* db, const AggregateQuery& query,
    AggregateCacheManager* manager) {
  ASSIGN_OR_RETURN(BoundQuery bound, BoundQuery::Bind(*db, query));
  if (bound.tables.size() != 1) {
    return Status::InvalidArgument(
        "maintenance strategies are defined for single-table aggregates");
  }
  if (!query.having.empty()) {
    return Status::Unimplemented(
        "summary-table views do not support HAVING (groups filtered out "
        "of the view could not be maintained incrementally)");
  }
  switch (strategy) {
    case MaintenanceStrategy::kEagerIncremental: {
      auto view = std::make_unique<EagerIncrementalView>(db, query);
      RETURN_IF_ERROR(view->Initialize());
      return std::unique_ptr<MaterializedAggregate>(std::move(view));
    }
    case MaintenanceStrategy::kLazyIncremental: {
      auto view = std::make_unique<LazyIncrementalView>(db, query);
      RETURN_IF_ERROR(view->Initialize());
      return std::unique_ptr<MaterializedAggregate>(std::move(view));
    }
    case MaintenanceStrategy::kAggregateCache: {
      if (manager == nullptr) {
        return Status::InvalidArgument(
            "aggregate-cache strategy requires a cache manager");
      }
      return std::unique_ptr<MaterializedAggregate>(
          std::make_unique<AggregateCacheView>(manager, query));
    }
    case MaintenanceStrategy::kFullRecompute:
      return std::unique_ptr<MaterializedAggregate>(
          std::make_unique<FullRecomputeView>(db, query));
  }
  return Status::InvalidArgument("unknown maintenance strategy");
}

}  // namespace aggcache
