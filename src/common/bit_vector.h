#ifndef AGGCACHE_COMMON_BIT_VECTOR_H_
#define AGGCACHE_COMMON_BIT_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aggcache {

/// Dense bit vector used for MVCC row-visibility snapshots.
///
/// The consistent view manager produces one BitVector per partition per
/// snapshot; aggregate cache entries store the main-partition vector taken at
/// entry creation and diff it against the current one to detect invalidated
/// rows (main compensation, Section 2.2 of the paper).
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(size_t size, bool initial = false);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void Set(size_t i, bool value) {
    uint64_t mask = 1ULL << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  /// Appends a bit, growing the vector by one.
  void PushBack(bool value);

  /// Number of set bits.
  size_t CountOnes() const;

  /// Returns indices i where this[i] == 1 and other[i] == 0. `other` may be
  /// longer than *this (rows appended after the snapshot); extra rows are
  /// ignored. This is the bit-vector comparison the paper uses to detect
  /// rows invalidated since the snapshot was taken.
  std::vector<uint32_t> OnesClearedIn(const BitVector& other) const;

  bool operator==(const BitVector& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// Heap footprint in bytes.
  size_t ByteSize() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace aggcache

#endif  // AGGCACHE_COMMON_BIT_VECTOR_H_
