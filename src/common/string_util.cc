#include "common/string_util.h"

#include <cstdio>

namespace aggcache {

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed));
    std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return result;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += separator;
    result += parts[i];
  }
  return result;
}

std::string HumanBytes(size_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 3) {
    value /= 1024.0;
    ++unit;
  }
  return StrFormat("%.1f %s", value, units[unit]);
}

}  // namespace aggcache
