#ifndef AGGCACHE_COMMON_RNG_H_
#define AGGCACHE_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace aggcache {

/// Deterministic pseudo-random generator used by the workload generators and
/// the property tests. A thin wrapper around std::mt19937_64 so every
/// experiment is reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi], inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli draw with probability `p` of returning true.
  bool Chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace aggcache

#endif  // AGGCACHE_COMMON_RNG_H_
