#ifndef AGGCACHE_COMMON_STOPWATCH_H_
#define AGGCACHE_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace aggcache {

/// Monotonic wall-clock stopwatch used for cache profit metrics and the
/// benchmark harness.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Nanoseconds elapsed since construction or the last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace aggcache

#endif  // AGGCACHE_COMMON_STOPWATCH_H_
