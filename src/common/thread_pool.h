#ifndef AGGCACHE_COMMON_THREAD_POOL_H_
#define AGGCACHE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aggcache {

/// Fixed-size worker pool used to fan out independent subjoin executions
/// (delta compensation, uncached unions, entry rebuilds, and correction
/// joins). The pool provides raw task submission; most callers go through
/// TaskGroup or ParallelFor below.
///
/// Sizing convention: a pool constructed with parallelism P spawns P - 1
/// worker threads, because the submitting thread always participates in
/// ParallelFor. A parallelism of 1 therefore spawns no threads at all and
/// every ParallelFor degenerates to the plain sequential loop — bit-identical
/// to single-threaded execution with zero synchronization overhead.
class ThreadPool {
 public:
  /// Upper bound on parallelism; larger requests are clamped.
  static constexpr size_t kMaxParallelism = 1024;

  /// `parallelism` counts the calling thread; values outside
  /// [1, kMaxParallelism] are clamped.
  explicit ThreadPool(size_t parallelism);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism including the calling thread.
  size_t parallelism() const { return workers_.size() + 1; }
  size_t num_workers() const { return workers_.size(); }

  /// Enqueues a task for the workers. The task must not throw: a task that
  /// does is caught by the worker, reported, and terminates the process —
  /// silently losing an exception (or unwinding a worker loop) would leave
  /// TaskGroup counters and ParallelFor callers hanging.
  void Submit(std::function<void()> task);

  /// True while any task is queued or running on a worker. Used by
  /// SetGlobalParallelism to refuse to destroy a pool under live work.
  bool Busy() const;

  /// True when the current thread is one of some pool's workers. Nested
  /// fan-outs detect this and run sequentially instead of blocking a worker
  /// on sub-tasks no one may pick up.
  static bool InWorker();

  /// The process-wide pool used by the query engine. Sized on first use
  /// from the AGGCACHE_THREADS environment variable, defaulting to
  /// std::thread::hardware_concurrency().
  static ThreadPool& Global();

  /// Replaces the global pool with one of the given parallelism (the
  /// --threads=N bench knob). Must not be called while work is in flight:
  /// doing so would join workers mid-task from under their callers, so the
  /// call fails loudly (process abort with a diagnostic) instead of
  /// deadlocking or racing.
  static void SetGlobalParallelism(size_t parallelism);

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  /// Tasks currently executing on workers (dequeued but unfinished).
  size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// A set of tasks submitted to a pool whose completion can be awaited.
/// With a serial pool (no workers) tasks run inline on the calling thread
/// in submission order.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `task`; runs it inline when the pool is serial or the
  /// calling thread is itself a pool worker.
  void Run(std::function<void()> task);

  /// Blocks until every task passed to Run has finished.
  void Wait();

 private:
  ThreadPool& pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_ = 0;
};

/// Runs fn(0) .. fn(n-1) across `pool`, the calling thread included. Indices
/// are claimed dynamically, so per-index cost may vary freely; completion of
/// every index is guaranteed on return. Callers own any cross-index
/// determinism: write results into per-index slots and reduce in index order
/// after the call. `fn` must not throw.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 ThreadPool& pool);

/// ParallelFor over the global pool.
void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

}  // namespace aggcache

#endif  // AGGCACHE_COMMON_THREAD_POOL_H_
