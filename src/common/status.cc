#include "common/status.h"

namespace aggcache {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace aggcache
