#ifndef AGGCACHE_COMMON_VALUE_H_
#define AGGCACHE_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

#include "common/logging.h"

namespace aggcache {

/// Physical type of a column. Every column stores exactly one of these.
enum class ColumnType : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
};

/// Returns a lower-case name ("int64", "double", "string").
const char* ColumnTypeToString(ColumnType type);

/// A dynamically typed SQL value: NULL, INT64, DOUBLE, or STRING.
///
/// Values are small and copyable; the columnar store keeps them only inside
/// dictionaries, so per-row storage cost is one dictionary code, not one
/// Value.
class Value {
 public:
  /// NULL value.
  Value() : rep_(std::monostate{}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}

  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }

  /// Typed accessors; aborts when the value holds a different type.
  int64_t AsInt64() const {
    AGGCACHE_CHECK(is_int64()) << "value is not int64";
    return std::get<int64_t>(rep_);
  }
  double AsDouble() const {
    AGGCACHE_CHECK(is_double()) << "value is not double";
    return std::get<double>(rep_);
  }
  const std::string& AsString() const {
    AGGCACHE_CHECK(is_string()) << "value is not string";
    return std::get<std::string>(rep_);
  }

  /// The numeric content as double: int64 values are widened, doubles are
  /// returned as-is. Aborts for strings and NULL.
  double NumericAsDouble() const;

  /// Returns the ColumnType for non-null values; aborts for NULL.
  ColumnType type() const;

  /// True when this value matches `t` (NULL matches no type).
  bool MatchesType(ColumnType t) const;

  /// SQL-style rendering, for debugging and result printing.
  std::string ToString() const;

  /// Approximate heap + inline footprint in bytes, used by the memory
  /// accounting in the Section 6.2 experiment.
  size_t ByteSize() const;

  bool operator==(const Value& other) const { return rep_ == other.rep_; }
  bool operator!=(const Value& other) const { return rep_ != other.rep_; }

  /// Total order: NULL < int64/double (by numeric value) < string. Mixed
  /// int64/double compare numerically so dictionaries can hold either.
  bool operator<(const Value& other) const;
  bool operator<=(const Value& other) const { return !(other < *this); }
  bool operator>(const Value& other) const { return other < *this; }
  bool operator>=(const Value& other) const { return !(*this < other); }

  /// Stable hash combining type and content.
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> rep_;
};

/// Hash functor for use in unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace aggcache

#endif  // AGGCACHE_COMMON_VALUE_H_
