#include "common/bit_packed_vector.h"

#include <bit>

#include "common/logging.h"

namespace aggcache {

BitPackedVector::BitPackedVector(int bits_per_entry)
    : bits_per_entry_(bits_per_entry < 1 ? 1 : bits_per_entry) {
  AGGCACHE_CHECK_LE(bits_per_entry_, 32) << "entry width above 32 bits";
  value_mask_ = bits_per_entry_ == 32
                    ? ~0U
                    : ((1U << bits_per_entry_) - 1);
}

void BitPackedVector::PushBack(uint32_t value) {
  AGGCACHE_CHECK_EQ(value & value_mask_, value)
      << "value " << value << " does not fit in " << bits_per_entry_
      << " bits";
  size_t bit_pos = size_ * bits_per_entry_;
  size_t word = bit_pos >> 6;
  int offset = static_cast<int>(bit_pos & 63);
  if (word >= words_.size()) words_.push_back(0);
  words_[word] |= static_cast<uint64_t>(value) << offset;
  int spill = offset + bits_per_entry_ - 64;
  if (spill > 0) {
    words_.push_back(static_cast<uint64_t>(value) >>
                     (bits_per_entry_ - spill));
  }
  ++size_;
}

uint32_t BitPackedVector::Get(size_t i) const {
  AGGCACHE_CHECK_LT(i, size_);
  size_t bit_pos = i * bits_per_entry_;
  size_t word = bit_pos >> 6;
  int offset = static_cast<int>(bit_pos & 63);
  uint64_t bits = words_[word] >> offset;
  int spill = offset + bits_per_entry_ - 64;
  if (spill > 0) {
    bits |= words_[word + 1] << (bits_per_entry_ - spill);
  }
  return static_cast<uint32_t>(bits) & value_mask_;
}

void BitPackedVector::Unpack(size_t begin, size_t count, uint32_t* out) const {
  if (count == 0) return;
  AGGCACHE_CHECK_LE(begin + count, size_);
  const uint64_t* words = words_.data();
  const int width = bits_per_entry_;
  const uint32_t mask = value_mask_;
  size_t bit_pos = begin * width;
  for (size_t k = 0; k < count; ++k) {
    size_t word = bit_pos >> 6;
    int offset = static_cast<int>(bit_pos & 63);
    uint64_t bits = words[word] >> offset;
    int spill = offset + width - 64;
    if (spill > 0) {
      bits |= words[word + 1] << (width - spill);
    }
    out[k] = static_cast<uint32_t>(bits) & mask;
    bit_pos += width;
  }
}

int BitPackedVector::BitsForCardinality(size_t cardinality) {
  if (cardinality <= 1) return 1;
  return std::bit_width(cardinality - 1);
}

}  // namespace aggcache
