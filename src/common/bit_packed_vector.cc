#include "common/bit_packed_vector.h"

#include <bit>

#include "common/logging.h"

namespace aggcache {

BitPackedVector::BitPackedVector(int bits_per_entry)
    : bits_per_entry_(bits_per_entry < 1 ? 1 : bits_per_entry) {
  AGGCACHE_CHECK_LE(bits_per_entry_, 32) << "entry width above 32 bits";
  value_mask_ = bits_per_entry_ == 32
                    ? ~0U
                    : ((1U << bits_per_entry_) - 1);
}

void BitPackedVector::PushBack(uint32_t value) {
  AGGCACHE_CHECK_EQ(value & value_mask_, value)
      << "value " << value << " does not fit in " << bits_per_entry_
      << " bits";
  size_t bit_pos = size_ * bits_per_entry_;
  size_t word = bit_pos >> 6;
  int offset = static_cast<int>(bit_pos & 63);
  if (word >= words_.size()) words_.push_back(0);
  words_[word] |= static_cast<uint64_t>(value) << offset;
  int spill = offset + bits_per_entry_ - 64;
  if (spill > 0) {
    words_.push_back(static_cast<uint64_t>(value) >>
                     (bits_per_entry_ - spill));
  }
  ++size_;
}

uint32_t BitPackedVector::Get(size_t i) const {
  AGGCACHE_CHECK_LT(i, size_);
  size_t bit_pos = i * bits_per_entry_;
  size_t word = bit_pos >> 6;
  int offset = static_cast<int>(bit_pos & 63);
  uint64_t bits = words_[word] >> offset;
  int spill = offset + bits_per_entry_ - 64;
  if (spill > 0) {
    bits |= words_[word + 1] << (bits_per_entry_ - spill);
  }
  return static_cast<uint32_t>(bits) & value_mask_;
}

int BitPackedVector::BitsForCardinality(size_t cardinality) {
  if (cardinality <= 1) return 1;
  return std::bit_width(cardinality - 1);
}

}  // namespace aggcache
