#ifndef AGGCACHE_COMMON_LOGGING_H_
#define AGGCACHE_COMMON_LOGGING_H_

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace aggcache {
namespace internal_logging {

/// Hook invoked (once per failure, after the message, before abort) so a
/// subsystem can ship post-mortem state — the flight recorder registers its
/// timeline dump here. Kept as a plain function pointer so logging stays
/// dependency-free; the hook must not assume anything about the failure.
inline std::atomic<void (*)()>& CheckFailureHook() {
  static std::atomic<void (*)()> hook{nullptr};
  return hook;
}

inline void SetCheckFailureHook(void (*hook)()) {
  CheckFailureHook().store(hook, std::memory_order_relaxed);
}

/// Helper that prints the failure message and aborts; used by the CHECK
/// macros below. Returning a stream lets callers append context with <<.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    std::cerr << "CHECK failed at " << file << ":" << line << ": "
              << condition << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::cerr << std::endl;
    if (void (*hook)() = CheckFailureHook().load(std::memory_order_relaxed)) {
      hook();
    }
    std::abort();
  }
  std::ostream& stream() { return std::cerr; }
};

}  // namespace internal_logging
}  // namespace aggcache

/// Aborts with a diagnostic when `condition` is false. Used for programming
/// errors (invariant violations), not for data-dependent failures, which are
/// reported through Status.
///
/// The switch wrapper makes the expansion a single complete statement whose
/// internal if/else is fully matched, so using the macro as the then-branch
/// of a caller's if/else cannot capture the caller's `else` (the classic
/// dangling-else macro hazard). The trailing else-branch keeps the `<<`
/// message stream working.
#define AGGCACHE_CHECK(condition)                                    \
  switch (0)                                                         \
  case 0:                                                            \
  default:                                                           \
    if (condition) {                                                 \
    } else /* NOLINT */                                              \
      ::aggcache::internal_logging::CheckFailure(__FILE__, __LINE__, \
                                                 #condition)         \
          .stream()

#define AGGCACHE_CHECK_EQ(a, b) AGGCACHE_CHECK((a) == (b))
#define AGGCACHE_CHECK_NE(a, b) AGGCACHE_CHECK((a) != (b))
#define AGGCACHE_CHECK_LT(a, b) AGGCACHE_CHECK((a) < (b))
#define AGGCACHE_CHECK_LE(a, b) AGGCACHE_CHECK((a) <= (b))
#define AGGCACHE_CHECK_GT(a, b) AGGCACHE_CHECK((a) > (b))
#define AGGCACHE_CHECK_GE(a, b) AGGCACHE_CHECK((a) >= (b))

#endif  // AGGCACHE_COMMON_LOGGING_H_
