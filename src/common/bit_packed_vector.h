#ifndef AGGCACHE_COMMON_BIT_PACKED_VECTOR_H_
#define AGGCACHE_COMMON_BIT_PACKED_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aggcache {

/// Fixed-width bit-packed array of unsigned integers.
///
/// Main-partition columns store dictionary codes bit-packed to
/// ceil(log2(dictionary size)) bits per row — the compression that makes the
/// read-optimized main store smaller than the write-optimized delta store
/// (plain 32-bit codes). This difference is what produces the paper's
/// Section 6.2 result that the tid-column overhead is ~10% in main vs ~13%
/// in delta.
class BitPackedVector {
 public:
  /// Creates an empty vector whose entries use `bits_per_entry` bits
  /// (1..32). Width 0 is promoted to 1 so a single-valued dictionary still
  /// round-trips.
  explicit BitPackedVector(int bits_per_entry = 32);

  int bits_per_entry() const { return bits_per_entry_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Appends `value`; the value must fit in bits_per_entry bits.
  void PushBack(uint32_t value);

  uint32_t Get(size_t i) const;

  /// Bulk-decodes entries [begin, begin+count) into `out`. Equivalent to
  /// calling Get per index but walks the packed words sequentially, which
  /// is what the batched scan kernels run over main columns.
  void Unpack(size_t begin, size_t count, uint32_t* out) const;

  /// Heap footprint in bytes.
  size_t ByteSize() const { return words_.capacity() * sizeof(uint64_t); }

  /// Minimal width able to represent codes for a dictionary with
  /// `cardinality` distinct values.
  static int BitsForCardinality(size_t cardinality);

 private:
  int bits_per_entry_;
  uint32_t value_mask_;
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace aggcache

#endif  // AGGCACHE_COMMON_BIT_PACKED_VECTOR_H_
