#include "common/value.h"

#include <cstdio>
#include <ostream>

namespace aggcache {
namespace {

// Rank used to order values of different variants: NULL < numeric < string.
int TypeRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_int64() || v.is_double()) return 1;
  return 2;
}

size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

const char* ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
  }
  return "unknown";
}

double Value::NumericAsDouble() const {
  if (is_int64()) return static_cast<double>(AsInt64());
  AGGCACHE_CHECK(is_double()) << "value is not numeric";
  return AsDouble();
}

ColumnType Value::type() const {
  AGGCACHE_CHECK(!is_null()) << "NULL has no column type";
  if (is_int64()) return ColumnType::kInt64;
  if (is_double()) return ColumnType::kDouble;
  return ColumnType::kString;
}

bool Value::MatchesType(ColumnType t) const {
  return !is_null() && type() == t;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int64()) return std::to_string(AsInt64());
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", AsDouble());
    return buf;
  }
  return "'" + AsString() + "'";
}

size_t Value::ByteSize() const {
  if (is_string()) return sizeof(Value) + AsString().capacity();
  return sizeof(Value);
}

bool Value::operator<(const Value& other) const {
  int lr = TypeRank(*this);
  int rr = TypeRank(other);
  if (lr != rr) return lr < rr;
  if (lr == 0) return false;  // NULL == NULL for ordering purposes.
  if (lr == 1) return NumericAsDouble() < other.NumericAsDouble();
  return AsString() < other.AsString();
}

size_t Value::Hash() const {
  if (is_null()) return 0x5bd1e995;
  if (is_int64()) {
    return HashCombine(1, std::hash<int64_t>()(AsInt64()));
  }
  if (is_double()) {
    return HashCombine(2, std::hash<double>()(AsDouble()));
  }
  return HashCombine(3, std::hash<std::string>()(AsString()));
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace aggcache
