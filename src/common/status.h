#ifndef AGGCACHE_COMMON_STATUS_H_
#define AGGCACHE_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <variant>

namespace aggcache {

/// Canonical error codes, a small subset of the usual database taxonomy.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  /// Resource-governance aborts (src/runtime/): a memory budget or the
  /// process tracker refused a reservation, or admission shed the query.
  kResourceExhausted,
  /// The query's deadline expired at a cooperative check point.
  kDeadlineExceeded,
  /// The query's cancellation token was triggered.
  kCancelled,
};

/// Returns a human-readable name for `code` ("OK", "NOT_FOUND", ...).
const char* StatusCodeToString(StatusCode code);

/// Lightweight status object used for error propagation on all fallible
/// paths. The library does not throw exceptions; every operation that can
/// fail returns a Status or StatusOr<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  /// True for the three resource-governance abort codes. Harnesses use this
  /// to tell a shed/cancelled query (expected under overload) from a genuine
  /// engine failure.
  bool IsGovernanceAbort() const {
    return code_ == StatusCode::kResourceExhausted ||
           code_ == StatusCode::kDeadlineExceeded ||
           code_ == StatusCode::kCancelled;
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Accessing the value of a
/// non-OK StatusOr aborts the process (programming error).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or an error, mirroring
  /// absl::StatusOr so call sites read naturally.
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    if (std::get<Status>(rep_).ok()) {
      std::cerr << "StatusOr constructed from OK status\n";
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    EnsureOk();
    return std::get<T>(rep_);
  }
  T& value() & {
    EnsureOk();
    return std::get<T>(rep_);
  }
  T&& value() && {
    EnsureOk();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void EnsureOk() const {
    if (!ok()) {
      std::cerr << "StatusOr accessed with error: "
                << std::get<Status>(rep_).ToString() << "\n";
      std::abort();
    }
  }

  std::variant<T, Status> rep_;
};

}  // namespace aggcache

/// Propagates a non-OK Status to the caller.
#define RETURN_IF_ERROR(expr)                   \
  do {                                          \
    ::aggcache::Status status_macro_ = (expr);  \
    if (!status_macro_.ok()) return status_macro_; \
  } while (false)

#define AGGCACHE_CONCAT_INNER_(x, y) x##y
#define AGGCACHE_CONCAT_(x, y) AGGCACHE_CONCAT_INNER_(x, y)

/// Evaluates `rexpr` (a StatusOr), propagating errors; on success assigns the
/// value to `lhs`.
#define ASSIGN_OR_RETURN(lhs, rexpr)                                       \
  auto AGGCACHE_CONCAT_(statusor_, __LINE__) = (rexpr);                    \
  if (!AGGCACHE_CONCAT_(statusor_, __LINE__).ok())                         \
    return AGGCACHE_CONCAT_(statusor_, __LINE__).status();                 \
  lhs = std::move(AGGCACHE_CONCAT_(statusor_, __LINE__)).value()

#endif  // AGGCACHE_COMMON_STATUS_H_
