#ifndef AGGCACHE_COMMON_STRING_UTIL_H_
#define AGGCACHE_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace aggcache {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `separator`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& separator);

/// Renders a byte count as "12.3 KiB" / "4.5 MiB" etc.
std::string HumanBytes(size_t bytes);

}  // namespace aggcache

#endif  // AGGCACHE_COMMON_STRING_UTIL_H_
