#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <memory>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/engine_metrics.h"
#include "obs/flight_recorder.h"

namespace aggcache {

namespace {

thread_local bool t_in_worker = false;

/// Enforces the pool's "tasks must not throw" contract at the one place it
/// can be enforced: an escaping exception is reported and terminates the
/// process, because unwinding a worker loop (or a ParallelFor caller's
/// drain) would strand TaskGroup counters and every thread waiting on them.
/// Also the single choke point every task (queued or inline) passes
/// through, so task count and latency are metered here.
void RunPoolTask(const std::function<void()>& task) noexcept {
  const EngineMetrics& metrics = EngineMetrics::Get();
  metrics.pool_tasks->Increment();
  Stopwatch watch;
  try {
    task();
    metrics.pool_task_us->Observe(
        static_cast<uint64_t>(watch.ElapsedNanos() / 1000));
  } catch (const std::exception& e) {
    std::cerr << "aggcache: thread-pool task threw '" << e.what()
              << "' — pool tasks must not throw\n";
    std::terminate();
  } catch (...) {
    std::cerr << "aggcache: thread-pool task threw a non-std exception — "
                 "pool tasks must not throw\n";
    std::terminate();
  }
}

size_t DefaultParallelism() {
  if (const char* env = std::getenv("AGGCACHE_THREADS")) {
    // strtol, not strtoul: "-3" must read as malformed, not wrap to 2^64-3.
    char* end = nullptr;
    long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<size_t>(parsed);
    }
  }
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

struct GlobalPoolHolder {
  std::mutex mu;
  std::unique_ptr<ThreadPool> pool;
};

GlobalPoolHolder& Holder() {
  static GlobalPoolHolder* holder = new GlobalPoolHolder();
  return *holder;
}

}  // namespace

ThreadPool::ThreadPool(size_t parallelism) {
  // Cap absurd requests (e.g. a wrapped negative from strtoul) instead of
  // letting vector::reserve throw while spawning 2^64 threads.
  parallelism = std::min(parallelism, kMaxParallelism);
  size_t num_workers = parallelism < 2 ? 0 : parallelism - 1;
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    EngineMetrics::Get().pool_queue_depth->Set(
        static_cast<int64_t>(queue_.size()));
  }
  cv_.notify_one();
}

bool ThreadPool::InWorker() { return t_in_worker; }

bool ThreadPool::Busy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_ > 0 || !queue_.empty();
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain.
      task = std::move(queue_.front());
      queue_.pop_front();
      EngineMetrics::Get().pool_queue_depth->Set(
          static_cast<int64_t>(queue_.size()));
      ++active_;
    }
    RunPoolTask(task);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
  }
}

ThreadPool& ThreadPool::Global() {
  GlobalPoolHolder& holder = Holder();
  std::lock_guard<std::mutex> lock(holder.mu);
  if (holder.pool == nullptr) {
    holder.pool = std::make_unique<ThreadPool>(DefaultParallelism());
  }
  return *holder.pool;
}

void ThreadPool::SetGlobalParallelism(size_t parallelism) {
  GlobalPoolHolder& holder = Holder();
  std::lock_guard<std::mutex> lock(holder.mu);
  // Resizes are rare, process-shaping events worth a timeline entry; the
  // per-task paths stay recorder-free to protect their latency.
  RecordFlightEvent(
      FlightEventType::kPoolResize, parallelism,
      holder.pool == nullptr ? 0 : holder.pool->parallelism());
  if (holder.pool != nullptr) {
    // A worker stays "active" for a few instructions after the ParallelFor
    // it served has returned (it still has to decrement the counter), so
    // give such stragglers a bounded grace period before deciding the pool
    // is genuinely busy.
    for (int i = 0; i < 1000 && holder.pool->Busy(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Replacing a busy pool would destroy an object other threads hold
    // references to (and may still submit against); there is no safe
    // recovery, so fail loudly instead of handing out dangling pools.
    AGGCACHE_CHECK(!holder.pool->Busy())
        << "SetGlobalParallelism called while pool work is in flight";
  }
  holder.pool = std::make_unique<ThreadPool>(std::max<size_t>(1, parallelism));
}

void TaskGroup::Run(std::function<void()> task) {
  if (pool_.num_workers() == 0 || ThreadPool::InWorker()) {
    RunPoolTask(task);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_.Submit([this, task = std::move(task)] {
    task();
    std::lock_guard<std::mutex> lock(mu_);
    if (--pending_ == 0) cv_.notify_all();
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                 ThreadPool& pool) {
  if (n == 0) return;
  size_t parallelism = std::min(pool.parallelism(), n);
  if (parallelism <= 1 || ThreadPool::InWorker()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto drain = [&next, &fn, n] {
    for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
  };
  TaskGroup group(pool);
  for (size_t w = 1; w < parallelism; ++w) group.Run(drain);
  drain();
  group.Wait();
}

void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelFor(n, fn, ThreadPool::Global());
}

}  // namespace aggcache
