#include "common/bit_vector.h"

#include <bit>

#include "common/logging.h"

namespace aggcache {

BitVector::BitVector(size_t size, bool initial) : size_(size) {
  words_.resize((size + 63) / 64, initial ? ~0ULL : 0ULL);
  // Clear padding bits so CountOnes and equality stay exact.
  if (initial && (size & 63) != 0) {
    words_.back() &= (1ULL << (size & 63)) - 1;
  }
}

void BitVector::PushBack(bool value) {
  if ((size_ & 63) == 0) words_.push_back(0);
  ++size_;
  Set(size_ - 1, value);
}

size_t BitVector::CountOnes() const {
  size_t total = 0;
  for (uint64_t w : words_) total += std::popcount(w);
  return total;
}

std::vector<uint32_t> BitVector::OnesClearedIn(const BitVector& other) const {
  AGGCACHE_CHECK_LE(size_, other.size_)
      << "snapshot is longer than the current visibility vector";
  std::vector<uint32_t> result;
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t diff = words_[w] & ~other.words_[w];
    while (diff != 0) {
      int bit = std::countr_zero(diff);
      result.push_back(static_cast<uint32_t>(w * 64 + bit));
      diff &= diff - 1;
    }
  }
  return result;
}

}  // namespace aggcache
