#ifndef AGGCACHE_OBS_SLOW_LOG_H_
#define AGGCACHE_OBS_SLOW_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

namespace aggcache {

/// Bounded log of queries that exceeded a wall-time threshold, each kept as
/// one structured JSON record (the cache manager assembles it from the
/// query trace — governance line and perf deltas included — plus the span
/// subtree when spans are on). Two sinks, both rings:
///
///   - an in-memory deque (default 128 records) served at GET /slowlog as
///     {"schema":"aggcache-slowlog-v1",...};
///   - optionally a directory of rotating files slowlog-<n>.json, one
///     record per file, n wrapping at `max_files` — the on-disk ring that
///     survives the process for post-mortem runs.
///
/// Enabled via AGGCACHE_SLOW_QUERY_MS=<ms>[,dir=<path>][,files=<n>]
/// [,keep=<records>]. Disabled (the default) costs one relaxed load per
/// query.
class SlowQueryLog {
 public:
  struct Options {
    double threshold_ms = 0;  ///< <= 0 disables the log.
    std::string dir;          ///< Empty: in-memory only.
    size_t max_files = 8;     ///< On-disk ring size.
    size_t keep = 128;        ///< In-memory ring size.
  };

  static SlowQueryLog& Global();

  /// Parses AGGCACHE_SLOW_QUERY_MS; silently leaves the log disabled when
  /// unset or malformed (a bad threshold is not worth refusing to start).
  void ConfigureFromEnv();
  void Configure(const Options& options);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  double threshold_ms() const;

  /// Appends one record; `record_json` must be a complete JSON object.
  /// Also bumps aggcache_slow_queries_total and, when a directory is
  /// configured, rewrites the next slowlog-<n>.json in the ring. File
  /// write errors are swallowed (the in-memory record is already safe).
  void Record(const std::string& record_json);

  /// {"schema":"aggcache-slowlog-v1","threshold_ms":...,"total":N,
  ///  "records":[...]} — oldest first.
  std::string DumpJson() const;

  /// Records currently held in memory.
  size_t size() const;
  /// Records ever taken (monotonic; exceeds size() once the ring wraps).
  uint64_t total() const;

  void ResetForTest();

 private:
  SlowQueryLog() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  Options options_;                  // under mu_
  std::deque<std::string> records_;  // under mu_
  uint64_t total_ = 0;               // under mu_
};

}  // namespace aggcache

#endif  // AGGCACHE_OBS_SLOW_LOG_H_
