#ifndef AGGCACHE_OBS_ACTIVE_QUERIES_H_
#define AGGCACHE_OBS_ACTIVE_QUERIES_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace aggcache {

class QueryContext;

/// Process-wide table of the queries running RIGHT NOW: who they are
/// (truncated canonical statement + strategy), where they are (current
/// phase from the span taxonomy), and what they are consuming (elapsed
/// wall time, admission wait, reserved memory, rows scanned) — the live
/// complement to the post-hoc views (EXPLAIN, spans, ledger). Serves
/// GET /queries, the shell's \queries, and remote cancellation via
/// GET /queries/cancel?id=N.
///
/// Concurrency: a fixed array of slots. Registration CAS-claims a slot's
/// `used` flag (lock-free, round-robin hint), then fills the payload under
/// the slot's mutex; List() and Cancel() take the same per-slot mutex for
/// their short copy/cancel, so a reader can never observe a half-written
/// statement and Cancel() can never race the owner's Unregister into a
/// dangling QueryContext — the context pointer is only dereferenced while
/// the slot mutex proves the registration is still live. Owner-side cost
/// is two uncontended lock/unlock pairs per query plus one relaxed store
/// per phase change.
///
/// When every slot is taken the query runs unregistered (introspection
/// degrades; execution never blocks on observability).
class ActiveQueryRegistry {
 public:
  static constexpr size_t kMaxSlots = 256;
  /// Statement text kept per slot; longer statements are truncated with a
  /// trailing ellipsis.
  static constexpr size_t kStatementBytes = 160;

  static ActiveQueryRegistry& Global();

  /// One active query's snapshot, as List() copies it out.
  struct Info {
    uint64_t id = 0;
    std::string statement;
    std::string strategy;
    std::string phase;
    double elapsed_ms = 0.0;
    uint64_t admission_wait_us = 0;
    size_t memory_bytes = 0;
    uint64_t rows_scanned = 0;
    bool aborting = false;  ///< Cancellation/abort already requested.
  };

  /// Registered queries, registration order (oldest first).
  std::vector<Info> List() const;

  /// {"schema":"aggcache-queries-v1","active":N,"queries":[...]}.
  std::string ListJson() const;

  /// Human-readable table for the shell's \queries.
  std::string ListText() const;

  /// Trips query `id`'s cancellation token (typed kCancelled unwind).
  /// False when no such query is registered (already finished, or never
  /// got a slot).
  bool Cancel(uint64_t id);

  size_t active_count() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  friend class ActiveQueryGuard;

  struct Slot {
    /// Lock-free claim token; payload below is valid only under mu while
    /// id != 0.
    std::atomic<bool> used{false};
    /// Phase name (static storage duration — span-kind strings). Atomic so
    /// the owner updates it without re-taking the slot mutex.
    std::atomic<const char*> phase{nullptr};
    std::atomic<uint64_t> admission_wait_us{0};
    mutable std::mutex mu;
    uint64_t id = 0;                  // under mu; 0 = claimed but unpublished
    QueryContext* context = nullptr;  // under mu
    int64_t start_ns = 0;             // under mu
    char statement[kStatementBytes] = {};  // under mu
    char strategy[24] = {};                // under mu
  };

  ActiveQueryRegistry() = default;

  /// Claims and fills a slot; returns nullptr when the table is full.
  Slot* Register(const std::string& statement, const char* strategy,
                 QueryContext* context, uint64_t* id_out);
  void Unregister(Slot* slot);

  Slot slots_[kMaxSlots];
  std::atomic<uint64_t> next_id_{0};
  std::atomic<size_t> claim_hint_{0};
  std::atomic<size_t> active_{0};
};

/// RAII registration of one query execution, owned by the cache manager's
/// Execute() frame. Installs itself as the thread-current guard so the
/// phase sites deeper in the engine (build, compensation, uncached exec)
/// can report transitions without threading a handle through every
/// signature — the same thread-locality discipline as TraceContext.
class ActiveQueryGuard {
 public:
  /// `strategy` and all `phase` arguments must have static storage
  /// duration. `context` must outlive the guard (it does: both live in the
  /// same Execute frame, context declared first).
  ActiveQueryGuard(const std::string& statement, const char* strategy,
                   QueryContext* context);
  ~ActiveQueryGuard();
  ActiveQueryGuard(const ActiveQueryGuard&) = delete;
  ActiveQueryGuard& operator=(const ActiveQueryGuard&) = delete;

  void SetPhase(const char* phase);
  void SetAdmissionWait(uint64_t wait_us);

  /// Registry id of this query; 0 when the slot table was full.
  uint64_t id() const { return id_; }

  /// The guard installed on this thread (nullptr outside Execute).
  static ActiveQueryGuard* Current();

  /// Convenience: SetPhase on the thread-current guard, if any. One TLS
  /// read + one relaxed store — cheap enough for every phase boundary.
  static void CurrentSetPhase(const char* phase);

 private:
  ActiveQueryRegistry::Slot* slot_ = nullptr;
  uint64_t id_ = 0;
  ActiveQueryGuard* previous_ = nullptr;
};

}  // namespace aggcache

#endif  // AGGCACHE_OBS_ACTIVE_QUERIES_H_
