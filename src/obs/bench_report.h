#ifndef AGGCACHE_OBS_BENCH_REPORT_H_
#define AGGCACHE_OBS_BENCH_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"

namespace aggcache {

/// Wall-clock summary of one repeated measured region: nearest-rank p5,
/// median and p95 over the timed repetitions (the warm-up rep is discarded
/// by the harness before these are computed).
struct LatencyStats {
  double p5_ms = 0.0;
  double median_ms = 0.0;
  double p95_ms = 0.0;
  int reps = 0;
};

/// Computes nearest-rank {p5, median, p95} from raw per-rep millisecond
/// timings (unsorted input is fine).
LatencyStats SummarizeLatencies(std::vector<double> times_ms);

/// Structured result of one benchmark run, serialized as
/// BENCH_<scenario>.json so CI can track the perf trajectory and
/// tools/bench_diff can gate regressions. Schema (version 1):
///
///   {"schema_version":1,
///    "scenario":"fig6_maintenance",
///    "config":{"threads":"4","quick":"false", ...},
///    "samples":[
///      {"name":"query_ms","labels":{"strategy":"cached-full-pruning"},
///       "kind":"latency","reps":5,"p5_ms":1.2,"median_ms":1.3,"p95_ms":1.9},
///      {"name":"cache_bytes","labels":{},"kind":"scalar","value":123456,
///       "unit":"bytes"}],
///    "metrics_delta":{
///      "aggcache_cache_hits_total":{"kind":"counter","delta":42},
///      "aggcache_pool_queue_depth":{"kind":"gauge","value":0},
///      "aggcache_cache_build_us":{"kind":"histogram","count":3,
///                                 "sum":8123}}}
///
/// `metrics_delta` is the registry change across the whole run (captured
/// at BenchContext construction and Finish), attributing engine work —
/// rows scanned, merges committed, single-flight waits — to the scenario.
/// Zero-delta metrics are omitted to keep reports diffable by eye.
class BenchReport {
 public:
  explicit BenchReport(std::string scenario);

  const std::string& scenario() const { return scenario_; }

  /// Records a config dimension (threads, table sizes, strategy set, ...).
  /// Later writes to the same key win.
  void SetConfig(const std::string& key, const std::string& value);
  void SetConfig(const std::string& key, int64_t value);
  void SetConfig(const std::string& key, double value);
  void SetConfig(const std::string& key, bool value);

  /// Adds one latency sample (a measured region's {p5, median, p95}).
  /// `labels` distinguish series within a scenario (strategy, x-axis
  /// point); the (name, labels) pair is the diff key.
  void AddLatency(const std::string& name,
                  const std::map<std::string, std::string>& labels,
                  const LatencyStats& stats);

  /// Adds one dimensionless or unit-tagged scalar sample (bytes, ratios,
  /// speedups, counts).
  void AddScalar(const std::string& name,
                 const std::map<std::string, std::string>& labels,
                 double value, const std::string& unit = "");

  /// Captures the baseline registry snapshot deltas are computed against.
  void SnapshotMetricsBaseline();

  /// Computes the registry delta since SnapshotMetricsBaseline(). Call once
  /// after the last measured region.
  void CaptureMetricsDelta();

  std::string ToJson() const;

  /// Writes ToJson() to `path` (+ trailing newline). Returns false and
  /// prints to stderr on I/O failure.
  bool WriteToFile(const std::string& path) const;

  size_t num_samples() const { return samples_.size(); }

 private:
  struct Sample {
    std::string name;
    std::map<std::string, std::string> labels;
    bool is_latency = false;
    LatencyStats latency;
    double value = 0.0;
    std::string unit;
  };

  std::string scenario_;
  std::map<std::string, std::string> config_;
  std::vector<Sample> samples_;
  std::map<std::string, MetricsRegistry::MetricSnapshot> baseline_;
  bool have_baseline_ = false;
  std::map<std::string, MetricsRegistry::MetricSnapshot> delta_;
  bool have_delta_ = false;
};

/// Per-binary glue every bench shares: parses the common flags, owns the
/// report, and writes BENCH_<scenario>.json at Finish() when requested.
///
///   --json            write BENCH_<scenario>.json in the working directory
///   --json=FILE       write exactly FILE
///   --json=DIR/       write DIR/BENCH_<scenario>.json
///   --quick           reduced table sizes / reps (CI smoke mode)
///
/// AGGCACHE_BENCH_JSON (same value grammar) and AGGCACHE_BENCH_QUICK=1 are
/// the env equivalents, so bench/run_all.sh can drive binaries whose own
/// flag parsing is strict. Unrecognized argv entries are left untouched for
/// the binary's own parser.
class BenchContext {
 public:
  /// `scenario` names the output file: BENCH_<scenario>.json. The registry
  /// baseline snapshot is taken here, before any setup work runs.
  BenchContext(int argc, char** argv, std::string scenario);

  BenchReport& report() { return report_; }
  bool quick() const { return quick_; }
  bool json_requested() const { return !json_path_.empty(); }
  const std::string& json_path() const { return json_path_; }

  /// Picks `quick_value` in --quick mode, `full_value` otherwise, and
  /// records nothing — a terse helper for sizing constants.
  template <typename T>
  T QuickOr(T quick_value, T full_value) const {
    return quick_ ? quick_value : full_value;
  }

  /// QuickOr for repetition counts: additionally validates that both sides
  /// are positive, so a sizing typo cannot hand MeasureMs zero reps and
  /// produce all-zero latency samples in either protocol. Aborts on
  /// violation. The AGGCACHE_BENCH_REPS environment variable overrides
  /// both values — CI's span-overhead gate uses it to buy tight medians
  /// (a 3% threshold is meaningless over 3 reps of a sub-ms query)
  /// without slowing every --quick scenario down.
  int Reps(int quick_reps, int full_reps) const;

  /// Captures the metrics delta and, when JSON output was requested,
  /// writes the report. Returns false on write failure (benches exit
  /// nonzero on that so CI notices).
  bool Finish();

 private:
  BenchReport report_;
  std::string json_path_;
  bool quick_ = false;
  bool finished_ = false;
  int reps_override_ = 0;  ///< 0 = none; else AGGCACHE_BENCH_REPS.
};

}  // namespace aggcache

#endif  // AGGCACHE_OBS_BENCH_REPORT_H_
