#ifndef AGGCACHE_OBS_METRICS_REGISTRY_H_
#define AGGCACHE_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace aggcache {

/// Monotonically increasing counter. Updates are relaxed atomics — cheap
/// enough for per-subjoin hot paths — and reads are snapshots, not fences:
/// these are statistics, never synchronization.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed value (queue depths, resident sizes).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log-bucketed latency histogram: bucket i counts observations with value
/// <= 2^i (i = 0 .. kNumBuckets - 2), the last bucket is the +Inf overflow.
/// Power-of-two upper bounds make bucket selection a bit-width computation
/// and keep the fixed bucket layout identical across every histogram, so
/// exposition never depends on registration-time configuration. Values are
/// dimensionless; by convention the engine records microseconds.
class Histogram {
 public:
  /// 2^0 .. 2^30 finite upper bounds (covering ~18 minutes in µs) plus the
  /// +Inf overflow bucket.
  static constexpr size_t kNumBuckets = 32;

  void Observe(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// The bucket an observation lands in: the smallest i with
  /// value <= 2^i, clamped to the overflow bucket.
  static size_t BucketIndex(uint64_t value);

  /// Inclusive upper bound of finite bucket `index`
  /// (index < kNumBuckets - 1).
  static uint64_t BucketUpperBound(size_t index);

  /// Non-cumulative count of one bucket.
  uint64_t BucketCount(size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  /// Estimates the value at quantile `q` (clamped to [0, 1]) by linear
  /// interpolation inside the log bucket holding that rank: bucket i spans
  /// (2^(i-1), 2^i] (bucket 0 spans [0, 1]), and observations are assumed
  /// uniform within it, so the estimate is exact at bucket boundaries and
  /// within one octave elsewhere. Observations in the +Inf overflow bucket
  /// report the last finite bound. Returns 0 for an empty histogram.
  /// Reads are relaxed snapshots — statistics, not synchronization.
  double ValueAtQuantile(double q) const;
  uint64_t TotalCount() const {
    return count_.load(std::memory_order_relaxed);
  }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

/// Process-wide registry of named metrics. Registration (GetCounter &c.)
/// takes a mutex and returns a pointer that stays valid for the registry's
/// lifetime; instrumented code registers once (at construction or through a
/// static EngineMetrics handle) and updates through the pointer, so no
/// metric update ever acquires a lock. Render() walks the name-ordered map
/// under the mutex, reading each value with a relaxed load — a dump is a
/// loose snapshot, which is all monitoring needs.
class MetricsRegistry {
 public:
  enum class Format : uint8_t { kPrometheus, kJson };
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every engine subsystem registers into.
  /// Intentionally leaked so worker threads may update metrics during
  /// static teardown.
  static MetricsRegistry& Global();

  /// Returns the metric named `name`, registering it on first use. `help`
  /// is the exposition help text (first registration wins). Re-registering
  /// a name as a different metric kind is a programming error and aborts.
  Counter* GetCounter(const std::string& name, const std::string& help);
  Gauge* GetGauge(const std::string& name, const std::string& help);
  Histogram* GetHistogram(const std::string& name, const std::string& help);

  /// A gauge carrying a fixed label set, for the Prometheus "info metric"
  /// idiom (aggcache_build_info{version=...,git_sha=...} 1): the labels are
  /// the payload, the value is conventionally 1. Labels are attached on
  /// first registration and rendered in both exposition formats; only one
  /// label set per name (this registry has no series dimension).
  Gauge* GetInfoGauge(
      const std::string& name, const std::string& help,
      const std::vector<std::pair<std::string, std::string>>& labels);

  /// Renders every registered metric, name-ordered: Prometheus text
  /// exposition (# HELP / # TYPE, cumulative _bucket{le=...}, _sum, _count)
  /// or a JSON object keyed by metric name.
  std::string Render(Format format = Format::kPrometheus) const;
  std::string RenderPrometheus() const { return Render(Format::kPrometheus); }
  std::string RenderJson() const { return Render(Format::kJson); }

  size_t num_metrics() const;

  /// One metric's values at a moment in time, in delta-friendly form:
  /// counters and gauges carry `value`; histograms carry `count` and `sum`
  /// (enough for rate and mean deltas — bucket shapes come from Render).
  struct MetricSnapshot {
    Kind kind = Kind::kCounter;
    int64_t value = 0;
    uint64_t count = 0;
    uint64_t sum = 0;
  };

  /// Loose point-in-time snapshot of every registered metric, keyed by
  /// name. BenchReport subtracts two of these to attribute engine work
  /// (rows scanned, merges committed, waits) to a measured region.
  std::map<std::string, MetricSnapshot> SnapshotValues() const;

  /// Zeroes every registered metric's value (registrations stay). Tests
  /// only: concurrent updaters may interleave with the reset.
  void ResetAllForTest();

 private:
  struct Metric {
    Kind kind = Kind::kCounter;
    std::string help;
    /// Fixed label set (info-metric idiom); empty for ordinary metrics.
    std::vector<std::pair<std::string, std::string>> labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Metric& GetOrCreate(const std::string& name, const std::string& help,
                      Kind kind);

  /// Guards the map structure only — never held on a metric update path.
  mutable std::mutex mu_;
  /// Ordered so renders (and the exposition golden test) are deterministic.
  std::map<std::string, Metric> metrics_;
};

/// Background thread that periodically dumps the global registry, enabled
/// by the AGGCACHE_METRICS_DUMP environment variable:
///
///   AGGCACHE_METRICS_DUMP=250                            every 250 ms
///   AGGCACHE_METRICS_DUMP="period_ms=1000,format=json,stream=stdout"
///   AGGCACHE_METRICS_DUMP=off                            disabled
///
/// format is "prom" (default) or "json"; stream is "stderr" (default) or
/// "stdout". Long-running binaries (benches, the stress harness, the SQL
/// shell) call MaybeStartFromEnv() once at startup; the library never
/// starts threads on its own.
class MetricsDumper {
 public:
  /// Starts the dump thread when the environment enables it. Idempotent;
  /// returns true when a dumper is (now) running.
  static bool MaybeStartFromEnv();

  /// Stops and joins the dump thread, emitting one final dump. No-op when
  /// not running.
  static void Stop();

  /// While blocked (recovery replaying a WAL), MaybeStartFromEnv is a
  /// programming error and aborts — background dumpers must only observe a
  /// fully recovered engine (restart-order invariant).
  static void BlockStarts(bool blocked);
};

}  // namespace aggcache

#endif  // AGGCACHE_OBS_METRICS_REGISTRY_H_
