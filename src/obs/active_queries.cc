#include "obs/active_queries.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/string_util.h"
#include "obs/engine_metrics.h"
#include "runtime/query_context.h"

namespace aggcache {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

thread_local ActiveQueryGuard* tls_guard = nullptr;

/// Copies `src` into the fixed buffer, truncating with "..." when it does
/// not fit. Always NUL-terminates.
void FillTruncated(char* dst, size_t cap, const std::string& src) {
  if (src.size() < cap) {
    std::memcpy(dst, src.data(), src.size());
    dst[src.size()] = '\0';
    return;
  }
  std::memcpy(dst, src.data(), cap - 4);
  std::memcpy(dst + cap - 4, "...", 4);
}

}  // namespace

ActiveQueryRegistry& ActiveQueryRegistry::Global() {
  static ActiveQueryRegistry* registry = new ActiveQueryRegistry();
  return *registry;
}

ActiveQueryRegistry::Slot* ActiveQueryRegistry::Register(
    const std::string& statement, const char* strategy, QueryContext* context,
    uint64_t* id_out) {
  size_t hint = claim_hint_.fetch_add(1, std::memory_order_relaxed);
  for (size_t probe = 0; probe < kMaxSlots; ++probe) {
    Slot& slot = slots_[(hint + probe) % kMaxSlots];
    bool expected = false;
    if (!slot.used.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
      continue;
    }
    uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    {
      std::lock_guard<std::mutex> lock(slot.mu);
      slot.id = id;
      slot.context = context;
      slot.start_ns = NowNanos();
      FillTruncated(slot.statement, kStatementBytes, statement);
      FillTruncated(slot.strategy, sizeof(slot.strategy),
                    strategy != nullptr ? strategy : "");
    }
    slot.phase.store("queued", std::memory_order_relaxed);
    slot.admission_wait_us.store(0, std::memory_order_relaxed);
    active_.fetch_add(1, std::memory_order_relaxed);
    EngineMetrics::Get().active_queries->Set(
        static_cast<double>(active_.load(std::memory_order_relaxed)));
    EngineMetrics::Get().query_registrations->Increment();
    *id_out = id;
    return &slot;
  }
  return nullptr;  // Table full: query runs unregistered.
}

void ActiveQueryRegistry::Unregister(Slot* slot) {
  {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->id = 0;
    slot->context = nullptr;
  }
  slot->phase.store(nullptr, std::memory_order_relaxed);
  slot->used.store(false, std::memory_order_release);
  active_.fetch_sub(1, std::memory_order_relaxed);
  EngineMetrics::Get().active_queries->Set(
      static_cast<double>(active_.load(std::memory_order_relaxed)));
}

std::vector<ActiveQueryRegistry::Info> ActiveQueryRegistry::List() const {
  std::vector<Info> out;
  int64_t now = NowNanos();
  for (const Slot& slot : slots_) {
    if (!slot.used.load(std::memory_order_acquire)) continue;
    Info info;
    {
      std::lock_guard<std::mutex> lock(slot.mu);
      if (slot.id == 0) continue;  // Claimed but not yet (or no longer) live.
      info.id = slot.id;
      info.statement = slot.statement;
      info.strategy = slot.strategy;
      info.elapsed_ms =
          static_cast<double>(now - slot.start_ns) / 1e6;
      if (slot.context != nullptr) {
        // Safe: context stays valid until Unregister, which also takes mu.
        info.memory_bytes = slot.context->memory_used();
        info.rows_scanned = slot.context->rows_scanned();
        info.aborting = slot.context->IsAborted();
      }
    }
    const char* phase = slot.phase.load(std::memory_order_relaxed);
    info.phase = phase != nullptr ? phase : "unknown";
    info.admission_wait_us =
        slot.admission_wait_us.load(std::memory_order_relaxed);
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const Info& a, const Info& b) { return a.id < b.id; });
  return out;
}

std::string ActiveQueryRegistry::ListJson() const {
  std::vector<Info> infos = List();
  std::string out = "{\"schema\":\"aggcache-queries-v1\",\"active\":";
  out += std::to_string(infos.size());
  out += ",\"queries\":[";
  bool first = true;
  for (const Info& info : infos) {
    if (!first) out += ',';
    first = false;
    out += StrFormat(
        "{\"id\":%llu,\"statement\":\"%s\",\"strategy\":\"%s\","
        "\"phase\":\"%s\",\"elapsed_ms\":%.3f,\"admission_wait_us\":%llu,"
        "\"memory_bytes\":%zu,\"rows_scanned\":%llu,\"aborting\":%s}",
        static_cast<unsigned long long>(info.id),
        JsonEscape(info.statement).c_str(), JsonEscape(info.strategy).c_str(),
        JsonEscape(info.phase).c_str(), info.elapsed_ms,
        static_cast<unsigned long long>(info.admission_wait_us),
        info.memory_bytes, static_cast<unsigned long long>(info.rows_scanned),
        info.aborting ? "true" : "false");
  }
  out += "]}";
  return out;
}

std::string ActiveQueryRegistry::ListText() const {
  std::vector<Info> infos = List();
  if (infos.empty()) return "no active queries\n";
  std::string out = StrFormat("%-6s %-20s %-10s %10s %12s %10s  %s\n", "id",
                              "phase", "strategy", "elapsed", "memory",
                              "rows", "statement");
  for (const Info& info : infos) {
    out += StrFormat(
        "%-6llu %-20s %-10s %8.1fms %10zuB %10llu  %s%s\n",
        static_cast<unsigned long long>(info.id), info.phase.c_str(),
        info.strategy.c_str(), info.elapsed_ms, info.memory_bytes,
        static_cast<unsigned long long>(info.rows_scanned),
        info.statement.c_str(), info.aborting ? "  [cancelling]" : "");
  }
  return out;
}

bool ActiveQueryRegistry::Cancel(uint64_t id) {
  if (id == 0) return false;
  for (Slot& slot : slots_) {
    if (!slot.used.load(std::memory_order_acquire)) continue;
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.id != id || slot.context == nullptr) continue;
    slot.context->Cancel();
    EngineMetrics::Get().remote_cancellations->Increment();
    return true;
  }
  return false;
}

ActiveQueryGuard::ActiveQueryGuard(const std::string& statement,
                                   const char* strategy,
                                   QueryContext* context) {
  slot_ = ActiveQueryRegistry::Global().Register(statement, strategy, context,
                                                 &id_);
  previous_ = tls_guard;
  tls_guard = this;
}

ActiveQueryGuard::~ActiveQueryGuard() {
  tls_guard = previous_;
  if (slot_ != nullptr) ActiveQueryRegistry::Global().Unregister(slot_);
}

void ActiveQueryGuard::SetPhase(const char* phase) {
  if (slot_ != nullptr) slot_->phase.store(phase, std::memory_order_relaxed);
}

void ActiveQueryGuard::SetAdmissionWait(uint64_t wait_us) {
  if (slot_ != nullptr) {
    slot_->admission_wait_us.store(wait_us, std::memory_order_relaxed);
  }
}

ActiveQueryGuard* ActiveQueryGuard::Current() { return tls_guard; }

void ActiveQueryGuard::CurrentSetPhase(const char* phase) {
  if (tls_guard != nullptr) tls_guard->SetPhase(phase);
}

}  // namespace aggcache
