#include "obs/engine_metrics.h"

#include "obs/build_info.h"

namespace aggcache {

const EngineMetrics& EngineMetrics::Get() {
  static const EngineMetrics* metrics = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    auto* m = new EngineMetrics();

    m->cache_lookups = r.GetCounter(
        "aggcache_cache_lookups_total",
        "Cache consultations by cached-strategy executions");
    m->cache_hits = r.GetCounter(
        "aggcache_cache_hits_total",
        "Cache lookups served from an existing entry");
    m->cache_misses = r.GetCounter(
        "aggcache_cache_misses_total",
        "Cache lookups not served from an existing entry (entry built or "
        "rebuilt, admission rejected, or snapshot fallback)");
    m->cache_singleflight_waits = r.GetCounter(
        "aggcache_cache_singleflight_waits_total",
        "Cache lookups that waited on another thread's in-flight build");
    m->cache_evictions = r.GetCounter(
        "aggcache_cache_evictions_total",
        "Entries evicted by the profit-based budget policy");
    m->cache_rebuilds = r.GetCounter(
        "aggcache_cache_rebuilds_total",
        "Entry builds and rebuilds from the main partitions");
    m->cache_admission_rejects = r.GetCounter(
        "aggcache_cache_admission_rejects_total",
        "Lookups whose entry was not admitted (unprofitable) or whose "
        "caller was starved by repeated eviction");
    m->cache_uncached_fallbacks = r.GetCounter(
        "aggcache_cache_uncached_fallbacks_total",
        "Cached-strategy lookups answered by uncached execution");
    m->cache_build_us = r.GetHistogram(
        "aggcache_cache_build_us",
        "Entry (re)build latency in microseconds");
    m->cache_main_comp_us = r.GetHistogram(
        "aggcache_cache_main_comp_us",
        "Main compensation latency in microseconds");
    m->cache_delta_comp_us = r.GetHistogram(
        "aggcache_cache_delta_comp_us",
        "Delta compensation latency in microseconds");

    m->entry_hit_us = r.GetHistogram(
        "aggcache_entry_hit_us",
        "End-to-end latency of serving a cache hit, in microseconds");
    m->entry_saved_us = r.GetCounter(
        "aggcache_entry_saved_us_total",
        "Microseconds saved by cache hits: recorded main execution cost "
        "minus compensation paid, positive part");
    m->entry_comp_overrun_us = r.GetCounter(
        "aggcache_entry_comp_overrun_us_total",
        "Microseconds where compensation exceeded the recorded main "
        "execution cost (hits that were net losses)");
    m->entry_delta_rows = r.GetCounter(
        "aggcache_entry_delta_rows_total",
        "Delta rows scanned by compensation passes on cache hits");

    m->exec_subjoins = r.GetCounter(
        "aggcache_executor_subjoins_executed_total",
        "Subjoin executions (compensation, uncached union terms, builds, "
        "correction joins, merge folds)");
    m->exec_rows_scanned = r.GetCounter(
        "aggcache_executor_rows_scanned_total",
        "Rows visited by subjoin selections");
    m->exec_rows_selected = r.GetCounter(
        "aggcache_executor_rows_selected_total",
        "Rows surviving visibility and filters");
    m->exec_tuples_joined = r.GetCounter(
        "aggcache_executor_tuples_joined_total",
        "Joined tuples fed into aggregation");
    m->exec_selection_batches = r.GetCounter(
        "aggcache_executor_selection_batches_total",
        "1024-row blocks processed by the batched selection kernels");
    m->exec_code_joins = r.GetCounter(
        "aggcache_executor_code_joins_total",
        "Join levels executed through the code-space hash table");
    m->exec_packed_groupings = r.GetCounter(
        "aggcache_executor_packed_groupings_total",
        "Aggregations whose group-by codes packed into one 64-bit key");
    m->exec_fallback_groupings = r.GetCounter(
        "aggcache_executor_fallback_groupings_total",
        "Aggregations that fell back to materialized group keys");

    m->sharedscan_leads = r.GetCounter(
        "aggcache_sharedscan_leads_total",
        "Cooperative delta scan sessions led");
    m->sharedscan_attaches = r.GetCounter(
        "aggcache_sharedscan_attaches_total",
        "Attaches to another query's in-flight cooperative delta scan");

    m->prune_considered = r.GetCounter(
        "aggcache_pruner_considered_total",
        "Subjoin combinations tested by the join pruner");
    m->pruned_empty = r.GetCounter(
        "aggcache_pruner_pruned_empty_total",
        "Combinations pruned for an empty partition");
    m->pruned_aging = r.GetCounter(
        "aggcache_pruner_pruned_aging_total",
        "Combinations pruned by consistent aging groups (Section 5.4)");
    m->pruned_tid_range = r.GetCounter(
        "aggcache_pruner_pruned_tid_range_total",
        "Combinations pruned by the MD tid-range prefilter (Eq. 5)");
    m->pushdown_predicates = r.GetCounter(
        "aggcache_pushdown_predicates_total",
        "MD-derived local predicates attached to subjoins (Section 5.3)");

    m->merge_ticks = r.GetCounter(
        "aggcache_merge_daemon_ticks_total",
        "Merge daemon delta-sizing passes");
    m->merge_attempts = r.GetCounter(
        "aggcache_merge_daemon_attempts_total",
        "Group merges started (including retries)");
    m->merge_commits = r.GetCounter(
        "aggcache_merge_daemon_commits_total",
        "Group merges committed");
    m->merge_aborts = r.GetCounter(
        "aggcache_merge_daemon_aborts_total",
        "Group merges aborted (fault or error)");
    m->merge_backoff_ms = r.GetCounter(
        "aggcache_merge_daemon_backoff_ms_total",
        "Total milliseconds of retry backoff requested after aborts");

    m->pool_queue_depth = r.GetGauge(
        "aggcache_pool_queue_depth",
        "Tasks currently queued in the global thread pool");
    m->pool_tasks = r.GetCounter(
        "aggcache_pool_tasks_total",
        "Tasks executed by pool workers");
    m->pool_task_us = r.GetHistogram(
        "aggcache_pool_task_us",
        "Pool worker task run time in microseconds");

    m->wal_appends = r.GetCounter(
        "aggcache_wal_appends_total",
        "Records appended to the write-ahead log");
    m->wal_bytes = r.GetCounter(
        "aggcache_wal_bytes_total",
        "Framed bytes written to the write-ahead log");
    m->wal_syncs = r.GetCounter(
        "aggcache_wal_syncs_total",
        "WAL fdatasync calls (one per group commit)");
    m->wal_sync_us = r.GetHistogram(
        "aggcache_wal_sync_us",
        "WAL fdatasync latency in microseconds");

    m->checkpoints = r.GetCounter(
        "aggcache_checkpoints_total",
        "Checkpoint segments published (atomic rename)");
    m->checkpoints_skipped = r.GetCounter(
        "aggcache_checkpoints_skipped_total",
        "Checkpoint attempts skipped because atomic scopes were active");
    m->checkpoint_us = r.GetHistogram(
        "aggcache_checkpoint_us",
        "End-to-end checkpoint latency in microseconds");

    m->admission_admitted = r.GetCounter(
        "aggcache_admission_admitted_total",
        "Queries granted a run slot by the admission controller");
    m->admission_queue_waits = r.GetCounter(
        "aggcache_admission_queue_waits_total",
        "Admissions that waited in the bounded FIFO queue first");
    m->admission_rejects_timeout = r.GetCounter(
        "aggcache_admission_rejects_timeout_total",
        "Queries shed after waiting the full admission queue timeout");
    m->admission_rejects_capacity = r.GetCounter(
        "aggcache_admission_rejects_capacity_total",
        "Queries shed at arrival because the admission queue was full");
    m->admission_running = r.GetGauge(
        "aggcache_admission_running",
        "Queries currently holding an admission slot");
    m->admission_wait_us = r.GetHistogram(
        "aggcache_admission_wait_us",
        "Admission queue wait latency in microseconds (admits and sheds)");

    m->query_cancellations = r.GetCounter(
        "aggcache_query_cancellations_total",
        "Queries aborted by their cooperative cancellation token");
    m->query_deadline_aborts = r.GetCounter(
        "aggcache_query_deadline_aborts_total",
        "Queries aborted by deadline expiry at a cooperative check point");
    m->query_mem_aborts = r.GetCounter(
        "aggcache_query_mem_aborts_total",
        "Queries aborted by a refused memory charge (budget or tracker)");
    m->mem_reserved_bytes = r.GetGauge(
        "aggcache_mem_reserved_bytes",
        "Bytes currently reserved in the process memory tracker");
    m->mem_reserved_hwm_bytes = r.GetGauge(
        "aggcache_mem_reserved_hwm_bytes",
        "High-water mark of process memory tracker reservations");

    m->degraded_flips = r.GetCounter(
        "aggcache_degraded_flips_total",
        "Cache manager degraded-mode transitions (either direction)");
    m->degraded_mode = r.GetGauge(
        "aggcache_degraded_mode",
        "1 while the cache manager is degraded by memory pressure");
    m->mem_pressure_rejects = r.GetCounter(
        "aggcache_mem_pressure_rejects_total",
        "Cache entry builds refused because of process memory pressure");
    m->merge_pressure_yields = r.GetCounter(
        "aggcache_merge_daemon_pressure_yields_total",
        "Merge daemon ticks that yielded to process memory pressure");

    m->recovery_replayed = r.GetCounter(
        "aggcache_recovery_replayed_records_total",
        "WAL records replayed during startup recovery");
    m->recovery_discarded_scopes = r.GetCounter(
        "aggcache_recovery_discarded_scopes_total",
        "Uncommitted atomic scopes discarded by recovery");
    m->recovery_warm_admissions = r.GetCounter(
        "aggcache_recovery_warm_admissions_total",
        "Cache entries re-admitted from persisted warm descriptors");
    m->recovery_replay_us = r.GetHistogram(
        "aggcache_recovery_replay_us",
        "WAL tail replay latency in microseconds");

    m->active_queries = r.GetGauge(
        "aggcache_active_queries",
        "Queries currently registered in the active-query registry");
    m->query_registrations = r.GetCounter(
        "aggcache_query_registrations_total",
        "Queries ever registered in the active-query registry");
    m->remote_cancellations = r.GetCounter(
        "aggcache_remote_cancellations_total",
        "Cancellations delivered through the active-query registry "
        "(shell \\queries or GET /queries/cancel)");
    m->perf_counters_unavailable = r.GetGauge(
        "aggcache_perf_counters_unavailable",
        "1 once perf_event_open was denied and per-query hardware "
        "counters latched off");
    m->slow_queries = r.GetCounter(
        "aggcache_slow_queries_total",
        "Queries recorded by the slow-query log (wall time over "
        "AGGCACHE_SLOW_QUERY_MS)");

    // Not a handle anyone updates — registered here so every binary that
    // touches EngineMetrics exposes its build identity.
    RegisterBuildInfoMetric();

    return m;
  }();
  return *metrics;
}

}  // namespace aggcache
