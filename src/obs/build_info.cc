#include "obs/build_info.h"

#include <chrono>

#include "common/string_util.h"
#include "obs/metrics_registry.h"

#ifndef AGGCACHE_VERSION
#define AGGCACHE_VERSION "unknown"
#endif
#ifndef AGGCACHE_GIT_SHA
#define AGGCACHE_GIT_SHA "unknown"
#endif
#ifndef AGGCACHE_BUILD_TYPE
#define AGGCACHE_BUILD_TYPE "unknown"
#endif

namespace aggcache {

namespace {

/// Captured at static-initialization time; every uptime reading is
/// relative to this.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info = {AGGCACHE_VERSION, AGGCACHE_GIT_SHA,
                                 AGGCACHE_BUILD_TYPE};
  return info;
}

double UptimeSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_process_start)
      .count();
}

void RegisterBuildInfoMetric() {
  const BuildInfo& info = GetBuildInfo();
  MetricsRegistry::Global()
      .GetInfoGauge("aggcache_build_info",
                    "Build identity; value is always 1, the labels are the "
                    "payload.",
                    {{"version", info.version},
                     {"git_sha", info.git_sha},
                     {"build_type", info.build_type}})
      ->Set(1);
}

std::string BuildInfoLine() {
  const BuildInfo& info = GetBuildInfo();
  return StrFormat("aggcache %s (%s, %s)", info.version, info.git_sha,
                   info.build_type);
}

}  // namespace aggcache
