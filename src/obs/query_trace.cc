#include "obs/query_trace.h"

#include <sstream>

#include "common/string_util.h"

namespace aggcache {

namespace {

thread_local QueryTrace* t_current_trace = nullptr;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string RenderTidRange(const SubjoinTrace::TidRange& range) {
  if (range.empty) return range.column + " tid=[empty]";
  return StrFormat("%s tid=[%lld,%lld]", range.column.c_str(),
                   static_cast<long long>(range.min),
                   static_cast<long long>(range.max));
}

}  // namespace

const char* VerdictToString(SubjoinTrace::Verdict verdict) {
  switch (verdict) {
    case SubjoinTrace::Verdict::kExecuted:
      return "executed";
    case SubjoinTrace::Verdict::kPushdown:
      return "pushdown";
    case SubjoinTrace::Verdict::kPruned:
      return "pruned";
  }
  return "?";
}

size_t QueryTrace::CountVerdict(SubjoinTrace::Verdict verdict) const {
  size_t n = 0;
  for (const SubjoinTrace& subjoin : subjoins) {
    if (subjoin.verdict == verdict) ++n;
  }
  return n;
}

std::string QueryTrace::ToText() const {
  std::ostringstream out;
  out << "EXPLAIN AGGREGATE\n";
  out << "  statement: " << statement << "\n";
  out << "  strategy: " << strategy << "  pushdown: "
      << (use_pushdown ? "on" : "off") << "\n";
  out << "  snapshot tid: " << snapshot_tid << "\n";
  out << "  cache: " << cache_outcome << "\n";
  out << StrFormat(
      "  phases: build %.3f ms, main-comp %.3f ms, delta-comp %.3f ms, "
      "total %.3f ms\n",
      build_ms, main_comp_ms, delta_comp_ms, total_ms);
  out << "  governance: admission-wait " << admission_wait_us
      << " us, mem-peak " << mem_peak_bytes << " B";
  if (!abort_cause.empty()) out << ", abort: " << abort_cause;
  out << "\n";
  if (perf_available) {
    out << StrFormat(
        "  perf: %llu cycles, %llu instr (ipc %.2f), %llu llc-miss, "
        "%llu branch-miss, task-clock %.3f ms\n",
        static_cast<unsigned long long>(perf_total.cycles),
        static_cast<unsigned long long>(perf_total.instructions),
        perf_total.Ipc(),
        static_cast<unsigned long long>(perf_total.llc_misses),
        static_cast<unsigned long long>(perf_total.branch_misses),
        static_cast<double>(perf_total.task_clock_ns) / 1e6);
    for (const PhasePerf& phase : perf_phases) {
      out << StrFormat(
          "    [%s] %llu cycles, %llu instr (ipc %.2f), %llu llc-miss\n",
          phase.phase, static_cast<unsigned long long>(phase.delta.cycles),
          static_cast<unsigned long long>(phase.delta.instructions),
          phase.delta.Ipc(),
          static_cast<unsigned long long>(phase.delta.llc_misses));
    }
  }
  out << "  subjoins: " << subjoins.size() << " considered = "
      << CountVerdict(SubjoinTrace::Verdict::kExecuted) << " executed + "
      << CountVerdict(SubjoinTrace::Verdict::kPushdown) << " pushdown + "
      << CountVerdict(SubjoinTrace::Verdict::kPruned) << " pruned\n";
  for (const SubjoinTrace& subjoin : subjoins) {
    out << "    [" << subjoin.phase << "] " << subjoin.combination << " "
        << VerdictToString(subjoin.verdict);
    if (!subjoin.prune_reason.empty()) {
      out << " (" << subjoin.prune_reason << ")";
    }
    out << "\n";
    if (!subjoin.tid_ranges.empty()) {
      std::vector<std::string> parts;
      parts.reserve(subjoin.tid_ranges.size());
      for (const SubjoinTrace::TidRange& range : subjoin.tid_ranges) {
        parts.push_back(RenderTidRange(range));
      }
      out << "        " << StrJoin(parts, "  ") << "\n";
    }
    for (const std::string& filter : subjoin.pushdown_filters) {
      out << "        pushdown: " << filter << "\n";
    }
  }
  return out.str();
}

std::string QueryTrace::ToJson() const {
  std::ostringstream out;
  out << "{\"statement\":\"" << JsonEscape(statement) << "\""
      << ",\"strategy\":\"" << JsonEscape(strategy) << "\""
      << ",\"pushdown\":" << (use_pushdown ? "true" : "false")
      << ",\"snapshot_tid\":" << snapshot_tid << ",\"cache\":\""
      << JsonEscape(cache_outcome) << "\"";
  out << StrFormat(
      ",\"phases\":{\"build_ms\":%.3f,\"main_comp_ms\":%.3f,"
      "\"delta_comp_ms\":%.3f,\"total_ms\":%.3f}",
      build_ms, main_comp_ms, delta_comp_ms, total_ms);
  out << ",\"governance\":{\"admission_wait_us\":" << admission_wait_us
      << ",\"mem_peak_bytes\":" << mem_peak_bytes << ",\"abort\":\""
      << JsonEscape(abort_cause) << "\"}";
  // Counter fields appear only when the host could read them, so traces
  // from perf-denied environments carry no misleading zeros.
  if (perf_available) {
    auto render_delta = [&out](const PerfDelta& delta) {
      out << StrFormat(
          "{\"cycles\":%llu,\"instructions\":%llu,\"ipc\":%.2f,"
          "\"llc_misses\":%llu,\"branch_misses\":%llu,"
          "\"task_clock_ns\":%llu}",
          static_cast<unsigned long long>(delta.cycles),
          static_cast<unsigned long long>(delta.instructions), delta.Ipc(),
          static_cast<unsigned long long>(delta.llc_misses),
          static_cast<unsigned long long>(delta.branch_misses),
          static_cast<unsigned long long>(delta.task_clock_ns));
    };
    out << ",\"perf\":{\"total\":";
    render_delta(perf_total);
    out << ",\"phases\":[";
    for (size_t i = 0; i < perf_phases.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"phase\":\"" << perf_phases[i].phase << "\",\"delta\":";
      render_delta(perf_phases[i].delta);
      out << "}";
    }
    out << "]}";
  }
  out << ",\"subjoins\":[";
  for (size_t i = 0; i < subjoins.size(); ++i) {
    const SubjoinTrace& subjoin = subjoins[i];
    if (i > 0) out << ",";
    out << "{\"phase\":\"" << JsonEscape(subjoin.phase) << "\""
        << ",\"combination\":\"" << JsonEscape(subjoin.combination) << "\""
        << ",\"verdict\":\"" << VerdictToString(subjoin.verdict) << "\""
        << ",\"reason\":\"" << JsonEscape(subjoin.prune_reason) << "\""
        << ",\"tid_ranges\":[";
    for (size_t t = 0; t < subjoin.tid_ranges.size(); ++t) {
      const SubjoinTrace::TidRange& range = subjoin.tid_ranges[t];
      if (t > 0) out << ",";
      out << "{\"column\":\"" << JsonEscape(range.column) << "\""
          << ",\"empty\":" << (range.empty ? "true" : "false");
      if (!range.empty) {
        out << ",\"min\":" << range.min << ",\"max\":" << range.max;
      }
      out << "}";
    }
    out << "],\"pushdown_filters\":[";
    for (size_t f = 0; f < subjoin.pushdown_filters.size(); ++f) {
      if (f > 0) out << ",";
      out << "\"" << JsonEscape(subjoin.pushdown_filters[f]) << "\"";
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

TraceContext::TraceContext(QueryTrace* trace) : prev_(t_current_trace) {
  t_current_trace = trace;
}

TraceContext::~TraceContext() { t_current_trace = prev_; }

QueryTrace* TraceContext::Current() { return t_current_trace; }

}  // namespace aggcache
