#include "obs/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#define AGGCACHE_FLIGHT_HAS_SIGNALS 1
#endif

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/span.h"

namespace aggcache {

namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Event-timestamp clock. The precise steady_clock read costs ~25 ns — half
/// a Record() — but per-event precision buys nothing: `seq` already totally
/// orders events, and t_us only correlates the timeline with wall-clock
/// phases (merges, checkpoints), where jiffy resolution is plenty. Use the
/// kernel's coarse monotonic clock (a vDSO memory read, ~5 ns) when
/// available.
uint64_t EventMicros() {
#if defined(CLOCK_MONOTONIC_COARSE)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC_COARSE, &ts) == 0) {
    return static_cast<uint64_t>(ts.tv_sec) * 1000000 +
           static_cast<uint64_t>(ts.tv_nsec) / 1000;
  }
#endif
  return NowMicros();
}

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::atomic<bool> g_dump_requested{false};

// Live-instance registry, keyed address -> instance id. A thread_local
// lease can outlive a stack-allocated recorder (tests construct them
// freely), and a successor recorder can even reuse the dead one's address —
// so a release must match BOTH before touching the instance; otherwise it
// is dropped. Leaked so leases draining at thread/process exit always find
// the registry alive.
std::mutex& LiveRecordersMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::map<const void*, uint64_t>& LiveRecorders() {
  static auto* live = new std::map<const void*, uint64_t>();
  return *live;
}

uint64_t NextInstanceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

#ifdef AGGCACHE_FLIGHT_HAS_SIGNALS
void FlightSignalHandler(int) {
  // Async-signal-safe: just raise the flag; the owning binary polls it.
  g_dump_requested.store(true, std::memory_order_relaxed);
}
#endif

}  // namespace

const char* FlightEventTypeToString(FlightEventType type) {
  switch (type) {
    case FlightEventType::kMergeStart:
      return "merge_start";
    case FlightEventType::kMergeCommit:
      return "merge_commit";
    case FlightEventType::kMergeAbort:
      return "merge_abort";
    case FlightEventType::kMergeBackoff:
      return "merge_backoff";
    case FlightEventType::kEntryState:
      return "entry_state";
    case FlightEventType::kAdmissionReject:
      return "admission_reject";
    case FlightEventType::kSingleFlightWait:
      return "singleflight_wait";
    case FlightEventType::kPruneVerdict:
      return "prune_verdict";
    case FlightEventType::kPushdownVerdict:
      return "pushdown_verdict";
    case FlightEventType::kFaultInjected:
      return "fault_injected";
    case FlightEventType::kSnapshotIssued:
      return "snapshot_issued";
    case FlightEventType::kCheckFailure:
      return "check_failure";
    case FlightEventType::kPoolResize:
      return "pool_resize";
    case FlightEventType::kMaintenanceFailure:
      return "maintenance_failure";
    case FlightEventType::kWalAppend:
      return "wal_append";
    case FlightEventType::kWalSync:
      return "wal_sync";
    case FlightEventType::kCheckpointPublish:
      return "checkpoint_publish";
    case FlightEventType::kRecoveryReplay:
      return "recovery_replay";
    case FlightEventType::kQueryAbort:
      return "query_abort";
    case FlightEventType::kAdmissionShed:
      return "admission_shed";
    case FlightEventType::kDegradedFlip:
      return "degraded_flip";
    case FlightEventType::kPressureYield:
      return "pressure_yield";
  }
  return "unknown";
}

/// One event slot, all fields atomic so TSAN sees every cross-thread access
/// as intentionally racy-by-protocol. `seq` doubles as the publication
/// token: 0 = slot being (re)written, nonzero = payload at that sequence.
struct FlightRecorder::Slot {
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> t_us{0};
  /// Packed: bits 0..7 event type, bits 8..39 recorder thread id.
  std::atomic<uint64_t> meta{0};
  std::atomic<uint64_t> a{0};
  std::atomic<uint64_t> b{0};
  /// Truncated label, three 8-byte words (NUL padding included).
  std::atomic<uint64_t> detail[3] = {};
};

/// A per-thread ring of slots. Only the leasing thread advances `cursor`;
/// dump threads read slots concurrently through the seq protocol.
struct FlightRecorder::Segment {
  explicit Segment(size_t n) : mask(n - 1), slots(new Slot[n]) {}
  const size_t mask;
  std::atomic<size_t> cursor{0};
  std::unique_ptr<Slot[]> slots;
  uint32_t thread_id = 0;
};

struct FlightThreadLease {
  /// Thread-local lease: acquired on a thread's first Record(), returned to
  /// the recorder's free list when the thread exits. The lease may outlive
  /// the recorder it points to, so releases go through the live-instance
  /// registry and are dropped for destroyed recorders.
  struct Impl {
    FlightRecorder* recorder = nullptr;
    uint64_t instance_id = 0;
    FlightRecorder::Segment* segment = nullptr;
    ~Impl() { Release(recorder, instance_id, segment); }
  };

  static void Release(FlightRecorder* recorder, uint64_t instance_id,
                      FlightRecorder::Segment* segment) {
    if (recorder == nullptr || segment == nullptr) return;
    std::lock_guard<std::mutex> lock(LiveRecordersMutex());
    auto it = LiveRecorders().find(recorder);
    if (it != LiveRecorders().end() && it->second == instance_id) {
      recorder->ReleaseSegment(segment);
    }
  }

  static FlightRecorder::Segment* Get(FlightRecorder* recorder) {
    thread_local Impl lease;
    if (lease.instance_id != recorder->instance_id_) {
      Release(lease.recorder, lease.instance_id, lease.segment);
      lease.recorder = recorder;
      lease.instance_id = recorder->instance_id_;
      lease.segment = recorder->LeaseSegment();
    } else if (lease.segment == nullptr) {
      // Starved earlier (every segment was leased); retry — a segment may
      // have been freed by an exiting thread since.
      lease.segment = recorder->LeaseSegment();
    }
    return lease.segment;
  }
};

FlightRecorder::FlightRecorder(Options options)
    : options_(options), instance_id_(NextInstanceId()), t0_us_(EventMicros()) {
  options_.events_per_segment =
      RoundUpPow2(std::max<size_t>(options_.events_per_segment, 8));
  options_.max_segments = std::max<size_t>(options_.max_segments, 1);
  enabled_.store(options_.enabled, std::memory_order_relaxed);
  segments_.reserve(options_.max_segments);
  std::lock_guard<std::mutex> lock(LiveRecordersMutex());
  LiveRecorders()[this] = instance_id_;
}

FlightRecorder::~FlightRecorder() {
  std::lock_guard<std::mutex> lock(LiveRecordersMutex());
  LiveRecorders().erase(this);
}

FlightRecorder::Segment* FlightRecorder::LeaseSegment() {
  std::lock_guard<std::mutex> lock(segments_mu_);
  if (!free_segments_.empty()) {
    Segment* segment = free_segments_.back();
    free_segments_.pop_back();
    return segment;
  }
  if (segments_.size() < options_.max_segments) {
    segments_.push_back(
        std::make_unique<Segment>(options_.events_per_segment));
    Segment* segment = segments_.back().get();
    segment->thread_id = next_thread_id_.fetch_add(1, std::memory_order_relaxed);
    return segment;
  }
  return nullptr;
}

void FlightRecorder::ReleaseSegment(Segment* segment) {
  std::lock_guard<std::mutex> lock(segments_mu_);
  free_segments_.push_back(segment);
}

size_t FlightRecorder::active_segments() const {
  std::lock_guard<std::mutex> lock(segments_mu_);
  return segments_.size() - free_segments_.size();
}

void FlightRecorder::Record(FlightEventType type, uint64_t a, uint64_t b,
                            const char* detail) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Segment* segment = FlightThreadLease::Get(this);
  if (segment == nullptr) {
    // Every segment is leased by some other live thread: the event is lost,
    // not silently dropped — the loss counter is part of the dump header.
    lost_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  size_t index =
      segment->cursor.fetch_add(1, std::memory_order_relaxed) & segment->mask;
  Slot& slot = segment->slots[index];
  // Unpublish, write the payload relaxed, then publish with release: a
  // reader acquiring a nonzero seq sees the matching payload, and a reader
  // that catches the slot mid-rewrite sees seq==0 or a seq change and
  // discards it.
  slot.seq.store(0, std::memory_order_release);
  slot.t_us.store(EventMicros() - t0_us_, std::memory_order_relaxed);
  slot.meta.store(static_cast<uint64_t>(type) |
                      (uint64_t{segment->thread_id} << 8),
                  std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  uint64_t words[3] = {0, 0, 0};
  if (detail != nullptr) {
    char buf[24] = {};
    std::strncpy(buf, detail, sizeof(buf) - 1);
    std::memcpy(words, buf, sizeof(buf));
  }
  for (int i = 0; i < 3; ++i) {
    slot.detail[i].store(words[i], std::memory_order_relaxed);
  }
  slot.seq.store(seq, std::memory_order_release);
}

std::vector<FlightRecorder::Event> FlightRecorder::Collect(
    size_t max_events) const {
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(segments_mu_);
    for (const std::unique_ptr<Segment>& segment : segments_) {
      size_t n = segment->mask + 1;
      for (size_t i = 0; i < n; ++i) {
        const Slot& slot = segment->slots[i];
        uint64_t seq = slot.seq.load(std::memory_order_acquire);
        if (seq == 0) continue;
        Event event;
        event.seq = seq;
        event.t_us = slot.t_us.load(std::memory_order_relaxed);
        uint64_t meta = slot.meta.load(std::memory_order_relaxed);
        event.type = static_cast<FlightEventType>(meta & 0xff);
        event.thread = static_cast<uint32_t>(meta >> 8);
        event.a = slot.a.load(std::memory_order_relaxed);
        event.b = slot.b.load(std::memory_order_relaxed);
        uint64_t words[3];
        for (int w = 0; w < 3; ++w) {
          words[w] = slot.detail[w].load(std::memory_order_relaxed);
        }
        std::memcpy(event.detail, words, sizeof(words));
        event.detail[sizeof(event.detail) - 1] = '\0';
        // Torn-read check: a writer lapping this slot mid-harvest changed
        // (or zeroed) seq; drop the inconsistent snapshot.
        if (slot.seq.load(std::memory_order_acquire) != seq) continue;
        events.push_back(event);
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& x, const Event& y) { return x.seq < y.seq; });
  if (events.size() > max_events) {
    events.erase(events.begin(),
                 events.end() - static_cast<ptrdiff_t>(max_events));
  }
  return events;
}

std::string FlightRecorder::DumpJson(size_t max_events) const {
  std::vector<Event> events = Collect(max_events);
  std::string out;
  out.reserve(128 + events.size() * 96);
  out += "{\"schema\":\"aggcache-flight-v1\",\"recorded\":";
  out += std::to_string(recorded_events());
  out += ",\"lost\":";
  out += std::to_string(lost_events());
  out += ",\"events\":[";
  bool first = true;
  for (const Event& event : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"seq\":";
    out += std::to_string(event.seq);
    out += ",\"t_us\":";
    out += std::to_string(event.t_us);
    out += ",\"thread\":";
    out += std::to_string(event.thread);
    out += ",\"type\":\"";
    out += FlightEventTypeToString(event.type);
    out += "\",\"a\":";
    out += std::to_string(event.a);
    out += ",\"b\":";
    out += std::to_string(event.b);
    out += ",\"detail\":\"";
    for (const char* p = event.detail; *p != '\0'; ++p) {
      char c = *p;
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        out += StrFormat("\\u%04x", c);
      } else {
        out += c;
      }
    }
    out += "\"}";
  }
  out += "]}";
  return out;
}

void FlightRecorder::DumpToStderr(size_t max_events) const {
  std::string dump = DumpJson(max_events);
  std::fprintf(stderr, "--- aggcache flight recorder dump ---\n%s\n",
               dump.c_str());
  std::fflush(stderr);
}

void FlightRecorder::InstallSignalHandler() {
#ifdef AGGCACHE_FLIGHT_HAS_SIGNALS
  struct sigaction action = {};
  action.sa_handler = FlightSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  sigaction(SIGUSR1, &action, nullptr);
#endif
}

bool FlightRecorder::RequestedDumpPending() {
  return g_dump_requested.exchange(false, std::memory_order_relaxed);
}

namespace {

FlightRecorder::Options ParseFlightEnv() {
  FlightRecorder::Options options;
  const char* env = std::getenv("AGGCACHE_FLIGHT");
  if (env == nullptr) return options;
  std::string spec(env);
  if (spec == "off" || spec == "0") {
    options.enabled = false;
    return options;
  }
  for (size_t start = 0; start <= spec.size();) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    std::string part = spec.substr(start, comma - start);
    start = comma + 1;
    size_t eq = part.find('=');
    if (eq == std::string::npos) continue;
    std::string key = part.substr(0, eq);
    long value = std::strtol(part.c_str() + eq + 1, nullptr, 10);
    if (key == "events" && value > 0) {
      options.events_per_segment = static_cast<size_t>(value);
    } else if (key == "threads" && value > 0) {
      options.max_segments = static_cast<size_t>(value);
    }
  }
  return options;
}

/// AGGCACHE_CHECK failure hook: ship the timeline before the abort so a
/// crashed stress or fuzz run leaves its black box behind. Guarded against
/// re-entrant CHECK failures inside the dump itself. There is exactly one
/// hook slot, so the span recorder's crash dump chains from here rather
/// than registering its own hook.
void DumpFlightOnCheckFailure() {
  static std::atomic<bool> dumping{false};
  if (dumping.exchange(true, std::memory_order_relaxed)) return;
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Record(FlightEventType::kCheckFailure);
  recorder.DumpToStderr();
  DumpSpansOnCheckFailureIfEnabled();
  dumping.store(false, std::memory_order_relaxed);
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = [] {
    FlightRecorder* r = new FlightRecorder(ParseFlightEnv());
    internal_logging::SetCheckFailureHook(&DumpFlightOnCheckFailure);
    return r;
  }();
  return *recorder;
}

void RecordFlightEvent(FlightEventType type, uint64_t a, uint64_t b,
                       const char* detail) {
  FlightRecorder::Global().Record(type, a, b, detail);
}

}  // namespace aggcache
