#include "obs/obs_endpoints.h"

#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>

#include "obs/active_queries.h"
#include "obs/engine_metrics.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_history.h"
#include "obs/metrics_registry.h"
#include "obs/obs_server.h"
#include "obs/slow_log.h"
#include "obs/span.h"

namespace aggcache {

namespace {

/// Parses "id=N" out of a query string ("id=7" or "a=b&id=7"). Returns 0
/// (never a valid query id) when absent or malformed.
uint64_t ParseIdParam(const std::string& query) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    std::string param = query.substr(
        pos, amp == std::string::npos ? std::string::npos : amp - pos);
    if (param.rfind("id=", 0) == 0) {
      const std::string value = param.substr(3);
      if (value.empty()) return 0;
      uint64_t id = 0;
      for (char c : value) {
        if (c < '0' || c > '9') return 0;
        id = id * 10 + static_cast<uint64_t>(c - '0');
      }
      return id;
    }
    if (amp == std::string::npos) break;
    pos = amp + 1;
  }
  return 0;
}

}  // namespace

void RegisterCommonObsEndpoints(ObsServer& server) {
  // Register every engine instrument now, not lazily on the first query: a
  // scraper that connects at boot should see the full schema at zero.
  EngineMetrics::Get();
  server.SetHandler("/metrics", "text/plain; version=0.0.4", [] {
    return MetricsRegistry::Global().Render();
  });
  server.SetHandler("/metrics.json", "application/json", [] {
    return MetricsRegistry::Global().RenderJson();
  });
  server.SetHandler("/metrics/history", "application/json", [] {
    return MetricsHistory::Global().DumpJson();
  });
  server.SetHandler("/flight", "application/json", [] {
    return FlightRecorder::Global().DumpJson();
  });
  server.SetHandler("/spans", "application/json", [] {
    return SpanRecorder::Global().DumpJson();
  });
  server.SetHandler("/queries", "application/json", [] {
    return ActiveQueryRegistry::Global().ListJson();
  });
  server.SetHandler("/slowlog", "application/json", [] {
    return SlowQueryLog::Global().DumpJson();
  });
  server.SetQueryHandler(
      "/queries/cancel", "text/plain",
      [](const std::string& query) -> std::pair<int, std::string> {
        uint64_t id = ParseIdParam(query);
        if (id == 0) {
          return {400, "missing or malformed id parameter\n"};
        }
        if (ActiveQueryRegistry::Global().Cancel(id)) {
          return {200, "cancelled\n"};
        }
        return {404, "no such query\n"};
      });
}

}  // namespace aggcache
