#ifndef AGGCACHE_OBS_OBS_ENDPOINTS_H_
#define AGGCACHE_OBS_OBS_ENDPOINTS_H_

namespace aggcache {

class ObsServer;

/// Registers the engine-global observability endpoints on `server`:
///
///   /metrics          Prometheus text exposition (MetricsRegistry)
///   /metrics.json     Same registry as JSON
///   /metrics/history  Ring of periodic metric snapshots (MetricsHistory)
///   /flight           Flight-recorder events
///   /spans            Span recorder dump (aggcache-spans-v1)
///   /queries          Active-query registry (aggcache-queries-v1)
///   /queries/cancel   ?id=N remote cancellation (200/400/404)
///   /slowlog          Slow-query log ring (aggcache-slowlog-v1)
///
/// Everything here reads process-global singletons, so any binary that
/// owns an ObsServer (sql_shell, stress_concurrent, verify_fuzz) gets the
/// same surface from one call. Endpoints tied to instance state (/cache on
/// a specific AggregateCacheManager, the /healthz probe) stay with the
/// caller. Must run before ObsServer::Start().
void RegisterCommonObsEndpoints(ObsServer& server);

}  // namespace aggcache

#endif  // AGGCACHE_OBS_OBS_ENDPOINTS_H_
