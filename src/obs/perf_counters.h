#ifndef AGGCACHE_OBS_PERF_COUNTERS_H_
#define AGGCACHE_OBS_PERF_COUNTERS_H_

#include <cstdint>
#include <string>

namespace aggcache {

/// One hardware-counter reading (or the difference of two): the five
/// events the engine samples per query — cycles, instructions, last-level
/// cache misses, branch misses, and task clock (the thread's on-CPU
/// nanoseconds, derived from the group's time_running). `valid` is false
/// when the counters could not be read (perf_event_open denied, non-Linux
/// build, or the test hook simulating either); consumers must omit the
/// fields entirely rather than report zeros.
struct PerfDelta {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_misses = 0;
  uint64_t branch_misses = 0;
  uint64_t task_clock_ns = 0;
  bool valid = false;

  /// Instructions per cycle; 0 when cycles is 0.
  double Ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
};

/// Per-thread hardware performance counters over perf_event_open.
///
/// Design: opening a counter group per query would cost two syscalls plus
/// fd churn on every Execute, so instead each thread lazily opens ONE
/// always-running counter group on its first Read() and keeps it for the
/// thread's lifetime. A measured region is then two Read() calls — each a
/// single read(2) of the group fd — and a subtraction, cheap enough for
/// the per-query root sample and the per-phase samples EXPLAIN and the
/// span recorder take.
///
/// The counters observe only the calling thread (the query's orchestration
/// thread). Work fanned out to pool workers is NOT attributed — the
/// numbers explain where the orchestration thread's time went, and the
/// task-clock field makes the cycle counts interpretable next to wall
/// time. DESIGN.md §7 documents the undercount.
///
/// Degradation: the first open that fails with EACCES/EPERM (the
/// kernel.perf_event_paranoid default in containers and CI) or ENOSYS
/// latches a process-wide "unavailable" state — one stderr warning, the
/// aggcache_perf_counters_unavailable gauge set to 1, and every later
/// Read() returns {valid=false} after a single relaxed load. Multiplexed
/// groups (more events than counters) are scaled by enabled/running time,
/// the standard perf correction.
class PerfCounters {
 public:
  /// True when this process can read hardware counters (attempts the
  /// first open if no thread has tried yet).
  static bool Available();

  /// Reads the calling thread's counter group. {valid=false} when
  /// unavailable; otherwise cumulative counts since this thread first
  /// called Read().
  static PerfDelta Read();

  /// end - begin, field-wise; valid only when both inputs are.
  static PerfDelta Delta(const PerfDelta& begin, const PerfDelta& end);

  /// Test hook: makes every subsequent open fail with `err` (e.g. EACCES,
  /// ENOSYS), as if the kernel denied perf_event_open. Existing
  /// thread-local groups are invalidated via a generation bump so the
  /// simulated failure takes effect on the calling thread immediately.
  static void SimulateOpenFailureForTest(int err);

  /// Test hook: clears the simulated failure AND the latched unavailable
  /// state, letting the next Read() retry a real open.
  static void ResetForTest();

  /// True once the process has latched the degraded (no-counters) state.
  static bool unavailable();
};

/// RAII phase-level perf region: samples the thread's counters at
/// construction and hands the delta to its consumers at destruction —
/// the thread-local QueryTrace (EXPLAIN AGGREGATE's per-phase perf lines)
/// and, when given a live span, the span's args{ipc,llc_miss}. The
/// constructor is a no-op (no counter read) unless at least one consumer
/// is listening, which keeps the span-overhead budget intact when tracing
/// is off.
class ScopedSpan;

class PerfPhaseRegion {
 public:
  /// `phase` must be a string with static storage duration (the span-kind
  /// names are used). `span` may be null; when non-null and active, the
  /// delta is attached to the span before it publishes.
  explicit PerfPhaseRegion(const char* phase, ScopedSpan* span = nullptr);
  ~PerfPhaseRegion();
  PerfPhaseRegion(const PerfPhaseRegion&) = delete;
  PerfPhaseRegion& operator=(const PerfPhaseRegion&) = delete;

 private:
  const char* phase_;
  ScopedSpan* span_ = nullptr;
  bool armed_ = false;
  PerfDelta begin_;
};

}  // namespace aggcache

#endif  // AGGCACHE_OBS_PERF_COUNTERS_H_
