#include "obs/bench_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/string_util.h"

namespace aggcache {

namespace {

/// Mirrors the registry's JSON escaping; bench labels are ASCII by
/// convention but reports must never emit malformed JSON.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON number formatting for doubles: integral values print without a
/// fraction, others with enough digits to round-trip benchmark precision.
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    return StrFormat("%.0f", value);
  }
  return StrFormat("%.6g", value);
}

std::string LabelsJson(const std::map<std::string, std::string>& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

LatencyStats SummarizeLatencies(std::vector<double> times_ms) {
  LatencyStats stats;
  if (times_ms.empty()) return stats;
  std::sort(times_ms.begin(), times_ms.end());
  size_t n = times_ms.size();
  auto nearest_rank = [&](double q) {
    size_t index = static_cast<size_t>(
        std::lround(q * static_cast<double>(n - 1)));
    return times_ms[std::min(index, n - 1)];
  };
  stats.p5_ms = nearest_rank(0.05);
  stats.median_ms = times_ms[n / 2];
  stats.p95_ms = nearest_rank(0.95);
  stats.reps = static_cast<int>(n);
  return stats;
}

BenchReport::BenchReport(std::string scenario)
    : scenario_(std::move(scenario)) {}

void BenchReport::SetConfig(const std::string& key, const std::string& value) {
  config_[key] = value;
}

void BenchReport::SetConfig(const std::string& key, int64_t value) {
  config_[key] = std::to_string(value);
}

void BenchReport::SetConfig(const std::string& key, double value) {
  config_[key] = JsonNumber(value);
}

void BenchReport::SetConfig(const std::string& key, bool value) {
  config_[key] = value ? "true" : "false";
}

void BenchReport::AddLatency(const std::string& name,
                             const std::map<std::string, std::string>& labels,
                             const LatencyStats& stats) {
  Sample sample;
  sample.name = name;
  sample.labels = labels;
  sample.is_latency = true;
  sample.latency = stats;
  samples_.push_back(std::move(sample));
}

void BenchReport::AddScalar(const std::string& name,
                            const std::map<std::string, std::string>& labels,
                            double value, const std::string& unit) {
  Sample sample;
  sample.name = name;
  sample.labels = labels;
  sample.is_latency = false;
  sample.value = value;
  sample.unit = unit;
  samples_.push_back(std::move(sample));
}

void BenchReport::SnapshotMetricsBaseline() {
  baseline_ = MetricsRegistry::Global().SnapshotValues();
  have_baseline_ = true;
}

void BenchReport::CaptureMetricsDelta() {
  std::map<std::string, MetricsRegistry::MetricSnapshot> now =
      MetricsRegistry::Global().SnapshotValues();
  delta_.clear();
  for (const auto& [name, current] : now) {
    MetricsRegistry::MetricSnapshot d = current;
    if (have_baseline_) {
      auto it = baseline_.find(name);
      if (it != baseline_.end()) {
        switch (current.kind) {
          case MetricsRegistry::Kind::kCounter:
            d.value = current.value - it->second.value;
            break;
          case MetricsRegistry::Kind::kGauge:
            // Gauges are instantaneous; report the final value, not a delta.
            break;
          case MetricsRegistry::Kind::kHistogram:
            d.count = current.count - it->second.count;
            d.sum = current.sum - it->second.sum;
            break;
        }
      }
    }
    bool is_zero = false;
    switch (d.kind) {
      case MetricsRegistry::Kind::kCounter:
      case MetricsRegistry::Kind::kGauge:
        is_zero = d.value == 0;
        break;
      case MetricsRegistry::Kind::kHistogram:
        is_zero = d.count == 0 && d.sum == 0;
        break;
    }
    if (!is_zero) delta_.emplace(name, d);
  }
  have_delta_ = true;
}

std::string BenchReport::ToJson() const {
  std::string out;
  out.reserve(1024 + samples_.size() * 160);
  out += "{\"schema_version\":1,\"scenario\":\"";
  out += JsonEscape(scenario_);
  out += "\",\"config\":{";
  bool first = true;
  for (const auto& [key, value] : config_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
  }
  out += "},\"samples\":[";
  first = true;
  for (const Sample& sample : samples_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(sample.name) + "\",\"labels\":";
    out += LabelsJson(sample.labels);
    if (sample.is_latency) {
      out += ",\"kind\":\"latency\",\"reps\":";
      out += std::to_string(sample.latency.reps);
      out += ",\"p5_ms\":" + JsonNumber(sample.latency.p5_ms);
      out += ",\"median_ms\":" + JsonNumber(sample.latency.median_ms);
      out += ",\"p95_ms\":" + JsonNumber(sample.latency.p95_ms);
    } else {
      out += ",\"kind\":\"scalar\",\"value\":" + JsonNumber(sample.value);
      if (!sample.unit.empty()) {
        out += ",\"unit\":\"" + JsonEscape(sample.unit) + "\"";
      }
    }
    out += "}";
  }
  out += "],\"metrics_delta\":{";
  first = true;
  for (const auto& [name, d] : delta_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":{";
    switch (d.kind) {
      case MetricsRegistry::Kind::kCounter:
        out += "\"kind\":\"counter\",\"delta\":" + std::to_string(d.value);
        break;
      case MetricsRegistry::Kind::kGauge:
        out += "\"kind\":\"gauge\",\"value\":" + std::to_string(d.value);
        break;
      case MetricsRegistry::Kind::kHistogram:
        out += "\"kind\":\"histogram\",\"count\":" + std::to_string(d.count) +
               ",\"sum\":" + std::to_string(d.sum);
        break;
    }
    out += "}";
  }
  out += "}}";
  return out;
}

bool BenchReport::WriteToFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench_report: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  std::string json = ToJson();
  bool ok = std::fwrite(json.data(), 1, json.size(), file) == json.size();
  ok = std::fputc('\n', file) != EOF && ok;
  ok = std::fclose(file) == 0 && ok;
  if (!ok) {
    std::fprintf(stderr, "bench_report: short write to %s\n", path.c_str());
  }
  return ok;
}

namespace {

/// Resolves a --json[=value] spec to the output path for `scenario`:
/// empty value → cwd; a value ending in '/' → that directory; anything
/// else → the exact file path.
std::string ResolveJsonPath(const std::string& value,
                            const std::string& scenario) {
  std::string file = "BENCH_" + scenario + ".json";
  if (value.empty()) return file;
  if (value.back() == '/') return value + file;
  return value;
}

}  // namespace

BenchContext::BenchContext(int argc, char** argv, std::string scenario)
    : report_(std::move(scenario)) {
  const char* env_json = std::getenv("AGGCACHE_BENCH_JSON");
  if (env_json != nullptr && *env_json != '\0' &&
      std::strcmp(env_json, "off") != 0) {
    json_path_ = ResolveJsonPath(env_json, report_.scenario());
  }
  const char* env_quick = std::getenv("AGGCACHE_BENCH_QUICK");
  if (env_quick != nullptr && *env_quick != '\0' &&
      std::strcmp(env_quick, "0") != 0) {
    quick_ = true;
  }
  const char* env_reps = std::getenv("AGGCACHE_BENCH_REPS");
  if (env_reps != nullptr && *env_reps != '\0') {
    char* end = nullptr;
    long reps = std::strtol(env_reps, &end, 10);
    if (end == env_reps || *end != '\0' || reps < 1 || reps > 100000) {
      std::fprintf(stderr,
                   "FATAL BenchContext: AGGCACHE_BENCH_REPS='%s' is not a "
                   "positive rep count\n",
                   env_reps);
      std::abort();
    }
    reps_override_ = static_cast<int>(reps);
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      json_path_ = ResolveJsonPath("", report_.scenario());
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      json_path_ = ResolveJsonPath(arg + 7, report_.scenario());
    } else if (std::strcmp(arg, "--quick") == 0) {
      quick_ = true;
    }
  }
  report_.SetConfig("quick", quick_);
  report_.SnapshotMetricsBaseline();
}

int BenchContext::Reps(int quick_reps, int full_reps) const {
  if (quick_reps < 1 || full_reps < 1) {
    std::fprintf(stderr,
                 "FATAL BenchContext::Reps: repetition counts must be >= 1 "
                 "(quick=%d, full=%d)\n",
                 quick_reps, full_reps);
    std::abort();
  }
  if (reps_override_ > 0) return reps_override_;
  return quick_ ? quick_reps : full_reps;
}

bool BenchContext::Finish() {
  if (finished_) return true;
  finished_ = true;
  report_.CaptureMetricsDelta();
  if (json_path_.empty()) return true;
  if (!report_.WriteToFile(json_path_)) return false;
  std::fprintf(stderr, "wrote %s\n", json_path_.c_str());
  return true;
}

}  // namespace aggcache
