#include "obs/slow_log.h"

#include <cstdlib>
#include <fstream>

#include "common/string_util.h"
#include "obs/engine_metrics.h"

namespace aggcache {

SlowQueryLog& SlowQueryLog::Global() {
  static SlowQueryLog* log = new SlowQueryLog();
  return *log;
}

void SlowQueryLog::ConfigureFromEnv() {
  const char* env = std::getenv("AGGCACHE_SLOW_QUERY_MS");
  if (env == nullptr || *env == '\0') return;
  Options options;
  // Spec: "<ms>[,dir=<path>][,files=<n>][,keep=<records>]".
  std::string spec(env);
  size_t pos = 0;
  bool first = true;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (first) {
      first = false;
      char* end = nullptr;
      options.threshold_ms = std::strtod(token.c_str(), &end);
      if (end == token.c_str() || options.threshold_ms <= 0) return;
      continue;
    }
    size_t eq = token.find('=');
    if (eq == std::string::npos) continue;
    std::string key = token.substr(0, eq);
    std::string value = token.substr(eq + 1);
    if (key == "dir") {
      options.dir = value;
    } else if (key == "files") {
      long n = std::strtol(value.c_str(), nullptr, 10);
      if (n > 0) options.max_files = static_cast<size_t>(n);
    } else if (key == "keep") {
      long n = std::strtol(value.c_str(), nullptr, 10);
      if (n > 0) options.keep = static_cast<size_t>(n);
    }
  }
  Configure(options);
}

void SlowQueryLog::Configure(const Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  enabled_.store(options.threshold_ms > 0, std::memory_order_relaxed);
}

double SlowQueryLog::threshold_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_.threshold_ms;
}

void SlowQueryLog::Record(const std::string& record_json) {
  std::string file_path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_.load(std::memory_order_relaxed)) return;
    records_.push_back(record_json);
    while (records_.size() > options_.keep) records_.pop_front();
    if (!options_.dir.empty()) {
      file_path = options_.dir + "/slowlog-" +
                  std::to_string(total_ % options_.max_files) + ".json";
    }
    ++total_;
  }
  EngineMetrics::Get().slow_queries->Increment();
  if (!file_path.empty()) {
    // Outside the lock: disk latency must not stall /slowlog readers.
    std::ofstream out(file_path, std::ios::trunc);
    if (out) out << record_json << "\n";
  }
}

std::string SlowQueryLog::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = StrFormat(
      "{\"schema\":\"aggcache-slowlog-v1\",\"enabled\":%s,"
      "\"threshold_ms\":%.3f,\"total\":%llu,\"records\":[",
      enabled_.load(std::memory_order_relaxed) ? "true" : "false",
      options_.threshold_ms, static_cast<unsigned long long>(total_));
  bool first = true;
  for (const std::string& record : records_) {
    if (!first) out += ',';
    first = false;
    out += record;  // Already a JSON object.
  }
  out += "]}";
  return out;
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

uint64_t SlowQueryLog::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void SlowQueryLog::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = Options{};
  records_.clear();
  total_ = 0;
  enabled_.store(false, std::memory_order_relaxed);
}

}  // namespace aggcache
