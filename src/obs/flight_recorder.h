#ifndef AGGCACHE_OBS_FLIGHT_RECORDER_H_
#define AGGCACHE_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace aggcache {

/// Typed engine events the flight recorder understands. The taxonomy is the
/// cross-query counterpart of the per-query EXPLAIN trace: it answers "what
/// was the *engine* doing in the seconds before this failure", not "why did
/// this query do what it did". Kept in one enum so the event-name table,
/// DESIGN.md §7 and the golden schema test stay trivially in sync.
enum class FlightEventType : uint8_t {
  kMergeStart = 0,       ///< a = attempt; b = group size; detail = 1st table
  kMergeCommit,          ///< a = attempt; b = group size; detail = 1st table
  kMergeAbort,           ///< a = attempt; b = group size; detail = 1st table
  kMergeBackoff,         ///< a = backoff ms; b = attempt; detail = 1st table
  kEntryState,           ///< a = entry id; b = from<<8|to (EntryState)
  kAdmissionReject,      ///< a = entry id; detail = reason
  kSingleFlightWait,     ///< a = entry id
  kPruneVerdict,         ///< a = 1 (only prunes recorded); detail = reason
  kPushdownVerdict,      ///< a = filters derived; b = MD edges considered
  kFaultInjected,        ///< a = fire #; b = 1 delay / 0 error; detail = point
  kSnapshotIssued,       ///< a = snapshot tid; b = group; detail = table
  kCheckFailure,         ///< detail = failing file:line (best effort)
  kPoolResize,           ///< a = new parallelism; b = old parallelism
  kMaintenanceFailure,   ///< a = entry id; detail = table / cause
  kWalAppend,            ///< a = lsn; b = frame bytes; detail = record type
  kWalSync,              ///< a = durable lsn; b = sync µs
  kCheckpointPublish,    ///< a = checkpoint lsn; b = payload bytes
  kRecoveryReplay,       ///< a = records replayed; b = replay µs
  kQueryAbort,           ///< a = QueryAbortReason; detail = cause
  kAdmissionShed,        ///< a = 0 timeout/1 capacity/2 aborted; b = queue
  kDegradedFlip,         ///< a = 1 entered / 0 left degraded mode
  kPressureYield,        ///< a = tracker used MiB; b = tracker limit MiB
};

/// Event-type name used in JSON dumps (stable contract, golden-tested).
const char* FlightEventTypeToString(FlightEventType type);

/// A bounded, lock-free flight recorder: the engine's black box. Every
/// recording thread owns (leases) a private segment — a fixed ring of
/// atomic event slots plus a relaxed monotone cursor — so a Record() is a
/// global relaxed fetch_add (for cross-thread ordering), a private relaxed
/// fetch_add (slot claim) and a handful of relaxed stores. No lock, no
/// allocation, no syscall on the record path; the hot paths it instruments
/// (prune verdicts, entry state flips) pay nanoseconds.
///
/// Dumps are loose snapshots: a dumper walks every segment, harvests slots
/// whose sequence number is published (release store, acquire load),
/// re-checks the sequence after reading the payload and drops the slot if a
/// concurrent writer lapped it. A torn event is therefore *discarded*, never
/// emitted. Dumping is expected at three moments — on demand (shell
/// `\flight`, replayer `!flightdump`), from the AGGCACHE_CHECK failure hook,
/// and from the SIGUSR1 handler — so a dying stress run ships its last-N
/// thousand events instead of a bare counter dump.
///
/// Ring wraparound intentionally overwrites the oldest events (the recorder
/// keeps the *recent* past). Events are only ever *lost* — counted in
/// lost_events() — when more threads record concurrently than there are
/// segments to lease; segments are returned to the free list at thread exit
/// and reused (their parked events survive until the next lease overwrites
/// them).
class FlightRecorder {
 public:
  struct Options {
    /// Events per thread segment; must be a power of two.
    size_t events_per_segment = 2048;
    /// Maximum simultaneously-recording threads.
    size_t max_segments = 64;
    bool enabled = true;
  };

  explicit FlightRecorder(Options options);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder, configured from AGGCACHE_FLIGHT
  /// ("off" | "events=4096" | "events=4096,threads=32") on first use and
  /// intentionally leaked so worker threads may record during static
  /// teardown. First use also installs the AGGCACHE_CHECK failure hook.
  static FlightRecorder& Global();

  /// Records one event. ~3 relaxed atomic RMW/stores when enabled; a single
  /// relaxed load when disabled. `detail` is truncated to 23 bytes.
  void Record(FlightEventType type, uint64_t a = 0, uint64_t b = 0,
              const char* detail = nullptr);

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Events dropped because every segment was leased by some other thread.
  uint64_t lost_events() const {
    return lost_.load(std::memory_order_relaxed);
  }
  /// Events successfully recorded (including ones since overwritten).
  uint64_t recorded_events() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

  /// One harvested event, already validated (sequence stable across the
  /// payload read).
  struct Event {
    uint64_t seq = 0;
    uint64_t t_us = 0;  ///< microseconds since recorder construction
    uint32_t thread = 0;
    FlightEventType type = FlightEventType::kMergeStart;
    uint64_t a = 0;
    uint64_t b = 0;
    char detail[24] = {};
  };

  /// Harvests up to `max_events` of the most recent events, oldest first
  /// (global sequence order).
  std::vector<Event> Collect(size_t max_events = SIZE_MAX) const;

  /// Renders the last `max_events` events as a JSON object:
  ///   {"schema":"aggcache-flight-v1","recorded":N,"lost":N,
  ///    "events":[{"seq":..,"t_us":..,"thread":..,"type":"..",
  ///               "a":..,"b":..,"detail":".."}, ...]}
  std::string DumpJson(size_t max_events = 4096) const;

  /// Writes DumpJson(max_events) to stderr with a banner. Safe to call from
  /// the CHECK-failure path (allocates, so not async-signal-safe; the
  /// SIGUSR1 handler only sets a flag consumed by RequestedDumpPending()).
  void DumpToStderr(size_t max_events = 4096) const;

  /// Installs a SIGUSR1 handler that requests a dump; long-running binaries
  /// (stress, fuzz, shell) poll RequestedDumpPending() on their main loop
  /// and call DumpToStderr() when it reports true. POSIX-only no-op
  /// elsewhere.
  static void InstallSignalHandler();
  static bool RequestedDumpPending();

  /// Number of segments currently leased (tests).
  size_t active_segments() const;

 private:
  struct Slot;
  struct Segment;

  Segment* LeaseSegment();
  void ReleaseSegment(Segment* segment);

  friend struct FlightThreadLease;

  Options options_;
  /// Process-unique, never reused. Thread-local leases key on this rather
  /// than the recorder's address: a stack-allocated recorder can die and a
  /// new one can reuse the same address within a lease's lifetime.
  const uint64_t instance_id_;
  uint64_t t0_us_ = 0;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<uint64_t> lost_{0};
  std::atomic<uint32_t> next_thread_id_{0};

  mutable std::mutex segments_mu_;  ///< Lease/release + dump only.
  std::vector<std::unique_ptr<Segment>> segments_;
  std::vector<Segment*> free_segments_;
};

/// Convenience wrapper: FlightRecorder::Global().Record(...). Defined out
/// of line so instrumented headers need only this one declaration.
void RecordFlightEvent(FlightEventType type, uint64_t a = 0, uint64_t b = 0,
                       const char* detail = nullptr);

}  // namespace aggcache

#endif  // AGGCACHE_OBS_FLIGHT_RECORDER_H_
