#include "obs/span.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "common/string_util.h"

namespace aggcache {

namespace {

uint64_t SteadyMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// Live-instance registry, keyed address -> instance id; same lifetime
// protocol as the flight recorder's (a thread-local lease can outlive a
// stack-allocated recorder whose address a successor then reuses). Leaked
// so leases draining at thread/process exit always find it alive.
std::mutex& LiveSpanRecordersMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::map<const void*, uint64_t>& LiveSpanRecorders() {
  static auto* live = new std::map<const void*, uint64_t>();
  return *live;
}

uint64_t NextInstanceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// The innermost active span on this thread. Plain (non-atomic) TLS: only
/// this thread reads or writes it.
thread_local SpanLink t_current_span;

/// The global recorder once constructed — read by the CHECK-failure chain
/// without forcing construction mid-crash.
std::atomic<SpanRecorder*> g_global_recorder{nullptr};

SpanRecorder::Options ParseSpanEnv() {
  SpanRecorder::Options options;
  const char* env = std::getenv("AGGCACHE_SPANS");
  if (env == nullptr) return options;
  std::string spec(env);
  if (spec == "off" || spec == "0" || spec.empty()) return options;
  options.enabled = true;
  if (spec == "on" || spec == "1") return options;
  for (size_t start = 0; start <= spec.size();) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    std::string part = spec.substr(start, comma - start);
    start = comma + 1;
    size_t eq = part.find('=');
    if (eq == std::string::npos) continue;
    std::string key = part.substr(0, eq);
    long value = std::strtol(part.c_str() + eq + 1, nullptr, 10);
    if (key == "sample" && value > 0) {
      options.sample_every = static_cast<uint64_t>(value);
    } else if (key == "spans" && value > 0) {
      options.spans_per_segment = static_cast<size_t>(value);
    } else if (key == "threads" && value > 0) {
      options.max_segments = static_cast<size_t>(value);
    }
  }
  return options;
}

void CopyDetail(char (&dst)[16], const char* detail) {
  if (detail == nullptr) return;
  std::strncpy(dst, detail, sizeof(dst) - 1);
}

}  // namespace

const char* SpanKindToString(SpanKind kind) {
  switch (kind) {
    case SpanKind::kQuery:
      return "query";
    case SpanKind::kAdmissionWait:
      return "admission_wait";
    case SpanKind::kCacheLookup:
      return "cache_lookup";
    case SpanKind::kSingleFlightWait:
      return "singleflight_wait";
    case SpanKind::kEntryBuild:
      return "entry_build";
    case SpanKind::kMainCorrection:
      return "main_correction";
    case SpanKind::kDeltaCompensation:
      return "delta_compensation";
    case SpanKind::kUncachedExec:
      return "uncached_exec";
    case SpanKind::kSubjoinTask:
      return "subjoin_task";
    case SpanKind::kSharedScanLead:
      return "sharedscan_lead";
    case SpanKind::kSharedScanAttach:
      return "sharedscan_attach";
    case SpanKind::kMerge:
      return "merge";
    case SpanKind::kCheckpoint:
      return "checkpoint";
    case SpanKind::kWalSync:
      return "wal_sync";
    case SpanKind::kRecoveryReplay:
      return "recovery_replay";
  }
  return "unknown";
}

/// One span slot, all fields atomic so TSAN sees every cross-thread access
/// as intentionally racy-by-protocol. `seq` doubles as the publication
/// token: 0 = slot being (re)written, nonzero = payload at that sequence.
struct SpanRecorder::Slot {
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> start_us{0};
  std::atomic<uint64_t> dur_us{0};
  /// Packed: bits 0..7 span kind, bits 8..39 recorder thread id.
  std::atomic<uint64_t> meta{0};
  std::atomic<uint64_t> span_id{0};
  std::atomic<uint64_t> parent_id{0};
  std::atomic<uint64_t> query_id{0};
  /// Truncated label, two 8-byte words (NUL padding included).
  std::atomic<uint64_t> detail[2] = {};
  /// Hardware-counter deltas (0 = not measured).
  std::atomic<uint64_t> cycles{0};
  std::atomic<uint64_t> instructions{0};
  std::atomic<uint64_t> llc_misses{0};
};

/// A per-thread ring of slots. Only the leasing thread advances `cursor`;
/// dump threads read slots concurrently through the seq protocol.
struct SpanRecorder::Segment {
  explicit Segment(size_t n) : mask(n - 1), slots(new Slot[n]) {}
  const size_t mask;
  std::atomic<size_t> cursor{0};
  std::unique_ptr<Slot[]> slots;
  uint32_t thread_id = 0;
};

struct SpanThreadLease {
  /// Thread-local lease, identical in shape to FlightThreadLease: acquired
  /// on a thread's first Record(), returned through the live-instance
  /// registry at thread exit (dropped if the recorder died first).
  struct Impl {
    SpanRecorder* recorder = nullptr;
    uint64_t instance_id = 0;
    SpanRecorder::Segment* segment = nullptr;
    ~Impl() { Release(recorder, instance_id, segment); }
  };

  static void Release(SpanRecorder* recorder, uint64_t instance_id,
                      SpanRecorder::Segment* segment) {
    if (recorder == nullptr || segment == nullptr) return;
    std::lock_guard<std::mutex> lock(LiveSpanRecordersMutex());
    auto it = LiveSpanRecorders().find(recorder);
    if (it != LiveSpanRecorders().end() && it->second == instance_id) {
      recorder->ReleaseSegment(segment);
    }
  }

  static SpanRecorder::Segment* Get(SpanRecorder* recorder) {
    thread_local Impl lease;
    if (lease.instance_id != recorder->instance_id_) {
      Release(lease.recorder, lease.instance_id, lease.segment);
      lease.recorder = recorder;
      lease.instance_id = recorder->instance_id_;
      lease.segment = recorder->LeaseSegment();
    } else if (lease.segment == nullptr) {
      // Starved earlier (every segment was leased); retry — a segment may
      // have been freed by an exiting thread since.
      lease.segment = recorder->LeaseSegment();
    }
    return lease.segment;
  }
};

SpanRecorder::SpanRecorder(Options options)
    : options_(options),
      instance_id_(NextInstanceId()),
      t0_us_(SteadyMicros()) {
  options_.spans_per_segment =
      RoundUpPow2(std::max<size_t>(options_.spans_per_segment, 8));
  options_.max_segments = std::max<size_t>(options_.max_segments, 1);
  options_.sample_every = std::max<uint64_t>(options_.sample_every, 1);
  enabled_.store(options_.enabled, std::memory_order_relaxed);
  segments_.reserve(options_.max_segments);
  std::lock_guard<std::mutex> lock(LiveSpanRecordersMutex());
  LiveSpanRecorders()[this] = instance_id_;
}

SpanRecorder::~SpanRecorder() {
  std::lock_guard<std::mutex> lock(LiveSpanRecordersMutex());
  LiveSpanRecorders().erase(this);
}

uint64_t SpanRecorder::NowMicros() const { return SteadyMicros() - t0_us_; }

bool SpanRecorder::SampleTick() {
  if (options_.sample_every == 1) return true;
  return sample_tick_.fetch_add(1, std::memory_order_relaxed) %
             options_.sample_every ==
         0;
}

SpanRecorder::Segment* SpanRecorder::LeaseSegment() {
  std::lock_guard<std::mutex> lock(segments_mu_);
  if (!free_segments_.empty()) {
    Segment* segment = free_segments_.back();
    free_segments_.pop_back();
    return segment;
  }
  if (segments_.size() < options_.max_segments) {
    segments_.push_back(
        std::make_unique<Segment>(options_.spans_per_segment));
    Segment* segment = segments_.back().get();
    segment->thread_id =
        next_thread_id_.fetch_add(1, std::memory_order_relaxed);
    return segment;
  }
  return nullptr;
}

void SpanRecorder::ReleaseSegment(Segment* segment) {
  std::lock_guard<std::mutex> lock(segments_mu_);
  free_segments_.push_back(segment);
}

size_t SpanRecorder::active_segments() const {
  std::lock_guard<std::mutex> lock(segments_mu_);
  return segments_.size() - free_segments_.size();
}

void SpanRecorder::Record(SpanKind kind, uint64_t span_id,
                          uint64_t parent_id, uint64_t query_id,
                          uint64_t start_us, uint64_t end_us,
                          const char* detail, uint64_t cycles,
                          uint64_t instructions, uint64_t llc_misses) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Segment* segment = SpanThreadLease::Get(this);
  if (segment == nullptr) {
    lost_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  size_t index =
      segment->cursor.fetch_add(1, std::memory_order_relaxed) & segment->mask;
  Slot& slot = segment->slots[index];
  // Unpublish, write the payload relaxed, then publish with release: a
  // harvester acquiring a nonzero seq sees the matching payload, and one
  // that catches the slot mid-rewrite sees seq==0 or a seq change and
  // discards it (same protocol as FlightRecorder::Record).
  slot.seq.store(0, std::memory_order_release);
  slot.start_us.store(start_us, std::memory_order_relaxed);
  slot.dur_us.store(end_us >= start_us ? end_us - start_us : 0,
                    std::memory_order_relaxed);
  slot.meta.store(static_cast<uint64_t>(kind) |
                      (uint64_t{segment->thread_id} << 8),
                  std::memory_order_relaxed);
  slot.span_id.store(span_id, std::memory_order_relaxed);
  slot.parent_id.store(parent_id, std::memory_order_relaxed);
  slot.query_id.store(query_id, std::memory_order_relaxed);
  uint64_t words[2] = {0, 0};
  if (detail != nullptr) {
    char buf[16] = {};
    std::strncpy(buf, detail, sizeof(buf) - 1);
    std::memcpy(words, buf, sizeof(buf));
  }
  for (int i = 0; i < 2; ++i) {
    slot.detail[i].store(words[i], std::memory_order_relaxed);
  }
  slot.cycles.store(cycles, std::memory_order_relaxed);
  slot.instructions.store(instructions, std::memory_order_relaxed);
  slot.llc_misses.store(llc_misses, std::memory_order_relaxed);
  slot.seq.store(seq, std::memory_order_release);
}

std::vector<SpanRecorder::Span> SpanRecorder::Collect(
    size_t max_spans) const {
  std::vector<Span> spans;
  {
    std::lock_guard<std::mutex> lock(segments_mu_);
    for (const std::unique_ptr<Segment>& segment : segments_) {
      size_t n = segment->mask + 1;
      for (size_t i = 0; i < n; ++i) {
        const Slot& slot = segment->slots[i];
        uint64_t seq = slot.seq.load(std::memory_order_acquire);
        if (seq == 0) continue;
        Span span;
        span.seq = seq;
        span.start_us = slot.start_us.load(std::memory_order_relaxed);
        span.dur_us = slot.dur_us.load(std::memory_order_relaxed);
        uint64_t meta = slot.meta.load(std::memory_order_relaxed);
        span.kind = static_cast<SpanKind>(meta & 0xff);
        span.thread = static_cast<uint32_t>(meta >> 8);
        span.span_id = slot.span_id.load(std::memory_order_relaxed);
        span.parent_id = slot.parent_id.load(std::memory_order_relaxed);
        span.query_id = slot.query_id.load(std::memory_order_relaxed);
        uint64_t words[2];
        for (int w = 0; w < 2; ++w) {
          words[w] = slot.detail[w].load(std::memory_order_relaxed);
        }
        std::memcpy(span.detail, words, sizeof(words));
        span.detail[sizeof(span.detail) - 1] = '\0';
        span.cycles = slot.cycles.load(std::memory_order_relaxed);
        span.instructions = slot.instructions.load(std::memory_order_relaxed);
        span.llc_misses = slot.llc_misses.load(std::memory_order_relaxed);
        // Torn-read check: a writer lapping this slot mid-harvest changed
        // (or zeroed) seq; drop the inconsistent snapshot.
        if (slot.seq.load(std::memory_order_acquire) != seq) continue;
        spans.push_back(span);
      }
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const Span& x, const Span& y) { return x.seq < y.seq; });
  if (spans.size() > max_spans) {
    spans.erase(spans.begin(),
                spans.end() - static_cast<ptrdiff_t>(max_spans));
  }
  return spans;
}

std::string SpanRecorder::DumpJson(size_t max_spans) const {
  std::vector<Span> spans = Collect(max_spans);
  std::string out;
  out.reserve(160 + spans.size() * 128);
  out += "{\"schema\":\"aggcache-spans-v1\",\"recorded\":";
  out += std::to_string(recorded_spans());
  out += ",\"lost\":";
  out += std::to_string(lost_spans());
  out += ",\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span& span : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += SpanKindToString(span.kind);
    out += "\",\"cat\":\"aggcache\",\"ph\":\"X\",\"ts\":";
    out += std::to_string(span.start_us);
    out += ",\"dur\":";
    out += std::to_string(span.dur_us);
    out += ",\"pid\":";
    out += std::to_string(span.query_id);
    out += ",\"tid\":";
    out += std::to_string(span.thread);
    out += ",\"args\":{\"id\":";
    out += std::to_string(span.span_id);
    out += ",\"parent\":";
    out += std::to_string(span.parent_id);
    out += ",\"detail\":\"";
    for (const char* p = span.detail; *p != '\0'; ++p) {
      char c = *p;
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        out += StrFormat("\\u%04x", c);
      } else {
        out += c;
      }
    }
    out += '"';
    // Perf fields only when the region was measured, so traces from hosts
    // without counters (and the byte-exact golden test) are unchanged.
    if (span.cycles > 0) {
      out += StrFormat(",\"ipc\":%.2f,\"llc_miss\":%llu",
                       static_cast<double>(span.instructions) /
                           static_cast<double>(span.cycles),
                       static_cast<unsigned long long>(span.llc_misses));
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

void SpanRecorder::DumpToStderr(size_t max_spans) const {
  std::string dump = DumpJson(max_spans);
  std::fprintf(stderr, "--- aggcache span recorder dump ---\n%s\n",
               dump.c_str());
  std::fflush(stderr);
}

SpanRecorder& SpanRecorder::Global() {
  static SpanRecorder* recorder = [] {
    SpanRecorder* r = new SpanRecorder(ParseSpanEnv());
    g_global_recorder.store(r, std::memory_order_release);
    return r;
  }();
  return *recorder;
}

void DumpSpansOnCheckFailureIfEnabled() {
  SpanRecorder* recorder = g_global_recorder.load(std::memory_order_acquire);
  if (recorder != nullptr && recorder->enabled()) {
    recorder->DumpToStderr();
  }
}

SpanLink CurrentSpanLink() { return t_current_span; }

void ScopedSpan::Begin(SpanKind kind, uint64_t query_id, uint64_t parent_id,
                       const char* detail) {
  SpanRecorder& recorder = SpanRecorder::Global();
  active_ = true;
  kind_ = kind;
  query_id_ = query_id;
  parent_id_ = parent_id;
  span_id_ = recorder.NextSpanId();
  start_us_ = recorder.NowMicros();
  CopyDetail(detail_, detail);
  saved_ = t_current_span;
  t_current_span = SpanLink{query_id_, span_id_};
  installed_ = true;
}

ScopedSpan::ScopedSpan(SpanKind kind, const char* detail) {
  SpanLink parent = t_current_span;
  if (!parent.sampled()) return;
  if (!SpanRecorder::Global().enabled()) return;
  Begin(kind, parent.query_id, parent.span_id, detail);
}

ScopedSpan::ScopedSpan(SpanKind kind, const SpanLink& parent,
                       const char* detail) {
  if (!parent.sampled()) return;
  if (!SpanRecorder::Global().enabled()) return;
  Begin(kind, parent.query_id, parent.span_id, detail);
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  if (installed_) t_current_span = saved_;
  SpanRecorder& recorder = SpanRecorder::Global();
  recorder.Record(kind_, span_id_, parent_id_, query_id_, start_us_,
                  recorder.NowMicros(), detail_, cycles_, instructions_,
                  llc_misses_);
}

QueryRootSpan::QueryRootSpan(const char* detail) {
  SpanRecorder& recorder = SpanRecorder::Global();
  if (!recorder.enabled()) return;
  if (!recorder.SampleTick()) return;
  active_ = true;
  query_id_ = recorder.NextQueryId();
  span_id_ = recorder.NextSpanId();
  start_us_ = recorder.NowMicros();
  CopyDetail(detail_, detail);
  saved_ = t_current_span;
  t_current_span = SpanLink{query_id_, span_id_};
}

QueryRootSpan::~QueryRootSpan() {
  if (!active_) return;
  t_current_span = saved_;
  SpanRecorder& recorder = SpanRecorder::Global();
  recorder.Record(SpanKind::kQuery, span_id_, 0, query_id_, start_us_,
                  recorder.NowMicros(), detail_);
}

BackgroundSpan::BackgroundSpan(SpanKind kind, const char* detail) {
  SpanRecorder& recorder = SpanRecorder::Global();
  if (!recorder.enabled()) return;
  active_ = true;
  kind_ = kind;
  query_id_ = recorder.NextQueryId();
  span_id_ = recorder.NextSpanId();
  start_us_ = recorder.NowMicros();
  CopyDetail(detail_, detail);
  saved_ = t_current_span;
  t_current_span = SpanLink{query_id_, span_id_};
}

BackgroundSpan::~BackgroundSpan() {
  if (!active_) return;
  t_current_span = saved_;
  SpanRecorder& recorder = SpanRecorder::Global();
  recorder.Record(kind_, span_id_, 0, query_id_, start_us_,
                  recorder.NowMicros(), detail_);
}

void RecordSpanSince(SpanKind kind, uint64_t start_us, const char* detail) {
  SpanLink parent = t_current_span;
  if (!parent.sampled()) return;
  SpanRecorder& recorder = SpanRecorder::Global();
  if (!recorder.enabled()) return;
  recorder.Record(kind, recorder.NextSpanId(), parent.span_id,
                  parent.query_id, start_us, recorder.NowMicros(), detail);
}

}  // namespace aggcache
