#ifndef AGGCACHE_OBS_METRICS_HISTORY_H_
#define AGGCACHE_OBS_METRICS_HISTORY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics_registry.h"

namespace aggcache {

/// Fixed-size ring of periodic MetricsRegistry snapshots, so a run with no
/// external scraper still has rate/derivative views: GET /metrics/history
/// returns the last `capacity` samples and any client can difference
/// adjacent ones. Samples reuse MetricsRegistry::SnapshotValues() — loose,
/// lock-free reads — and each carries a monotonic timestamp.
///
/// Start() spawns the sampler thread (idempotent); binaries that serve the
/// obs endpoint start it alongside ObsServer and Stop() it at shutdown.
/// Tests drive SampleOnce() directly and never need the thread.
/// AGGCACHE_METRICS_HISTORY=<period_ms>[,capacity=<n>] overrides the
/// defaults (1000 ms, 256 samples ≈ four minutes of 1 Hz history).
class MetricsHistory {
 public:
  struct Options {
    int64_t period_ms = 1000;
    size_t capacity = 256;
  };

  static MetricsHistory& Global();

  /// Options(), with AGGCACHE_METRICS_HISTORY applied when set.
  static Options OptionsFromEnv();

  /// Starts the background sampler; no-op when already running.
  void Start(const Options& options);
  /// Stops and joins the sampler; no-op when not running.
  void Stop();
  bool running() const { return running_.load(std::memory_order_relaxed); }

  /// Takes one snapshot now (also what the sampler thread calls).
  void SampleOnce();

  /// {"schema":"aggcache-metrics-history-v1","period_ms":...,
  ///  "samples":[{"t_ms":<steady-clock ms>,"values":{name:value|
  ///  {count,sum}}}]} — oldest first.
  std::string DumpJson() const;

  size_t size() const;
  void ResetForTest();

 private:
  struct Sample {
    int64_t t_ms = 0;
    std::map<std::string, MetricsRegistry::MetricSnapshot> values;
  };

  MetricsHistory() = default;

  std::atomic<bool> running_{false};
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;  // under mu_
  Options options_;              // under mu_
  std::deque<Sample> samples_;   // under mu_
  std::thread thread_;
};

}  // namespace aggcache

#endif  // AGGCACHE_OBS_METRICS_HISTORY_H_
