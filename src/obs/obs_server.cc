#include "obs/obs_server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#define AGGCACHE_OBS_HAS_SOCKETS 1
#endif

#include "common/logging.h"

namespace aggcache {

#ifdef AGGCACHE_OBS_HAS_SOCKETS

namespace {

/// Splits "host:port"; returns false on anything that does not parse to a
/// dotted-quad (or empty = loopback) host and a numeric port.
bool ParseAddress(const std::string& address, std::string* host,
                  uint16_t* port) {
  size_t colon = address.rfind(':');
  if (colon == std::string::npos) return false;
  *host = address.substr(0, colon);
  if (host->empty()) *host = "127.0.0.1";
  const std::string port_str = address.substr(colon + 1);
  if (port_str.empty()) return false;
  long value = 0;
  for (char c : port_str) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
    if (value > 65535) return false;
  }
  *port = static_cast<uint16_t>(value);
  return true;
}

std::string StatusLine(int code) {
  switch (code) {
    case 200:
      return "HTTP/1.1 200 OK\r\n";
    case 400:
      return "HTTP/1.1 400 Bad Request\r\n";
    case 404:
      return "HTTP/1.1 404 Not Found\r\n";
    case 405:
      return "HTTP/1.1 405 Method Not Allowed\r\n";
    case 503:
      return "HTTP/1.1 503 Service Unavailable\r\n";
    default:
      return "HTTP/1.1 500 Internal Server Error\r\n";
  }
}

void SendResponse(int fd, int code, const std::string& content_type,
                  const std::string& body, bool include_body = true) {
  std::string response = StatusLine(code);
  response += "Content-Type: " + content_type + "\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  // HEAD gets the same headers (including the Content-Length a GET would
  // produce) with the body elided.
  if (include_body) response += body;
  size_t sent = 0;
  while (sent < response.size()) {
    ssize_t n = ::send(fd, response.data() + sent, response.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return;  // Peer went away; nothing to salvage.
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

ObsServer::~ObsServer() { Stop(); }

void ObsServer::SetHandler(const std::string& path,
                           const std::string& content_type,
                           Handler handler) {
  AGGCACHE_CHECK(!running());
  endpoints_[path] = Endpoint{content_type, std::move(handler), nullptr};
}

void ObsServer::SetQueryHandler(const std::string& path,
                                const std::string& content_type,
                                QueryHandler handler) {
  AGGCACHE_CHECK(!running());
  endpoints_[path] = Endpoint{content_type, nullptr, std::move(handler)};
}

std::string ObsServer::IndexPage() const {
  // endpoints_ is a sorted map and frozen after Start(), so the index is
  // deterministic and needs no lock.
  std::string out = "aggcache observability endpoints\n";
  out += "  /healthz\n";
  for (const auto& [path, endpoint] : endpoints_) {
    out += "  " + path;
    if (endpoint.query_handler != nullptr) out += "?...";
    out += "\n";
  }
  return out;
}

void ObsServer::SetHealthProbe(HealthProbe probe) {
  AGGCACHE_CHECK(!running());
  health_probe_ = std::move(probe);
}

Status ObsServer::Start(const Options& options) {
  AGGCACHE_CHECK(!running());
  options_ = options;
  std::string host;
  uint16_t port = 0;
  if (!ParseAddress(options.address, &host, &port)) {
    return Status::InvalidArgument("obs server: bad address '" +
                                   options.address + "' (want host:port)");
  }
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("obs server: bad host '" + host + "'");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal("obs server: socket() failed: " +
                            std::string(std::strerror(errno)));
  }
  // SO_REUSEADDR forgives TIME_WAIT remnants of our own previous run (a
  // shell restarted within a minute must be able to rebind); it does NOT
  // allow binding over a live listener, so a port actively in use still
  // fails Start() loudly rather than silently shadowing another server.
  int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status status = Status::Internal("obs server: bind(" + options.address +
                                     ") failed: " +
                                     std::string(std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    Status status = Status::Internal("obs server: listen() failed: " +
                                     std::string(std::strerror(errno)));
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  size_t threads = std::max<size_t>(options_.handler_threads, 1);
  handler_threads_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void ObsServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Closing the listener unblocks accept(); shutdown() first for platforms
  // where close alone does not wake a blocked accept.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : handler_threads_) {
    if (t.joinable()) t.join();
  }
  handler_threads_.clear();
  std::lock_guard<std::mutex> lock(queue_mu_);
  for (int fd : pending_fds_) ::close(fd);
  pending_fds_.clear();
}

void ObsServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) return;
      if (errno == EINTR) continue;
      return;  // Listener died underneath us.
    }
    // A stalled client must not pin a handler thread forever.
    struct timeval timeout = {2, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      pending_fds_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void ObsServer::HandlerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !pending_fds_.empty() ||
               !running_.load(std::memory_order_acquire);
      });
      if (pending_fds_.empty()) return;  // Stopping and drained.
      fd = pending_fds_.front();
      pending_fds_.pop_front();
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void ObsServer::ServeConnection(int fd) {
  // Read until the end of the request line; ignore the header block (we
  // never use it) but cap total bytes so a hostile client cannot balloon.
  std::string request;
  char buf[1024];
  while (request.find("\r\n") == std::string::npos &&
         request.find('\n') == std::string::npos) {
    if (request.size() > options_.max_request_bytes) {
      SendResponse(fd, 400, "text/plain", "request too large\n");
      return;
    }
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;  // Timeout or hangup before a full request line.
    request.append(buf, static_cast<size_t>(n));
  }
  size_t eol = request.find_first_of("\r\n");
  std::string line = request.substr(0, eol);
  // Request line: METHOD SP PATH SP VERSION.
  size_t sp1 = line.find(' ');
  size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1 ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    SendResponse(fd, 400, "text/plain", "malformed request\n");
    return;
  }
  std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string query_string;
  size_t query = path.find('?');
  if (query != std::string::npos) {
    query_string = path.substr(query + 1);
    path.resize(query);
  }
  // HEAD is GET minus the body: same status, same headers, same handler
  // side effects (actions like /queries/cancel still fire).
  const bool head = method == "HEAD";
  if (method != "GET" && !head) {
    SendResponse(fd, 405, "text/plain", "method not allowed\n");
    return;
  }
  if (path == "/healthz") {
    if (health_probe_) {
      std::pair<int, std::string> health = health_probe_();
      SendResponse(fd, health.first, "text/plain", health.second, !head);
    } else {
      SendResponse(fd, 200, "text/plain", "ok\n", !head);
    }
    return;
  }
  if (path == "/") {
    SendResponse(fd, 200, "text/plain", IndexPage(), !head);
    return;
  }
  auto it = endpoints_.find(path);
  if (it == endpoints_.end()) {
    SendResponse(fd, 404, "text/plain", "not found\n");
    return;
  }
  if (it->second.query_handler != nullptr) {
    std::pair<int, std::string> result = it->second.query_handler(query_string);
    SendResponse(fd, result.first, it->second.content_type, result.second,
                 !head);
    return;
  }
  SendResponse(fd, 200, it->second.content_type, it->second.handler(), !head);
}

#else  // !AGGCACHE_OBS_HAS_SOCKETS

ObsServer::~ObsServer() {}
void ObsServer::SetHandler(const std::string&, const std::string&, Handler) {}
void ObsServer::SetQueryHandler(const std::string&, const std::string&,
                                QueryHandler) {}
std::string ObsServer::IndexPage() const { return std::string(); }
void ObsServer::SetHealthProbe(HealthProbe) {}
Status ObsServer::Start(const Options&) {
  return Status::Unimplemented("obs server requires POSIX sockets");
}
void ObsServer::Stop() {}
void ObsServer::AcceptLoop() {}
void ObsServer::HandlerLoop() {}
void ObsServer::ServeConnection(int) {}

#endif  // AGGCACHE_OBS_HAS_SOCKETS

}  // namespace aggcache
