#ifndef AGGCACHE_OBS_BUILD_INFO_H_
#define AGGCACHE_OBS_BUILD_INFO_H_

#include <string>

namespace aggcache {

/// Identity of this binary, for correlating metric shifts with deploys:
/// the aggcache_build_info{version,git_sha,build_type} info gauge and the
/// version/uptime lines in /healthz both read from here. Values are baked
/// in at compile time (CMake passes -DAGGCACHE_VERSION=... etc. to
/// build_info.cc only, so a new git sha relinks one object file, not the
/// world); "unknown" when the build system could not determine one.
struct BuildInfo {
  const char* version;
  const char* git_sha;
  const char* build_type;
};

const BuildInfo& GetBuildInfo();

/// Seconds since this process loaded (static-initialization time of the
/// obs library — early enough that /healthz uptime is honest).
double UptimeSeconds();

/// Registers the aggcache_build_info info gauge (value 1, labels from
/// GetBuildInfo()) in the global registry. Idempotent.
void RegisterBuildInfoMetric();

/// "aggcache <version> (<git_sha>, <build_type>)" — the shell banner and
/// healthz line.
std::string BuildInfoLine();

}  // namespace aggcache

#endif  // AGGCACHE_OBS_BUILD_INFO_H_
