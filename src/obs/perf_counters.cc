#include "obs/perf_counters.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#define AGGCACHE_HAS_PERF_EVENTS 1
#endif

#include "obs/engine_metrics.h"
#include "obs/query_trace.h"
#include "obs/span.h"

namespace aggcache {

namespace {

/// Process-wide degraded latch: 0 = unknown (no open attempted), 1 =
/// available, 2 = unavailable. Reads on the hot path are one relaxed load.
std::atomic<int> g_state{0};

/// Simulated open failure (0 = none). Checked before the real syscall so
/// tests exercise the exact EACCES/ENOSYS paths without touching
/// kernel.perf_event_paranoid.
std::atomic<int> g_simulated_errno{0};

/// Bumped by the test hooks; thread-local groups re-open (or re-fail)
/// when their generation is stale.
std::atomic<uint64_t> g_generation{1};

void LatchUnavailable(int err) {
  g_state.store(2, std::memory_order_relaxed);
  EngineMetrics::Get().perf_counters_unavailable->Set(1);
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "aggcache: hardware perf counters unavailable (%s); "
                 "per-query cycle/cache-miss telemetry disabled\n",
                 std::strerror(err));
  }
}

#ifdef AGGCACHE_HAS_PERF_EVENTS

/// The five sampled events, in group-read order. The group leader is
/// cycles; task clock comes from the group's time_running field rather
/// than a sixth (software) event, which keeps the whole sample one
/// read(2).
struct EventSpec {
  uint32_t type;
  uint64_t config;
};
constexpr EventSpec kEvents[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};
constexpr size_t kNumEvents = sizeof(kEvents) / sizeof(kEvents[0]);

int OpenEvent(const EventSpec& spec, int group_fd) {
  int simulated = g_simulated_errno.load(std::memory_order_relaxed);
  if (simulated != 0) {
    errno = simulated;
    return -1;
  }
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = 0;  // Counting from open; regions are read() deltas.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(::syscall(__NR_perf_event_open, &attr, /*pid=*/0,
                                    /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

/// One thread's counter group. Siblings that fail to open individually
/// (an emulated event on a VM, say) are skipped — their slot reads 0 —
/// while a failed LEADER open latches process-wide unavailability.
struct ThreadGroup {
  uint64_t generation = 0;
  int fds[kNumEvents] = {-1, -1, -1, -1};
  /// opened[i] true when kEvents[i] is present in the group read buffer.
  bool opened[kNumEvents] = {};

  ~ThreadGroup() { Close(); }

  void Close() {
    // Sibling fds first, leader last — each event stops counting when its
    // own fd closes.
    for (size_t i = kNumEvents; i-- > 0;) {
      if (fds[i] >= 0) ::close(fds[i]);
      fds[i] = -1;
      opened[i] = false;
    }
  }

  bool Open() {
    fds[0] = OpenEvent(kEvents[0], -1);
    if (fds[0] < 0) {
      LatchUnavailable(errno);
      return false;
    }
    opened[0] = true;
    for (size_t i = 1; i < kNumEvents; ++i) {
      // A sibling that fails (an event the host cannot count) is skipped;
      // its slot reads 0 instead of poisoning the whole group.
      fds[i] = OpenEvent(kEvents[i], fds[0]);
      opened[i] = fds[i] >= 0;
    }
    g_state.store(1, std::memory_order_relaxed);
    return true;
  }

  bool Ensure() {
    uint64_t current = g_generation.load(std::memory_order_relaxed);
    if (generation == current) return fds[0] >= 0;
    // Stale generation: retry (covers ResetForTest and
    // SimulateOpenFailureForTest).
    Close();
    generation = current;
    return Open();
  }

  PerfDelta ReadNow() {
    PerfDelta out;
    if (fds[0] < 0) return out;
    // read_format with PERF_FORMAT_GROUP:
    //   u64 nr; u64 time_enabled; u64 time_running; u64 values[nr];
    uint64_t buf[3 + kNumEvents] = {};
    ssize_t n = ::read(fds[0], buf, sizeof(buf));
    if (n < static_cast<ssize_t>(3 * sizeof(uint64_t))) return out;
    uint64_t nr = buf[0];
    uint64_t enabled = buf[1];
    uint64_t running = buf[2];
    // Multiplexing correction: with more groups than hardware counters the
    // kernel time-slices; scale counts to the full enabled window.
    double scale = 1.0;
    if (running > 0 && running < enabled) {
      scale = static_cast<double>(enabled) / static_cast<double>(running);
    }
    uint64_t values[kNumEvents] = {};
    size_t cursor = 0;
    for (size_t i = 0; i < kNumEvents && cursor < nr; ++i) {
      if (!opened[i]) continue;
      values[i] = static_cast<uint64_t>(
          static_cast<double>(buf[3 + cursor]) * scale);
      ++cursor;
    }
    out.cycles = values[0];
    out.instructions = values[1];
    out.llc_misses = values[2];
    out.branch_misses = values[3];
    out.task_clock_ns = running;
    out.valid = true;
    return out;
  }
};

ThreadGroup& LocalGroup() {
  thread_local ThreadGroup group;
  return group;
}

#endif  // AGGCACHE_HAS_PERF_EVENTS

}  // namespace

bool PerfCounters::Available() {
#ifdef AGGCACHE_HAS_PERF_EVENTS
  int state = g_state.load(std::memory_order_relaxed);
  if (state == 1) return true;
  if (state == 2) return false;
  return LocalGroup().Ensure();
#else
  LatchUnavailable(ENOSYS);
  return false;
#endif
}

PerfDelta PerfCounters::Read() {
#ifdef AGGCACHE_HAS_PERF_EVENTS
  if (g_state.load(std::memory_order_relaxed) == 2) return PerfDelta{};
  ThreadGroup& group = LocalGroup();
  if (!group.Ensure()) return PerfDelta{};
  return group.ReadNow();
#else
  LatchUnavailable(ENOSYS);
  return PerfDelta{};
#endif
}

PerfDelta PerfCounters::Delta(const PerfDelta& begin, const PerfDelta& end) {
  PerfDelta out;
  if (!begin.valid || !end.valid) return out;
  auto sub = [](uint64_t a, uint64_t b) { return a >= b ? a - b : 0; };
  out.cycles = sub(end.cycles, begin.cycles);
  out.instructions = sub(end.instructions, begin.instructions);
  out.llc_misses = sub(end.llc_misses, begin.llc_misses);
  out.branch_misses = sub(end.branch_misses, begin.branch_misses);
  out.task_clock_ns = sub(end.task_clock_ns, begin.task_clock_ns);
  out.valid = true;
  return out;
}

void PerfCounters::SimulateOpenFailureForTest(int err) {
  g_simulated_errno.store(err, std::memory_order_relaxed);
  g_state.store(0, std::memory_order_relaxed);
  g_generation.fetch_add(1, std::memory_order_relaxed);
}

void PerfCounters::ResetForTest() {
  g_simulated_errno.store(0, std::memory_order_relaxed);
  g_state.store(0, std::memory_order_relaxed);
  g_generation.fetch_add(1, std::memory_order_relaxed);
  EngineMetrics::Get().perf_counters_unavailable->Set(0);
}

bool PerfCounters::unavailable() {
  return g_state.load(std::memory_order_relaxed) == 2;
}

PerfPhaseRegion::PerfPhaseRegion(const char* phase, ScopedSpan* span)
    : phase_(phase) {
  // Sample only when someone will consume the delta: the thread-local
  // EXPLAIN trace, or a live (sampled + enabled) span. With neither, the
  // region costs two branches — the span-overhead gate's budget assumes
  // exactly this.
  bool trace_listening = TraceContext::Current() != nullptr;
  bool span_listening = span != nullptr && span->active();
  if (!trace_listening && !span_listening) return;
  begin_ = PerfCounters::Read();
  if (!begin_.valid) return;
  armed_ = true;
  span_ = span_listening ? span : nullptr;
}

PerfPhaseRegion::~PerfPhaseRegion() {
  if (!armed_) return;
  PerfDelta delta = PerfCounters::Delta(begin_, PerfCounters::Read());
  if (!delta.valid) return;
  if (QueryTrace* trace = TraceContext::Current()) {
    trace->perf_phases.push_back(QueryTrace::PhasePerf{phase_, delta});
  }
  if (span_ != nullptr) {
    span_->SetPerf(delta.cycles, delta.instructions, delta.llc_misses);
  }
}

}  // namespace aggcache
