#ifndef AGGCACHE_OBS_ENGINE_METRICS_H_
#define AGGCACHE_OBS_ENGINE_METRICS_H_

#include "obs/metrics_registry.h"

namespace aggcache {

/// The engine's metric handles, registered once in the global
/// MetricsRegistry on first use. Instrumented code reaches metrics through
/// EngineMetrics::Get() — after the one-time registration that call is a
/// magic-static read and every update is a single relaxed atomic, so no
/// metric touch adds a lock acquisition to the cache-hit fast path.
///
/// Invariant maintained by the cache manager (asserted by the stress and
/// fuzz harnesses): cache_hits + cache_misses == cache_lookups. Every
/// consulted lookup is counted exactly once as a hit or a miss; error
/// returns mid-execution count as neither (the lookup is not counted).
struct EngineMetrics {
  // Cache manager.
  Counter* cache_lookups;            ///< Cached-strategy cache consultations.
  Counter* cache_hits;               ///< Lookups served from an entry.
  Counter* cache_misses;             ///< Everything else (built, rebuilt,
                                     ///< rejected, snapshot fallback).
  Counter* cache_singleflight_waits; ///< Lookups that parked on a build.
  Counter* cache_evictions;          ///< Entries evicted by budget/profit.
  Counter* cache_rebuilds;           ///< Entry (re)builds from the mains.
  Counter* cache_admission_rejects;  ///< Unprofitable or starved lookups.
  Counter* cache_uncached_fallbacks; ///< Cached lookups answered uncached.
  Histogram* cache_build_us;         ///< Entry (re)build latency.
  Histogram* cache_main_comp_us;     ///< Main compensation latency.
  Histogram* cache_delta_comp_us;    ///< Delta compensation latency.

  // Per-entry cost/benefit ledger, aggregated across entries (the per-entry
  // breakdown lives in AggregateCacheManager::LedgerJson() — per-entry
  // Prometheus series would be unbounded cardinality).
  Histogram* entry_hit_us;           ///< End-to-end cache-hit serve latency.
  Counter* entry_saved_us;           ///< Σ max(0, main_exec - compensation).
  Counter* entry_comp_overrun_us;    ///< Σ max(0, compensation - main_exec).
  Counter* entry_delta_rows;         ///< Delta rows scanned by compensation.

  // Executor.
  Counter* exec_subjoins;            ///< ExecuteSubjoin calls.
  Counter* exec_rows_scanned;
  Counter* exec_rows_selected;
  Counter* exec_tuples_joined;
  Counter* exec_selection_batches;   ///< 1024-row selection kernel blocks.
  Counter* exec_code_joins;          ///< Join levels run in code space.
  Counter* exec_packed_groupings;    ///< Aggregations with packed u64 keys.
  Counter* exec_fallback_groupings;  ///< Aggregations on materialized keys.

  // Shared delta scans.
  Counter* sharedscan_leads;         ///< Cooperative scan sessions led.
  Counter* sharedscan_attaches;      ///< Attaches to an in-flight session.

  // Object-aware pruner + pushdown.
  Counter* prune_considered;
  Counter* pruned_empty;
  Counter* pruned_aging;
  Counter* pruned_tid_range;
  Counter* pushdown_predicates;      ///< MD-derived filters attached.

  // Merge daemon.
  Counter* merge_ticks;
  Counter* merge_attempts;
  Counter* merge_commits;
  Counter* merge_aborts;
  Counter* merge_backoff_ms;         ///< Total retry backoff requested.

  // Thread pool.
  Gauge* pool_queue_depth;
  Counter* pool_tasks;
  Histogram* pool_task_us;           ///< Worker task run time.

  // Durability: write-ahead log.
  Counter* wal_appends;              ///< Records appended to the WAL.
  Counter* wal_bytes;                ///< WAL bytes written (framed).
  Counter* wal_syncs;                ///< fdatasync calls (group commits).
  Histogram* wal_sync_us;            ///< fdatasync latency.

  // Durability: checkpoints.
  Counter* checkpoints;              ///< Checkpoint segments published.
  Counter* checkpoints_skipped;      ///< Attempts skipped (scopes active).
  Histogram* checkpoint_us;          ///< End-to-end checkpoint latency.

  // Resource governance (src/runtime/): admission control.
  Counter* admission_admitted;       ///< Queries granted a run slot.
  Counter* admission_queue_waits;    ///< Admissions that waited in queue.
  Counter* admission_rejects_timeout;///< Shed after queue_timeout_ms.
  Counter* admission_rejects_capacity;///< Shed at arrival (queue full).
  Gauge* admission_running;          ///< Queries currently holding a slot.
  Histogram* admission_wait_us;      ///< Queue wait latency (admits+sheds).

  // Resource governance: query aborts and memory accounting.
  Counter* query_cancellations;      ///< Cancel() token aborts.
  Counter* query_deadline_aborts;    ///< Deadline expiries at check points.
  Counter* query_mem_aborts;         ///< Refused memory charges.
  Gauge* mem_reserved_bytes;         ///< Process tracker current bytes.
  Gauge* mem_reserved_hwm_bytes;     ///< Process tracker high water.

  // Resource governance: degradation ladder.
  Counter* degraded_flips;           ///< Degraded-mode transitions.
  Gauge* degraded_mode;              ///< 1 while under memory pressure.
  Counter* mem_pressure_rejects;     ///< Cache builds refused by pressure.
  Counter* merge_pressure_yields;    ///< Merge-daemon ticks yielded.

  // Durability: recovery.
  Counter* recovery_replayed;        ///< WAL records replayed at startup.
  Counter* recovery_discarded_scopes;///< Uncommitted scopes rolled back.
  Counter* recovery_warm_admissions; ///< Cache entries re-admitted warm.
  Histogram* recovery_replay_us;     ///< WAL tail replay latency.

  // Live introspection (src/obs/active_queries, perf_counters, slow_log).
  Gauge* active_queries;             ///< Queries registered right now.
  Counter* query_registrations;      ///< Active-query registry entries ever.
  Counter* remote_cancellations;     ///< Cancels via registry/HTTP endpoint.
  Gauge* perf_counters_unavailable;  ///< 1 once perf_event_open was denied.
  Counter* slow_queries;             ///< Queries over AGGCACHE_SLOW_QUERY_MS.

  /// The process-wide handles (registered in MetricsRegistry::Global()).
  static const EngineMetrics& Get();
};

}  // namespace aggcache

#endif  // AGGCACHE_OBS_ENGINE_METRICS_H_
