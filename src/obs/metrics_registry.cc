#include "obs/metrics_registry.h"

#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"

namespace aggcache {

size_t Histogram::BucketIndex(uint64_t value) {
  if (value <= 1) return 0;
  // Smallest i with value <= 2^i is the bit width of value - 1.
  size_t index = static_cast<size_t>(std::bit_width(value - 1));
  return index < kNumBuckets - 1 ? index : kNumBuckets - 1;
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  AGGCACHE_CHECK_LT(index, kNumBuckets - 1) << "overflow bucket has no bound";
  return uint64_t{1} << index;
}

double Histogram::ValueAtQuantile(double q) const {
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = BucketCount(i);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    double before = cumulative;
    cumulative += static_cast<double>(counts[i]);
    if (cumulative < target) continue;
    // The +Inf bucket has no finite upper edge to interpolate toward;
    // report the last finite bound (the estimate is a lower bound there).
    if (i + 1 == kNumBuckets) return BucketUpperBound(kNumBuckets - 2);
    double lower = i == 0 ? 0.0 : static_cast<double>(BucketUpperBound(i - 1));
    double upper = static_cast<double>(BucketUpperBound(i));
    double fraction = (target - before) / static_cast<double>(counts[i]);
    if (fraction < 0.0) fraction = 0.0;
    if (fraction > 1.0) fraction = 1.0;
    return lower + fraction * (upper - lower);
  }
  return static_cast<double>(BucketUpperBound(kNumBuckets - 2));
}

void Histogram::Reset() {
  for (std::atomic<uint64_t>& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Metric& MetricsRegistry::GetOrCreate(const std::string& name,
                                                      const std::string& help,
                                                      Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    Metric metric;
    metric.kind = kind;
    metric.help = help;
    switch (kind) {
      case Kind::kCounter:
        metric.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        metric.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        metric.histogram = std::make_unique<Histogram>();
        break;
    }
    it = metrics_.emplace(name, std::move(metric)).first;
  }
  AGGCACHE_CHECK(it->second.kind == kind)
      << "metric '" << name << "' re-registered as a different kind";
  return it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  return GetOrCreate(name, help, Kind::kCounter).counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  return GetOrCreate(name, help, Kind::kGauge).gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  return GetOrCreate(name, help, Kind::kHistogram).histogram.get();
}

Gauge* MetricsRegistry::GetInfoGauge(
    const std::string& name, const std::string& help,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  Metric& metric = GetOrCreate(name, help, Kind::kGauge);
  std::lock_guard<std::mutex> lock(mu_);
  if (metric.labels.empty()) metric.labels = labels;
  return metric.gauge.get();
}

size_t MetricsRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

std::map<std::string, MetricsRegistry::MetricSnapshot>
MetricsRegistry::SnapshotValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, MetricSnapshot> snapshot;
  for (const auto& [name, metric] : metrics_) {
    MetricSnapshot value;
    value.kind = metric.kind;
    switch (metric.kind) {
      case Kind::kCounter:
        value.value = static_cast<int64_t>(metric.counter->Value());
        break;
      case Kind::kGauge:
        value.value = metric.gauge->Value();
        break;
      case Kind::kHistogram:
        value.count = metric.histogram->TotalCount();
        value.sum = metric.histogram->Sum();
        break;
    }
    snapshot.emplace(name, value);
  }
  return snapshot;
}

void MetricsRegistry::ResetAllForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, metric] : metrics_) {
    switch (metric.kind) {
      case Kind::kCounter:
        metric.counter->Reset();
        break;
      case Kind::kGauge:
        metric.gauge->Reset();
        break;
      case Kind::kHistogram:
        metric.histogram->Reset();
        break;
    }
  }
}

namespace {

const char* KindName(bool is_counter, bool is_gauge) {
  return is_counter ? "counter" : (is_gauge ? "gauge" : "histogram");
}

/// Minimal JSON string escaping — metric names and help texts are ASCII by
/// convention, but a dump must never emit malformed JSON.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// {k="v",...} for the Prometheus value line; "" when unlabeled. Label
/// value escaping (backslash, quote, newline) matches the exposition
/// format's rules, which JsonEscape's subset covers.
std::string PromLabelBlock(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    out += JsonEscape(value);
    out += '"';
  }
  out += '}';
  return out;
}

std::string JsonLabelObject(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(key);
    out += "\":\"";
    out += JsonEscape(value);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string MetricsRegistry::Render(Format format) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  if (format == Format::kPrometheus) {
    for (const auto& [name, metric] : metrics_) {
      out << "# HELP " << name << " " << metric.help << "\n";
      out << "# TYPE " << name << " "
          << KindName(metric.kind == Kind::kCounter,
                      metric.kind == Kind::kGauge)
          << "\n";
      switch (metric.kind) {
        case Kind::kCounter:
          out << name << " " << metric.counter->Value() << "\n";
          break;
        case Kind::kGauge:
          out << name << PromLabelBlock(metric.labels) << " "
              << metric.gauge->Value() << "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *metric.histogram;
          uint64_t cumulative = 0;
          for (size_t i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
            cumulative += h.BucketCount(i);
            out << name << "_bucket{le=\"" << Histogram::BucketUpperBound(i)
                << "\"} " << cumulative << "\n";
          }
          cumulative += h.BucketCount(Histogram::kNumBuckets - 1);
          out << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
          out << name << "_sum " << h.Sum() << "\n";
          out << name << "_count " << h.TotalCount() << "\n";
          break;
        }
      }
    }
    return out.str();
  }

  out << "{";
  bool first = true;
  for (const auto& [name, metric] : metrics_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":{\"type\":\""
        << KindName(metric.kind == Kind::kCounter,
                    metric.kind == Kind::kGauge)
        << "\",";
    switch (metric.kind) {
      case Kind::kCounter:
        out << "\"value\":" << metric.counter->Value();
        break;
      case Kind::kGauge:
        if (!metric.labels.empty()) {
          out << "\"labels\":" << JsonLabelObject(metric.labels) << ",";
        }
        out << "\"value\":" << metric.gauge->Value();
        break;
      case Kind::kHistogram: {
        const Histogram& h = *metric.histogram;
        out << "\"count\":" << h.TotalCount() << ",\"sum\":" << h.Sum()
            << ",\"buckets\":[";
        uint64_t cumulative = 0;
        for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
          cumulative += h.BucketCount(i);
          if (i > 0) out << ",";
          out << "{\"le\":";
          if (i + 1 < Histogram::kNumBuckets) {
            out << "\"" << Histogram::BucketUpperBound(i) << "\"";
          } else {
            out << "\"+Inf\"";
          }
          out << ",\"count\":" << cumulative << "}";
        }
        out << "]";
        break;
      }
    }
    out << "}";
  }
  out << "}";
  return out.str();
}

// --- Env-triggered periodic dumper ----------------------------------------

namespace {

struct DumperState {
  std::mutex mu;
  std::condition_variable cv;
  std::thread thread;
  bool running = false;
  bool stop_requested = false;
  bool starts_blocked = false;
  std::chrono::milliseconds period{1000};
  MetricsRegistry::Format format = MetricsRegistry::Format::kPrometheus;
  bool to_stdout = false;
};

DumperState& Dumper() {
  static DumperState* state = new DumperState();
  return *state;
}

void EmitDump(const DumperState& state) {
  std::string dump = MetricsRegistry::Global().Render(state.format);
  std::FILE* stream = state.to_stdout ? stdout : stderr;
  std::fprintf(stream, "--- aggcache metrics dump ---\n%s", dump.c_str());
  if (!dump.empty() && dump.back() != '\n') std::fprintf(stream, "\n");
  std::fflush(stream);
}

/// Parses AGGCACHE_METRICS_DUMP; returns false when unset or disabled.
/// Accepts a bare period ("250") or key=value pairs in the style of
/// AGGCACHE_MERGE_DAEMON.
bool ParseDumpEnv(DumperState* state) {
  const char* env = std::getenv("AGGCACHE_METRICS_DUMP");
  if (env == nullptr) return false;
  std::string spec(env);
  if (spec.empty() || spec == "off" || spec == "0") return false;

  char* end = nullptr;
  long bare = std::strtol(spec.c_str(), &end, 10);
  if (end != spec.c_str() && *end == '\0' && bare > 0) {
    state->period = std::chrono::milliseconds(bare);
    return true;
  }

  for (size_t start = 0; start <= spec.size();) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    std::string part = spec.substr(start, comma - start);
    start = comma + 1;
    size_t eq = part.find('=');
    if (eq == std::string::npos) continue;
    std::string key = part.substr(0, eq);
    std::string value = part.substr(eq + 1);
    if (key == "period_ms") {
      long parsed = std::strtol(value.c_str(), nullptr, 10);
      if (parsed > 0) state->period = std::chrono::milliseconds(parsed);
    } else if (key == "format") {
      state->format = value == "json" ? MetricsRegistry::Format::kJson
                                      : MetricsRegistry::Format::kPrometheus;
    } else if (key == "stream") {
      state->to_stdout = value == "stdout";
    }
  }
  return true;
}

}  // namespace

void MetricsDumper::BlockStarts(bool blocked) {
  DumperState& state = Dumper();
  std::lock_guard<std::mutex> lock(state.mu);
  state.starts_blocked = blocked;
}

bool MetricsDumper::MaybeStartFromEnv() {
  DumperState& state = Dumper();
  std::unique_lock<std::mutex> lock(state.mu);
  AGGCACHE_CHECK(!state.starts_blocked)
      << "metrics dumper started during recovery";
  if (state.running) return true;
  if (!ParseDumpEnv(&state)) return false;
  state.stop_requested = false;
  state.running = true;
  state.thread = std::thread([&state] {
    std::unique_lock<std::mutex> thread_lock(state.mu);
    while (!state.cv.wait_for(thread_lock, state.period,
                              [&state] { return state.stop_requested; })) {
      thread_lock.unlock();
      EmitDump(state);
      thread_lock.lock();
    }
  });
  return true;
}

void MetricsDumper::Stop() {
  DumperState& state = Dumper();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.running) return;
    state.stop_requested = true;
  }
  state.cv.notify_all();
  state.thread.join();
  std::lock_guard<std::mutex> lock(state.mu);
  state.running = false;
  EmitDump(state);
}

}  // namespace aggcache
