#include "obs/trace_recorder.h"

#include <utility>

#include "common/string_util.h"
#include "storage/dictionary.h"

namespace aggcache {

namespace {

/// "Item[g0/delta].tid_Header" — table, the partition the combination
/// picked for it, and the tid column the MD binds.
std::string TidColumnLabel(const BoundQuery& bound,
                           const SubjoinCombination& combination,
                           size_t table_index, size_t column_index) {
  const Table& table = *bound.tables[table_index];
  const PartitionRef& ref = combination[table_index];
  return StrFormat("%s[g%u/%s].%s", table.name().c_str(), ref.group,
                   PartitionKindToString(ref.kind),
                   table.schema().columns[column_index].name.c_str());
}

SubjoinTrace::TidRange MakeTidRange(const BoundQuery& bound,
                                    const SubjoinCombination& combination,
                                    size_t table_index, size_t column_index) {
  SubjoinTrace::TidRange range;
  range.column =
      TidColumnLabel(bound, combination, table_index, column_index);
  const Partition& partition =
      ResolvePartition(*bound.tables[table_index], combination[table_index]);
  if (partition.empty()) {
    range.empty = true;
    return range;
  }
  const Dictionary& dict = partition.column(column_index).dictionary();
  range.min = dict.min_value().AsInt64();
  range.max = dict.max_value().AsInt64();
  return range;
}

}  // namespace

SubjoinTrace MakeSubjoinTrace(
    const BoundQuery& bound, const std::vector<MdBinding>& mds,
    const SubjoinCombination& combination, std::string phase,
    const PruneDecision& decision,
    const std::vector<FilterPredicate>& pushdown_filters) {
  SubjoinTrace trace;
  trace.phase = std::move(phase);
  trace.combination = CombinationToString(combination);
  if (decision.pruned) {
    trace.verdict = SubjoinTrace::Verdict::kPruned;
    trace.prune_reason = decision.reason;
  } else if (!pushdown_filters.empty()) {
    trace.verdict = SubjoinTrace::Verdict::kPushdown;
  } else {
    trace.verdict = SubjoinTrace::Verdict::kExecuted;
  }
  trace.tid_ranges.reserve(mds.size() * 2);
  for (const MdBinding& md : mds) {
    trace.tid_ranges.push_back(
        MakeTidRange(bound, combination, md.left_table, md.left_tid_column));
    trace.tid_ranges.push_back(
        MakeTidRange(bound, combination, md.right_table, md.right_tid_column));
  }
  trace.pushdown_filters.reserve(pushdown_filters.size());
  for (const FilterPredicate& filter : pushdown_filters) {
    trace.pushdown_filters.push_back(
        bound.tables[filter.table_index]->name() + "." + filter.ToString());
  }
  return trace;
}

void RecordSubjoin(const BoundQuery& bound, const std::vector<MdBinding>& mds,
                   const SubjoinCombination& combination, std::string phase,
                   const PruneDecision& decision,
                   const std::vector<FilterPredicate>& pushdown_filters) {
  QueryTrace* trace = TraceContext::Current();
  if (trace == nullptr) return;
  trace->subjoins.push_back(MakeSubjoinTrace(bound, mds, combination,
                                             std::move(phase), decision,
                                             pushdown_filters));
}

void RecordUncachedSubjoins(const BoundQuery& bound,
                            const std::vector<SubjoinCombination>& combos) {
  QueryTrace* trace = TraceContext::Current();
  if (trace == nullptr) return;
  std::vector<MdBinding> mds = ResolveMds(bound);
  for (const SubjoinCombination& combo : combos) {
    trace->subjoins.push_back(
        MakeSubjoinTrace(bound, mds, combo, "uncached", PruneDecision{}, {}));
  }
}

}  // namespace aggcache
