#include "obs/metrics_history.h"

#include <chrono>
#include <cstdlib>

#include "common/string_util.h"

namespace aggcache {

namespace {

int64_t SteadyMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

MetricsHistory& MetricsHistory::Global() {
  static MetricsHistory* history = new MetricsHistory();
  return *history;
}

MetricsHistory::Options MetricsHistory::OptionsFromEnv() {
  Options options;
  const char* env = std::getenv("AGGCACHE_METRICS_HISTORY");
  if (env == nullptr || *env == '\0') return options;
  // Spec: "<period_ms>[,capacity=<n>]".
  std::string spec(env);
  size_t comma = spec.find(',');
  std::string head = spec.substr(0, comma);
  char* end = nullptr;
  long period = std::strtol(head.c_str(), &end, 10);
  if (end != head.c_str() && period > 0) options.period_ms = period;
  while (comma != std::string::npos) {
    size_t start = comma + 1;
    comma = spec.find(',', start);
    std::string token = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    size_t eq = token.find('=');
    if (eq == std::string::npos) continue;
    if (token.substr(0, eq) == "capacity") {
      long n = std::strtol(token.c_str() + eq + 1, nullptr, 10);
      if (n > 0) options.capacity = static_cast<size_t>(n);
    }
  }
  return options;
}

void MetricsHistory::Start(const Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_.load(std::memory_order_relaxed)) return;
  options_ = options;
  stop_requested_ = false;
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> thread_lock(mu_);
    std::chrono::milliseconds period(options_.period_ms);
    while (!cv_.wait_for(thread_lock, period,
                         [this] { return stop_requested_; })) {
      thread_lock.unlock();
      SampleOnce();
      thread_lock.lock();
    }
  });
}

void MetricsHistory::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_.load(std::memory_order_relaxed)) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_.store(false, std::memory_order_relaxed);
}

void MetricsHistory::SampleOnce() {
  Sample sample;
  sample.t_ms = SteadyMillis();
  sample.values = MetricsRegistry::Global().SnapshotValues();
  std::lock_guard<std::mutex> lock(mu_);
  samples_.push_back(std::move(sample));
  while (samples_.size() > options_.capacity) samples_.pop_front();
}

std::string MetricsHistory::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = StrFormat(
      "{\"schema\":\"aggcache-metrics-history-v1\",\"period_ms\":%lld,"
      "\"capacity\":%zu,\"samples\":[",
      static_cast<long long>(options_.period_ms), options_.capacity);
  bool first_sample = true;
  for (const Sample& sample : samples_) {
    if (!first_sample) out += ',';
    first_sample = false;
    out += StrFormat("{\"t_ms\":%lld,\"values\":{",
                     static_cast<long long>(sample.t_ms));
    bool first_value = true;
    for (const auto& [name, snapshot] : sample.values) {
      if (!first_value) out += ',';
      first_value = false;
      out += '"';
      out += name;  // Metric names are exposition-safe by construction.
      out += "\":";
      if (snapshot.kind == MetricsRegistry::Kind::kHistogram) {
        out += StrFormat("{\"count\":%llu,\"sum\":%llu}",
                         static_cast<unsigned long long>(snapshot.count),
                         static_cast<unsigned long long>(snapshot.sum));
      } else {
        out += std::to_string(snapshot.value);
      }
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

size_t MetricsHistory::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

void MetricsHistory::ResetForTest() {
  Stop();
  std::lock_guard<std::mutex> lock(mu_);
  samples_.clear();
  options_ = Options{};
}

}  // namespace aggcache
