#ifndef AGGCACHE_OBS_TRACE_RECORDER_H_
#define AGGCACHE_OBS_TRACE_RECORDER_H_

#include <string>
#include <vector>

#include "obs/query_trace.h"
#include "objectaware/join_pruning.h"
#include "objectaware/matching_dependency.h"
#include "query/executor.h"
#include "query/predicate.h"
#include "query/subjoin.h"

namespace aggcache {

/// Builds the trace event for one subjoin combination: combination string,
/// verdict (pruned when `decision` fired, pushdown when `pushdown_filters`
/// is non-empty, executed otherwise), and the MD tid ranges the verdict was
/// decided on (dictionary min/max of each MD tid column in the partitions
/// this combination picked). Cheap relative to a subjoin, but only paid
/// when a trace is installed — callers gate on TraceContext::Current().
SubjoinTrace MakeSubjoinTrace(
    const BoundQuery& bound, const std::vector<MdBinding>& mds,
    const SubjoinCombination& combination, std::string phase,
    const PruneDecision& decision,
    const std::vector<FilterPredicate>& pushdown_filters);

/// Appends the event to the calling thread's active trace; no-op without
/// one. Must run on the orchestration thread (trace updates are unlocked).
void RecordSubjoin(const BoundQuery& bound, const std::vector<MdBinding>& mds,
                   const SubjoinCombination& combination, std::string phase,
                   const PruneDecision& decision,
                   const std::vector<FilterPredicate>& pushdown_filters);

/// Records every combination of an uncached union as an executed event,
/// resolving the query's MDs for tid ranges. No-op without an active trace
/// (the resolve is skipped too). Used by Executor::ExecuteUncachedBound,
/// which must not depend on the objectaware module directly.
void RecordUncachedSubjoins(const BoundQuery& bound,
                            const std::vector<SubjoinCombination>& combos);

}  // namespace aggcache

#endif  // AGGCACHE_OBS_TRACE_RECORDER_H_
