#ifndef AGGCACHE_OBS_QUERY_TRACE_H_
#define AGGCACHE_OBS_QUERY_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/perf_counters.h"

namespace aggcache {

/// One subjoin-level span of a traced execution: the combination, which
/// phase emitted it, the pruning verdict with its reason, the MD tid ranges
/// the verdict was decided on, and any pushed-down predicates. Events are
/// recorded on the orchestration thread in enumeration order — never inside
/// pool workers — so a trace is deterministic at any thread count.
struct SubjoinTrace {
  /// The three-way outcome for a combination: executed as-is, executed with
  /// MD-derived pushdown predicates (Section 5.3), or pruned (Eq. 5 and
  /// friends). kPushdown and kExecuted both reach the executor.
  enum class Verdict : uint8_t { kExecuted, kPushdown, kPruned };

  /// Which code path emitted the event: "build" (entry materialization),
  /// "delta-compensation", "main-correction" (negative-delta correction
  /// joins), or "uncached".
  std::string phase;
  /// CombinationToString rendering, e.g. "[g0/main, g0/delta]".
  std::string combination;
  Verdict verdict = Verdict::kExecuted;
  /// The pruning rule that fired ("empty-partition", "aging-group",
  /// "tid-range"); empty unless pruned.
  std::string prune_reason;

  /// Dictionary min/max of one MD tid column in the partition this
  /// combination picked, e.g. column "Item[g0/delta].tid_Header". Two
  /// entries per MD-covered join edge (both sides).
  struct TidRange {
    std::string column;
    bool empty = false;  ///< Partition has no rows; min/max are undefined.
    int64_t min = 0;
    int64_t max = 0;
  };
  std::vector<TidRange> tid_ranges;

  /// Rendered pushdown predicates attached to this subjoin.
  std::vector<std::string> pushdown_filters;
};

const char* VerdictToString(SubjoinTrace::Verdict verdict);

/// A structured record of one cache-manager execution: lookup outcome,
/// snapshot, per-phase timings, and every subjoin decision. Filled through
/// the thread-local TraceContext; rendered by EXPLAIN AGGREGATE as text or
/// JSON.
struct QueryTrace {
  /// The statement being explained (SQL text, or the canonical cache key
  /// when executed through the C++ API).
  std::string statement;
  std::string strategy;
  bool use_pushdown = false;
  uint64_t snapshot_tid = 0;
  /// "hit", "miss", "rebuilt", "uncached", "not-cacheable",
  /// "admission-rejected", or "snapshot-fallback".
  std::string cache_outcome;

  double build_ms = 0.0;       ///< Entry (re)build time, on miss/rebuild.
  double main_comp_ms = 0.0;   ///< Main compensation time.
  double delta_comp_ms = 0.0;  ///< Delta compensation time.
  double total_ms = 0.0;       ///< End-to-end wall time.

  // Governance: how the run interacted with admission control and memory
  // accounting — these reconcile with the aggcache_admission_* counters.
  uint64_t admission_wait_us = 0;  ///< Time spent in the admission gate.
  uint64_t mem_peak_bytes = 0;     ///< Query-context memory high water.
  std::string abort_cause;         ///< QueryAbortReason name; empty if none.

  // Hardware counters (orchestration thread only). perf_available stays
  // false when perf_event_open is denied, and renders then omit every
  // counter field — absent, never zero.
  bool perf_available = false;
  PerfDelta perf_total;  ///< Whole-execution delta.
  /// One delta per measured phase, in execution order; `phase` names have
  /// static storage duration (span-kind strings).
  struct PhasePerf {
    const char* phase;
    PerfDelta delta;
  };
  std::vector<PhasePerf> perf_phases;

  std::vector<SubjoinTrace> subjoins;

  size_t CountVerdict(SubjoinTrace::Verdict verdict) const;

  /// Human-readable rendering (the default EXPLAIN AGGREGATE output).
  std::string ToText() const;
  /// Single-line JSON rendering (EXPLAIN AGGREGATE JSON).
  std::string ToJson() const;
};

/// RAII installer of the calling thread's active trace. The engine's
/// orchestration paths check TraceContext::Current() — a thread-local read,
/// nullptr when tracing is off — and record into it when installed. Scopes
/// nest (the previous trace is restored on destruction). Pool workers never
/// see the caller's trace: recording happens only on the thread that owns
/// the scope, which is what keeps trace updates race-free without locks.
class TraceContext {
 public:
  explicit TraceContext(QueryTrace* trace);
  ~TraceContext();

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// The calling thread's active trace, or nullptr.
  static QueryTrace* Current();

 private:
  QueryTrace* prev_;
};

}  // namespace aggcache

#endif  // AGGCACHE_OBS_QUERY_TRACE_H_
