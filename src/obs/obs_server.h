#ifndef AGGCACHE_OBS_OBS_SERVER_H_
#define AGGCACHE_OBS_OBS_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace aggcache {

/// A minimal GET/HEAD-only HTTP/1.1 observability server: one blocking
/// accept thread feeding a small handler pool, no dependencies beyond POSIX
/// sockets. This is deliberately NOT a general web server — it serves a
/// handful of registered read-only endpoints (/metrics, /metrics.json,
/// /flight, /spans, /queries, /slowlog, /healthz, ...) to curl and
/// Prometheus scrapers, closes every connection after one response, and
/// rejects anything else (405 non-GET/HEAD, 404 unknown path, 400 malformed
/// request line). HEAD runs the handler and returns the headers only, so
/// probes can check liveness/size without the body. GET / lists every
/// registered endpoint as a plain-text index.
///
/// Handlers run on the pool threads and may take locks (they call
/// MetricsRegistry::Render, FlightRecorder::DumpJson, ...), so the accept
/// thread never blocks behind a slow render. Stop() is idempotent, joins
/// every thread and closes the listener; the owner (sql_shell) orders it
/// before Database teardown so no handler can observe a dying engine.
///
/// On non-POSIX builds Start() returns Unimplemented and the server is
/// inert.
class ObsServer {
 public:
  struct Options {
    /// "host:port" (port 0 picks an ephemeral port, see port()).
    std::string address = "127.0.0.1:0";
    size_t handler_threads = 2;
    /// Request-line cap; longer requests get 400 and the boot.
    size_t max_request_bytes = 4096;
  };

  /// One registered endpoint: exact path match, body produced per request.
  using Handler = std::function<std::string()>;
  /// Parameterized endpoint: receives the raw query string (text after '?',
  /// empty when absent) and picks its own status code. Used by actions such
  /// as /queries/cancel?id=N that must distinguish success from not-found.
  using QueryHandler =
      std::function<std::pair<int, std::string>(const std::string& query)>;
  /// Health probe: returns {http status, body}. Installed on /healthz.
  using HealthProbe = std::function<std::pair<int, std::string>()>;

  ObsServer() = default;
  ~ObsServer();
  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

  /// Registers `handler` for GET `path` (exact match, e.g. "/metrics").
  /// Must be called before Start().
  void SetHandler(const std::string& path, const std::string& content_type,
                  Handler handler);

  /// Registers a query-string-aware handler for GET `path`. The handler
  /// returns {status, body}; the query string is passed through verbatim.
  /// Must be called before Start().
  void SetQueryHandler(const std::string& path,
                       const std::string& content_type,
                       QueryHandler handler);

  /// Installs the /healthz probe (text/plain; the probe picks the status
  /// code — 200 healthy, 503 while restoring/degraded/draining).
  void SetHealthProbe(HealthProbe probe);

  /// Binds, listens, and spins up the accept + handler threads. Fails
  /// loudly (kInvalidArgument / kInternal) on a bad address or a port
  /// already in use — a silently dead observability port is worse than a
  /// startup error.
  Status Start(const Options& options);

  /// The bound port (after Start; useful with port 0).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Shuts the listener, drains the queue, joins all threads. Idempotent.
  void Stop();

 private:
  struct Endpoint {
    std::string content_type;
    Handler handler;
    QueryHandler query_handler;  ///< Set for parameterized endpoints.
  };

  void AcceptLoop();
  void HandlerLoop();
  void ServeConnection(int fd);
  std::string IndexPage() const;

  Options options_;
  std::map<std::string, Endpoint> endpoints_;
  HealthProbe health_probe_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::vector<std::thread> handler_threads_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_fds_;
};

}  // namespace aggcache

#endif  // AGGCACHE_OBS_OBS_SERVER_H_
