#ifndef AGGCACHE_OBS_SPAN_H_
#define AGGCACHE_OBS_SPAN_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace aggcache {

/// Span taxonomy: every timed region a query (or a background job) passes
/// through. Where the flight recorder answers "what was the engine doing",
/// spans answer "where did *this* query's latency go" — each span carries a
/// parent id, so a dump reconstructs the full causal tree: query root →
/// admission wait → lookup → build/compensation → individual subjoin tasks,
/// plus root spans for the background machinery (merges, checkpoints, WAL
/// group-commit syncs, recovery replay). Kept in one enum so the name
/// table, DESIGN.md §7 and the golden schema test stay trivially in sync.
enum class SpanKind : uint8_t {
  kQuery = 0,          ///< Root span: one cache-manager Execute() call.
  kAdmissionWait,      ///< Waiting on the admission controller.
  kCacheLookup,        ///< Bind + shard probe + entry resolution.
  kSingleFlightWait,   ///< Blocked on another thread's in-flight build.
  kEntryBuild,         ///< Main-partition aggregate build (cache miss).
  kMainCorrection,     ///< Visibility correction of the cached main image.
  kDeltaCompensation,  ///< Delta-side compensation subjoins.
  kUncachedExec,       ///< Full recompute (uncached / fallback path).
  kSubjoinTask,        ///< One parallel subjoin task (worker thread).
  kSharedScanLead,     ///< Leading a shared delta scan.
  kSharedScanAttach,   ///< Attached as a follower to a shared scan.
  kMerge,              ///< Merge-daemon delta merge (background root).
  kCheckpoint,         ///< Checkpoint write (background root).
  kWalSync,            ///< WAL group-commit fdatasync (background root).
  kRecoveryReplay,     ///< WAL replay during restart (background root).
};

/// Span-kind name used in JSON dumps (stable contract, golden-tested).
const char* SpanKindToString(SpanKind kind);

/// Cross-thread parent handle: enough to reconstruct "this work belongs to
/// that query, under that span" on a worker thread. A default-constructed
/// link is unsampled and makes every span constructed from it a no-op, so
/// fan-out sites capture one unconditionally (same discipline as the
/// QueryContext* they already thread through ParallelFor).
struct SpanLink {
  uint64_t query_id = 0;
  uint64_t span_id = 0;
  bool sampled() const { return query_id != 0; }
};

/// A bounded, lock-free span recorder: the flight recorder's tracing twin.
/// Same per-thread leased segments, same seq-publication/wraparound
/// discipline (unpublish → relaxed payload stores → release publish;
/// harvesters discard torn slots), so recording one finished span costs a
/// handful of relaxed atomics plus two steady_clock reads — well under the
/// ≲50 ns/span budget the hot paths can absorb. Wraparound keeps the recent
/// past; spans are only *lost* (counted) when more threads record than
/// there are segments.
///
/// Spans are written once, at END: the RAII wrappers below hold the start
/// timestamp and ids on the stack and publish a single slot on destruction,
/// so an unfinished span costs nothing and can never tear.
///
/// Disabled (the default — AGGCACHE_SPANS unset) the whole layer is one
/// relaxed load per would-be span. `sample=N` records every Nth query's
/// tree; background spans ignore sampling (they are rare and load-bearing).
class SpanRecorder {
 public:
  struct Options {
    /// Spans per thread segment; rounded up to a power of two.
    size_t spans_per_segment = 4096;
    /// Maximum simultaneously-recording threads.
    size_t max_segments = 64;
    bool enabled = false;
    /// Record every Nth query tree (1 = every query).
    uint64_t sample_every = 1;
  };

  explicit SpanRecorder(Options options);
  ~SpanRecorder();
  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// The process-wide recorder, configured from AGGCACHE_SPANS
  /// ("off" | "on" | "on,sample=16" | "sample=16,spans=8192,threads=32")
  /// on first use and intentionally leaked so worker threads may record
  /// during static teardown. The AGGCACHE_CHECK failure hook (owned by the
  /// flight recorder) dumps this recorder too when it is enabled.
  static SpanRecorder& Global();

  /// Records one finished span. Timestamps are microseconds on the
  /// recorder's own clock (see NowMicros()); `detail` is truncated to
  /// 15 bytes. The trailing hardware-counter deltas are optional (0 = not
  /// measured) — PerfPhaseRegion attaches them to phase spans when the
  /// host can read perf counters.
  void Record(SpanKind kind, uint64_t span_id, uint64_t parent_id,
              uint64_t query_id, uint64_t start_us, uint64_t end_us,
              const char* detail = nullptr, uint64_t cycles = 0,
              uint64_t instructions = 0, uint64_t llc_misses = 0);

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  uint64_t sample_every() const { return options_.sample_every; }

  /// Microseconds since recorder construction, on the precise monotonic
  /// clock (spans measure durations, so unlike flight events they cannot
  /// use the coarse jiffy clock).
  uint64_t NowMicros() const;

  /// Process-unique ids. Query ids double as Chrome-trace "pid" lanes, so
  /// background roots draw from the same counter as query roots.
  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  uint64_t NextQueryId() {
    return next_query_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Sampling tick for query roots: true when this query's tree should be
  /// recorded.
  bool SampleTick();

  /// Spans dropped because every segment was leased by another thread.
  uint64_t lost_spans() const {
    return lost_.load(std::memory_order_relaxed);
  }
  /// Spans successfully recorded (including ones since overwritten).
  uint64_t recorded_spans() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

  /// One harvested span, already validated (sequence stable across the
  /// payload read).
  struct Span {
    uint64_t seq = 0;
    uint64_t start_us = 0;  ///< microseconds since recorder construction
    uint64_t dur_us = 0;
    uint32_t thread = 0;
    SpanKind kind = SpanKind::kQuery;
    uint64_t span_id = 0;
    uint64_t parent_id = 0;  ///< 0 for roots
    uint64_t query_id = 0;   ///< 0 only for manually recorded orphans
    char detail[16] = {};
    /// Hardware-counter deltas for the span's region; all zero when the
    /// region was not measured (counters unavailable, or no consumer).
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t llc_misses = 0;
  };

  /// Harvests up to `max_spans` of the most recent spans, oldest first
  /// (global sequence order).
  std::vector<Span> Collect(size_t max_spans = SIZE_MAX) const;

  /// Renders the last `max_spans` spans as a Chrome-trace / Perfetto
  /// loadable JSON object:
  ///   {"schema":"aggcache-spans-v1","recorded":N,"lost":N,
  ///    "displayTimeUnit":"ms","traceEvents":[
  ///      {"name":"query","cat":"aggcache","ph":"X","ts":..,"dur":..,
  ///       "pid":<query id>,"tid":<thread>,
  ///       "args":{"id":..,"parent":..,"detail":".."}}, ...]}
  std::string DumpJson(size_t max_spans = 8192) const;

  /// Writes DumpJson(max_spans) to stderr with a banner. Safe to call from
  /// the CHECK-failure path (allocates, so not async-signal-safe).
  void DumpToStderr(size_t max_spans = 8192) const;

  /// Number of segments currently leased (tests).
  size_t active_segments() const;

 private:
  struct Slot;
  struct Segment;

  Segment* LeaseSegment();
  void ReleaseSegment(Segment* segment);

  friend struct SpanThreadLease;

  Options options_;
  /// Process-unique, never reused; thread-local leases key on this (see
  /// FlightRecorder::instance_id_ for the rationale).
  const uint64_t instance_id_;
  uint64_t t0_us_ = 0;
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<uint64_t> lost_{0};
  std::atomic<uint64_t> next_span_id_{0};
  std::atomic<uint64_t> next_query_id_{0};
  std::atomic<uint64_t> sample_tick_{0};
  std::atomic<uint32_t> next_thread_id_{0};

  mutable std::mutex segments_mu_;  ///< Lease/release + dump only.
  std::vector<std::unique_ptr<Segment>> segments_;
  std::vector<Segment*> free_segments_;
};

/// The innermost active span on this thread, or an unsampled link. Capture
/// this before a ParallelFor fan-out and hand it to the worker-side
/// ScopedSpan, exactly as QueryContext::Current() is captured for
/// ScopedQueryContext.
SpanLink CurrentSpanLink();

/// RAII child span: begins at construction, publishes one slot at
/// destruction. The thread-current link is saved/restored around the
/// span's lifetime so nested spans chain correctly. Both constructors are
/// no-ops (a relaxed load) when the recorder is disabled or the parent is
/// unsampled.
class ScopedSpan {
 public:
  /// Child of the thread-current span (no-op when there is none).
  explicit ScopedSpan(SpanKind kind, const char* detail = nullptr);
  /// Cross-thread child of `parent` — the ParallelFor fan-out form.
  ScopedSpan(SpanKind kind, const SpanLink& parent,
             const char* detail = nullptr);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return active_; }
  SpanLink link() const { return SpanLink{query_id_, span_id_}; }

  /// Attaches hardware-counter deltas, published with the span at
  /// destruction as args{ipc, llc_miss}. Called by PerfPhaseRegion just
  /// before the span closes; a no-op on inactive spans.
  void SetPerf(uint64_t cycles, uint64_t instructions, uint64_t llc_misses) {
    cycles_ = cycles;
    instructions_ = instructions;
    llc_misses_ = llc_misses;
  }

 private:
  void Begin(SpanKind kind, uint64_t query_id, uint64_t parent_id,
             const char* detail);
  bool active_ = false;
  SpanKind kind_ = SpanKind::kQuery;
  uint64_t query_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t start_us_ = 0;
  uint64_t cycles_ = 0;
  uint64_t instructions_ = 0;
  uint64_t llc_misses_ = 0;
  SpanLink saved_;
  bool installed_ = false;
  char detail_[16] = {};
};

/// RAII root span for one query: applies the sampling knob, allocates the
/// query id (the Chrome-trace "pid" lane) and installs itself as the
/// thread-current span so every ScopedSpan beneath it chains in.
class QueryRootSpan {
 public:
  explicit QueryRootSpan(const char* detail = nullptr);
  ~QueryRootSpan();
  QueryRootSpan(const QueryRootSpan&) = delete;
  QueryRootSpan& operator=(const QueryRootSpan&) = delete;

  bool active() const { return active_; }
  SpanLink link() const { return SpanLink{query_id_, span_id_}; }

 private:
  bool active_ = false;
  uint64_t query_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t start_us_ = 0;
  SpanLink saved_;
  char detail_[16] = {};
};

/// RAII root span for background work (merge, checkpoint, WAL sync,
/// recovery replay). Ignores sampling — background spans are rare and a
/// trace without them cannot explain tail latency. Gets its own query-id
/// lane and installs itself thread-current, so e.g. maintenance rebuilds
/// triggered by a merge become children of the merge span.
class BackgroundSpan {
 public:
  explicit BackgroundSpan(SpanKind kind, const char* detail = nullptr);
  ~BackgroundSpan();
  BackgroundSpan(const BackgroundSpan&) = delete;
  BackgroundSpan& operator=(const BackgroundSpan&) = delete;

  bool active() const { return active_; }

 private:
  bool active_ = false;
  SpanKind kind_ = SpanKind::kMerge;
  uint64_t query_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t start_us_ = 0;
  SpanLink saved_;
  char detail_[16] = {};
};

/// Records an already-elapsed region [start_us, now] as a child of the
/// thread-current span — for conditionally interesting waits (e.g. the
/// single-flight wait, only recorded when the entry was actually building).
/// `start_us` comes from SpanRecorder::Global().NowMicros().
void RecordSpanSince(SpanKind kind, uint64_t start_us,
                     const char* detail = nullptr);

/// Dumps the global recorder to stderr if it exists and is enabled. Called
/// from the flight recorder's AGGCACHE_CHECK failure hook (there is one
/// hook slot; the flight recorder owns it and chains to this).
void DumpSpansOnCheckFailureIfEnabled();

}  // namespace aggcache

#endif  // AGGCACHE_OBS_SPAN_H_
