#ifndef AGGCACHE_WORKLOAD_TRACE_H_
#define AGGCACHE_WORKLOAD_TRACE_H_

#include <istream>
#include <string>

#include "cache/aggregate_cache_manager.h"

namespace aggcache {

/// Outcome of replaying one workload trace.
struct TraceReport {
  size_t statements = 0;  ///< SQL statements executed.
  size_t inserts = 0;
  size_t queries = 0;
  size_t ddl = 0;     ///< CREATE TABLE statements.
  size_t merges = 0;  ///< !merge meta operations.
  double total_ms = 0.0;
  double insert_ms = 0.0;
  double query_ms = 0.0;
  double merge_ms = 0.0;
  /// Groups produced by the last SELECT, for spot checks.
  size_t last_query_groups = 0;
};

/// Replays a textual workload trace against a database and its aggregate
/// cache — the mechanism the paper uses to re-run recorded customer
/// workloads ("the inserts were replayed using the timestamps in the base
/// data", Section 6).
///
/// Trace format, line oriented:
///   # comment
///   <SQL statement>;            -- may span lines, ends at ';'
///   !merge [table ...]          -- delta merge (all tables when omitted)
///
/// Consecutive INSERT statements separated by blank-line-free runs execute
/// in one transaction per statement (each statement is one transaction, as
/// in the paper's replay). SELECT statements run through the cache manager
/// with the configured execution options.
class TraceReplayer {
 public:
  TraceReplayer(Database* db, AggregateCacheManager* cache,
                ExecutionOptions options = ExecutionOptions())
      : db_(db), cache_(cache), options_(options) {}

  /// Replays the whole trace; stops at the first failing operation.
  StatusOr<TraceReport> Replay(std::istream& trace);

  /// Convenience overload over an in-memory string.
  StatusOr<TraceReport> ReplayString(const std::string& trace);

 private:
  Status ExecuteSql(const std::string& sql, TraceReport* report);
  Status ExecuteMerge(const std::string& args, TraceReport* report);

  Database* db_;
  AggregateCacheManager* cache_;
  ExecutionOptions options_;
};

}  // namespace aggcache

#endif  // AGGCACHE_WORKLOAD_TRACE_H_
