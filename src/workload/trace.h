#ifndef AGGCACHE_WORKLOAD_TRACE_H_
#define AGGCACHE_WORKLOAD_TRACE_H_

#include <istream>
#include <optional>
#include <string>

#include "cache/aggregate_cache_manager.h"

namespace aggcache {

/// Engine lifecycle hooks for durability traces. The replayer itself only
/// borrows the database and cache; crashing and recovering destroys and
/// recreates them, which only their owner (the fuzzer, a test) can do.
/// After Recover(), the host must call TraceReplayer::Rebind with the new
/// engine objects.
class TraceEngineHost {
 public:
  virtual ~TraceEngineHost() = default;
  /// Simulates a process kill: nothing unsynced is flushed, the WAL is
  /// poisoned, locks release. The in-memory engine is garbage afterwards;
  /// only !recover may follow.
  virtual Status Crash() = 0;
  /// Discards the crashed engine and reopens it from disk.
  virtual Status Recover() = 0;
  /// Cuts a durability checkpoint now.
  virtual Status Checkpoint() = 0;
};

/// Outcome of replaying one workload trace.
struct TraceReport {
  size_t statements = 0;  ///< SQL statements executed.
  size_t inserts = 0;
  size_t queries = 0;
  size_t ddl = 0;     ///< CREATE TABLE statements.
  size_t merges = 0;  ///< !merge meta operations.
  size_t updates = 0;         ///< !update meta operations.
  size_t deletes = 0;         ///< !delete meta operations.
  size_t splits = 0;          ///< !split meta operations.
  size_t faulted_merges = 0;  ///< Merges aborted by an injected fault.
  /// INSERTs / !checkpoints aborted by an injected fault (WAL and
  /// checkpoint crash points); replay continues, like faulted merges.
  size_t faulted_ops = 0;
  size_t crashes = 0;         ///< !crash meta operations.
  size_t recoveries = 0;      ///< !recover meta operations.
  size_t checkpoints = 0;     ///< !checkpoint meta operations.
  double total_ms = 0.0;
  double insert_ms = 0.0;
  double query_ms = 0.0;
  double merge_ms = 0.0;
  /// Groups produced by the last SELECT, for spot checks.
  size_t last_query_groups = 0;
};

/// Replays a textual workload trace against a database and its aggregate
/// cache — the mechanism the paper uses to re-run recorded customer
/// workloads ("the inserts were replayed using the timestamps in the base
/// data", Section 6).
///
/// Trace format, line oriented:
///   # comment
///   <SQL statement>;            -- may span lines, ends at ';'
///   !merge [table ...]          -- delta merge (all tables when omitted)
///   !update <table> <pk> <v ...>  -- out-of-place update by primary key
///                                    (the SQL dialect has no UPDATE)
///   !delete <table> <pk>        -- invalidate by primary key
///   !split <table> <col> <val>  -- SplitHotCold(col, val)  (Section 5.4)
///   !aging <table ...>          -- RegisterAgingGroup
///   !clearcache                 -- drop every cache entry
///   !fault <spec>               -- arm FaultInjector ("off" disarms)
///   !faultseed <n>              -- reseed the fault injector draws
///   !flightdump [n]             -- dump the last n (default 4096) flight-
///                                    recorder events to stderr as JSON
///   !spandump [n]               -- dump the last n (default 8192) spans
///                                    to stderr as Chrome-trace JSON
///   !atomic begin|end           -- open/close an atomic write scope;
///                                    INSERTs inside run under the scope
///   !checkpoint                 -- cut a durability checkpoint (host)
///   !crash                      -- simulated kill (host; drops open scope)
///   !recover                    -- reopen the engine from disk (host)
///
/// Literal operands are SQL-style: integers, decimals, or 'strings'.
/// A !merge that fails with an *injected* fault (see verify/fault_injector.h)
/// is counted in `faulted_merges` and replay continues — fuzzer traces
/// record fault schedules, and an armed merge fault is an expected outcome,
/// not a replay error.
///
/// Consecutive INSERT statements separated by blank-line-free runs execute
/// in one transaction per statement (each statement is one transaction, as
/// in the paper's replay). SELECT statements run through the cache manager
/// with the configured execution options.
class TraceReplayer {
 public:
  TraceReplayer(Database* db, AggregateCacheManager* cache,
                ExecutionOptions options = ExecutionOptions())
      : db_(db), cache_(cache), options_(options) {}

  /// Wires in the engine-lifecycle host; without one, the !checkpoint,
  /// !crash, and !recover meta-ops fail.
  void SetEngineHost(TraceEngineHost* host) { host_ = host; }

  /// Repoints the replayer at a recovered engine (called by the host from
  /// Recover()).
  void Rebind(Database* db, AggregateCacheManager* cache) {
    db_ = db;
    cache_ = cache;
  }

  /// Replays the whole trace; stops at the first failing operation.
  StatusOr<TraceReport> Replay(std::istream& trace);

  /// Convenience overload over an in-memory string.
  StatusOr<TraceReport> ReplayString(const std::string& trace);

 private:
  Status ExecuteSql(const std::string& sql, TraceReport* report);
  Status ExecuteMerge(const std::string& args, TraceReport* report);
  Status ExecuteMeta(const std::string& line, TraceReport* report);

  Database* db_;
  AggregateCacheManager* cache_;
  ExecutionOptions options_;
  TraceEngineHost* host_ = nullptr;
  /// Open atomic write scope (!atomic begin .. end); INSERT statements run
  /// under it instead of one transaction each.
  std::optional<ScopedTransaction> scope_;
};

}  // namespace aggcache

#endif  // AGGCACHE_WORKLOAD_TRACE_H_
