#ifndef AGGCACHE_WORKLOAD_TRACE_H_
#define AGGCACHE_WORKLOAD_TRACE_H_

#include <istream>
#include <string>

#include "cache/aggregate_cache_manager.h"

namespace aggcache {

/// Outcome of replaying one workload trace.
struct TraceReport {
  size_t statements = 0;  ///< SQL statements executed.
  size_t inserts = 0;
  size_t queries = 0;
  size_t ddl = 0;     ///< CREATE TABLE statements.
  size_t merges = 0;  ///< !merge meta operations.
  size_t updates = 0;         ///< !update meta operations.
  size_t deletes = 0;         ///< !delete meta operations.
  size_t splits = 0;          ///< !split meta operations.
  size_t faulted_merges = 0;  ///< Merges aborted by an injected fault.
  double total_ms = 0.0;
  double insert_ms = 0.0;
  double query_ms = 0.0;
  double merge_ms = 0.0;
  /// Groups produced by the last SELECT, for spot checks.
  size_t last_query_groups = 0;
};

/// Replays a textual workload trace against a database and its aggregate
/// cache — the mechanism the paper uses to re-run recorded customer
/// workloads ("the inserts were replayed using the timestamps in the base
/// data", Section 6).
///
/// Trace format, line oriented:
///   # comment
///   <SQL statement>;            -- may span lines, ends at ';'
///   !merge [table ...]          -- delta merge (all tables when omitted)
///   !update <table> <pk> <v ...>  -- out-of-place update by primary key
///                                    (the SQL dialect has no UPDATE)
///   !delete <table> <pk>        -- invalidate by primary key
///   !split <table> <col> <val>  -- SplitHotCold(col, val)  (Section 5.4)
///   !aging <table ...>          -- RegisterAgingGroup
///   !clearcache                 -- drop every cache entry
///   !fault <spec>               -- arm FaultInjector ("off" disarms)
///   !faultseed <n>              -- reseed the fault injector draws
///   !flightdump [n]             -- dump the last n (default 4096) flight-
///                                    recorder events to stderr as JSON
///
/// Literal operands are SQL-style: integers, decimals, or 'strings'.
/// A !merge that fails with an *injected* fault (see verify/fault_injector.h)
/// is counted in `faulted_merges` and replay continues — fuzzer traces
/// record fault schedules, and an armed merge fault is an expected outcome,
/// not a replay error.
///
/// Consecutive INSERT statements separated by blank-line-free runs execute
/// in one transaction per statement (each statement is one transaction, as
/// in the paper's replay). SELECT statements run through the cache manager
/// with the configured execution options.
class TraceReplayer {
 public:
  TraceReplayer(Database* db, AggregateCacheManager* cache,
                ExecutionOptions options = ExecutionOptions())
      : db_(db), cache_(cache), options_(options) {}

  /// Replays the whole trace; stops at the first failing operation.
  StatusOr<TraceReport> Replay(std::istream& trace);

  /// Convenience overload over an in-memory string.
  StatusOr<TraceReport> ReplayString(const std::string& trace);

 private:
  Status ExecuteSql(const std::string& sql, TraceReport* report);
  Status ExecuteMerge(const std::string& args, TraceReport* report);
  Status ExecuteMeta(const std::string& line, TraceReport* report);

  Database* db_;
  AggregateCacheManager* cache_;
  ExecutionOptions options_;
};

}  // namespace aggcache

#endif  // AGGCACHE_WORKLOAD_TRACE_H_
