#include "workload/csv_loader.h"

#include <cstdlib>
#include <sstream>

#include "common/string_util.h"

namespace aggcache {
namespace {

/// Splits one CSV line into fields, honouring double quotes.
StatusOr<std::vector<std::string>> SplitLine(const std::string& line,
                                             char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"' && field.empty()) {
      quoted = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\r' && i + 1 == line.size()) {
      // Tolerate CRLF input.
    } else {
      field += c;
    }
  }
  if (quoted) {
    return Status::InvalidArgument("unterminated quoted field: " + line);
  }
  fields.push_back(std::move(field));
  return fields;
}

StatusOr<Value> ParseField(const std::string& field, ColumnType type,
                           size_t line_number, size_t column_index) {
  switch (type) {
    case ColumnType::kInt64: {
      char* end = nullptr;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument(
            StrFormat("line %zu, field %zu: '%s' is not an integer",
                      line_number, column_index, field.c_str()));
      }
      return Value(static_cast<int64_t>(v));
    }
    case ColumnType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument(
            StrFormat("line %zu, field %zu: '%s' is not a number",
                      line_number, column_index, field.c_str()));
      }
      return Value(v);
    }
    case ColumnType::kString:
      return Value(field);
  }
  return Status::Internal("unknown column type");
}

}  // namespace

StatusOr<size_t> LoadCsv(Database* db, const std::string& table_name,
                         std::istream& input,
                         const CsvLoadOptions& options) {
  if (options.rows_per_transaction == 0) {
    return Status::InvalidArgument("rows_per_transaction must be positive");
  }
  ASSIGN_OR_RETURN(Table * table, db->GetTable(table_name));
  std::vector<const ColumnDef*> user_columns;
  for (const ColumnDef& def : table->schema().columns) {
    if (!def.is_tid) user_columns.push_back(&def);
  }

  std::string line;
  size_t line_number = 0;
  if (options.has_header) {
    if (!std::getline(input, line)) {
      return Status::InvalidArgument("missing CSV header line");
    }
    ++line_number;
    ASSIGN_OR_RETURN(std::vector<std::string> names,
                     SplitLine(line, options.delimiter));
    if (names.size() != user_columns.size()) {
      return Status::InvalidArgument(StrFormat(
          "header has %zu fields, table '%s' has %zu user columns",
          names.size(), table_name.c_str(), user_columns.size()));
    }
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] != user_columns[i]->name) {
        return Status::InvalidArgument(StrFormat(
            "header field %zu is '%s', expected column '%s'", i,
            names[i].c_str(), user_columns[i]->name.c_str()));
      }
    }
  }

  size_t inserted = 0;
  size_t in_current_txn = 0;
  std::optional<Transaction> txn;
  while (std::getline(input, line)) {
    ++line_number;
    if (line.empty()) continue;
    ASSIGN_OR_RETURN(std::vector<std::string> fields,
                     SplitLine(line, options.delimiter));
    if (fields.size() != user_columns.size()) {
      return Status::InvalidArgument(StrFormat(
          "line %zu has %zu fields, expected %zu", line_number,
          fields.size(), user_columns.size()));
    }
    std::vector<Value> row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      ASSIGN_OR_RETURN(Value v, ParseField(fields[i], user_columns[i]->type,
                                           line_number, i));
      row.push_back(std::move(v));
    }
    if (!txn || in_current_txn == options.rows_per_transaction) {
      txn = db->Begin();
      in_current_txn = 0;
    }
    RETURN_IF_ERROR(table->Insert(*txn, row));
    ++in_current_txn;
    ++inserted;
  }
  return inserted;
}

StatusOr<size_t> LoadCsvFromString(Database* db,
                                   const std::string& table_name,
                                   const std::string& csv,
                                   const CsvLoadOptions& options) {
  std::istringstream stream(csv);
  return LoadCsv(db, table_name, stream, options);
}

}  // namespace aggcache
