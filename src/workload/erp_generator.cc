#include "workload/erp_generator.h"

#include "common/string_util.h"

namespace aggcache {

namespace {

constexpr const char* kTxnTypes[] = {"DEBIT", "CREDIT", "TRANSFER"};

}  // namespace

StatusOr<ErpDataset> ErpDataset::Create(Database* db,
                                        const ErpConfig& config) {
  ErpDataset dataset(db, config);
  dataset.load_rng_ = Rng(config.seed);
  RETURN_IF_ERROR(dataset.CreateTables());
  RETURN_IF_ERROR(dataset.LoadInitialData());
  return dataset;
}

Status ErpDataset::CreateTables() {
  const bool tid = config_.with_tid_columns;

  SchemaBuilder category_builder("ProductCategory");
  category_builder.AddColumn("CategoryID", ColumnType::kInt64).PrimaryKey();
  category_builder.AddColumn("Name", ColumnType::kString);
  category_builder.AddColumn("Language", ColumnType::kString);
  if (tid) category_builder.OwnTid("tid_Category");
  ASSIGN_OR_RETURN(category_, db_->CreateTable(category_builder.Build()));

  SchemaBuilder header_builder("Header");
  header_builder.AddColumn("HeaderID", ColumnType::kInt64).PrimaryKey();
  header_builder.AddColumn("FiscalYear", ColumnType::kInt64);
  header_builder.AddColumn("TxnType", ColumnType::kString);
  if (tid) header_builder.OwnTid("tid_Header");
  ASSIGN_OR_RETURN(header_, db_->CreateTable(header_builder.Build()));

  SchemaBuilder item_builder("Item");
  item_builder.AddColumn("ItemID", ColumnType::kInt64).PrimaryKey();
  item_builder.AddColumn("HeaderID", ColumnType::kInt64)
      .References("Header", tid ? "tid_Header" : "");
  item_builder.AddColumn("CategoryID", ColumnType::kInt64)
      .References("ProductCategory", tid ? "tid_Category" : "");
  item_builder.AddColumn("Price", ColumnType::kDouble);
  item_builder.AddColumn("Quantity", ColumnType::kInt64);
  if (tid) item_builder.OwnTid("tid_Item");
  ASSIGN_OR_RETURN(item_, db_->CreateTable(item_builder.Build()));
  return Status::Ok();
}

Status ErpDataset::LoadInitialData() {
  // Dimension data: every category exists in every language.
  {
    Transaction txn = db_->Begin();
    for (size_t c = 0; c < config_.num_categories; ++c) {
      for (size_t l = 0; l < config_.languages.size(); ++l) {
        int64_t id = static_cast<int64_t>(
            c * config_.languages.size() + l + 1);
        RETURN_IF_ERROR(category_->Insert(
            txn, {Value(id), Value(StrFormat("Category-%zu", c)),
                  Value(config_.languages[l])}));
      }
    }
  }
  for (size_t h = 0; h < config_.num_headers_main; ++h) {
    ASSIGN_OR_RETURN(size_t ignored, InsertBusinessObject(load_rng_));
    (void)ignored;
  }
  return db_->MergeTables({"ProductCategory", "Header", "Item"});
}

StatusOr<size_t> ErpDataset::InsertBusinessObject(Rng& rng) {
  // Atomic write scope: concurrent readers see the header and all of its
  // items or none of them — never a half-inserted business object.
  ScopedTransaction txn = db_->BeginAtomic();
  int64_t header_id = next_header_id_++;
  int64_t year = config_.fiscal_years[static_cast<size_t>(rng.UniformInt(
      0, static_cast<int64_t>(config_.fiscal_years.size()) - 1))];
  const char* txn_type = kTxnTypes[rng.UniformInt(0, 2)];
  RETURN_IF_ERROR(header_->Insert(
      txn, {Value(header_id), Value(year), Value(txn_type)}));

  size_t avg = config_.avg_items_per_header;
  size_t num_items = static_cast<size_t>(
      rng.UniformInt(1, static_cast<int64_t>(2 * avg) - 1));
  size_t num_language_rows = config_.languages.size();
  for (size_t i = 0; i < num_items; ++i) {
    int64_t category_id =
        rng.UniformInt(0, static_cast<int64_t>(config_.num_categories) - 1) *
            static_cast<int64_t>(num_language_rows) +
        1;  // Always reference the first-language row of the category.
    RETURN_IF_ERROR(item_->Insert(
        txn, {Value(next_item_id_++), Value(header_id), Value(category_id),
              Value(rng.UniformDouble(1.0, 1000.0)),
              Value(rng.UniformInt(1, 20))}));
  }
  return num_items;
}

Status ErpDataset::InsertLateItems(Rng& rng, size_t count) {
  if (next_header_id_ <= 1) {
    return Status::FailedPrecondition("no headers to attach items to");
  }
  for (size_t i = 0; i < count; ++i) {
    // One scope per item: even a single-statement insert needs the scope
    // under concurrency, or a snapshot taken between Begin() and the row
    // landing would include the tid without seeing the row.
    ScopedTransaction txn = db_->BeginAtomic();
    Status inserted = Status::Ok();
    for (int attempt = 0; attempt < 8; ++attempt) {
      int64_t header_id = rng.UniformInt(1, next_header_id_ - 1);
      int64_t category_id =
          rng.UniformInt(0, static_cast<int64_t>(config_.num_categories) - 1) *
              static_cast<int64_t>(config_.languages.size()) +
          1;
      inserted = item_->Insert(
          txn, {Value(next_item_id_++), Value(header_id), Value(category_id),
                Value(rng.UniformDouble(1.0, 1000.0)),
                Value(rng.UniformInt(1, 20))});
      // The header-id counter advances before the header row itself lands,
      // so under concurrency a freshly claimed id can be picked here before
      // its header exists. Repick instead of failing the batch.
      if (inserted.code() != StatusCode::kFailedPrecondition) break;
    }
    RETURN_IF_ERROR(inserted);
  }
  return Status::Ok();
}

AggregateQuery ErpDataset::ProfitByCategoryQuery(int64_t fiscal_year) const {
  return QueryBuilder()
      .From("Header")
      .Join("Item", "HeaderID", "HeaderID")
      .Join("ProductCategory", "CategoryID", "CategoryID")
      .Filter("ProductCategory", "Language", CompareOp::kEq, Value("ENG"))
      .Filter("Header", "FiscalYear", CompareOp::kEq, Value(fiscal_year))
      .GroupBy("ProductCategory", "Name")
      .Sum("Item", "Price", "Profit")
      .Build();
}

AggregateQuery ErpDataset::RevenueByYearQuery() const {
  return QueryBuilder()
      .From("Header")
      .Join("Item", "HeaderID", "HeaderID")
      .GroupBy("Header", "FiscalYear")
      .Sum("Item", "Price", "Revenue")
      .CountStar("NumItems")
      .Build();
}

AggregateQuery ErpDataset::ItemTotalsByCategoryQuery() const {
  return QueryBuilder()
      .From("Item")
      .GroupBy("Item", "CategoryID")
      .Sum("Item", "Price", "Total")
      .CountStar("NumItems")
      .Build();
}

}  // namespace aggcache
