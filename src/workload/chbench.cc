#include "workload/chbench.h"

#include "common/string_util.h"

namespace aggcache {
namespace {

constexpr const char* kRegions[] = {"EUROPE", "AMERICA", "ASIA", "AFRICA",
                                    "MIDDLE EAST"};
constexpr size_t kNumRegions = 5;
constexpr size_t kNumNations = 25;
constexpr size_t kNumSuppliers = 100;
constexpr const char* kStates[] = {"CA", "NY", "TX", "WA", "FL"};
constexpr int64_t kFirstYear = 2010;
constexpr int64_t kLastYear = 2014;

}  // namespace

StatusOr<ChBenchDataset> ChBenchDataset::Create(Database* db,
                                                const ChBenchConfig& config) {
  ChBenchDataset dataset(db, config);
  RETURN_IF_ERROR(dataset.CreateTables());
  RETURN_IF_ERROR(dataset.LoadDimensions());

  Rng rng(config.seed);
  dataset.total_customers_ = config.num_warehouses *
                             config.districts_per_warehouse *
                             config.customers_per_district;
  dataset.total_orders_ =
      dataset.total_customers_ * config.orders_per_customer;
  size_t total_stock = config.num_warehouses * config.num_items;

  size_t main_orders = static_cast<size_t>(
      static_cast<double>(dataset.total_orders_) *
      (1.0 - config.delta_fraction));
  size_t main_stock = static_cast<size_t>(static_cast<double>(total_stock) *
                                          (1.0 - config.delta_fraction));

  RETURN_IF_ERROR(dataset.LoadStock(rng, 1,
                                    static_cast<int64_t>(main_stock) + 1));
  RETURN_IF_ERROR(dataset.LoadOrders(rng, 0, main_orders,
                                     static_cast<int64_t>(main_stock)));
  RETURN_IF_ERROR(db->MergeAll());

  // Delta portion: the remaining stock rows and orders (with orderlines and
  // neworder entries) stay in the write-optimized deltas, five percent per
  // table in the paper's setup.
  RETURN_IF_ERROR(dataset.LoadStock(rng,
                                    static_cast<int64_t>(main_stock) + 1,
                                    static_cast<int64_t>(total_stock) + 1));
  RETURN_IF_ERROR(dataset.LoadOrders(rng, main_orders, dataset.total_orders_,
                                     static_cast<int64_t>(total_stock)));
  return dataset;
}

Status ChBenchDataset::CreateTables() {
  ASSIGN_OR_RETURN(Table * region,
                   db_->CreateTable(SchemaBuilder("region")
                                        .AddColumn("r_id", ColumnType::kInt64)
                                        .PrimaryKey()
                                        .AddColumn("r_name",
                                                   ColumnType::kString)
                                        .OwnTid("tid_region")
                                        .Build()));
  (void)region;
  ASSIGN_OR_RETURN(
      Table * nation,
      db_->CreateTable(SchemaBuilder("nation")
                           .AddColumn("n_id", ColumnType::kInt64)
                           .PrimaryKey()
                           .AddColumn("n_name", ColumnType::kString)
                           .AddColumn("n_r_id", ColumnType::kInt64)
                           .References("region", "tid_region")
                           .OwnTid("tid_nation")
                           .Build()));
  (void)nation;
  ASSIGN_OR_RETURN(
      Table * supplier,
      db_->CreateTable(SchemaBuilder("supplier")
                           .AddColumn("su_id", ColumnType::kInt64)
                           .PrimaryKey()
                           .AddColumn("su_name", ColumnType::kString)
                           .AddColumn("su_n_id", ColumnType::kInt64)
                           .References("nation", "tid_nation")
                           .OwnTid("tid_supplier")
                           .Build()));
  (void)supplier;
  ASSIGN_OR_RETURN(Table * warehouse,
                   db_->CreateTable(SchemaBuilder("warehouse")
                                        .AddColumn("w_id", ColumnType::kInt64)
                                        .PrimaryKey()
                                        .AddColumn("w_name",
                                                   ColumnType::kString)
                                        .OwnTid("tid_warehouse")
                                        .Build()));
  (void)warehouse;
  ASSIGN_OR_RETURN(
      Table * district,
      db_->CreateTable(SchemaBuilder("district")
                           .AddColumn("d_id", ColumnType::kInt64)
                           .PrimaryKey()
                           .AddColumn("d_w_id", ColumnType::kInt64)
                           .References("warehouse", "tid_warehouse")
                           .AddColumn("d_name", ColumnType::kString)
                           .OwnTid("tid_district")
                           .Build()));
  (void)district;
  ASSIGN_OR_RETURN(
      Table * customer,
      db_->CreateTable(SchemaBuilder("customer")
                           .AddColumn("c_id", ColumnType::kInt64)
                           .PrimaryKey()
                           .AddColumn("c_d_id", ColumnType::kInt64)
                           .References("district", "tid_district")
                           .AddColumn("c_n_id", ColumnType::kInt64)
                           .References("nation", "tid_nation_c")
                           .AddColumn("c_last", ColumnType::kString)
                           .AddColumn("c_state", ColumnType::kString)
                           .OwnTid("tid_customer")
                           .Build()));
  (void)customer;
  ASSIGN_OR_RETURN(Table * item,
                   db_->CreateTable(SchemaBuilder("item")
                                        .AddColumn("i_id", ColumnType::kInt64)
                                        .PrimaryKey()
                                        .AddColumn("i_name",
                                                   ColumnType::kString)
                                        .AddColumn("i_price",
                                                   ColumnType::kDouble)
                                        .OwnTid("tid_item")
                                        .Build()));
  (void)item;
  ASSIGN_OR_RETURN(
      Table * stock,
      db_->CreateTable(SchemaBuilder("stock")
                           .AddColumn("s_id", ColumnType::kInt64)
                           .PrimaryKey()
                           .AddColumn("s_i_id", ColumnType::kInt64)
                           .References("item", "tid_item_s")
                           .AddColumn("s_su_id", ColumnType::kInt64)
                           .References("supplier", "tid_supplier_s")
                           .AddColumn("s_w_id", ColumnType::kInt64)
                           .References("warehouse", "tid_warehouse_s")
                           .AddColumn("s_quantity", ColumnType::kInt64)
                           .OwnTid("tid_stock")
                           .Build()));
  (void)stock;
  ASSIGN_OR_RETURN(
      Table * orders,
      db_->CreateTable(SchemaBuilder("orders")
                           .AddColumn("o_id", ColumnType::kInt64)
                           .PrimaryKey()
                           .AddColumn("o_c_id", ColumnType::kInt64)
                           .References("customer", "tid_customer_o")
                           .AddColumn("o_entry_year", ColumnType::kInt64)
                           .AddColumn("o_carrier_id", ColumnType::kInt64)
                           .OwnTid("tid_orders")
                           .Build()));
  (void)orders;
  ASSIGN_OR_RETURN(
      Table * neworder,
      db_->CreateTable(SchemaBuilder("neworder")
                           .AddColumn("no_id", ColumnType::kInt64)
                           .PrimaryKey()
                           .AddColumn("no_o_id", ColumnType::kInt64)
                           .References("orders", "tid_orders_no")
                           .OwnTid("tid_neworder")
                           .Build()));
  (void)neworder;
  ASSIGN_OR_RETURN(
      Table * orderline,
      db_->CreateTable(SchemaBuilder("orderline")
                           .AddColumn("ol_id", ColumnType::kInt64)
                           .PrimaryKey()
                           .AddColumn("ol_o_id", ColumnType::kInt64)
                           .References("orders", "tid_orders_ol")
                           .AddColumn("ol_s_id", ColumnType::kInt64)
                           .References("stock", "tid_stock_ol")
                           .AddColumn("ol_amount", ColumnType::kDouble)
                           .AddColumn("ol_delivery_year", ColumnType::kInt64)
                           .OwnTid("tid_orderline")
                           .Build()));
  (void)orderline;
  return Status::Ok();
}

Status ChBenchDataset::LoadDimensions() {
  Rng rng(config_.seed + 99);
  ASSIGN_OR_RETURN(Table * region, db_->GetTable("region"));
  ASSIGN_OR_RETURN(Table * nation, db_->GetTable("nation"));
  ASSIGN_OR_RETURN(Table * supplier, db_->GetTable("supplier"));
  ASSIGN_OR_RETURN(Table * warehouse, db_->GetTable("warehouse"));
  ASSIGN_OR_RETURN(Table * district, db_->GetTable("district"));
  ASSIGN_OR_RETURN(Table * customer, db_->GetTable("customer"));
  ASSIGN_OR_RETURN(Table * item, db_->GetTable("item"));

  {
    Transaction txn = db_->Begin();
    for (size_t r = 0; r < kNumRegions; ++r) {
      RETURN_IF_ERROR(region->Insert(
          txn, {Value(static_cast<int64_t>(r + 1)), Value(kRegions[r])}));
    }
    for (size_t n = 0; n < kNumNations; ++n) {
      RETURN_IF_ERROR(nation->Insert(
          txn, {Value(static_cast<int64_t>(n + 1)),
                Value(StrFormat("Nation-%zu", n)),
                Value(static_cast<int64_t>(n % kNumRegions + 1))}));
    }
    for (size_t s = 0; s < kNumSuppliers; ++s) {
      RETURN_IF_ERROR(supplier->Insert(
          txn, {Value(static_cast<int64_t>(s + 1)),
                Value(StrFormat("Supplier-%zu", s)),
                Value(static_cast<int64_t>(s % kNumNations + 1))}));
    }
  }
  {
    Transaction txn = db_->Begin();
    for (size_t w = 0; w < config_.num_warehouses; ++w) {
      RETURN_IF_ERROR(warehouse->Insert(
          txn, {Value(static_cast<int64_t>(w + 1)),
                Value(StrFormat("Warehouse-%zu", w))}));
    }
    for (size_t w = 0; w < config_.num_warehouses; ++w) {
      for (size_t d = 0; d < config_.districts_per_warehouse; ++d) {
        int64_t d_id = static_cast<int64_t>(
            w * config_.districts_per_warehouse + d + 1);
        RETURN_IF_ERROR(district->Insert(
            txn, {Value(d_id), Value(static_cast<int64_t>(w + 1)),
                  Value(StrFormat("District-%zu-%zu", w, d))}));
      }
    }
    for (size_t i = 0; i < config_.num_items; ++i) {
      RETURN_IF_ERROR(item->Insert(
          txn, {Value(static_cast<int64_t>(i + 1)),
                Value(StrFormat("Item-%zu", i)),
                Value(rng.UniformDouble(1.0, 100.0))}));
    }
  }
  {
    Transaction txn = db_->Begin();
    size_t num_districts =
        config_.num_warehouses * config_.districts_per_warehouse;
    size_t num_customers = num_districts * config_.customers_per_district;
    for (size_t c = 0; c < num_customers; ++c) {
      RETURN_IF_ERROR(customer->Insert(
          txn,
          {Value(static_cast<int64_t>(c + 1)),
           Value(static_cast<int64_t>(c % num_districts + 1)),
           Value(static_cast<int64_t>(c % kNumNations + 1)),
           Value(StrFormat("Customer-%zu", c)),
           Value(kStates[c % 5])}));
    }
  }
  return Status::Ok();
}

Status ChBenchDataset::LoadStock(Rng& rng, int64_t first_id,
                                 int64_t last_id) {
  ASSIGN_OR_RETURN(Table * stock, db_->GetTable("stock"));
  Transaction txn = db_->Begin();
  for (int64_t s = first_id; s < last_id; ++s) {
    RETURN_IF_ERROR(stock->Insert(
        txn,
        {Value(s),
         Value(rng.UniformInt(1, static_cast<int64_t>(config_.num_items))),
         Value(rng.UniformInt(1, static_cast<int64_t>(kNumSuppliers))),
         Value(rng.UniformInt(1,
                              static_cast<int64_t>(config_.num_warehouses))),
         Value(rng.UniformInt(10, 100))}));
  }
  return Status::Ok();
}

Status ChBenchDataset::LoadOrders(Rng& rng, size_t first, size_t last,
                                  int64_t max_stock_id) {
  ASSIGN_OR_RETURN(Table * orders, db_->GetTable("orders"));
  ASSIGN_OR_RETURN(Table * neworder, db_->GetTable("neworder"));
  ASSIGN_OR_RETURN(Table * orderline, db_->GetTable("orderline"));
  for (size_t o = first; o < last; ++o) {
    // One transaction per order: the order, its lines, and (for recent
    // orders) a neworder entry are inserted together — the temporal
    // locality pattern of Section 3.2.
    Transaction txn = db_->Begin();
    int64_t o_id = static_cast<int64_t>(o + 1);
    int64_t c_id = static_cast<int64_t>(o % total_customers_ + 1);
    int64_t year = kFirstYear + static_cast<int64_t>(
                                    o * (kLastYear - kFirstYear + 1) / last);
    bool recent = o * 10 >= last * 7;  // Last 30% are undelivered.
    int64_t carrier = recent ? 0 : rng.UniformInt(1, 10);
    RETURN_IF_ERROR(orders->Insert(
        txn, {Value(o_id), Value(c_id), Value(year), Value(carrier)}));
    if (recent) {
      RETURN_IF_ERROR(neworder->Insert(
          txn, {Value(next_neworder_id_++), Value(o_id)}));
    }
    size_t lines = static_cast<size_t>(rng.UniformInt(
        1, static_cast<int64_t>(2 * config_.avg_orderlines_per_order) - 1));
    for (size_t l = 0; l < lines; ++l) {
      RETURN_IF_ERROR(orderline->Insert(
          txn, {Value(next_orderline_id_++), Value(o_id),
                Value(rng.UniformInt(1, max_stock_id)),
                Value(rng.UniformDouble(1.0, 500.0)),
                Value(year)}));
    }
  }
  return Status::Ok();
}

AggregateQuery ChBenchDataset::Q3() const {
  return QueryBuilder()
      .From("customer")
      .Join("orders", "c_id", "o_c_id")
      .Join("neworder", "o_id", "no_o_id")
      .Join("orderline", "o_id", "ol_o_id", /*via=*/1)
      .Filter("customer", "c_state", CompareOp::kEq, Value("CA"))
      .GroupBy("orders", "o_entry_year")
      .Sum("orderline", "ol_amount", "revenue")
      .CountStar("num_lines")
      .Build();
}

AggregateQuery ChBenchDataset::Q5() const {
  return QueryBuilder()
      .From("customer")
      .Join("orders", "c_id", "o_c_id")
      .Join("orderline", "o_id", "ol_o_id")
      .Join("stock", "ol_s_id", "s_id")
      .Join("supplier", "s_su_id", "su_id")
      .Join("nation", "su_n_id", "n_id")
      .Join("region", "n_r_id", "r_id")
      .Filter("region", "r_name", CompareOp::kEq, Value("EUROPE"))
      .GroupBy("nation", "n_name")
      .Sum("orderline", "ol_amount", "revenue")
      .Build();
}

AggregateQuery ChBenchDataset::Q9() const {
  return QueryBuilder()
      .From("item")
      .Join("stock", "i_id", "s_i_id")
      .Join("orderline", "s_id", "ol_s_id")
      .Join("orders", "ol_o_id", "o_id")
      .Join("supplier", "s_su_id", "su_id", /*via=*/1)
      .Join("nation", "su_n_id", "n_id")
      .Filter("item", "i_price", CompareOp::kGt, Value(50.0))
      .GroupBy("nation", "n_name")
      .GroupBy("orders", "o_entry_year")
      .Sum("orderline", "ol_amount", "profit")
      .Build();
}

AggregateQuery ChBenchDataset::Q10() const {
  return QueryBuilder()
      .From("customer")
      .Join("orders", "c_id", "o_c_id")
      .Join("orderline", "o_id", "ol_o_id")
      .Join("nation", "c_n_id", "n_id", /*via=*/0)
      .Filter("orders", "o_entry_year", CompareOp::kGe, Value(int64_t{2013}))
      .Filter("orders", "o_carrier_id", CompareOp::kEq, Value(int64_t{0}))
      .GroupBy("nation", "n_name")
      .GroupBy("customer", "c_state")
      .Sum("orderline", "ol_amount", "revenue")
      .CountStar("num_lines")
      .Build();
}

AggregateQuery ChBenchDataset::Q1() const {
  return QueryBuilder()
      .From("orderline")
      .Filter("orderline", "ol_delivery_year", CompareOp::kGe,
              Value(int64_t{2010}))
      .GroupBy("orderline", "ol_delivery_year")
      .Sum("orderline", "ol_amount", "sum_amount")
      .Avg("orderline", "ol_amount", "avg_amount")
      .CountStar("count_order")
      .Build();
}

AggregateQuery ChBenchDataset::Q6() const {
  return QueryBuilder()
      .From("orderline")
      .Filter("orderline", "ol_delivery_year", CompareOp::kGe,
              Value(int64_t{2012}))
      .Filter("orderline", "ol_amount", CompareOp::kGt, Value(100.0))
      .GroupBy("orderline", "ol_delivery_year")
      .Sum("orderline", "ol_amount", "revenue")
      .Build();
}

std::vector<std::pair<int, AggregateQuery>> ChBenchDataset::AllQueries()
    const {
  return {{3, Q3()}, {5, Q5()}, {9, Q9()}, {10, Q10()}};
}

}  // namespace aggcache
