#ifndef AGGCACHE_WORKLOAD_CSV_LOADER_H_
#define AGGCACHE_WORKLOAD_CSV_LOADER_H_

#include <istream>
#include <string>

#include "storage/database.h"

namespace aggcache {

/// Options for CSV bulk loading.
struct CsvLoadOptions {
  char delimiter = ',';
  /// First line holds column names; they must match the table's user
  /// columns (the non-tid columns) in order.
  bool has_header = true;
  /// Rows inserted per transaction. Rows sharing a transaction share a tid
  /// — load business objects together to preserve temporal locality.
  size_t rows_per_transaction = 1;
};

/// Loads delimiter-separated rows from `input` into `table_name`. Values
/// are parsed by the corresponding user column's type (int64, double,
/// string); fields may be double-quoted with `""` escapes. Tid columns are
/// maintained by the engine as usual, so foreign keys must reference
/// already-loaded rows. Returns the number of rows inserted; fails fast on
/// the first malformed or rejected row (rows of earlier transactions stay).
StatusOr<size_t> LoadCsv(Database* db, const std::string& table_name,
                         std::istream& input,
                         const CsvLoadOptions& options = CsvLoadOptions());

/// Convenience overload over an in-memory string.
StatusOr<size_t> LoadCsvFromString(Database* db,
                                   const std::string& table_name,
                                   const std::string& csv,
                                   const CsvLoadOptions& options =
                                       CsvLoadOptions());

}  // namespace aggcache

#endif  // AGGCACHE_WORKLOAD_CSV_LOADER_H_
