#ifndef AGGCACHE_WORKLOAD_MIXED_WORKLOAD_H_
#define AGGCACHE_WORKLOAD_MIXED_WORKLOAD_H_

#include <functional>

#include "cache/maintenance.h"
#include "common/rng.h"
#include "query/aggregate_query.h"
#include "storage/database.h"

namespace aggcache {

/// Parameters of the Fig. 6 mixed workload: `num_operations` statements,
/// each an insert with probability `insert_ratio`, otherwise an aggregate
/// query answered through the materialized aggregate under test. No delta
/// merge runs during the workload, matching the paper's setup.
struct MixedWorkloadConfig {
  size_t num_operations = 2000;
  double insert_ratio = 0.5;
  uint64_t seed = 7;
  /// Simulated per-statement cost of the SQL stack (parse, plan, locking,
  /// logging) that a production DBMS pays for every statement but an
  /// embedded library engine does not. Every workload statement (insert or
  /// query) is charged once; classical view maintenance is charged once
  /// more per summary-table statement it issues — this is the documented
  /// Fig. 6 substitution for running inside a full SQL processor, see
  /// DESIGN.md. Zero disables the simulation.
  double statement_overhead_us = 0.0;
};

/// Measured outcome of one mixed-workload run.
struct MixedWorkloadResult {
  double total_ms = 0.0;
  double insert_ms = 0.0;   ///< Inserts plus eager maintenance.
  double query_ms = 0.0;    ///< Queries plus lazy maintenance/compensation.
  size_t inserts = 0;
  size_t queries = 0;
};

/// Runs the single-table mixed workload of Section 6.1 with the given
/// maintenance strategy. `insert_one_row` performs one base-table insert
/// (the driver times it and then notifies the view); `query` is the
/// aggregate the view materializes.
StatusOr<MixedWorkloadResult> RunMixedWorkload(
    Database* db, const AggregateQuery& query, MaintenanceStrategy strategy,
    AggregateCacheManager* manager, const MixedWorkloadConfig& config,
    const std::function<Status(Rng&)>& insert_one_row);

}  // namespace aggcache

#endif  // AGGCACHE_WORKLOAD_MIXED_WORKLOAD_H_
