#ifndef AGGCACHE_WORKLOAD_CHBENCH_H_
#define AGGCACHE_WORKLOAD_CHBENCH_H_

#include <cstdint>

#include "common/rng.h"
#include "query/aggregate_query.h"
#include "storage/database.h"

namespace aggcache {

/// Scaled-down CH-benCHmark-style schema (TPC-C tables queried with TPC-H
/// style analytics), used by the Fig. 9 experiment. Surrogate single-column
/// keys replace TPC-C's composite keys; every foreign key carries a
/// matching-dependency tid column so object-aware pruning applies.
struct ChBenchConfig {
  size_t num_warehouses = 2;
  size_t num_items = 1000;
  size_t districts_per_warehouse = 10;
  size_t customers_per_district = 30;
  size_t orders_per_customer = 10;
  size_t avg_orderlines_per_order = 10;
  /// Fraction of orders (with their orderlines/neworders) and of stock rows
  /// inserted after the merge, i.e. residing in the delta partitions — the
  /// paper uses five percent.
  double delta_fraction = 0.05;
  uint64_t seed = 1234;
};

/// Owns the CH-benCHmark tables and the four analytical queries (Q3, Q5,
/// Q9, Q10 — the ones the paper selects because the aggregate cache fully
/// supports them and they join more than three tables).
///
/// Query adaptations (documented in DESIGN.md): date columns are stored as
/// entry years, LIKE filters become range/equality filters on generated
/// attributes, and wide group-bys are narrowed to low-cardinality columns
/// so cached values stay small. Join topology and table counts match the
/// originals.
class ChBenchDataset {
 public:
  /// Creates all tables, loads the main portion (1 - delta_fraction),
  /// merges, then inserts the delta portion.
  static StatusOr<ChBenchDataset> Create(Database* db,
                                         const ChBenchConfig& config);

  const ChBenchConfig& config() const { return config_; }

  /// Q3: unshipped-order revenue — customer ⋈ orders ⋈ neworder ⋈
  /// orderline (4 tables).
  AggregateQuery Q3() const;

  /// Q5: revenue per nation — customer ⋈ orders ⋈ orderline ⋈ stock ⋈
  /// supplier ⋈ nation ⋈ region (7 tables).
  AggregateQuery Q5() const;

  /// Q9: profit per nation and year — item ⋈ stock ⋈ orderline ⋈ orders ⋈
  /// supplier ⋈ nation (6 tables).
  AggregateQuery Q9() const;

  /// Q10: returned-item revenue per nation/state — customer ⋈ orders ⋈
  /// orderline ⋈ nation (4 tables).
  AggregateQuery Q10() const;

  /// Q1: order-line pricing summary — single-table aggregate over
  /// orderline (SUM/AVG/COUNT grouped by delivery year). Not part of the
  /// paper's Fig. 9 selection (it needs no join pruning) but fully
  /// supported by the cache; useful as a single-table baseline.
  AggregateQuery Q1() const;

  /// Q6: revenue-change forecast — single-table filtered SUM over
  /// orderline. Single-table baseline like Q1.
  AggregateQuery Q6() const;

  /// All four queries keyed by their TPC-H number.
  std::vector<std::pair<int, AggregateQuery>> AllQueries() const;

 private:
  ChBenchDataset(Database* db, ChBenchConfig config)
      : db_(db), config_(std::move(config)) {}

  Status CreateTables();
  Status LoadDimensions();
  /// Inserts orders [first, last) with their orderlines and neworders.
  Status LoadOrders(Rng& rng, size_t first, size_t last, int64_t max_stock_id);
  Status LoadStock(Rng& rng, int64_t first_id, int64_t last_id);

  Database* db_;
  ChBenchConfig config_;
  size_t total_orders_ = 0;
  size_t total_customers_ = 0;
  int64_t next_orderline_id_ = 1;
  int64_t next_neworder_id_ = 1;
};

}  // namespace aggcache

#endif  // AGGCACHE_WORKLOAD_CHBENCH_H_
