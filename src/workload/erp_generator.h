#ifndef AGGCACHE_WORKLOAD_ERP_GENERATOR_H_
#define AGGCACHE_WORKLOAD_ERP_GENERATOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "query/aggregate_query.h"
#include "storage/database.h"

namespace aggcache {

/// Configuration of the synthetic ERP dataset that stands in for the
/// paper's customer financial-accounting data (Section 6): a Header table,
/// an Item table (~10 items per header), and a small ProductCategory
/// dimension — the header/item/dimension pattern of Section 3.
struct ErpConfig {
  /// Business objects (header + items) loaded and merged into main.
  size_t num_headers_main = 10000;
  /// Expected items per header (uniform in [1, 2*avg-1]).
  size_t avg_items_per_header = 10;
  size_t num_categories = 50;
  std::vector<int64_t> fiscal_years = {2012, 2013, 2014};
  std::vector<std::string> languages = {"ENG", "GER"};
  /// Create the tid columns and enforce matching dependencies. Disabled
  /// only by the Section 6.2 memory experiment's baseline schema.
  bool with_tid_columns = true;
  uint64_t seed = 42;
};

/// Owns the ERP tables inside a Database and generates workload against
/// them. Business objects are inserted transactionally (header + items in
/// one transaction), giving the temporal locality the paper's object-aware
/// pruning exploits; InsertLateItems violates that locality on purpose.
class ErpDataset {
 public:
  /// Creates the three tables, loads `num_headers_main` business objects,
  /// and merges everything into the main partitions.
  static StatusOr<ErpDataset> Create(Database* db, const ErpConfig& config);

  /// Movable for by-value construction (Create). The id counters are
  /// atomics, so concurrent writer threads sharing one dataset allocate
  /// distinct header/item ids; pass each writer its own Rng — the dataset
  /// itself holds no other mutable state. Moving is single-threaded setup
  /// code only.
  ErpDataset(ErpDataset&& other) noexcept
      : db_(other.db_),
        config_(std::move(other.config_)),
        header_(other.header_),
        item_(other.item_),
        category_(other.category_),
        next_header_id_(
            other.next_header_id_.load(std::memory_order_relaxed)),
        next_item_id_(other.next_item_id_.load(std::memory_order_relaxed)),
        load_rng_(other.load_rng_) {}

  ErpDataset(const ErpDataset&) = delete;
  ErpDataset& operator=(const ErpDataset&) = delete;

  Table* header() const { return header_; }
  Table* item() const { return item_; }
  Table* category() const { return category_; }
  const ErpConfig& config() const { return config_; }

  /// Inserts one business object (a header and its items) in a single
  /// transaction into the deltas. Returns the number of items inserted.
  StatusOr<size_t> InsertBusinessObject(Rng& rng);

  /// Inserts `count` items attached to random existing headers — late item
  /// additions that break the temporal soft-constraint (Section 3.2's CRM
  /// pattern). Join pruning between Header_main and Item_delta then fails,
  /// exercising the pushdown path.
  Status InsertLateItems(Rng& rng, size_t count);

  /// The paper's Listing 1: profit per category for one fiscal year.
  ///   SELECT D.Name, SUM(I.Price) FROM Header H, Item I, ProductCategory D
  ///   WHERE I.HeaderID = H.HeaderID AND I.CategoryID = D.CategoryID
  ///     AND D.Language = 'ENG' AND H.FiscalYear = <year>
  ///   GROUP BY D.Name
  AggregateQuery ProfitByCategoryQuery(int64_t fiscal_year) const;

  /// Two-table variant (header ⋈ item): revenue per fiscal year.
  AggregateQuery RevenueByYearQuery() const;

  /// Single-table aggregate over Item, used by the Fig. 6 maintenance
  /// experiment: SUM(Price), COUNT(*) grouped by CategoryID.
  AggregateQuery ItemTotalsByCategoryQuery() const;

 private:
  ErpDataset(Database* db, ErpConfig config)
      : db_(db), config_(std::move(config)) {}

  Status CreateTables();
  Status LoadInitialData();

  Database* db_;
  ErpConfig config_;
  Table* header_ = nullptr;
  Table* item_ = nullptr;
  Table* category_ = nullptr;
  /// Atomic so concurrent writers allocate unique ids; the insert itself
  /// synchronizes on the table's storage lock.
  std::atomic<int64_t> next_header_id_{1};
  std::atomic<int64_t> next_item_id_{1};
  Rng load_rng_{0};
};

}  // namespace aggcache

#endif  // AGGCACHE_WORKLOAD_ERP_GENERATOR_H_
