#include "workload/trace.h"

#include <sstream>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "sql/parser.h"

namespace aggcache {
namespace {

// Strips leading/trailing whitespace.
std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

Status TraceReplayer::ExecuteSql(const std::string& sql,
                                 TraceReport* report) {
  ASSIGN_OR_RETURN(ParsedStatement statement, ParseStatement(sql, *db_));
  Stopwatch watch;
  switch (statement.kind) {
    case ParsedStatement::Kind::kSelect: {
      Transaction txn = db_->Begin();
      ASSIGN_OR_RETURN(AggregateResult result,
                       cache_->Execute(statement.select, txn, options_));
      report->last_query_groups = result.num_groups();
      report->query_ms += watch.ElapsedMillis();
      ++report->queries;
      break;
    }
    case ParsedStatement::Kind::kInsert:
      RETURN_IF_ERROR(ApplyStatement(statement, db_));
      report->insert_ms += watch.ElapsedMillis();
      ++report->inserts;
      break;
    case ParsedStatement::Kind::kCreateTable:
      RETURN_IF_ERROR(ApplyStatement(statement, db_));
      ++report->ddl;
      break;
  }
  ++report->statements;
  return Status::Ok();
}

Status TraceReplayer::ExecuteMerge(const std::string& args,
                                   TraceReport* report) {
  Stopwatch watch;
  if (Trim(args).empty()) {
    RETURN_IF_ERROR(db_->MergeAll());
  } else {
    std::istringstream stream(args);
    std::vector<std::string> tables;
    std::string name;
    while (stream >> name) tables.push_back(name);
    RETURN_IF_ERROR(db_->MergeTables(tables));
  }
  report->merge_ms += watch.ElapsedMillis();
  ++report->merges;
  return Status::Ok();
}

StatusOr<TraceReport> TraceReplayer::Replay(std::istream& trace) {
  TraceReport report;
  Stopwatch total;
  std::string line;
  std::string statement;
  size_t line_number = 0;
  while (std::getline(trace, line)) {
    ++line_number;
    std::string trimmed = Trim(line);
    if (statement.empty()) {
      if (trimmed.empty() || trimmed[0] == '#') continue;
      if (trimmed[0] == '!') {
        if (trimmed.rfind("!merge", 0) == 0) {
          Status status = ExecuteMerge(trimmed.substr(6), &report);
          if (!status.ok()) {
            return Status(status.code(),
                          StrFormat("trace line %zu: %s", line_number,
                                    status.message().c_str()));
          }
          continue;
        }
        return Status::InvalidArgument(StrFormat(
            "trace line %zu: unknown meta operation '%s'", line_number,
            trimmed.c_str()));
      }
    }
    statement += line + "\n";
    if (trimmed.find(';') != std::string::npos) {
      Status status = ExecuteSql(statement, &report);
      if (!status.ok()) {
        return Status(status.code(),
                      StrFormat("trace line %zu: %s", line_number,
                                status.message().c_str()));
      }
      statement.clear();
    }
  }
  if (!Trim(statement).empty()) {
    return Status::InvalidArgument(
        "trace ends mid-statement (missing ';')");
  }
  report.total_ms = total.ElapsedMillis();
  return report;
}

StatusOr<TraceReport> TraceReplayer::ReplayString(const std::string& trace) {
  std::istringstream stream(trace);
  return Replay(stream);
}

}  // namespace aggcache
