#include "workload/trace.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "sql/parser.h"
#include "verify/fault_injector.h"

namespace aggcache {
namespace {

// Strips leading/trailing whitespace.
std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

// Splits a meta-operation argument string into tokens, keeping
// single-quoted strings (no escapes) together.
StatusOr<std::vector<std::string>> TokenizeMetaArgs(const std::string& args) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < args.size()) {
    if (std::isspace(static_cast<unsigned char>(args[i]))) {
      ++i;
      continue;
    }
    if (args[i] == '\'') {
      size_t close = args.find('\'', i + 1);
      if (close == std::string::npos) {
        return Status::InvalidArgument("unterminated string literal in '" +
                                       args + "'");
      }
      tokens.push_back(args.substr(i, close - i + 1));
      i = close + 1;
      continue;
    }
    size_t end = i;
    while (end < args.size() &&
           !std::isspace(static_cast<unsigned char>(args[end]))) {
      ++end;
    }
    tokens.push_back(args.substr(i, end - i));
    i = end;
  }
  return tokens;
}

// SQL-style literal: 'string', integer, or decimal.
StatusOr<Value> ParseLiteralToken(const std::string& token) {
  if (token.empty()) return Status::InvalidArgument("empty literal");
  if (token.front() == '\'') {
    if (token.size() < 2 || token.back() != '\'') {
      return Status::InvalidArgument("malformed string literal " + token);
    }
    return Value(token.substr(1, token.size() - 2));
  }
  if (token == "NULL") return Value();
  char* end = nullptr;
  if (token.find('.') == std::string::npos &&
      token.find('e') == std::string::npos) {
    long long as_int = std::strtoll(token.c_str(), &end, 10);
    if (end != token.c_str() && *end == '\0') {
      return Value(static_cast<int64_t>(as_int));
    }
  }
  double as_double = std::strtod(token.c_str(), &end);
  if (end != token.c_str() && *end == '\0') return Value(as_double);
  return Status::InvalidArgument("malformed literal '" + token + "'");
}

}  // namespace

Status TraceReplayer::ExecuteSql(const std::string& sql,
                                 TraceReport* report) {
  ASSIGN_OR_RETURN(ParsedStatement statement, ParseStatement(sql, *db_));
  Stopwatch watch;
  switch (statement.kind) {
    case ParsedStatement::Kind::kSelect: {
      Transaction txn = db_->Begin();
      ASSIGN_OR_RETURN(AggregateResult result,
                       cache_->Execute(statement.select, txn, options_));
      report->last_query_groups = result.num_groups();
      report->query_ms += watch.ElapsedMillis();
      ++report->queries;
      break;
    }
    case ParsedStatement::Kind::kExplain: {
      // Replay still executes the query (same cache effects as a SELECT);
      // the trace itself has no consumer here and is dropped.
      QueryTrace trace;
      trace.statement = sql;
      Transaction txn = db_->Begin();
      ASSIGN_OR_RETURN(
          AggregateResult result,
          cache_->ExecuteTraced(statement.select, txn, options_, &trace));
      report->last_query_groups = result.num_groups();
      report->query_ms += watch.ElapsedMillis();
      ++report->queries;
      break;
    }
    case ParsedStatement::Kind::kInsert: {
      Status status;
      if (scope_.has_value()) {
        // Inside !atomic begin .. end every insert runs under the one
        // scoped transaction, so a crash mid-scope must roll them all back.
        ASSIGN_OR_RETURN(Table * table, db_->GetTable(statement.insert_table));
        status = table->Insert(*scope_, statement.insert_values);
      } else {
        status = ApplyStatement(statement, db_);
      }
      if (!status.ok()) {
        // An insert swallowed by an armed WAL crash point (wal.append,
        // wal.append.torn) is the scenario under test; the row is lost to
        // the log and the trace's next ops are !crash + !recover.
        if (!FaultInjector::IsInjectedFault(status)) return status;
        ++report->faulted_ops;
      }
      report->insert_ms += watch.ElapsedMillis();
      ++report->inserts;
      break;
    }
    case ParsedStatement::Kind::kCreateTable:
      RETURN_IF_ERROR(ApplyStatement(statement, db_));
      ++report->ddl;
      break;
  }
  ++report->statements;
  return Status::Ok();
}

Status TraceReplayer::ExecuteMerge(const std::string& args,
                                   TraceReport* report) {
  Stopwatch watch;
  Status status;
  if (Trim(args).empty()) {
    status = db_->MergeAll();
  } else {
    std::istringstream stream(args);
    std::vector<std::string> tables;
    std::string name;
    while (stream >> name) tables.push_back(name);
    status = db_->MergeTables(tables);
  }
  if (!status.ok()) {
    // Fuzzer traces carry fault schedules; a merge aborted by an armed
    // injection point is the scenario under test, not a broken trace.
    if (!FaultInjector::IsInjectedFault(status)) return status;
    ++report->faulted_merges;
  }
  report->merge_ms += watch.ElapsedMillis();
  ++report->merges;
  return Status::Ok();
}

Status TraceReplayer::ExecuteMeta(const std::string& line,
                                  TraceReport* report) {
  size_t space = line.find_first_of(" \t");
  std::string op = line.substr(0, space);
  std::string args = space == std::string::npos ? "" : line.substr(space + 1);
  if (op == "!merge") return ExecuteMerge(args, report);
  if (op == "!clearcache") {
    cache_->Clear();
    return Status::Ok();
  }
  if (op == "!atomic") {
    std::string which = Trim(args);
    if (which == "begin") {
      if (scope_.has_value()) {
        return Status::FailedPrecondition("atomic scope already open");
      }
      scope_.emplace(db_->BeginAtomic());
      return Status::Ok();
    }
    if (which == "end") {
      if (!scope_.has_value()) {
        return Status::FailedPrecondition("no atomic scope open");
      }
      scope_.reset();  // Destructor commits the scope (and logs it).
      return Status::Ok();
    }
    return Status::InvalidArgument("!atomic expects 'begin' or 'end'");
  }
  if (op == "!checkpoint" || op == "!crash" || op == "!recover") {
    if (host_ == nullptr) {
      return Status::FailedPrecondition(op +
                                        " requires an engine host (see "
                                        "TraceReplayer::SetEngineHost)");
    }
    if (op == "!checkpoint") {
      Status status = host_->Checkpoint();
      if (!status.ok()) {
        // A checkpoint aborted by an armed crash point (checkpoint.write,
        // checkpoint.publish, checkpoint.truncate) is an expected outcome;
        // recovery falls back to the previous generation.
        if (!FaultInjector::IsInjectedFault(status)) return status;
        ++report->faulted_ops;
      }
      ++report->checkpoints;
      return Status::Ok();
    }
    if (op == "!crash") {
      // Poison the log first, then drop the open scope: its destructor's
      // commit record can no longer reach disk, which is exactly what a
      // kill mid-scope looks like — recovery must roll the scope back.
      RETURN_IF_ERROR(host_->Crash());
      scope_.reset();
      ++report->crashes;
      return Status::Ok();
    }
    if (scope_.has_value()) {
      return Status::FailedPrecondition("!recover with an open scope");
    }
    RETURN_IF_ERROR(host_->Recover());
    ++report->recoveries;
    return Status::Ok();
  }
  if (op == "!fault") {
    return FaultInjector::Global().ArmFromSpec(Trim(args));
  }
  if (op == "!faultseed") {
    ASSIGN_OR_RETURN(std::vector<std::string> tokens, TokenizeMetaArgs(args));
    if (tokens.size() != 1) {
      return Status::InvalidArgument("!faultseed expects one integer");
    }
    ASSIGN_OR_RETURN(Value seed, ParseLiteralToken(tokens[0]));
    if (!seed.is_int64()) {
      return Status::InvalidArgument("!faultseed expects one integer");
    }
    FaultInjector::Global().Reseed(static_cast<uint64_t>(seed.AsInt64()));
    return Status::Ok();
  }
  if (op == "!flightdump") {
    ASSIGN_OR_RETURN(std::vector<std::string> tokens, TokenizeMetaArgs(args));
    size_t max_events = 4096;
    if (tokens.size() > 1) {
      return Status::InvalidArgument("!flightdump expects at most one count");
    }
    if (tokens.size() == 1) {
      ASSIGN_OR_RETURN(Value count, ParseLiteralToken(tokens[0]));
      if (!count.is_int64() || count.AsInt64() <= 0) {
        return Status::InvalidArgument("!flightdump expects a positive count");
      }
      max_events = static_cast<size_t>(count.AsInt64());
    }
    FlightRecorder::Global().DumpToStderr(max_events);
    return Status::Ok();
  }
  if (op == "!spandump") {
    ASSIGN_OR_RETURN(std::vector<std::string> tokens, TokenizeMetaArgs(args));
    size_t max_spans = 8192;
    if (tokens.size() > 1) {
      return Status::InvalidArgument("!spandump expects at most one count");
    }
    if (tokens.size() == 1) {
      ASSIGN_OR_RETURN(Value count, ParseLiteralToken(tokens[0]));
      if (!count.is_int64() || count.AsInt64() <= 0) {
        return Status::InvalidArgument("!spandump expects a positive count");
      }
      max_spans = static_cast<size_t>(count.AsInt64());
    }
    SpanRecorder::Global().DumpToStderr(max_spans);
    return Status::Ok();
  }
  if (op == "!aging") {
    ASSIGN_OR_RETURN(std::vector<std::string> tokens, TokenizeMetaArgs(args));
    if (tokens.empty()) {
      return Status::InvalidArgument("!aging expects table names");
    }
    for (const std::string& name : tokens) {
      RETURN_IF_ERROR(db_->GetTable(name).status());
    }
    db_->RegisterAgingGroup(tokens);
    return Status::Ok();
  }
  if (op == "!split") {
    ASSIGN_OR_RETURN(std::vector<std::string> tokens, TokenizeMetaArgs(args));
    if (tokens.size() != 3) {
      return Status::InvalidArgument("!split expects <table> <column> <value>");
    }
    ASSIGN_OR_RETURN(Table * table, db_->GetTable(tokens[0]));
    ASSIGN_OR_RETURN(Value cold_below, ParseLiteralToken(tokens[2]));
    RETURN_IF_ERROR(table->SplitHotCold(tokens[1], cold_below));
    ++report->splits;
    return Status::Ok();
  }
  if (op == "!update" || op == "!delete") {
    ASSIGN_OR_RETURN(std::vector<std::string> tokens, TokenizeMetaArgs(args));
    if (tokens.size() < 2) {
      return Status::InvalidArgument(op + " expects <table> <pk> ...");
    }
    ASSIGN_OR_RETURN(Table * table, db_->GetTable(tokens[0]));
    ASSIGN_OR_RETURN(Value pk, ParseLiteralToken(tokens[1]));
    Transaction txn = db_->Begin();
    if (op == "!delete") {
      if (tokens.size() != 2) {
        return Status::InvalidArgument("!delete expects <table> <pk>");
      }
      RETURN_IF_ERROR(table->DeleteByPk(txn, pk));
      ++report->deletes;
      return Status::Ok();
    }
    std::vector<Value> values;
    for (size_t i = 2; i < tokens.size(); ++i) {
      ASSIGN_OR_RETURN(Value v, ParseLiteralToken(tokens[i]));
      values.push_back(std::move(v));
    }
    RETURN_IF_ERROR(table->UpdateByPk(txn, pk, values));
    ++report->updates;
    return Status::Ok();
  }
  return Status::InvalidArgument("unknown meta operation '" + line + "'");
}

StatusOr<TraceReport> TraceReplayer::Replay(std::istream& trace) {
  TraceReport report;
  Stopwatch total;
  std::string line;
  std::string statement;
  size_t line_number = 0;
  while (std::getline(trace, line)) {
    ++line_number;
    std::string trimmed = Trim(line);
    if (statement.empty()) {
      if (trimmed.empty() || trimmed[0] == '#') continue;
      if (trimmed[0] == '!') {
        Status status = ExecuteMeta(trimmed, &report);
        if (!status.ok()) {
          return Status(status.code(),
                        StrFormat("trace line %zu: %s", line_number,
                                  status.message().c_str()));
        }
        continue;
      }
    }
    statement += line + "\n";
    if (trimmed.find(';') != std::string::npos) {
      Status status = ExecuteSql(statement, &report);
      if (!status.ok()) {
        return Status(status.code(),
                      StrFormat("trace line %zu: %s", line_number,
                                status.message().c_str()));
      }
      statement.clear();
    }
  }
  if (!Trim(statement).empty()) {
    return Status::InvalidArgument(
        "trace ends mid-statement (missing ';')");
  }
  report.total_ms = total.ElapsedMillis();
  return report;
}

StatusOr<TraceReport> TraceReplayer::ReplayString(const std::string& trace) {
  std::istringstream stream(trace);
  return Replay(stream);
}

}  // namespace aggcache
