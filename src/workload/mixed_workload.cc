#include "workload/mixed_workload.h"

#include "common/stopwatch.h"

namespace aggcache {
namespace {

// Busy-waits for the simulated statement-stack cost.
void SimulateStatementOverhead(double micros, uint64_t statements) {
  if (micros <= 0.0 || statements == 0) return;
  Stopwatch watch;
  double target_ns = micros * 1e3 * static_cast<double>(statements);
  while (static_cast<double>(watch.ElapsedNanos()) < target_ns) {
  }
}

}  // namespace

StatusOr<MixedWorkloadResult> RunMixedWorkload(
    Database* db, const AggregateQuery& query, MaintenanceStrategy strategy,
    AggregateCacheManager* manager, const MixedWorkloadConfig& config,
    const std::function<Status(Rng&)>& insert_one_row) {
  ASSIGN_OR_RETURN(std::unique_ptr<MaterializedAggregate> view,
                   CreateMaterializedAggregate(strategy, db, query, manager));
  Rng rng(config.seed);
  MixedWorkloadResult result;
  Stopwatch total;
  for (size_t op = 0; op < config.num_operations; ++op) {
    if (rng.Chance(config.insert_ratio)) {
      Stopwatch watch;
      RETURN_IF_ERROR(insert_one_row(rng));
      RETURN_IF_ERROR(view->OnInsertCommitted());
      SimulateStatementOverhead(
          config.statement_overhead_us,
          1 + view->ConsumeMaintenanceStatements());
      result.insert_ms += watch.ElapsedMillis();
      ++result.inserts;
    } else {
      Stopwatch watch;
      Transaction txn = db->Begin();
      ASSIGN_OR_RETURN(AggregateResult ignored, view->Query(txn));
      (void)ignored;
      SimulateStatementOverhead(
          config.statement_overhead_us,
          1 + view->ConsumeMaintenanceStatements());
      result.query_ms += watch.ElapsedMillis();
      ++result.queries;
    }
  }
  result.total_ms = total.ElapsedMillis();
  return result;
}

}  // namespace aggcache
