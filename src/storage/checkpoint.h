#ifndef AGGCACHE_STORAGE_CHECKPOINT_H_
#define AGGCACHE_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <ostream>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/aggregate_query.h"
#include "txn/types.h"

namespace aggcache {

class Database;
class WriteAheadLog;

/// Persisted description of one formerly-cached aggregate: the query shape,
/// the snapshot tid the entry was valid at, and its profit statistics — no
/// payload. A warm restart re-admits these lazily: the first matching query
/// bypasses the admission cost threshold and rebuilds the aggregate, so a
/// recovering node skips the cold-start compensation storm for entries that
/// were hot before the crash.
struct CacheDescriptor {
  AggregateQuery query;
  Tid base_tid = 0;           ///< Snapshot tid the entry was current at.
  uint64_t hit_count = 0;     ///< Lifetime hits before the restart.
  double main_exec_ms = 0.0;  ///< Measured uncached cost (admission stat).
};

/// Implemented by the aggregate cache manager so the checkpointer can
/// export descriptors without a storage→cache dependency.
class CacheDescriptorSource {
 public:
  virtual ~CacheDescriptorSource() = default;
  virtual std::vector<CacheDescriptor> ExportCacheDescriptors() const = 0;
};

/// One registered merge group, persisted so the merge daemon's declarative
/// policy survives a restart.
struct PersistedMergeGroup {
  std::vector<std::string> tables;
  size_t delta_row_threshold = 0;
};

/// Everything a checkpoint payload decodes into besides the base data that
/// ReadSnapshot restores directly into the database.
struct CheckpointExtras {
  std::vector<PersistedMergeGroup> merge_groups;
  std::vector<CacheDescriptor> cache_descriptors;
};

/// Structural text codec for an AggregateQuery (tables, joins, filters,
/// group-by, aggregates — HAVING excluded, matching CanonicalString's
/// cache-identity semantics). Used inside checkpoint trailers; exposed for
/// the round-trip tests.
void EncodeAggregateQuery(const AggregateQuery& query, std::ostream& out);
StatusOr<AggregateQuery> DecodeAggregateQuery(std::istream& in);

/// Serializes the full database (snapshot text format) followed by a
/// checkpoint trailer: merge groups and cache descriptors. The caller must
/// hold whatever locks make the read consistent (the Checkpointer does).
StatusOr<std::string> EncodeCheckpointPayload(
    const Database& db, const CacheDescriptorSource* descriptor_source);

/// Restores a checkpoint payload into an empty database and returns the
/// trailer. Merge groups are re-registered on `db`; cache descriptors are
/// returned for the cache manager to import.
StatusOr<CheckpointExtras> DecodeCheckpointPayload(const std::string& payload,
                                                   Database* db);

/// Owns checkpoint creation and retention for one data directory.
///
/// Consistency protocol: every logged statement holds `statement_gate()`
/// shared for its full duration (WAL append + table mutation), acquired
/// BEFORE any table lock. A checkpoint takes the gate exclusively — so no
/// statement is mid-flight — skips if atomic scopes are active, captures
/// the WAL high-water lsn, then takes every table's lock shared (excluding
/// merges) while it encodes the payload. Disk I/O happens after all locks
/// are released.
///
/// Retention keeps the newest two generations; the WAL is truncated below
/// the *older* retained checkpoint's lsn, so even a corrupt newest segment
/// leaves a recoverable (checkpoint, WAL-tail) pair on disk.
class Checkpointer {
 public:
  Checkpointer(Database* db, std::string dir);

  /// Not owned; may be null (no descriptors persisted).
  void SetDescriptorSource(const CacheDescriptorSource* source) {
    descriptor_source_ = source;
  }

  /// Held shared by every logged statement, exclusively by Checkpoint().
  std::shared_mutex& statement_gate() { return statement_gate_; }

  /// Attempts one checkpoint. Returns true when a segment was published,
  /// false when skipped because atomic write scopes were active (a scope's
  /// rows are uncommitted; checkpoints only capture fully-committed
  /// states). `wal` may be null (AGGCACHE_WAL=off: segment-only restarts).
  StatusOr<bool> Checkpoint(WriteAheadLog* wal);

  uint64_t last_checkpoint_lsn() const { return last_checkpoint_lsn_; }

 private:
  Database* const db_;
  const std::string dir_;
  const CacheDescriptorSource* descriptor_source_ = nullptr;
  std::shared_mutex statement_gate_;
  uint64_t last_checkpoint_lsn_ = 0;
};

}  // namespace aggcache

#endif  // AGGCACHE_STORAGE_CHECKPOINT_H_
