#ifndef AGGCACHE_STORAGE_DATABASE_H_
#define AGGCACHE_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/delta_merge.h"
#include "storage/merge_observer.h"
#include "storage/table.h"
#include "txn/transaction_manager.h"

namespace aggcache {

/// The catalog: owns tables, the transaction manager, merge observers, and
/// the object-aware metadata (consistent aging groups, Section 5.4). Table
/// pointers returned by CreateTable/GetTable remain stable for the lifetime
/// of the database.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a table. Referenced tables (foreign keys) must already exist.
  StatusOr<Table*> CreateTable(const TableSchema& schema);

  StatusOr<Table*> GetTable(const std::string& name);
  StatusOr<const Table*> GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  TransactionManager& txn_manager() { return txn_manager_; }
  const TransactionManager& txn_manager() const { return txn_manager_; }

  /// Starts a new transaction.
  Transaction Begin() { return txn_manager_.Begin(); }

  /// Merges all partition groups of `table_name`, notifying merge observers
  /// around each group merge.
  Status Merge(const std::string& table_name,
               const MergeOptions& options = MergeOptions());

  /// Synchronized merge of several tables (Section 5.2): merging related
  /// transactional tables together keeps matching tuples on the same side
  /// of the main/delta boundary, which is what makes dynamic join pruning
  /// succeed.
  Status MergeTables(const std::vector<std::string>& table_names,
                     const MergeOptions& options = MergeOptions());

  /// Merges every table in the catalog.
  Status MergeAll(const MergeOptions& options = MergeOptions());

  /// Observers are notified around every group merge; not owned.
  void AddMergeObserver(MergeObserver* observer);
  void RemoveMergeObserver(MergeObserver* observer);

  /// Declares that `table_names` are aged under a consistent definition:
  /// matching rows always share the same temperature, so subjoins between a
  /// cold partition of one and a hot partition of another are logically
  /// empty and can be pruned (Section 5.4).
  void RegisterAgingGroup(std::vector<std::string> table_names);

  /// True when both tables belong to one registered aging group.
  bool InSameAgingGroup(const std::string& a, const std::string& b) const;

  /// All registered aging groups (snapshot persistence).
  const std::vector<std::vector<std::string>>& aging_groups() const {
    return aging_groups_;
  }

  /// Declarative auto-merge policy operationalizing Section 5.2: the tables
  /// of one merge group are always merged *together*, as soon as any
  /// member's delta holds at least `delta_row_threshold` rows. Merging
  /// related transactional tables synchronously keeps matching tuples on
  /// the same side of the main/delta boundary, which is what maximizes the
  /// join-pruning success rate.
  void RegisterMergeGroup(std::vector<std::string> table_names,
                          size_t delta_row_threshold);

  /// Evaluates every registered merge group and merges those over their
  /// threshold. Call after write transactions (cheap when nothing is due).
  /// Returns the number of groups merged.
  StatusOr<size_t> AutoMergeTick(const MergeOptions& options = MergeOptions());

 private:
  struct MergeGroup {
    std::vector<std::string> tables;
    size_t delta_row_threshold = 0;
  };

  std::map<std::string, std::unique_ptr<Table>> tables_;
  TransactionManager txn_manager_;
  std::vector<MergeObserver*> merge_observers_;
  std::vector<std::vector<std::string>> aging_groups_;
  std::vector<MergeGroup> merge_groups_;
};

}  // namespace aggcache

#endif  // AGGCACHE_STORAGE_DATABASE_H_
