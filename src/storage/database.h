#ifndef AGGCACHE_STORAGE_DATABASE_H_
#define AGGCACHE_STORAGE_DATABASE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/delta_merge.h"
#include "storage/merge_observer.h"
#include "storage/table.h"
#include "txn/epoch.h"
#include "txn/transaction_manager.h"

namespace aggcache {

class DurabilityManager;

/// The catalog: owns tables, the transaction manager, the epoch manager,
/// merge observers, and the object-aware metadata (consistent aging groups,
/// Section 5.4). Table pointers returned by CreateTable/GetTable remain
/// stable for the lifetime of the database.
///
/// Threading model (DESIGN.md §6): the catalog map and registration lists
/// have their own mutexes; per-table data is protected by each table's
/// reader-writer mutex. Merge() locks its target exclusively and every
/// other catalog table shared — merge observers (aggregate cache
/// maintenance) read joined tables during the callbacks, and the shared
/// locks guarantee those reads see no concurrent writer. Storage displaced
/// by a merge is retired through the epoch manager and freed only once all
/// readers that could reference it have drained.
class Database {
 public:
  Database() = default;
  /// Stops the periodic metrics dumper (emitting one final dump) before the
  /// engine's state goes away — a dumper left running would render metrics
  /// that describe a destroyed database, and on process exit could outlive
  /// the registry itself.
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a table. Referenced tables (foreign keys) must already exist.
  StatusOr<Table*> CreateTable(const TableSchema& schema);

  StatusOr<Table*> GetTable(const std::string& name);
  StatusOr<const Table*> GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  TransactionManager& txn_manager() { return txn_manager_; }
  const TransactionManager& txn_manager() const { return txn_manager_; }

  /// Epoch manager for deferred reclamation of merged-away storage.
  EpochManager& epochs() { return epochs_; }
  const EpochManager& epochs() const { return epochs_; }

  /// Starts a new transaction.
  Transaction Begin() { return txn_manager_.Begin(); }

  /// Starts a transaction inside an atomic write scope: its inserts become
  /// visible to other snapshots all at once, when the returned handle is
  /// destroyed. Scopes are insert-only (updates/deletes are rejected).
  /// With durability attached, the scope's begin and commit are WAL-logged
  /// so recovery can roll back scopes that were open at the crash.
  ScopedTransaction BeginAtomic();

  /// Merges all partition groups of `table_name`, notifying merge observers
  /// around each group merge.
  Status Merge(const std::string& table_name,
               const MergeOptions& options = MergeOptions());

  /// Synchronized merge of several tables (Section 5.2): merging related
  /// transactional tables together keeps matching tuples on the same side
  /// of the main/delta boundary, which is what makes dynamic join pruning
  /// succeed.
  Status MergeTables(const std::vector<std::string>& table_names,
                     const MergeOptions& options = MergeOptions());

  /// Merges every table in the catalog.
  Status MergeAll(const MergeOptions& options = MergeOptions());

  /// Observers are notified around every group merge; not owned.
  void AddMergeObserver(MergeObserver* observer);
  void RemoveMergeObserver(MergeObserver* observer);

  /// Declares that `table_names` are aged under a consistent definition:
  /// matching rows always share the same temperature, so subjoins between a
  /// cold partition of one and a hot partition of another are logically
  /// empty and can be pruned (Section 5.4).
  void RegisterAgingGroup(std::vector<std::string> table_names);

  /// True when both tables belong to one registered aging group.
  bool InSameAgingGroup(const std::string& a, const std::string& b) const;

  /// All registered aging groups (snapshot persistence).
  const std::vector<std::vector<std::string>>& aging_groups() const {
    return aging_groups_;
  }

  /// Declarative auto-merge policy operationalizing Section 5.2: the tables
  /// of one merge group are always merged *together*, as soon as any
  /// member's delta holds at least `delta_row_threshold` rows. Merging
  /// related transactional tables synchronously keeps matching tuples on
  /// the same side of the main/delta boundary, which is what maximizes the
  /// join-pruning success rate.
  void RegisterMergeGroup(std::vector<std::string> table_names,
                          size_t delta_row_threshold);

  /// Evaluates every registered merge group and merges those over their
  /// threshold. Call after write transactions (cheap when nothing is due).
  /// Returns the number of groups merged.
  StatusOr<size_t> AutoMergeTick(const MergeOptions& options = MergeOptions());

  /// Registered merge groups whose delta sizes exceed their threshold right
  /// now (sized under shared table locks). The merge daemon polls this and
  /// merges each returned group; the answer is advisory — deltas keep
  /// moving — so the daemon re-checks on every tick.
  std::vector<std::vector<std::string>> DueMergeGroups() const;

  /// All registered merge groups as (tables, delta_row_threshold) pairs
  /// (checkpoint persistence).
  std::vector<std::pair<std::vector<std::string>, size_t>> merge_groups()
      const;

  /// Wires durability in (or out, with nullptr): statements consult
  /// durability() to log themselves, and the transaction manager's
  /// scope-end listener is pointed at the manager's commit record writer.
  /// Called by DurabilityManager::Open after recovery completes — never
  /// during replay, so replayed statements are not re-logged.
  void AttachDurability(DurabilityManager* durability);

  /// The attached durability manager, or nullptr when running in-memory.
  DurabilityManager* durability() const {
    return durability_.load(std::memory_order_acquire);
  }

  /// True while startup recovery is replaying into this database.
  /// Background services (merge daemon, metrics dumper) assert on this:
  /// they must only start on a fully recovered catalog.
  bool restoring() const { return restoring_.load(std::memory_order_acquire); }
  void set_restoring(bool restoring) {
    restoring_.store(restoring, std::memory_order_release);
  }

 private:
  friend class Table;  // FK resolution runs under catalog_mu_ in CreateTable.

  struct MergeGroup {
    std::vector<std::string> tables;
    size_t delta_row_threshold = 0;
  };

  /// Catalog lookup without taking catalog_mu_; the caller must hold it.
  StatusOr<const Table*> GetTableLocked(const std::string& name) const;

  /// True when any member table's delta is over the group threshold.
  StatusOr<bool> GroupDue(const MergeGroup& group) const;

  mutable std::mutex catalog_mu_;   // guards tables_/aging_groups_/merge_groups_
  mutable std::mutex observers_mu_; // guards merge_observers_
  std::map<std::string, std::unique_ptr<Table>> tables_;
  TransactionManager txn_manager_;
  EpochManager epochs_;
  std::vector<MergeObserver*> merge_observers_;
  std::vector<std::vector<std::string>> aging_groups_;
  std::vector<MergeGroup> merge_groups_;
  std::atomic<DurabilityManager*> durability_{nullptr};
  std::atomic<bool> restoring_{false};
};

}  // namespace aggcache

#endif  // AGGCACHE_STORAGE_DATABASE_H_
