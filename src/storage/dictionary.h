#ifndef AGGCACHE_STORAGE_DICTIONARY_H_
#define AGGCACHE_STORAGE_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace aggcache {

/// Code assigned to a distinct value within one column's dictionary.
using ValueId = uint32_t;

inline constexpr ValueId kInvalidValueId = ~0U;

/// Per-column dictionary mapping distinct values to dense codes.
///
/// Two modes mirror the main-delta architecture:
///  * kSortedMain — immutable, value-ordered (codes preserve value order, so
///    code 0 is the minimum and the last code the maximum). Built during
///    delta merge.
///  * kUnsortedDelta — append-only in arrival order with a hash index;
///    min/max are tracked incrementally.
///
/// The O(1) min/max of both modes is what makes the paper's dynamic join
/// pruning prefilter (Eq. 5) essentially free: "min() and max() can be
/// obtained from current dictionaries of the respective partitions".
class Dictionary {
 public:
  enum class Mode { kSortedMain, kUnsortedDelta };

  /// Creates an empty dictionary. Unsorted dictionaries grow via GetOrAdd;
  /// sorted ones are produced by BuildSorted.
  Dictionary(ColumnType type, Mode mode);

  /// Builds an immutable sorted dictionary from `values` (sorted and
  /// de-duplicated here; values of the wrong type abort).
  static Dictionary BuildSorted(ColumnType type, std::vector<Value> values);

  ColumnType type() const { return type_; }
  Mode mode() const { return mode_; }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Code for `v`, inserting it when absent. Only valid in delta mode;
  /// returns InvalidArgument for NULL or type-mismatched values.
  StatusOr<ValueId> GetOrAdd(const Value& v);

  /// Code for `v` when present.
  std::optional<ValueId> Find(const Value& v) const;

  /// Value for a code.
  const Value& value(ValueId id) const {
    AGGCACHE_CHECK_LT(id, values_.size());
    return values_[id];
  }

  /// Smallest / largest value currently in the dictionary. Aborts on empty
  /// dictionaries — callers must check empty() first (empty partitions are
  /// pruned before range tests, as in the paper's Section 5.1).
  const Value& min_value() const;
  const Value& max_value() const;

  /// Approximate heap footprint (values plus hash index). O(1): the value
  /// byte total is maintained incrementally by GetOrAdd/BuildSorted instead
  /// of rescanning every stored Value per call, so memory accounting (cache
  /// admission, the Section 6.2 experiment) stays cheap on hot paths.
  size_t ByteSize() const;

 private:
  ColumnType type_;
  Mode mode_;
  std::vector<Value> values_;
  std::unordered_map<Value, ValueId, ValueHash> index_;
  // Codes of the extreme values; only meaningful for unsorted mode.
  ValueId min_id_ = kInvalidValueId;
  ValueId max_id_ = kInvalidValueId;
  // Running sum of values_[i].ByteSize(); values are never removed.
  size_t value_bytes_ = 0;
};

}  // namespace aggcache

#endif  // AGGCACHE_STORAGE_DICTIONARY_H_
