#include "storage/partition.h"

#include "common/logging.h"

namespace aggcache {

const char* PartitionKindToString(PartitionKind kind) {
  return kind == PartitionKind::kMain ? "main" : "delta";
}

const char* AgeClassToString(AgeClass age) {
  return age == AgeClass::kHot ? "hot" : "cold";
}

Partition Partition::MakeDelta(const TableSchema& schema) {
  std::vector<Column> columns;
  columns.reserve(schema.columns.size());
  for (const ColumnDef& def : schema.columns) {
    columns.push_back(Column::MakeDelta(def.type));
  }
  return Partition(PartitionKind::kDelta, std::move(columns));
}

Partition Partition::MakeMain(std::vector<Column> columns,
                              std::vector<Tid> create_tids,
                              std::vector<Tid> invalidate_tids) {
  AGGCACHE_CHECK_EQ(create_tids.size(), invalidate_tids.size());
  for (const Column& c : columns) {
    AGGCACHE_CHECK_EQ(c.size(), create_tids.size())
        << "column length mismatch in MakeMain";
    AGGCACHE_CHECK(c.is_main()) << "MakeMain requires main columns";
  }
  Partition partition(PartitionKind::kMain, std::move(columns));
  partition.create_tids_ = std::move(create_tids);
  partition.invalidate_tids_ = std::move(invalidate_tids);
  for (Tid t : partition.invalidate_tids_) {
    if (t != kNoTid) ++partition.invalidation_count_;
  }
  return partition;
}

Status Partition::AppendRow(const std::vector<Value>& values,
                            Tid create_tid) {
  if (kind_ != PartitionKind::kDelta) {
    return Status::FailedPrecondition("append to main partition");
  }
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  // Validate all values before mutating any column so a failed append leaves
  // the partition unchanged.
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].is_null()) {
      return Status::InvalidArgument("NULL values are not supported");
    }
    if (!values[i].MatchesType(columns_[i].type())) {
      return Status::InvalidArgument("value type mismatch in column " +
                                     std::to_string(i));
    }
  }
  for (size_t i = 0; i < values.size(); ++i) {
    Status status = columns_[i].Append(values[i]);
    AGGCACHE_CHECK(status.ok()) << status.ToString();
  }
  create_tids_.push_back(create_tid);
  invalidate_tids_.push_back(kNoTid);
  return Status::Ok();
}

void Partition::InvalidateRow(size_t row, Tid tid) {
  AGGCACHE_CHECK_LT(row, invalidate_tids_.size());
  AGGCACHE_CHECK_EQ(invalidate_tids_[row], kNoTid)
      << "row invalidated twice";
  invalidate_tids_[row] = tid;
  ++invalidation_count_;
}

std::vector<Value> Partition::GetRow(size_t row) const {
  std::vector<Value> values;
  values.reserve(columns_.size());
  for (const Column& c : columns_) values.push_back(c.GetValue(row));
  return values;
}

size_t Partition::ColumnByteSize() const {
  size_t bytes = 0;
  for (const Column& c : columns_) bytes += c.ByteSize();
  return bytes;
}

}  // namespace aggcache
