#ifndef AGGCACHE_STORAGE_MERGE_OBSERVER_H_
#define AGGCACHE_STORAGE_MERGE_OBSERVER_H_

#include <cstddef>

#include "txn/types.h"

namespace aggcache {

class Table;

/// Callback interface fired around delta merges. The aggregate cache manager
/// registers one to run its incremental maintenance: entries are folded
/// forward (cached main aggregate + delta aggregate) while the delta is
/// still present, then re-snapshotted after the merge — the merge-time
/// maintenance of Section 5.2.
///
/// `snapshot` is the merge snapshot: the view under which this merge decides
/// which delta rows are stable enough to move into main. It is the same
/// object for the whole before/merge/after sequence of one group, so an
/// observer folding "the delta visible at `snapshot`" folds exactly the
/// rows the merge moves. Its tid was freshly issued by the merge itself, so
/// every snapshot taken before the merge began has a strictly smaller
/// read_tid — which is what lets cache maintenance stamped with this
/// snapshot never serve those earlier readers (base_tid guard).
class MergeObserver {
 public:
  virtual ~MergeObserver() = default;

  /// Called before the delta of `table`'s group `group_index` is merged;
  /// the delta rows are still visible here.
  virtual void OnBeforeMerge(Table& table, size_t group_index,
                             const Snapshot& snapshot) = 0;

  /// Called after the merge: the group has a rebuilt main and a delta
  /// holding only rows that were not stable at `snapshot` (in-flight
  /// atomic scopes), usually none.
  virtual void OnAfterMerge(Table& table, size_t group_index,
                            const Snapshot& snapshot) = 0;

  /// Called when a merge fails *between* OnBeforeMerge and OnAfterMerge:
  /// the group still has its old main and a non-empty delta, but observers
  /// may already have applied forward-looking maintenance (the cache folds
  /// deltas into its entries in OnBeforeMerge) and must undo or invalidate
  /// it here, or the next cached read double-counts the surviving delta.
  virtual void OnMergeAborted(Table& table, size_t group_index) {
    (void)table;
    (void)group_index;
  }
};

}  // namespace aggcache

#endif  // AGGCACHE_STORAGE_MERGE_OBSERVER_H_
