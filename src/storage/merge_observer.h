#ifndef AGGCACHE_STORAGE_MERGE_OBSERVER_H_
#define AGGCACHE_STORAGE_MERGE_OBSERVER_H_

#include <cstddef>

namespace aggcache {

class Table;

/// Callback interface fired around delta merges. The aggregate cache manager
/// registers one to run its incremental maintenance: entries are folded
/// forward (cached main aggregate + delta aggregate) while the delta is
/// still present, then re-snapshotted after the merge — the merge-time
/// maintenance of Section 5.2.
class MergeObserver {
 public:
  virtual ~MergeObserver() = default;

  /// Called before the delta of `table`'s group `group_index` is merged;
  /// the delta rows are still visible here.
  virtual void OnBeforeMerge(Table& table, size_t group_index) = 0;

  /// Called after the merge: the group has a rebuilt main and empty delta.
  virtual void OnAfterMerge(Table& table, size_t group_index) = 0;

  /// Called when a merge fails *between* OnBeforeMerge and OnAfterMerge:
  /// the group still has its old main and a non-empty delta, but observers
  /// may already have applied forward-looking maintenance (the cache folds
  /// deltas into its entries in OnBeforeMerge) and must undo or invalidate
  /// it here, or the next cached read double-counts the surviving delta.
  virtual void OnMergeAborted(Table& table, size_t group_index) {
    (void)table;
    (void)group_index;
  }
};

}  // namespace aggcache

#endif  // AGGCACHE_STORAGE_MERGE_OBSERVER_H_
