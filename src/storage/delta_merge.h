#ifndef AGGCACHE_STORAGE_DELTA_MERGE_H_
#define AGGCACHE_STORAGE_DELTA_MERGE_H_

#include <vector>

#include "common/status.h"
#include "storage/partition.h"
#include "storage/schema.h"
#include "txn/types.h"

namespace aggcache {

class Table;

/// Options for the delta merge.
struct MergeOptions {
  /// Keep invalidated rows in the rebuilt main (with their invalidate_tid)
  /// so temporal queries on historical data remain possible, as the paper
  /// notes in Section 2. When false, invalidated rows are physically
  /// removed during the merge.
  bool keep_invalidated = false;
};

/// Accumulates rows and builds a read-optimized main partition: per-column
/// sorted dictionaries and bit-packed codes.
class MainPartitionBuilder {
 public:
  explicit MainPartitionBuilder(const TableSchema& schema);

  /// Adds one row (decoded values, full schema arity) with its MVCC
  /// timestamps.
  void AddRow(std::vector<Value> values, Tid create_tid, Tid invalidate_tid);

  size_t num_rows() const { return create_tids_.size(); }

  /// Builds the partition; the builder is consumed.
  Partition Build();

 private:
  const TableSchema& schema_;
  std::vector<std::vector<Value>> column_values_;  // [column][row]
  std::vector<Tid> create_tids_;
  std::vector<Tid> invalidate_tids_;
};

/// Merges the delta of one partition group into its main: surviving rows
/// (plus invalidated ones when keep_invalidated) are rebuilt into a fresh
/// main with sorted dictionaries, and the delta is emptied. The table's
/// primary-key index is rebuilt. Use Database::Merge to also notify merge
/// observers (aggregate cache maintenance).
///
/// Only rows whose MVCC stamps are stable at `snapshot` move (or, when
/// invalidated, are dropped); a delta row created by an atomic write scope
/// still in flight at `snapshot` stays behind in the fresh delta, with its
/// timestamps preserved. This keeps the merge invisible to such scopes and
/// lets observers equate "the delta visible at `snapshot`" with "the rows
/// this merge moved". The overload without a snapshot moves everything
/// (direct storage-level callers with no concurrent transactions).
Status MergeTableGroup(Table& table, size_t group_index,
                       const MergeOptions& options, const Snapshot& snapshot);
Status MergeTableGroup(Table& table, size_t group_index,
                       const MergeOptions& options);

}  // namespace aggcache

#endif  // AGGCACHE_STORAGE_DELTA_MERGE_H_
