#ifndef AGGCACHE_STORAGE_COLUMN_H_
#define AGGCACHE_STORAGE_COLUMN_H_

#include <vector>

#include "common/bit_packed_vector.h"
#include "common/status.h"
#include "common/value.h"
#include "storage/dictionary.h"

namespace aggcache {

/// One dictionary-encoded column of a partition.
///
/// Delta columns are append-only: codes live in a plain uint32 vector over an
/// unsorted dictionary (write-optimized). Main columns are immutable: codes
/// are bit-packed to ceil(log2(|dict|)) bits over a sorted dictionary
/// (read-optimized, compressed) and are produced by the delta merge.
class Column {
 public:
  /// Creates an empty, appendable delta column.
  static Column MakeDelta(ColumnType type);

  /// Creates an immutable main column from a sorted dictionary and one code
  /// per row (codes must reference `dict`).
  static Column MakeMain(Dictionary dict, const std::vector<ValueId>& codes);

  ColumnType type() const { return dict_.type(); }
  size_t size() const { return is_main_ ? main_codes_.size()
                                        : delta_codes_.size(); }
  bool is_main() const { return is_main_; }

  /// Appends a value (delta columns only).
  Status Append(const Value& v);

  /// Dictionary code of row `row`.
  ValueId code(size_t row) const {
    return is_main_ ? main_codes_.Get(row) : delta_codes_[row];
  }

  /// Decoded value of row `row`.
  const Value& GetValue(size_t row) const { return dict_.value(code(row)); }

  /// Bulk-decodes the codes of rows [begin, begin+count) into `out`:
  /// a memcpy for delta columns, a sequential bit-unpack for main columns.
  /// The batched scan kernels use this instead of per-row code() calls.
  void UnpackCodes(size_t begin, size_t count, ValueId* out) const;

  /// Fast path for int64 columns (tid columns, keys).
  int64_t GetInt64(size_t row) const { return GetValue(row).AsInt64(); }

  const Dictionary& dictionary() const { return dict_; }

  /// Approximate heap footprint: codes plus dictionary. The compression gap
  /// between main (bit-packed) and delta (32-bit codes) feeds the Section
  /// 6.2 memory-overhead experiment.
  size_t ByteSize() const;

 private:
  Column(Dictionary dict, bool is_main)
      : dict_(std::move(dict)), is_main_(is_main) {}

  Dictionary dict_;
  bool is_main_;
  std::vector<ValueId> delta_codes_;
  BitPackedVector main_codes_{32};
};

}  // namespace aggcache

#endif  // AGGCACHE_STORAGE_COLUMN_H_
