#ifndef AGGCACHE_STORAGE_RECOVERY_H_
#define AGGCACHE_STORAGE_RECOVERY_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/checkpoint.h"
#include "storage/wal.h"

namespace aggcache {

class Database;
class Table;
struct TableSchema;

/// Configuration of one data directory's durability, read from the
/// environment by FromEnv():
///
///   AGGCACHE_WAL=off|async|sync   sync policy (default sync)
///   AGGCACHE_DATA_DIR=<path>      where engine binaries place their data
struct DurabilityOptions {
  WalSyncPolicy wal_policy = WalSyncPolicy::kSync;
  int async_interval_ms = 5;
  /// MaybeCheckpoint() checkpoints once this many WAL bytes accumulate.
  uint64_t checkpoint_wal_bytes = 8ull << 20;
  /// Post-merge opportunistic checkpoints from the merge daemon.
  bool checkpoint_on_merge = true;

  static StatusOr<DurabilityOptions> FromEnv();
};

/// What startup recovery found and did; exposed for tests and logs.
struct RecoveryReport {
  bool checkpoint_loaded = false;
  uint64_t checkpoint_lsn = 0;     ///< Capture lsn of the loaded checkpoint.
  Tid checkpoint_tid = 0;          ///< last_tid stored in the segment header.
  uint64_t wal_records = 0;        ///< Valid records found on disk.
  uint64_t replayed_records = 0;   ///< Records applied (lsn > checkpoint).
  uint64_t discarded_records = 0;  ///< Records skipped: uncommitted scopes.
  uint64_t discarded_scopes = 0;   ///< Distinct uncommitted scopes.
  bool wal_clean = true;           ///< False when a torn/corrupt tail stopped
                                   ///< the scan (see tail_error).
  std::string wal_tail_error;
  uint64_t warm_descriptors = 0;   ///< Cache descriptors carried forward.
};

/// Owns one data directory's durability: the WAL, the checkpointer and
/// startup recovery. Open() is the only constructor path — it recovers the
/// directory's persisted state into an empty Database, replays the WAL tail
/// (stopping cleanly at a torn or corrupt record and truncating the file to
/// its valid prefix), restores the tid counter, discards uncommitted atomic
/// scopes, and only then attaches itself to the database so new statements
/// start logging. Holding an flock'd LOCK file (and a process-local
/// registry, since flock is per-open-file-description) makes a second open
/// of a live directory fail loudly instead of interleaving two logs.
///
/// Threading: Log* calls are internally serialized by the WAL; the
/// statement gate (see Checkpointer) is acquired shared by every logged
/// statement via DurabilityStatementGuard BEFORE any table lock.
class DurabilityManager {
 public:
  /// Recovers `dir` (created if absent) into `db`, which must be empty.
  /// On success the returned manager is attached to `db` and the WAL is
  /// open for appends.
  static StatusOr<std::unique_ptr<DurabilityManager>> Open(
      const std::string& dir, Database* db, const DurabilityOptions& options);
  ~DurabilityManager();

  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  const RecoveryReport& recovery_report() const { return report_; }
  const std::string& dir() const { return dir_; }
  const DurabilityOptions& options() const { return options_; }
  WriteAheadLog* wal() { return wal_.get(); }

  /// Cache descriptors recovered from the loaded checkpoint; the cache
  /// manager takes them once at startup.
  std::vector<CacheDescriptor> TakeWarmDescriptors();

  /// Descriptor source consulted when the next checkpoint is cut.
  void SetDescriptorSource(const CacheDescriptorSource* source) {
    checkpointer_.SetDescriptorSource(source);
  }

  /// Held shared for the duration of every logged statement.
  std::shared_mutex& statement_gate() {
    return checkpointer_.statement_gate();
  }

  // --- Statement logging (engine hooks; callers hold the gate shared) ---
  Status LogInsert(const std::string& table, Tid tid,
                   const std::vector<Value>& user_values);
  Status LogUpdate(const std::string& table, Tid tid, const Value& pk,
                   const std::vector<Value>& new_user_values);
  Status LogDelete(const std::string& table, Tid tid, const Value& pk);
  Status LogSplitHotCold(const std::string& table, const std::string& column,
                         const Value& cold_below);

  // --- DDL / catalog logging (called with no locks held) ---
  Status LogCreateTable(const TableSchema& schema);
  Status LogAgingGroup(const std::vector<std::string>& tables);
  Status LogMergeGroup(const std::vector<std::string>& tables,
                       size_t delta_row_threshold);

  // --- Atomic scope records ---
  Status LogScopeBegin(Tid tid);
  /// Scope-end listener target. Best effort: a failed append leaves the
  /// scope uncommitted on disk, which recovery rolls back — exactly a crash
  /// at commit time.
  void LogScopeEnd(Tid tid);

  /// Cuts a checkpoint now (see Checkpointer::Checkpoint).
  StatusOr<bool> Checkpoint() { return checkpointer_.Checkpoint(wal_.get()); }

  /// Checkpoints when enough WAL has accumulated since the last one.
  /// Errors are logged, not raised — opportunistic maintenance must never
  /// take down the merge daemon.
  void MaybeCheckpoint();

  uint64_t last_checkpoint_lsn() const {
    return checkpointer_.last_checkpoint_lsn();
  }

  /// Forces appended records durable.
  Status Sync() { return wal_ ? wal_->Sync() : Status::Ok(); }

  /// Simulates a process kill: poisons the WAL (no final sync), releases
  /// the directory lock, detaches from the database. Everything already
  /// write(2)-ten survives for the next Open().
  void SimulateCrash();

 private:
  DurabilityManager(std::string dir, Database* db,
                    const DurabilityOptions& options);

  Status Recover();
  Status ReplayRecord(const WalRecord& record);
  Status AppendRecord(WalRecordType type, Tid tid, const std::string& payload);
  void ReleaseDirLock();

  const std::string dir_;
  Database* const db_;
  const DurabilityOptions options_;
  std::unique_ptr<WriteAheadLog> wal_;
  Checkpointer checkpointer_;
  RecoveryReport report_;
  std::vector<CacheDescriptor> warm_descriptors_;
  /// Highest lsn seen on disk during recovery; the reopened WAL appends
  /// from one past max(this, checkpoint lsn).
  uint64_t last_replay_lsn_ = 0;
  int lock_fd_ = -1;
  bool lock_registered_ = false;
};

/// RAII statement gate hold: constructed by every logged mutating statement
/// BEFORE it takes table locks (the lock-order rule that keeps checkpoints
/// deadlock-free), released when the statement — mutation plus WAL append —
/// completes. Null manager = durability off; the guard is free.
class DurabilityStatementGuard {
 public:
  explicit DurabilityStatementGuard(DurabilityManager* durability)
      : durability_(durability) {
    if (durability_ != nullptr) durability_->statement_gate().lock_shared();
  }
  ~DurabilityStatementGuard() {
    if (durability_ != nullptr) durability_->statement_gate().unlock_shared();
  }
  DurabilityStatementGuard(const DurabilityStatementGuard&) = delete;
  DurabilityStatementGuard& operator=(const DurabilityStatementGuard&) =
      delete;

  DurabilityManager* durability() const { return durability_; }

 private:
  DurabilityManager* const durability_;
};

}  // namespace aggcache

#endif  // AGGCACHE_STORAGE_RECOVERY_H_
