#ifndef AGGCACHE_STORAGE_TABLE_H_
#define AGGCACHE_STORAGE_TABLE_H_

#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/partition.h"
#include "storage/schema.h"
#include "txn/transaction_manager.h"

namespace aggcache {

class Database;
class EpochManager;

/// Physical address of a row within a table.
struct RowLocation {
  uint32_t group = 0;
  PartitionKind kind = PartitionKind::kDelta;
  uint32_t row = 0;

  bool operator==(const RowLocation& other) const {
    return group == other.group && kind == other.kind && row == other.row;
  }
};

/// One temperature class of a table: a main/delta pair. Unpartitioned tables
/// have a single hot group; SplitHotCold adds a cold group (Section 5.4).
struct PartitionGroup {
  AgeClass age = AgeClass::kHot;
  Partition main;
  Partition delta;
};

/// Per-insert switches, exposed so the Section 6.3 experiment can isolate
/// the cost of referential-integrity checking and of the matching-dependency
/// tid lookup. Production inserts use the defaults.
struct InsertOptions {
  /// Verify that each foreign key references an existing row.
  bool check_referential_integrity = true;
  /// Copy the referenced row's own-tid into the local MD tid column
  /// (requires the referenced row to exist). When disabled, MD tid columns
  /// are filled with 0 and declared matching dependencies no longer hold —
  /// only ever disable this for overhead measurements.
  bool maintain_tid_columns = true;
};

/// A columnar table in the main-delta architecture.
///
/// Inserts append to the hot delta partition; updates and deletes invalidate
/// the old row version (setting its invalidate_tid) and, for updates, insert
/// the new version into the delta. The delta merge (storage/delta_merge.h)
/// periodically rebuilds the main partition from the surviving rows.
///
/// The table enforces the paper's object-aware design at insert time: the
/// own-tid column receives the inserting transaction's id, and each foreign
/// key with a declared MD tid column receives the referenced row's own-tid —
/// the matching dependency of Eq. 6.
///
/// Threading model (DESIGN.md §6): every table carries a reader-writer
/// mutex. The mutating statement APIs (Insert/UpdateByPk/DeleteByPk/
/// UpdateColumnByPk/SplitHotCold) acquire it internally — exclusive on this
/// table, shared on foreign-key parents they read — so each statement is
/// atomic with respect to concurrent readers. Read paths that must be safe
/// against concurrent writers (query execution, the merge daemon's delta
/// sizing) acquire shared locks through TableLockSet/ReadView at their API
/// boundary; the raw accessors (group(), FindByPk(), ValueAt(), ...) do NOT
/// lock and are safe only single-threaded or under a held lock.
class Table {
 public:
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name; }

  size_t num_groups() const { return groups_.size(); }
  const PartitionGroup& group(size_t i) const { return groups_[i]; }
  PartitionGroup& mutable_group(size_t i) { return groups_[i]; }

  /// Inserts one row. `user_values` holds values for the non-tid columns in
  /// schema order; the engine fills tid columns itself.
  Status Insert(const Transaction& txn, const std::vector<Value>& user_values,
                const InsertOptions& options = InsertOptions());

  /// Invalidates the current version of the row keyed by `pk` and inserts
  /// the new version into the delta (out-of-place update).
  ///
  /// The new version keeps the old version's own-tid: the tid records when
  /// the business object was created, so matching dependencies into this
  /// table (rows elsewhere that copied the tid) remain valid across
  /// updates, keeping dynamic join pruning sound. The paper leaves update
  /// handling as future work (Section 8); preserving the object tid is this
  /// library's resolution.
  Status UpdateByPk(const Transaction& txn, const Value& pk,
                    const std::vector<Value>& new_user_values,
                    const InsertOptions& options = InsertOptions());

  /// Invalidates the row keyed by `pk`.
  Status DeleteByPk(const Transaction& txn, const Value& pk);

  /// Atomically replaces a single user column of the row keyed by `pk`
  /// (read-modify-write under this table's exclusive lock): the old version
  /// is invalidated and the new one inserted into the delta, like
  /// UpdateByPk. Safe to call concurrently with readers and other writers —
  /// the value read and the version written cannot interleave with another
  /// statement.
  Status UpdateColumnByPk(const Transaction& txn, const Value& pk,
                          const std::string& column, const Value& new_value,
                          const InsertOptions& options = InsertOptions());

  /// Location of the valid row with the given primary key, if any.
  std::optional<RowLocation> FindByPk(const Value& pk) const;

  /// Decoded value at a location.
  const Value& ValueAt(const RowLocation& loc, size_t column) const;

  const Partition& partition(const RowLocation& loc) const {
    const PartitionGroup& g = groups_[loc.group];
    return loc.kind == PartitionKind::kMain ? g.main : g.delta;
  }

  /// Physical row count across all partitions, including invalidated rows.
  size_t TotalRows() const;

  /// Rows visible to `snapshot`.
  size_t VisibleRows(Snapshot snapshot) const;

  /// Column storage footprint across all partitions (Section 6.2).
  size_t ColumnByteSize() const;

  /// Splits a single-group table into hot and cold groups: rows whose value
  /// in `column` is strictly below `cold_below` move to the cold main. Both
  /// deltas must be empty (run a merge first) and the table must not already
  /// be split. Matching tables should be split on consistent criteria so
  /// cold-hot subjoins are empty (register an aging group on the database to
  /// let the optimizer prune them logically).
  Status SplitHotCold(const std::string& column, const Value& cold_below);

  /// Total number of row invalidations across main partitions; cache
  /// entries use this as their dirty counter baseline.
  uint64_t MainInvalidationCount() const;

  /// Total delta row count across all groups, taken under a shared lock.
  /// The merge daemon polls this to decide when a merge is due.
  size_t DeltaRows() const;

  /// The table's reader-writer mutex. Acquire through TableLockSet (which
  /// orders multi-table acquisitions by address) rather than directly.
  std::shared_mutex& storage_mutex() const { return storage_mu_; }

  /// Replaces this table's partition groups wholesale and rebuilds the
  /// primary-key index. Only snapshot restoration (storage/snapshot.h)
  /// should call this; the groups must match the schema.
  void RestoreGroups(std::vector<PartitionGroup> groups);

 private:
  friend class Database;
  friend Status MergeTableGroup(Table& table, size_t group_index,
                                const struct MergeOptions& options);
  friend Status MergeTableGroup(Table& table, size_t group_index,
                                const struct MergeOptions& options,
                                const struct Snapshot& snapshot);

  explicit Table(TableSchema schema);

  /// Resolves foreign-key table pointers; called by Database::CreateTable.
  Status ResolveForeignKeys(Database* db);

  /// Builds the full physical row from user values and fills tid columns.
  /// `own_tid_override` carries the preserved object tid on updates.
  Status BuildRow(const Transaction& txn,
                  const std::vector<Value>& user_values,
                  const InsertOptions& options,
                  std::optional<int64_t> own_tid_override,
                  std::vector<Value>* row) const;

  Status InsertInternal(const Transaction& txn,
                        const std::vector<Value>& user_values,
                        const InsertOptions& options,
                        std::optional<int64_t> own_tid_override);

  /// Statement bodies; callers hold this table exclusive and fk parents
  /// shared (see the public wrappers).
  Status UpdateByPkUnlocked(const Transaction& txn, const Value& pk,
                            const std::vector<Value>& new_user_values,
                            const InsertOptions& options);
  Status DeleteByPkUnlocked(const Transaction& txn, const Value& pk);

  /// Rebuilds the primary-key index from scratch (after merges/splits).
  void RebuildPkIndex();

  /// The epoch manager of the owning database, if any; displaced partition
  /// groups (merge, split, restore) are retired through it instead of being
  /// freed in place, so in-flight readers of other tables that still hold
  /// column pointers stay valid. Null for tables outside a Database.
  EpochManager* epochs() const;

  TableSchema schema_;
  std::vector<PartitionGroup> groups_;
  std::unordered_map<Value, RowLocation, ValueHash> pk_index_;
  /// Referenced tables, parallel to schema_.foreign_keys.
  std::vector<const Table*> fk_tables_;
  /// Owning database; set by Database::CreateTable via ResolveForeignKeys.
  Database* db_ = nullptr;
  mutable std::shared_mutex storage_mu_;
};

}  // namespace aggcache

#endif  // AGGCACHE_STORAGE_TABLE_H_
