#include "storage/table.h"

#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "storage/database.h"
#include "storage/delta_merge.h"
#include "storage/recovery.h"
#include "storage/table_lock.h"
#include "txn/epoch.h"

namespace aggcache {

namespace {

/// Acquires the lock set of a writer statement: exclusive on the written
/// table, shared on every foreign-key parent (BuildRow reads them for RI
/// checks and matching-dependency tid lookups). Address-ordered via
/// TableLockSet, so writers on different tables of a schema cannot deadlock
/// against each other or against merges.
TableLockSet AcquireWriteLocks(const Table* self,
                               const std::vector<const Table*>& fk_tables) {
  TableLockSet locks;
  locks.Add(self, TableLockMode::kExclusive);
  for (const Table* parent : fk_tables) {
    locks.Add(parent, TableLockMode::kShared);
  }
  locks.Lock();
  return locks;
}

}  // namespace

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  groups_.push_back(PartitionGroup{
      AgeClass::kHot,
      Partition::MakeMain(/*columns=*/{}, /*create_tids=*/{},
                          /*invalidate_tids=*/{}),
      Partition::MakeDelta(schema_)});
  // A freshly created table has an empty main partition; represent it with
  // empty main columns so the executor can treat every group uniformly.
  std::vector<Column> empty_columns;
  for (const ColumnDef& def : schema_.columns) {
    empty_columns.push_back(Column::MakeMain(
        Dictionary::BuildSorted(def.type, {}), /*codes=*/{}));
  }
  groups_[0].main = Partition::MakeMain(std::move(empty_columns), {}, {});
}

Status Table::ResolveForeignKeys(Database* db) {
  db_ = db;
  fk_tables_.clear();
  for (const ForeignKeyDef& fk : schema_.foreign_keys) {
    // Called from CreateTable with catalog_mu_ held — use the unlocked
    // catalog lookup.
    ASSIGN_OR_RETURN(const Table* ref,
                     static_cast<const Database*>(db)->GetTableLocked(
                         fk.ref_table));
    if (!ref->schema().primary_key) {
      return Status::InvalidArgument(
          StrFormat("table '%s' referenced by '%s' has no primary key",
                    fk.ref_table.c_str(), name().c_str()));
    }
    if (fk.tid_column && !ref->schema().own_tid_column) {
      return Status::InvalidArgument(StrFormat(
          "matching dependency on '%s' -> '%s' requires the referenced "
          "table to declare an own-tid column",
          name().c_str(), fk.ref_table.c_str()));
    }
    fk_tables_.push_back(ref);
  }
  return Status::Ok();
}

Status Table::BuildRow(const Transaction& txn,
                       const std::vector<Value>& user_values,
                       const InsertOptions& options,
                       std::optional<int64_t> own_tid_override,
                       std::vector<Value>* row) const {
  if (user_values.size() != schema_.NumUserColumns()) {
    return Status::InvalidArgument(StrFormat(
        "table '%s' expects %zu user values, got %zu", name().c_str(),
        schema_.NumUserColumns(), user_values.size()));
  }
  row->clear();
  row->reserve(schema_.columns.size());
  size_t next_user = 0;
  for (size_t i = 0; i < schema_.columns.size(); ++i) {
    if (schema_.columns[i].is_tid) {
      // Own-tid columns take the inserting transaction's id; MD tid columns
      // are filled from the referenced row below.
      int64_t tid_value = 0;
      if (schema_.own_tid_column == i) {
        tid_value = own_tid_override.has_value()
                        ? *own_tid_override
                        : static_cast<int64_t>(txn.tid());
      }
      row->push_back(Value(tid_value));
    } else {
      row->push_back(user_values[next_user++]);
    }
  }

  for (size_t f = 0; f < schema_.foreign_keys.size(); ++f) {
    const ForeignKeyDef& fk = schema_.foreign_keys[f];
    bool needs_lookup = options.check_referential_integrity ||
                        (options.maintain_tid_columns && fk.tid_column);
    if (!needs_lookup) continue;
    const Table* ref = fk_tables_[f];
    std::optional<RowLocation> loc = ref->FindByPk((*row)[fk.column]);
    if (!loc) {
      if (options.check_referential_integrity ||
          (options.maintain_tid_columns && fk.tid_column)) {
        return Status::FailedPrecondition(StrFormat(
            "foreign key violation: %s.%s = %s has no match in %s",
            name().c_str(), schema_.columns[fk.column].name.c_str(),
            (*row)[fk.column].ToString().c_str(), fk.ref_table.c_str()));
      }
      continue;
    }
    if (options.maintain_tid_columns && fk.tid_column) {
      // Enforce the matching dependency: copy the referenced row's own tid.
      const Value& ref_tid =
          ref->ValueAt(*loc, *ref->schema().own_tid_column);
      (*row)[*fk.tid_column] = ref_tid;
    }
  }
  return Status::Ok();
}

EpochManager* Table::epochs() const {
  return db_ != nullptr ? &db_->epochs() : nullptr;
}

Status Table::Insert(const Transaction& txn,
                     const std::vector<Value>& user_values,
                     const InsertOptions& options) {
  // Gate before table locks — the lock-order rule that keeps checkpoints
  // deadlock-free (see DurabilityStatementGuard). Mutate-then-log: only
  // statements that succeeded reach the WAL, so replay cannot fail; a
  // failed append poisons the log and errors the statement.
  DurabilityStatementGuard durability(db_ != nullptr ? db_->durability()
                                                     : nullptr);
  TableLockSet locks = AcquireWriteLocks(this, fk_tables_);
  RETURN_IF_ERROR(InsertInternal(txn, user_values, options, std::nullopt));
  if (DurabilityManager* d = durability.durability()) {
    RETURN_IF_ERROR(d->LogInsert(name(), txn.tid(), user_values));
  }
  return Status::Ok();
}

Status Table::InsertInternal(const Transaction& txn,
                             const std::vector<Value>& user_values,
                             const InsertOptions& options,
                             std::optional<int64_t> own_tid_override) {
  std::vector<Value> row;
  RETURN_IF_ERROR(BuildRow(txn, user_values, options, own_tid_override, &row));

  if (schema_.primary_key) {
    const Value& pk = row[*schema_.primary_key];
    if (pk_index_.contains(pk)) {
      return Status::AlreadyExists(
          StrFormat("duplicate primary key %s in table '%s'",
                    pk.ToString().c_str(), name().c_str()));
    }
  }

  // New rows always enter the hot delta (group 0), per Section 5.4.
  Partition& delta = groups_[0].delta;
  RETURN_IF_ERROR(delta.AppendRow(row, txn.tid()));
  if (schema_.primary_key) {
    pk_index_.emplace(row[*schema_.primary_key],
                      RowLocation{0, PartitionKind::kDelta,
                                  static_cast<uint32_t>(delta.num_rows() - 1)});
  }
  return Status::Ok();
}

Status Table::UpdateByPk(const Transaction& txn, const Value& pk,
                         const std::vector<Value>& new_user_values,
                         const InsertOptions& options) {
  DurabilityStatementGuard durability(db_ != nullptr ? db_->durability()
                                                     : nullptr);
  TableLockSet locks = AcquireWriteLocks(this, fk_tables_);
  RETURN_IF_ERROR(UpdateByPkUnlocked(txn, pk, new_user_values, options));
  if (DurabilityManager* d = durability.durability()) {
    RETURN_IF_ERROR(d->LogUpdate(name(), txn.tid(), pk, new_user_values));
  }
  return Status::Ok();
}

Status Table::UpdateByPkUnlocked(const Transaction& txn, const Value& pk,
                                 const std::vector<Value>& new_user_values,
                                 const InsertOptions& options) {
  if (txn.in_atomic_scope()) {
    // Atomic write scopes are insert-only: an invalidation stamped with an
    // excluded tid would make shared aggregate-cache state depend on one
    // snapshot's exclusion list (see Transaction::in_atomic_scope).
    return Status::FailedPrecondition(
        "updates are not allowed inside an atomic write scope");
  }
  if (!schema_.primary_key) {
    return Status::FailedPrecondition("update requires a primary key");
  }
  auto it = pk_index_.find(pk);
  if (it == pk_index_.end()) {
    return Status::NotFound(StrFormat("no row with primary key %s in '%s'",
                                      pk.ToString().c_str(), name().c_str()));
  }
  RowLocation old_loc = it->second;
  // Preserve the object tid across the update (see header comment).
  std::optional<int64_t> preserved_tid;
  if (schema_.own_tid_column) {
    preserved_tid = ValueAt(old_loc, *schema_.own_tid_column).AsInt64();
  }
  PartitionGroup& g = groups_[old_loc.group];
  Partition& old_partition =
      old_loc.kind == PartitionKind::kMain ? g.main : g.delta;
  old_partition.InvalidateRow(old_loc.row, txn.tid());
  pk_index_.erase(it);
  return InsertInternal(txn, new_user_values, options, preserved_tid);
}

Status Table::DeleteByPk(const Transaction& txn, const Value& pk) {
  DurabilityStatementGuard durability(db_ != nullptr ? db_->durability()
                                                     : nullptr);
  TableLockSet locks = AcquireWriteLocks(this, fk_tables_);
  RETURN_IF_ERROR(DeleteByPkUnlocked(txn, pk));
  if (DurabilityManager* d = durability.durability()) {
    RETURN_IF_ERROR(d->LogDelete(name(), txn.tid(), pk));
  }
  return Status::Ok();
}

Status Table::UpdateColumnByPk(const Transaction& txn, const Value& pk,
                               const std::string& column,
                               const Value& new_value,
                               const InsertOptions& options) {
  DurabilityStatementGuard durability(db_ != nullptr ? db_->durability()
                                                     : nullptr);
  TableLockSet locks = AcquireWriteLocks(this, fk_tables_);
  if (!schema_.primary_key) {
    return Status::FailedPrecondition("update requires a primary key");
  }
  ASSIGN_OR_RETURN(size_t col, schema_.ColumnIndex(column));
  if (schema_.columns[col].is_tid) {
    return Status::InvalidArgument(
        StrFormat("column '%s' is engine-maintained", column.c_str()));
  }
  auto it = pk_index_.find(pk);
  if (it == pk_index_.end()) {
    return Status::NotFound(StrFormat("no row with primary key %s in '%s'",
                                      pk.ToString().c_str(), name().c_str()));
  }
  // Read-modify-write under the held exclusive lock: rebuild the user-value
  // vector from the current version with one column replaced.
  RowLocation loc = it->second;
  std::vector<Value> user_values;
  user_values.reserve(schema_.NumUserColumns());
  for (size_t i = 0; i < schema_.columns.size(); ++i) {
    if (schema_.columns[i].is_tid) continue;
    user_values.push_back(i == col ? new_value : ValueAt(loc, i));
  }
  RETURN_IF_ERROR(UpdateByPkUnlocked(txn, pk, user_values, options));
  // Logged as a full-row update: the WAL is logical, and the rebuilt
  // user-value vector is exactly what was applied.
  if (DurabilityManager* d = durability.durability()) {
    RETURN_IF_ERROR(d->LogUpdate(name(), txn.tid(), pk, user_values));
  }
  return Status::Ok();
}

Status Table::DeleteByPkUnlocked(const Transaction& txn, const Value& pk) {
  if (txn.in_atomic_scope()) {
    // Insert-only scope contract; see UpdateByPkUnlocked.
    return Status::FailedPrecondition(
        "deletes are not allowed inside an atomic write scope");
  }
  if (!schema_.primary_key) {
    return Status::FailedPrecondition("delete requires a primary key");
  }
  auto it = pk_index_.find(pk);
  if (it == pk_index_.end()) {
    return Status::NotFound(StrFormat("no row with primary key %s in '%s'",
                                      pk.ToString().c_str(), name().c_str()));
  }
  RowLocation loc = it->second;
  PartitionGroup& g = groups_[loc.group];
  Partition& partition = loc.kind == PartitionKind::kMain ? g.main : g.delta;
  partition.InvalidateRow(loc.row, txn.tid());
  pk_index_.erase(it);
  return Status::Ok();
}

std::optional<RowLocation> Table::FindByPk(const Value& pk) const {
  auto it = pk_index_.find(pk);
  if (it == pk_index_.end()) return std::nullopt;
  return it->second;
}

const Value& Table::ValueAt(const RowLocation& loc, size_t column) const {
  return partition(loc).column(column).GetValue(loc.row);
}

size_t Table::TotalRows() const {
  size_t total = 0;
  for (const PartitionGroup& g : groups_) {
    total += g.main.num_rows() + g.delta.num_rows();
  }
  return total;
}

size_t Table::VisibleRows(Snapshot snapshot) const {
  size_t total = 0;
  for (const PartitionGroup& g : groups_) {
    for (const Partition* p : {&g.main, &g.delta}) {
      for (size_t r = 0; r < p->num_rows(); ++r) {
        if (snapshot.RowVisible(p->create_tid(r), p->invalidate_tid(r))) {
          ++total;
        }
      }
    }
  }
  return total;
}

size_t Table::ColumnByteSize() const {
  size_t total = 0;
  for (const PartitionGroup& g : groups_) {
    total += g.main.ColumnByteSize() + g.delta.ColumnByteSize();
  }
  return total;
}

uint64_t Table::MainInvalidationCount() const {
  uint64_t total = 0;
  for (const PartitionGroup& g : groups_) {
    total += g.main.invalidation_count();
  }
  return total;
}

size_t Table::DeltaRows() const {
  std::shared_lock<std::shared_mutex> lock(storage_mu_);
  size_t total = 0;
  for (const PartitionGroup& g : groups_) {
    total += g.delta.num_rows();
  }
  return total;
}

Status Table::SplitHotCold(const std::string& column,
                           const Value& cold_below) {
  // Splits change the table's *logical* partition-group layout, so unlike
  // merges (physical placement only) they are WAL-logged.
  DurabilityStatementGuard durability(db_ != nullptr ? db_->durability()
                                                     : nullptr);
  TableLockSet locks;
  locks.Add(this, TableLockMode::kExclusive);
  locks.Lock();
  if (groups_.size() != 1) {
    return Status::FailedPrecondition("table is already split");
  }
  if (!groups_[0].delta.empty()) {
    return Status::FailedPrecondition(
        "run a delta merge before splitting hot/cold");
  }
  ASSIGN_OR_RETURN(size_t col, schema_.ColumnIndex(column));

  const Partition& old_main = groups_[0].main;
  MainPartitionBuilder hot_builder(schema_);
  MainPartitionBuilder cold_builder(schema_);
  for (size_t r = 0; r < old_main.num_rows(); ++r) {
    const Value& v = old_main.column(col).GetValue(r);
    MainPartitionBuilder& builder =
        v < cold_below ? cold_builder : hot_builder;
    builder.AddRow(old_main.GetRow(r), old_main.create_tid(r),
                   old_main.invalidate_tid(r));
  }

  std::vector<PartitionGroup> new_groups;
  new_groups.push_back(PartitionGroup{AgeClass::kHot, hot_builder.Build(),
                                      Partition::MakeDelta(schema_)});
  new_groups.push_back(PartitionGroup{AgeClass::kCold, cold_builder.Build(),
                                      Partition::MakeDelta(schema_)});
  std::vector<PartitionGroup> displaced = std::move(groups_);
  groups_ = std::move(new_groups);
  RebuildPkIndex();
  if (EpochManager* ep = epochs()) {
    // Readers of *other* tables may still dereference the displaced main's
    // columns (e.g. a prefetched join side); defer freeing until the epoch
    // drains rather than destroying in place.
    ep->Retire(std::move(displaced));
    ep->Advance();
  }
  if (DurabilityManager* d = durability.durability()) {
    RETURN_IF_ERROR(d->LogSplitHotCold(name(), column, cold_below));
  }
  return Status::Ok();
}

void Table::RestoreGroups(std::vector<PartitionGroup> groups) {
  AGGCACHE_CHECK(!groups.empty()) << "a table needs at least one group";
  for (const PartitionGroup& g : groups) {
    AGGCACHE_CHECK_EQ(g.main.num_columns(), schema_.columns.size());
    AGGCACHE_CHECK_EQ(g.delta.num_columns(), schema_.columns.size());
  }
  TableLockSet locks;
  locks.Add(this, TableLockMode::kExclusive);
  locks.Lock();
  std::vector<PartitionGroup> displaced = std::move(groups_);
  groups_ = std::move(groups);
  RebuildPkIndex();
  if (EpochManager* ep = epochs()) {
    ep->Retire(std::move(displaced));
    ep->Advance();
  }
}

void Table::RebuildPkIndex() {
  pk_index_.clear();
  if (!schema_.primary_key) return;
  size_t pk_col = *schema_.primary_key;
  for (uint32_t g = 0; g < groups_.size(); ++g) {
    for (PartitionKind kind : {PartitionKind::kMain, PartitionKind::kDelta}) {
      const Partition& p =
          kind == PartitionKind::kMain ? groups_[g].main : groups_[g].delta;
      for (uint32_t r = 0; r < p.num_rows(); ++r) {
        if (p.RowInvalidated(r)) continue;
        pk_index_.emplace(p.column(pk_col).GetValue(r),
                          RowLocation{g, kind, r});
      }
    }
  }
}

}  // namespace aggcache
