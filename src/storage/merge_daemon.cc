#include "storage/merge_daemon.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/engine_metrics.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "runtime/memory_tracker.h"
#include "storage/database.h"
#include "storage/recovery.h"

namespace aggcache {

MergeDaemon::MergeDaemon(Database& db, MergeDaemonOptions options)
    : db_(db), options_(options) {}

MergeDaemon::~MergeDaemon() { Stop(); }

void MergeDaemon::Start() {
  AGGCACHE_CHECK(!db_.restoring())
      << "merge daemon started while recovery is replaying the WAL";
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void MergeDaemon::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void MergeDaemon::Pause() {
  // Synchronous: once Pause returns, no merge is in flight — callers
  // (quiesce barriers) may then read storage without table locks.
  std::unique_lock<std::mutex> lock(mu_);
  paused_ = true;
  cv_.wait(lock, [this] { return !merging_; });
}

void MergeDaemon::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
    nudged_ = true;
  }
  cv_.notify_all();
}

void MergeDaemon::Nudge() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    nudged_ = true;
  }
  cv_.notify_all();
}

bool MergeDaemon::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

bool MergeDaemon::paused() const {
  std::lock_guard<std::mutex> lock(mu_);
  return paused_;
}

MergeDaemonStats MergeDaemon::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void MergeDaemon::SetDurability(DurabilityManager* durability) {
  std::lock_guard<std::mutex> lock(mu_);
  AGGCACHE_CHECK(!running_) << "set durability before starting the daemon";
  durability_ = durability;
}

bool MergeDaemon::InterruptibleSleep(std::chrono::milliseconds delay) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, delay, [this] { return stop_requested_ || nudged_; });
  nudged_ = false;
  return !stop_requested_;
}

void MergeDaemon::MergeGroupWithRetry(const std::vector<std::string>& tables) {
  const char* group_label = tables.empty() ? "" : tables.front().c_str();
  std::chrono::milliseconds backoff = options_.initial_backoff;
  for (int attempt = 0; attempt <= options_.max_retries_per_tick; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_requested_ || paused_) return;
      ++stats_.merges_attempted;
      EngineMetrics::Get().merge_attempts->Increment();
      merging_ = true;
    }
    RecordFlightEvent(FlightEventType::kMergeStart,
                      static_cast<uint64_t>(attempt), tables.size(),
                      group_label);
    Status merged = [&] {
      BackgroundSpan merge_span(SpanKind::kMerge, group_label);
      return db_.MergeTables(tables, options_.merge_options);
    }();
    RecordFlightEvent(merged.ok() ? FlightEventType::kMergeCommit
                                  : FlightEventType::kMergeAbort,
                      static_cast<uint64_t>(attempt), tables.size(),
                      group_label);
    {
      std::lock_guard<std::mutex> lock(mu_);
      merging_ = false;
      cv_.notify_all();  // Wake a Pause() waiting for the merge to finish.
      if (merged.ok()) {
        ++stats_.merges_succeeded;
        EngineMetrics::Get().merge_commits->Increment();
        return;
      }
      ++stats_.merges_aborted;
      EngineMetrics::Get().merge_aborts->Increment();
      // Aborts are expected under fault injection: observers have already
      // run their OnMergeAborted recovery and the group's storage is
      // untouched, so a backed-off retry is safe.
      if (attempt == options_.max_retries_per_tick) {
        ++stats_.groups_given_up;
        return;  // re-evaluated next tick
      }
    }
    std::chrono::milliseconds delay = backoff;
    backoff = std::min(backoff * 2, options_.max_backoff);
    EngineMetrics::Get().merge_backoff_ms->Increment(
        static_cast<uint64_t>(delay.count()));
    RecordFlightEvent(FlightEventType::kMergeBackoff,
                      static_cast<uint64_t>(delay.count()),
                      static_cast<uint64_t>(attempt), group_label);
    if (!InterruptibleSleep(delay)) return;
  }
}

void MergeDaemon::Loop() {
  while (true) {
    if (!InterruptibleSleep(options_.poll_interval)) break;
    bool skip;
    {
      std::lock_guard<std::mutex> lock(mu_);
      skip = paused_;
      ++stats_.ticks;
      EngineMetrics::Get().merge_ticks->Increment();
    }
    if (skip) continue;
    // Yield to memory pressure: a merge materializes a new main partition
    // alongside the old one, the worst possible moment to allocate. Skip
    // the tick and let eviction/query unwinding free headroom first; the
    // deltas stay mergeable and are picked up by a later tick.
    MemoryTracker& process = MemoryTracker::Process();
    if (process.UnderPressure()) {
      EngineMetrics::Get().merge_pressure_yields->Increment();
      RecordFlightEvent(FlightEventType::kPressureYield,
                        static_cast<uint64_t>(process.used() >> 20),
                        static_cast<uint64_t>(process.limit() >> 20));
      continue;
    }
    for (const std::vector<std::string>& group : db_.DueMergeGroups()) {
      MergeGroupWithRetry(group);
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_requested_) return;
    }
    // Reclaim storage retired by earlier merges whose readers have drained.
    db_.epochs().Collect();
    // Opportunistic checkpoint: merges just shrank the deltas, so the
    // snapshot part of the segment is near its minimum size, and enough
    // WAL may have accumulated to be worth truncating.
    if (durability_ != nullptr &&
        durability_->options().checkpoint_on_merge) {
      durability_->MaybeCheckpoint();
    }
  }
}

MergeDaemonOptions MergeDaemon::OptionsFromEnv(bool* enabled) {
  MergeDaemonOptions options;
  *enabled = true;
  const char* env = std::getenv("AGGCACHE_MERGE_DAEMON");
  if (env == nullptr) return options;
  std::string spec(env);
  if (spec == "off" || spec == "0") {
    *enabled = false;
    return options;
  }
  std::vector<std::string> parts;
  for (size_t start = 0; start <= spec.size();) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    parts.push_back(spec.substr(start, comma - start));
    start = comma + 1;
  }
  for (const std::string& part : parts) {
    size_t eq = part.find('=');
    if (eq == std::string::npos) continue;
    std::string key = part.substr(0, eq);
    long value = std::strtol(part.c_str() + eq + 1, nullptr, 10);
    if (value < 0) continue;
    if (key == "poll_ms") {
      options.poll_interval = std::chrono::milliseconds(value);
    } else if (key == "backoff_ms") {
      options.initial_backoff = std::chrono::milliseconds(value);
    } else if (key == "max_backoff_ms") {
      options.max_backoff = std::chrono::milliseconds(value);
    } else if (key == "retries") {
      options.max_retries_per_tick = static_cast<int>(value);
    }
  }
  return options;
}

}  // namespace aggcache
