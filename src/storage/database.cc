#include "storage/database.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/metrics_registry.h"
#include "storage/recovery.h"
#include "storage/table_lock.h"
#include "verify/fault_injector.h"

namespace aggcache {

Database::~Database() { MetricsDumper::Stop(); }

StatusOr<Table*> Database::CreateTable(const TableSchema& schema) {
  RETURN_IF_ERROR(schema.Validate());
  Table* raw = nullptr;
  {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    if (tables_.contains(schema.name)) {
      return Status::AlreadyExists("table '" + schema.name +
                                   "' already exists");
    }
    auto table = std::unique_ptr<Table>(new Table(schema));
    RETURN_IF_ERROR(table->ResolveForeignKeys(this));
    raw = table.get();
    tables_.emplace(schema.name, std::move(table));
  }
  // Logged after catalog_mu_ releases: the WAL append takes the checkpoint
  // statement gate, and a checkpoint holding that gate needs catalog_mu_ to
  // enumerate tables — logging under the mutex would deadlock. The price is
  // that a checkpoint can capture the table before its record lands, so
  // replay treats CREATE TABLE as idempotent.
  if (DurabilityManager* d = durability()) {
    RETURN_IF_ERROR(d->LogCreateTable(schema));
  }
  return raw;
}

StatusOr<Table*> Database::GetTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second.get();
}

StatusOr<const Table*> Database::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  return GetTableLocked(name);
}

StatusOr<const Table*> Database::GetTableLocked(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return static_cast<const Table*>(it->second.get());
}

std::vector<std::string> Database::TableNames() const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Status Database::Merge(const std::string& table_name,
                       const MergeOptions& options) {
  ASSIGN_OR_RETURN(Table * table, GetTable(table_name));
  // Snapshot the observer list; observers registered mid-merge see the next
  // merge.
  std::vector<MergeObserver*> observers;
  {
    std::lock_guard<std::mutex> lock(observers_mu_);
    observers = merge_observers_;
  }
  // Lock the merge target exclusively and every other catalog table shared,
  // all up front in TableLockSet's global address order. The shared locks
  // are not an over-approximation: observer maintenance (aggregate cache
  // fold/compensation) executes the cached queries' join plans inside the
  // callbacks below, reading any table those joins touch.
  TableLockSet locks;
  locks.Add(table, TableLockMode::kExclusive);
  {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    for (const auto& [name, other] : tables_) {
      if (other.get() != table) {
        locks.Add(other.get(), TableLockMode::kShared);
      }
    }
  }
  locks.Lock();
  // The merge snapshot is issued *after* the locks are held and consumes a
  // fresh tid (Begin), for two guarantees: (a) every writer statement whose
  // rows sit in the delta completed before the locks were granted, so all
  // stable delta rows are visible at this snapshot; (b) every transaction
  // begun before this merge has read_tid strictly below it, so cache
  // maintenance stamped with this snapshot can never serve those earlier
  // readers (base_tid guard). One snapshot covers the whole
  // before/merge/after sequence — observers fold exactly what moves.
  Snapshot merge_snapshot = txn_manager_.Begin().snapshot();
  Status result = Status::Ok();
  for (size_t g = 0; g < table->num_groups() && result.ok(); ++g) {
    for (MergeObserver* observer : observers) {
      observer->OnBeforeMerge(*table, g, merge_snapshot);
    }
    // The fault point sits after OnBeforeMerge on purpose: observers have
    // already folded the delta forward, so an abort here exercises their
    // worst-case recovery path (OnMergeAborted).
    Status merged = FaultInjector::Global().MaybeFail("storage.merge");
    if (merged.ok()) merged = MergeTableGroup(*table, g, options, merge_snapshot);
    if (!merged.ok()) {
      for (MergeObserver* observer : observers) {
        observer->OnMergeAborted(*table, g);
      }
      result = merged;
      break;
    }
    for (MergeObserver* observer : observers) {
      observer->OnAfterMerge(*table, g, merge_snapshot);
    }
  }
  locks.Unlock();
  // Free retired partitions whose reader epochs have drained. Readers still
  // inside an older epoch keep theirs alive until a later merge collects.
  epochs_.Collect();
  return result;
}

Status Database::MergeTables(const std::vector<std::string>& table_names,
                             const MergeOptions& options) {
  for (const std::string& name : table_names) {
    RETURN_IF_ERROR(Merge(name, options));
  }
  return Status::Ok();
}

Status Database::MergeAll(const MergeOptions& options) {
  return MergeTables(TableNames(), options);
}

void Database::AddMergeObserver(MergeObserver* observer) {
  std::lock_guard<std::mutex> lock(observers_mu_);
  merge_observers_.push_back(observer);
}

void Database::RemoveMergeObserver(MergeObserver* observer) {
  std::lock_guard<std::mutex> lock(observers_mu_);
  merge_observers_.erase(
      std::remove(merge_observers_.begin(), merge_observers_.end(), observer),
      merge_observers_.end());
}

void Database::RegisterAgingGroup(std::vector<std::string> table_names) {
  std::vector<std::string> logged = table_names;
  {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    aging_groups_.push_back(std::move(table_names));
  }
  // Best effort, after the mutex releases (same gate ordering as
  // CreateTable); replay dedups re-registrations.
  if (DurabilityManager* d = durability()) (void)d->LogAgingGroup(logged);
}

void Database::RegisterMergeGroup(std::vector<std::string> table_names,
                                  size_t delta_row_threshold) {
  std::vector<std::string> logged = table_names;
  {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    merge_groups_.push_back(
        MergeGroup{std::move(table_names), delta_row_threshold});
  }
  if (DurabilityManager* d = durability()) {
    (void)d->LogMergeGroup(logged, delta_row_threshold);
  }
}

StatusOr<bool> Database::GroupDue(const MergeGroup& group) const {
  for (const std::string& name : group.tables) {
    ASSIGN_OR_RETURN(const Table* table, GetTable(name));
    if (table->DeltaRows() >= group.delta_row_threshold) return true;
  }
  return false;
}

StatusOr<size_t> Database::AutoMergeTick(const MergeOptions& options) {
  std::vector<MergeGroup> groups;
  {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    groups = merge_groups_;
  }
  size_t merged = 0;
  for (const MergeGroup& group : groups) {
    ASSIGN_OR_RETURN(bool due, GroupDue(group));
    if (!due) continue;
    RETURN_IF_ERROR(MergeTables(group.tables, options));
    ++merged;
  }
  return merged;
}

std::vector<std::vector<std::string>> Database::DueMergeGroups() const {
  std::vector<MergeGroup> groups;
  {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    groups = merge_groups_;
  }
  std::vector<std::vector<std::string>> due;
  for (const MergeGroup& group : groups) {
    StatusOr<bool> group_due = GroupDue(group);
    // The daemon treats a group with an unknown table as never due rather
    // than failing the whole tick.
    if (group_due.ok() && *group_due) due.push_back(group.tables);
  }
  return due;
}

std::vector<std::pair<std::vector<std::string>, size_t>>
Database::merge_groups() const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  std::vector<std::pair<std::vector<std::string>, size_t>> groups;
  groups.reserve(merge_groups_.size());
  for (const MergeGroup& group : merge_groups_) {
    groups.emplace_back(group.tables, group.delta_row_threshold);
  }
  return groups;
}

ScopedTransaction Database::BeginAtomic() {
  ScopedTransaction scope = txn_manager_.BeginAtomic();
  // The begin record anchors scope analysis during recovery: a begin with
  // no matching commit marks every record of that tid as discardable.
  if (DurabilityManager* d = durability()) (void)d->LogScopeBegin(scope.tid());
  return scope;
}

void Database::AttachDurability(DurabilityManager* durability) {
  durability_.store(durability, std::memory_order_release);
  if (durability != nullptr) {
    txn_manager_.SetScopeEndListener(
        [durability](Tid tid) { durability->LogScopeEnd(tid); });
  } else {
    txn_manager_.SetScopeEndListener(nullptr);
  }
}

bool Database::InSameAgingGroup(const std::string& a,
                                const std::string& b) const {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  for (const std::vector<std::string>& group : aging_groups_) {
    bool has_a = std::find(group.begin(), group.end(), a) != group.end();
    bool has_b = std::find(group.begin(), group.end(), b) != group.end();
    if (has_a && has_b) return true;
  }
  return false;
}

}  // namespace aggcache
