#include "storage/database.h"

#include <algorithm>

#include "common/string_util.h"
#include "verify/fault_injector.h"

namespace aggcache {

StatusOr<Table*> Database::CreateTable(const TableSchema& schema) {
  RETURN_IF_ERROR(schema.Validate());
  if (tables_.contains(schema.name)) {
    return Status::AlreadyExists("table '" + schema.name +
                                 "' already exists");
  }
  auto table = std::unique_ptr<Table>(new Table(schema));
  RETURN_IF_ERROR(table->ResolveForeignKeys(this));
  Table* raw = table.get();
  tables_.emplace(schema.name, std::move(table));
  return raw;
}

StatusOr<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second.get();
}

StatusOr<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return static_cast<const Table*>(it->second.get());
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Status Database::Merge(const std::string& table_name,
                       const MergeOptions& options) {
  ASSIGN_OR_RETURN(Table * table, GetTable(table_name));
  for (size_t g = 0; g < table->num_groups(); ++g) {
    for (MergeObserver* observer : merge_observers_) {
      observer->OnBeforeMerge(*table, g);
    }
    // The fault point sits after OnBeforeMerge on purpose: observers have
    // already folded the delta forward, so an abort here exercises their
    // worst-case recovery path (OnMergeAborted).
    Status merged = FaultInjector::Global().MaybeFail("storage.merge");
    if (merged.ok()) merged = MergeTableGroup(*table, g, options);
    if (!merged.ok()) {
      for (MergeObserver* observer : merge_observers_) {
        observer->OnMergeAborted(*table, g);
      }
      return merged;
    }
    for (MergeObserver* observer : merge_observers_) {
      observer->OnAfterMerge(*table, g);
    }
  }
  return Status::Ok();
}

Status Database::MergeTables(const std::vector<std::string>& table_names,
                             const MergeOptions& options) {
  for (const std::string& name : table_names) {
    RETURN_IF_ERROR(Merge(name, options));
  }
  return Status::Ok();
}

Status Database::MergeAll(const MergeOptions& options) {
  return MergeTables(TableNames(), options);
}

void Database::AddMergeObserver(MergeObserver* observer) {
  merge_observers_.push_back(observer);
}

void Database::RemoveMergeObserver(MergeObserver* observer) {
  merge_observers_.erase(
      std::remove(merge_observers_.begin(), merge_observers_.end(), observer),
      merge_observers_.end());
}

void Database::RegisterAgingGroup(std::vector<std::string> table_names) {
  aging_groups_.push_back(std::move(table_names));
}

void Database::RegisterMergeGroup(std::vector<std::string> table_names,
                                  size_t delta_row_threshold) {
  merge_groups_.push_back(
      MergeGroup{std::move(table_names), delta_row_threshold});
}

StatusOr<size_t> Database::AutoMergeTick(const MergeOptions& options) {
  size_t merged = 0;
  for (const MergeGroup& group : merge_groups_) {
    bool due = false;
    for (const std::string& name : group.tables) {
      ASSIGN_OR_RETURN(const Table* table, GetTable(name));
      size_t delta_rows = 0;
      for (size_t g = 0; g < table->num_groups(); ++g) {
        delta_rows += table->group(g).delta.num_rows();
      }
      if (delta_rows >= group.delta_row_threshold) {
        due = true;
        break;
      }
    }
    if (!due) continue;
    RETURN_IF_ERROR(MergeTables(group.tables, options));
    ++merged;
  }
  return merged;
}

bool Database::InSameAgingGroup(const std::string& a,
                                const std::string& b) const {
  for (const std::vector<std::string>& group : aging_groups_) {
    bool has_a = std::find(group.begin(), group.end(), a) != group.end();
    bool has_b = std::find(group.begin(), group.end(), b) != group.end();
    if (has_a && has_b) return true;
  }
  return false;
}

}  // namespace aggcache
