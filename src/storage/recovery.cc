#include "storage/recovery.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <set>
#include <sstream>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "obs/engine_metrics.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/span.h"
#include "storage/database.h"
#include "storage/segment.h"
#include "storage/snapshot.h"

namespace aggcache {
namespace {

/// flock(2) is per-open-file-description, so a second Open() in the same
/// process would happily re-lock the same directory. This registry makes
/// in-process double-opens fail as loudly as cross-process ones.
std::mutex& OpenDirsMu() {
  static std::mutex mu;
  return mu;
}
std::set<std::string>& OpenDirs() {
  static std::set<std::string> dirs;
  return dirs;
}

std::string CanonicalDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::path canonical =
      std::filesystem::weakly_canonical(dir, ec);
  return ec ? dir : canonical.string();
}

StatusOr<std::string> ReadName(std::istream& in) {
  ASSIGN_OR_RETURN(Value v, DecodeWalValue(in));
  if (!v.is_string()) {
    return Status::InvalidArgument("expected a name token in WAL payload");
  }
  return v.AsString();
}

}  // namespace

StatusOr<DurabilityOptions> DurabilityOptions::FromEnv() {
  DurabilityOptions options;
  if (const char* env = std::getenv("AGGCACHE_WAL")) {
    ASSIGN_OR_RETURN(options.wal_policy, ParseWalSyncPolicy(env));
  }
  return options;
}

DurabilityManager::DurabilityManager(std::string dir, Database* db,
                                     const DurabilityOptions& options)
    : dir_(std::move(dir)), db_(db), options_(options), checkpointer_(db, dir_) {}

StatusOr<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    const std::string& dir, Database* db, const DurabilityOptions& options) {
  if (!db->TableNames().empty() || db->txn_manager().last_committed() != 0) {
    return Status::FailedPrecondition(
        "durability must be opened on an empty database — recovery is the "
        "only way persisted state enters the engine");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create data dir '" + dir +
                            "': " + ec.message());
  }

  auto manager = std::unique_ptr<DurabilityManager>(
      new DurabilityManager(dir, db, options));

  // Exclusive directory lock: flock for cross-process, the registry for
  // in-process. Both fail loudly — two engines appending to one WAL would
  // interleave their histories.
  std::string canonical = CanonicalDir(dir);
  {
    std::lock_guard<std::mutex> lock(OpenDirsMu());
    if (!OpenDirs().insert(canonical).second) {
      return Status::FailedPrecondition(
          "data dir '" + dir + "' is already open in this process");
    }
    manager->lock_registered_ = true;
  }
  std::string lock_path = dir + "/LOCK";
  int lock_fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR, 0644);
  if (lock_fd < 0) {
    return Status::Internal(StrFormat("open('%s') failed: %s",
                                      lock_path.c_str(),
                                      std::strerror(errno)));
  }
  if (::flock(lock_fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(lock_fd);
    return Status::FailedPrecondition(
        "data dir '" + dir + "' is locked by another process");
  }
  manager->lock_fd_ = lock_fd;

  // Background starters (merge daemon, metrics dumper) must not run while
  // the catalog is mid-restore; they assert against these flags.
  db->set_restoring(true);
  MetricsDumper::BlockStarts(true);
  Status recovered = manager->Recover();
  MetricsDumper::BlockStarts(false);
  db->set_restoring(false);
  RETURN_IF_ERROR(recovered);

  // Open the WAL for appends one past the last trustworthy lsn and only
  // then attach: no statement logs while recovery replays.
  uint64_t next_lsn = 1;
  if (manager->report_.wal_records > 0 || manager->report_.checkpoint_loaded) {
    next_lsn = std::max(manager->report_.checkpoint_lsn,
                        manager->last_replay_lsn_) +
               1;
  }
  WriteAheadLog::Options wal_options;
  wal_options.policy = options.wal_policy;
  wal_options.async_interval_ms = options.async_interval_ms;
  ASSIGN_OR_RETURN(manager->wal_,
                   WriteAheadLog::Open(dir, wal_options, next_lsn));
  db->AttachDurability(manager.get());
  return manager;
}

DurabilityManager::~DurabilityManager() {
  if (db_->durability() == this) db_->AttachDurability(nullptr);
  ReleaseDirLock();
}

void DurabilityManager::ReleaseDirLock() {
  if (lock_fd_ >= 0) {
    ::flock(lock_fd_, LOCK_UN);
    ::close(lock_fd_);
    lock_fd_ = -1;
  }
  if (lock_registered_) {
    std::lock_guard<std::mutex> lock(OpenDirsMu());
    OpenDirs().erase(CanonicalDir(dir_));
    lock_registered_ = false;
  }
}

void DurabilityManager::SimulateCrash() {
  if (wal_) wal_->SimulateCrash();
  if (db_->durability() == this) db_->AttachDurability(nullptr);
  ReleaseDirLock();
}

std::vector<CacheDescriptor> DurabilityManager::TakeWarmDescriptors() {
  return std::move(warm_descriptors_);
}

Status DurabilityManager::Recover() {
  Stopwatch watch;

  // Newest valid checkpoint wins; a segment that fails validation (torn
  // publish, bit flip) falls back to the previous generation, which the
  // two-generation retention policy guarantees is still on disk.
  ASSIGN_OR_RETURN(std::vector<SegmentInfo> segments,
                   ListCheckpointSegments(dir_));
  for (size_t i = segments.size(); i-- > 0 && !report_.checkpoint_loaded;) {
    uint64_t lsn = 0;
    Tid last_tid = 0;
    StatusOr<std::string> payload =
        ReadSegmentFile(segments[i].path, &lsn, &last_tid);
    if (!payload.ok()) continue;  // Corrupt segment: try the older one.
    ASSIGN_OR_RETURN(CheckpointExtras extras,
                     DecodeCheckpointPayload(*payload, db_));
    report_.checkpoint_loaded = true;
    report_.checkpoint_lsn = lsn;
    report_.checkpoint_tid = last_tid;
    warm_descriptors_ = std::move(extras.cache_descriptors);
    report_.warm_descriptors = warm_descriptors_.size();
  }

  ASSIGN_OR_RETURN(WalReadResult wal, WriteAheadLog::ReadDir(dir_));
  report_.wal_records = wal.records.size();
  report_.wal_clean = wal.clean;
  report_.wal_tail_error = wal.tail_error;
  if (!wal.clean && !wal.tail_file.empty()) {
    // Truncate the torn file to its last valid record boundary so future
    // appends (in a fresh segment) extend a provably-clean prefix — without
    // this, the abandoned garbage would end the scan early forever.
    if (::truncate(wal.tail_file.c_str(),
                   static_cast<off_t>(wal.tail_valid_bytes)) != 0) {
      return Status::Internal(StrFormat("truncate('%s') failed: %s",
                                        wal.tail_file.c_str(),
                                        std::strerror(errno)));
    }
  }

  if (!report_.checkpoint_loaded && !wal.records.empty() &&
      wal.records.front().lsn != 1 && !segments.empty()) {
    return Status::Internal(
        "no checkpoint segment validates and the WAL has been truncated "
        "past its start — the directory is unrecoverable");
  }

  // Scope analysis over the full retained history: a scope is uncommitted
  // when its begin record has no matching commit. Records of uncommitted
  // scopes are skipped during replay — the crash happened mid-scope, and
  // atomicity says none of its rows may survive.
  std::set<Tid> begun;
  std::set<Tid> committed;
  for (const WalRecord& record : wal.records) {
    if (record.type == WalRecordType::kScopeBegin) begun.insert(record.tid);
    if (record.type == WalRecordType::kScopeCommit) {
      committed.insert(record.tid);
    }
  }
  std::set<Tid> uncommitted;
  for (Tid tid : begun) {
    if (!committed.contains(tid)) uncommitted.insert(tid);
  }

  Tid max_tid = report_.checkpoint_tid;
  BackgroundSpan replay_span(SpanKind::kRecoveryReplay);
  for (const WalRecord& record : wal.records) {
    if (record.lsn <= report_.checkpoint_lsn) continue;
    last_replay_lsn_ = record.lsn;
    max_tid = std::max(max_tid, record.tid);
    // Keep the tid counter ahead of everything replayed so far: replaying a
    // split record runs a real merge, whose fresh snapshot must see all
    // previously replayed rows as stable (their tids are historical highs).
    db_->txn_manager().AdvanceTo(max_tid);
    if (uncommitted.contains(record.tid)) {
      ++report_.discarded_records;
      continue;
    }
    Status applied = ReplayRecord(record);
    if (!applied.ok()) {
      return Status::Internal(StrFormat(
          "WAL replay failed at lsn %llu (%s): %s",
          static_cast<unsigned long long>(record.lsn),
          WalRecordTypeToString(record.type),
          std::string(applied.message()).c_str()));
    }
    ++report_.replayed_records;
  }
  if (!wal.records.empty()) {
    last_replay_lsn_ = std::max(last_replay_lsn_, wal.records.back().lsn);
  }
  report_.discarded_scopes = uncommitted.size();
  db_->txn_manager().AdvanceTo(max_tid);

  uint64_t replay_us =
      static_cast<uint64_t>(watch.ElapsedMillis() * 1000.0);
  const EngineMetrics& m = EngineMetrics::Get();
  m.recovery_replayed->Increment(report_.replayed_records);
  m.recovery_discarded_scopes->Increment(report_.discarded_scopes);
  m.recovery_replay_us->Observe(replay_us);
  RecordFlightEvent(FlightEventType::kRecoveryReplay,
                    report_.replayed_records, replay_us);
  return Status::Ok();
}

Status DurabilityManager::ReplayRecord(const WalRecord& record) {
  std::istringstream in(record.payload);
  Transaction txn = db_->txn_manager().ReplayAt(record.tid);
  switch (record.type) {
    case WalRecordType::kInsert:
    case WalRecordType::kUpdate: {
      ASSIGN_OR_RETURN(std::string table_name, ReadName(in));
      ASSIGN_OR_RETURN(Table * table, db_->GetTable(table_name));
      Value pk;
      if (record.type == WalRecordType::kUpdate) {
        ASSIGN_OR_RETURN(pk, DecodeWalValue(in));
      }
      size_t n = 0;
      if (!(in >> n)) {
        return Status::InvalidArgument("bad value count in WAL payload");
      }
      std::vector<Value> values;
      values.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        ASSIGN_OR_RETURN(Value v, DecodeWalValue(in));
        values.push_back(std::move(v));
      }
      if (record.type == WalRecordType::kInsert) {
        return table->Insert(txn, values);
      }
      return table->UpdateByPk(txn, pk, values);
    }
    case WalRecordType::kDelete: {
      ASSIGN_OR_RETURN(std::string table_name, ReadName(in));
      ASSIGN_OR_RETURN(Table * table, db_->GetTable(table_name));
      ASSIGN_OR_RETURN(Value pk, DecodeWalValue(in));
      return table->DeleteByPk(txn, pk);
    }
    case WalRecordType::kScopeBegin:
    case WalRecordType::kScopeCommit:
      return Status::Ok();  // Bookkeeping only; consumed by scope analysis.
    case WalRecordType::kCreateTable: {
      ASSIGN_OR_RETURN(TableSchema schema, ReadSchemaText(in));
      // DDL logs outside the catalog mutex, so a checkpoint can slide
      // between the catalog insert and the append; the table is then both
      // in the checkpoint and in the tail. Replay is idempotent.
      if (db_->GetTable(schema.name).ok()) return Status::Ok();
      return db_->CreateTable(schema).status();
    }
    case WalRecordType::kSplitHotCold: {
      ASSIGN_OR_RETURN(std::string table_name, ReadName(in));
      ASSIGN_OR_RETURN(std::string column, ReadName(in));
      ASSIGN_OR_RETURN(Value cold_below, DecodeWalValue(in));
      ASSIGN_OR_RETURN(Table * table, db_->GetTable(table_name));
      if (table->num_groups() > 1) return Status::Ok();  // Idempotence.
      // The original split required an empty delta (it ran after a merge).
      // Merges are not logged — delta contents at this point in the replay
      // differ from the original timeline — so re-establish the
      // precondition the same way the original did.
      RETURN_IF_ERROR(db_->Merge(table_name));
      return table->SplitHotCold(column, cold_below);
    }
    case WalRecordType::kAgingGroup: {
      size_t n = 0;
      if (!(in >> n)) {
        return Status::InvalidArgument("bad aging group count");
      }
      std::vector<std::string> tables;
      for (size_t i = 0; i < n; ++i) {
        ASSIGN_OR_RETURN(std::string name, ReadName(in));
        tables.push_back(std::move(name));
      }
      for (const auto& existing : db_->aging_groups()) {
        if (existing == tables) return Status::Ok();  // Idempotence.
      }
      db_->RegisterAgingGroup(std::move(tables));
      return Status::Ok();
    }
    case WalRecordType::kMergeGroup: {
      size_t threshold = 0;
      size_t n = 0;
      if (!(in >> threshold >> n)) {
        return Status::InvalidArgument("bad merge group payload");
      }
      std::vector<std::string> tables;
      for (size_t i = 0; i < n; ++i) {
        ASSIGN_OR_RETURN(std::string name, ReadName(in));
        tables.push_back(std::move(name));
      }
      for (const auto& [existing, existing_threshold] : db_->merge_groups()) {
        if (existing == tables && existing_threshold == threshold) {
          return Status::Ok();  // Idempotence.
        }
      }
      db_->RegisterMergeGroup(std::move(tables), threshold);
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown WAL record type");
}

Status DurabilityManager::AppendRecord(WalRecordType type, Tid tid,
                                       const std::string& payload) {
  if (!wal_) return Status::Ok();
  return wal_->Append(type, tid, payload);
}

Status DurabilityManager::LogInsert(const std::string& table, Tid tid,
                                    const std::vector<Value>& user_values) {
  std::ostringstream out;
  out << EncodeWalValue(Value(table)) << ' ' << user_values.size();
  for (const Value& v : user_values) out << ' ' << EncodeWalValue(v);
  return AppendRecord(WalRecordType::kInsert, tid, out.str());
}

Status DurabilityManager::LogUpdate(const std::string& table, Tid tid,
                                    const Value& pk,
                                    const std::vector<Value>& new_user_values) {
  std::ostringstream out;
  out << EncodeWalValue(Value(table)) << ' ' << EncodeWalValue(pk) << ' '
      << new_user_values.size();
  for (const Value& v : new_user_values) out << ' ' << EncodeWalValue(v);
  return AppendRecord(WalRecordType::kUpdate, tid, out.str());
}

Status DurabilityManager::LogDelete(const std::string& table, Tid tid,
                                    const Value& pk) {
  std::ostringstream out;
  out << EncodeWalValue(Value(table)) << ' ' << EncodeWalValue(pk);
  return AppendRecord(WalRecordType::kDelete, tid, out.str());
}

Status DurabilityManager::LogSplitHotCold(const std::string& table,
                                          const std::string& column,
                                          const Value& cold_below) {
  std::ostringstream out;
  out << EncodeWalValue(Value(table)) << ' ' << EncodeWalValue(Value(column))
      << ' ' << EncodeWalValue(cold_below);
  return AppendRecord(WalRecordType::kSplitHotCold, kNoTid, out.str());
}

Status DurabilityManager::LogCreateTable(const TableSchema& schema) {
  std::ostringstream out;
  WriteSchemaText(schema, out);
  DurabilityStatementGuard guard(this);
  return AppendRecord(WalRecordType::kCreateTable, kNoTid, out.str());
}

Status DurabilityManager::LogAgingGroup(
    const std::vector<std::string>& tables) {
  std::ostringstream out;
  out << tables.size();
  for (const std::string& t : tables) out << ' ' << EncodeWalValue(Value(t));
  DurabilityStatementGuard guard(this);
  return AppendRecord(WalRecordType::kAgingGroup, kNoTid, out.str());
}

Status DurabilityManager::LogMergeGroup(const std::vector<std::string>& tables,
                                        size_t delta_row_threshold) {
  std::ostringstream out;
  out << delta_row_threshold << ' ' << tables.size();
  for (const std::string& t : tables) out << ' ' << EncodeWalValue(Value(t));
  DurabilityStatementGuard guard(this);
  return AppendRecord(WalRecordType::kMergeGroup, kNoTid, out.str());
}

Status DurabilityManager::LogScopeBegin(Tid tid) {
  DurabilityStatementGuard guard(this);
  return AppendRecord(WalRecordType::kScopeBegin, tid, "");
}

void DurabilityManager::LogScopeEnd(Tid tid) {
  DurabilityStatementGuard guard(this);
  (void)AppendRecord(WalRecordType::kScopeCommit, tid, "");
}

void DurabilityManager::MaybeCheckpoint() {
  if (!wal_) return;
  if (wal_->bytes_since_rotate() < options_.checkpoint_wal_bytes) return;
  (void)Checkpoint();  // Skips and errors are both fine here: opportunistic.
}

}  // namespace aggcache
