#ifndef AGGCACHE_STORAGE_SCHEMA_H_
#define AGGCACHE_STORAGE_SCHEMA_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace aggcache {

/// One column of a table schema.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  /// True for temporal (tid) columns that the engine maintains itself at
  /// insert time: either the table's own transaction id or the tid copied
  /// from a referenced row to enforce a matching dependency (Section 5).
  bool is_tid = false;
};

/// Declarative foreign key with an optional matching-dependency column.
///
/// When `tid_column` is set, inserts into this table copy the referenced
/// row's own-tid value into that local column, enforcing the matching
/// dependency MD = (R, S, (R[pk] = S[fk]) => (R[tid] = S[tid])) from Eq. 3/6
/// of the paper. The referenced table must declare an own-tid column.
struct ForeignKeyDef {
  size_t column = 0;              ///< Local FK column index.
  std::string ref_table;          ///< Referenced table (joined on its PK).
  std::optional<size_t> tid_column;  ///< Local MD tid column index.
};

/// Schema of a table: columns, single-column primary key, foreign keys, and
/// the auto-maintained temporal columns.
struct TableSchema {
  std::string name;
  std::vector<ColumnDef> columns;
  std::optional<size_t> primary_key;
  /// Column auto-filled with the inserting transaction's tid.
  std::optional<size_t> own_tid_column;
  std::vector<ForeignKeyDef> foreign_keys;

  /// Index of the column named `name`.
  StatusOr<size_t> ColumnIndex(const std::string& column_name) const;

  /// Number of columns the caller supplies on insert (non-tid columns).
  size_t NumUserColumns() const;

  /// Structural validation: indices in range, tid columns are int64, the
  /// own-tid column is marked is_tid, etc.
  Status Validate() const;
};

/// Fluent builder for TableSchema, used by examples and workload generators.
///
///   TableSchema schema = SchemaBuilder("Header")
///       .AddColumn("HeaderID", ColumnType::kInt64).PrimaryKey()
///       .AddColumn("FiscalYear", ColumnType::kInt64)
///       .OwnTid("tid_Header")
///       .Build();
class SchemaBuilder {
 public:
  explicit SchemaBuilder(std::string table_name);

  /// Appends a user column; subsequent PrimaryKey()/References() apply to it.
  SchemaBuilder& AddColumn(const std::string& name, ColumnType type);

  /// Marks the last added column as the primary key.
  SchemaBuilder& PrimaryKey();

  /// Declares a foreign key from the last added column to `ref_table`'s
  /// primary key. When `md_tid_column` is non-empty, also appends a tid
  /// column with that name and ties it to the foreign key (the matching
  /// dependency of Section 5).
  SchemaBuilder& References(const std::string& ref_table,
                            const std::string& md_tid_column = "");

  /// Appends the table's own-tid column.
  SchemaBuilder& OwnTid(const std::string& name);

  /// Finalizes the schema; aborts on structural errors (programming bug).
  TableSchema Build();

  /// Like Build(), but reports structural errors as a Status instead of
  /// aborting — for schemas assembled from untrusted input (SQL parser).
  StatusOr<TableSchema> TryBuild() const;

 private:
  TableSchema schema_;
};

}  // namespace aggcache

#endif  // AGGCACHE_STORAGE_SCHEMA_H_
