#include "storage/dictionary.h"

#include <algorithm>

#include "common/logging.h"

namespace aggcache {

Dictionary::Dictionary(ColumnType type, Mode mode)
    : type_(type), mode_(mode) {}

Dictionary Dictionary::BuildSorted(ColumnType type,
                                   std::vector<Value> values) {
  for (const Value& v : values) {
    AGGCACHE_CHECK(v.MatchesType(type)) << "value/type mismatch in BuildSorted";
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  Dictionary dict(type, Mode::kSortedMain);
  dict.values_ = std::move(values);
  dict.index_.reserve(dict.values_.size());
  for (size_t i = 0; i < dict.values_.size(); ++i) {
    dict.value_bytes_ += dict.values_[i].ByteSize();
    dict.index_.emplace(dict.values_[i], static_cast<ValueId>(i));
  }
  return dict;
}

StatusOr<ValueId> Dictionary::GetOrAdd(const Value& v) {
  if (mode_ != Mode::kUnsortedDelta) {
    return Status::FailedPrecondition("GetOrAdd on immutable main dictionary");
  }
  if (v.is_null()) {
    return Status::InvalidArgument("NULL values are not supported");
  }
  if (!v.MatchesType(type_)) {
    return Status::InvalidArgument("value type does not match column type");
  }
  auto it = index_.find(v);
  if (it != index_.end()) return it->second;
  ValueId id = static_cast<ValueId>(values_.size());
  values_.push_back(v);
  value_bytes_ += v.ByteSize();
  index_.emplace(v, id);
  if (min_id_ == kInvalidValueId || v < values_[min_id_]) min_id_ = id;
  if (max_id_ == kInvalidValueId || values_[max_id_] < v) max_id_ = id;
  return id;
}

std::optional<ValueId> Dictionary::Find(const Value& v) const {
  auto it = index_.find(v);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const Value& Dictionary::min_value() const {
  AGGCACHE_CHECK(!values_.empty()) << "min_value of empty dictionary";
  if (mode_ == Mode::kSortedMain) return values_.front();
  return values_[min_id_];
}

const Value& Dictionary::max_value() const {
  AGGCACHE_CHECK(!values_.empty()) << "max_value of empty dictionary";
  if (mode_ == Mode::kSortedMain) return values_.back();
  return values_[max_id_];
}

size_t Dictionary::ByteSize() const {
  size_t bytes = value_bytes_;
  // Hash index: bucket array plus one node per entry, rough but consistent.
  bytes += index_.bucket_count() * sizeof(void*);
  bytes += index_.size() * (sizeof(Value) + sizeof(ValueId) + sizeof(void*));
  return bytes;
}

}  // namespace aggcache
