#include "storage/schema.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace aggcache {

StatusOr<size_t> TableSchema::ColumnIndex(
    const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return i;
  }
  return Status::NotFound(
      StrFormat("column '%s' not in table '%s'", column_name.c_str(),
                name.c_str()));
}

size_t TableSchema::NumUserColumns() const {
  size_t n = 0;
  for (const ColumnDef& c : columns) {
    if (!c.is_tid) ++n;
  }
  return n;
}

Status TableSchema::Validate() const {
  if (name.empty()) return Status::InvalidArgument("table name empty");
  if (columns.empty()) {
    return Status::InvalidArgument("table '" + name + "' has no columns");
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name.empty()) {
      return Status::InvalidArgument("unnamed column in table " + name);
    }
    for (size_t j = i + 1; j < columns.size(); ++j) {
      if (columns[i].name == columns[j].name) {
        return Status::InvalidArgument("duplicate column '" +
                                       columns[i].name + "' in " + name);
      }
    }
    if (columns[i].is_tid && columns[i].type != ColumnType::kInt64) {
      return Status::InvalidArgument("tid column '" + columns[i].name +
                                     "' must be int64");
    }
  }
  if (primary_key && *primary_key >= columns.size()) {
    return Status::InvalidArgument("primary key index out of range");
  }
  if (own_tid_column) {
    if (*own_tid_column >= columns.size()) {
      return Status::InvalidArgument("own-tid column index out of range");
    }
    if (!columns[*own_tid_column].is_tid) {
      return Status::InvalidArgument("own-tid column must be marked is_tid");
    }
  }
  for (const ForeignKeyDef& fk : foreign_keys) {
    if (fk.column >= columns.size()) {
      return Status::InvalidArgument("foreign key column index out of range");
    }
    if (fk.ref_table.empty()) {
      return Status::InvalidArgument("foreign key without referenced table");
    }
    if (fk.tid_column) {
      if (*fk.tid_column >= columns.size()) {
        return Status::InvalidArgument("FK tid column index out of range");
      }
      if (!columns[*fk.tid_column].is_tid) {
        return Status::InvalidArgument("FK tid column must be marked is_tid");
      }
    }
  }
  return Status::Ok();
}

SchemaBuilder::SchemaBuilder(std::string table_name) {
  schema_.name = std::move(table_name);
}

SchemaBuilder& SchemaBuilder::AddColumn(const std::string& name,
                                        ColumnType type) {
  schema_.columns.push_back(ColumnDef{name, type, /*is_tid=*/false});
  return *this;
}

SchemaBuilder& SchemaBuilder::PrimaryKey() {
  AGGCACHE_CHECK(!schema_.columns.empty()) << "PrimaryKey() before AddColumn";
  schema_.primary_key = schema_.columns.size() - 1;
  return *this;
}

SchemaBuilder& SchemaBuilder::References(const std::string& ref_table,
                                         const std::string& md_tid_column) {
  AGGCACHE_CHECK(!schema_.columns.empty()) << "References() before AddColumn";
  ForeignKeyDef fk;
  fk.column = schema_.columns.size() - 1;
  fk.ref_table = ref_table;
  if (!md_tid_column.empty()) {
    schema_.columns.push_back(
        ColumnDef{md_tid_column, ColumnType::kInt64, /*is_tid=*/true});
    fk.tid_column = schema_.columns.size() - 1;
  }
  schema_.foreign_keys.push_back(std::move(fk));
  return *this;
}

SchemaBuilder& SchemaBuilder::OwnTid(const std::string& name) {
  schema_.columns.push_back(
      ColumnDef{name, ColumnType::kInt64, /*is_tid=*/true});
  schema_.own_tid_column = schema_.columns.size() - 1;
  return *this;
}

TableSchema SchemaBuilder::Build() {
  Status status = schema_.Validate();
  AGGCACHE_CHECK(status.ok()) << "invalid schema: " << status.ToString();
  return schema_;
}

StatusOr<TableSchema> SchemaBuilder::TryBuild() const {
  RETURN_IF_ERROR(schema_.Validate());
  return schema_;
}

}  // namespace aggcache
