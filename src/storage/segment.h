#ifndef AGGCACHE_STORAGE_SEGMENT_H_
#define AGGCACHE_STORAGE_SEGMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "txn/types.h"

namespace aggcache {

/// A checkpoint segment on disk: ckpt-<lsn>.seg, where <lsn> is the WAL lsn
/// the checkpoint captured (every record with lsn <= it is reflected in the
/// payload). Format:
///
///   AGGCACHE_SEGMENT v1 <lsn> <last_tid> <payload bytes> <payload crc32>\n
///   <payload bytes of opaque payload>
///
/// Writers publish atomically: write ckpt-<lsn>.seg.tmp, fsync it, rename(2)
/// over the final name, fsync the directory. Readers reject any file whose
/// header, size or checksum disagrees — a torn or bit-flipped segment reads
/// as absent, never as data.
struct SegmentInfo {
  std::string path;
  uint64_t lsn = 0;
};

/// Writes and publishes one segment. Consults the FaultInjector crash
/// points "checkpoint.write" (die before the temp file is complete) and
/// "checkpoint.publish" (die after the temp fsync, before the rename) —
/// both leave the previous checkpoint generation untouched.
Status WriteSegmentFile(const std::string& dir, uint64_t lsn, Tid last_tid,
                        const std::string& payload);

/// Reads and validates one segment, returning its payload.
StatusOr<std::string> ReadSegmentFile(const std::string& path, uint64_t* lsn,
                                      Tid* last_tid);

/// Lists every ckpt-*.seg in `dir`, sorted ascending by lsn. Files with
/// unparsable names are ignored (as are .tmp leftovers).
StatusOr<std::vector<SegmentInfo>> ListCheckpointSegments(
    const std::string& dir);

}  // namespace aggcache

#endif  // AGGCACHE_STORAGE_SEGMENT_H_
