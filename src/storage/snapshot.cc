#include "storage/snapshot.h"

#include <cinttypes>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "common/string_util.h"
#include "storage/delta_merge.h"

namespace aggcache {
namespace {

constexpr const char* kMagic = "AGGCACHE_SNAPSHOT v1";

// --- Value encoding --------------------------------------------------------
// One token per value: integers and doubles as plain text, strings quoted
// with backslash escapes for quote, backslash, newline, and CR (so a row
// always fits one line).

std::string EncodeValue(const Value& v) {
  if (v.is_int64()) return StrFormat("%lld", static_cast<long long>(v.AsInt64()));
  if (v.is_double()) return StrFormat("%.17g", v.AsDouble());
  std::string out = "\"";
  for (char c : v.AsString()) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  out += '"';
  return out;
}

// Reads one encoded value of the given type from `stream`.
StatusOr<Value> DecodeValue(std::istringstream& stream, ColumnType type) {
  // Skip leading spaces.
  stream >> std::ws;
  if (type == ColumnType::kString) {
    if (stream.get() != '"') {
      return Status::InvalidArgument("malformed string value in snapshot");
    }
    std::string out;
    int c;
    while ((c = stream.get()) != EOF) {
      if (c == '\\') {
        int escaped = stream.get();
        switch (escaped) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          default:
            return Status::InvalidArgument("bad escape in snapshot string");
        }
      } else if (c == '"') {
        return Value(out);
      } else {
        out += static_cast<char>(c);
      }
    }
    return Status::InvalidArgument("unterminated string value in snapshot");
  }
  std::string token;
  if (!(stream >> token)) {
    return Status::InvalidArgument("missing value in snapshot row");
  }
  if (type == ColumnType::kInt64) {
    return Value(static_cast<int64_t>(std::strtoll(token.c_str(), nullptr,
                                                   10)));
  }
  return Value(std::strtod(token.c_str(), nullptr));
}

// --- Writing ----------------------------------------------------------------

void WritePartition(const Partition& p, const char* kind,
                    std::ostream& out) {
  out << "partition " << kind << " " << p.num_rows() << "\n";
  for (size_t r = 0; r < p.num_rows(); ++r) {
    out << "row " << p.create_tid(r) << " " << p.invalidate_tid(r);
    for (size_t c = 0; c < p.num_columns(); ++c) {
      out << " " << EncodeValue(p.column(c).GetValue(r));
    }
    out << "\n";
  }
}

void WriteTable(const Table& table, std::ostream& out) {
  WriteSchemaText(table.schema(), out);
  out << "groups " << table.num_groups() << "\n";
  for (size_t g = 0; g < table.num_groups(); ++g) {
    const PartitionGroup& group = table.group(g);
    out << "group " << AgeClassToString(group.age) << "\n";
    WritePartition(group.main, "main", out);
    WritePartition(group.delta, "delta", out);
  }
  out << "end_table\n";
}

/// Orders tables so every foreign-key target precedes its referrer (any
/// existing catalog is acyclic because CreateTable requires targets to
/// exist first).
StatusOr<std::vector<const Table*>> TopologicalOrder(const Database& db) {
  std::vector<const Table*> tables;
  for (const std::string& name : db.TableNames()) {
    ASSIGN_OR_RETURN(const Table* table, db.GetTable(name));
    tables.push_back(table);
  }
  std::vector<const Table*> ordered;
  std::set<std::string> emitted;
  while (ordered.size() < tables.size()) {
    bool progressed = false;
    for (const Table* table : tables) {
      if (emitted.contains(table->name())) continue;
      bool ready = true;
      for (const ForeignKeyDef& fk : table->schema().foreign_keys) {
        if (!emitted.contains(fk.ref_table)) ready = false;
      }
      if (!ready) continue;
      ordered.push_back(table);
      emitted.insert(table->name());
      progressed = true;
    }
    if (!progressed) {
      return Status::Internal("cyclic foreign keys in catalog");
    }
  }
  return ordered;
}

// --- Reading ----------------------------------------------------------------

class SnapshotReader {
 public:
  explicit SnapshotReader(std::istream& in) : in_(in) {}

  StatusOr<std::string> NextLine() {
    std::string line;
    while (std::getline(in_, line)) {
      ++line_number_;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) return line;
    }
    return Status::InvalidArgument("unexpected end of snapshot");
  }

  Status Fail(const std::string& message) const {
    return Status::InvalidArgument(StrFormat(
        "snapshot line %zu: %s", line_number_, message.c_str()));
  }

  size_t line_number() const { return line_number_; }

 private:
  std::istream& in_;
  size_t line_number_ = 0;
};

StatusOr<Partition> ReadPartition(SnapshotReader& reader,
                                  const TableSchema& schema,
                                  const char* expected_kind) {
  ASSIGN_OR_RETURN(std::string header, reader.NextLine());
  std::istringstream hs(header);
  std::string tag;
  std::string kind;
  size_t rows = 0;
  if (!(hs >> tag >> kind >> rows) || tag != "partition" ||
      kind != expected_kind) {
    return reader.Fail("expected 'partition " +
                       std::string(expected_kind) + " <rows>'");
  }

  bool is_main = kind == "main";
  MainPartitionBuilder builder(schema);
  Partition delta = Partition::MakeDelta(schema);
  std::vector<size_t> delta_invalidations;  // (row, tid) pairs applied after.
  std::vector<Tid> delta_invalidate_tids;

  for (size_t r = 0; r < rows; ++r) {
    ASSIGN_OR_RETURN(std::string line, reader.NextLine());
    std::istringstream rs(line);
    std::string row_tag;
    Tid create_tid = 0;
    Tid invalidate_tid = 0;
    if (!(rs >> row_tag >> create_tid >> invalidate_tid) ||
        row_tag != "row") {
      return reader.Fail("expected a 'row' line");
    }
    std::vector<Value> values;
    values.reserve(schema.columns.size());
    for (const ColumnDef& c : schema.columns) {
      auto value = DecodeValue(rs, c.type);
      if (!value.ok()) return reader.Fail(value.status().message());
      values.push_back(std::move(value).value());
    }
    if (is_main) {
      builder.AddRow(std::move(values), create_tid, invalidate_tid);
    } else {
      Status status = delta.AppendRow(values, create_tid);
      if (!status.ok()) return reader.Fail(status.message());
      if (invalidate_tid != kNoTid) {
        delta_invalidations.push_back(r);
        delta_invalidate_tids.push_back(invalidate_tid);
      }
    }
  }
  if (is_main) return builder.Build();
  for (size_t i = 0; i < delta_invalidations.size(); ++i) {
    delta.InvalidateRow(delta_invalidations[i], delta_invalidate_tids[i]);
  }
  return delta;
}

StatusOr<TableSchema> ReadSchema(SnapshotReader& reader,
                                 const std::string& table_name) {
  TableSchema schema;
  schema.name = table_name;

  ASSIGN_OR_RETURN(std::string line, reader.NextLine());
  std::istringstream cs(line);
  std::string tag;
  size_t num_columns = 0;
  if (!(cs >> tag >> num_columns) || tag != "columns") {
    return reader.Fail("expected 'columns <n>'");
  }
  for (size_t c = 0; c < num_columns; ++c) {
    ASSIGN_OR_RETURN(line, reader.NextLine());
    std::istringstream col(line);
    std::string name;
    int type = 0;
    int is_tid = 0;
    if (!(col >> tag >> name >> type >> is_tid) || tag != "column" ||
        type < 0 || type > 2) {
      return reader.Fail("expected 'column <name> <type> <is_tid>'");
    }
    schema.columns.push_back(
        ColumnDef{name, static_cast<ColumnType>(type), is_tid != 0});
  }

  auto read_index = [&](const char* what,
                        std::optional<size_t>* out) -> Status {
    ASSIGN_OR_RETURN(std::string index_line, reader.NextLine());
    std::istringstream is(index_line);
    std::string index_tag;
    long long index = -1;
    if (!(is >> index_tag >> index) || index_tag != what) {
      return reader.Fail(StrFormat("expected '%s <index>'", what));
    }
    if (index >= 0) *out = static_cast<size_t>(index);
    return Status::Ok();
  };
  RETURN_IF_ERROR(read_index("primary_key", &schema.primary_key));
  RETURN_IF_ERROR(read_index("own_tid", &schema.own_tid_column));

  ASSIGN_OR_RETURN(line, reader.NextLine());
  std::istringstream fs(line);
  size_t num_fks = 0;
  if (!(fs >> tag >> num_fks) || tag != "foreign_keys") {
    return reader.Fail("expected 'foreign_keys <n>'");
  }
  for (size_t f = 0; f < num_fks; ++f) {
    ASSIGN_OR_RETURN(line, reader.NextLine());
    std::istringstream fk_stream(line);
    ForeignKeyDef fk;
    long long tid_column = -1;
    if (!(fk_stream >> tag >> fk.column >> fk.ref_table >> tid_column) ||
        tag != "fk") {
      return reader.Fail("expected 'fk <col> <table> <tid col>'");
    }
    if (tid_column >= 0) fk.tid_column = static_cast<size_t>(tid_column);
    schema.foreign_keys.push_back(std::move(fk));
  }
  return schema;
}

}  // namespace

void WriteSchemaText(const TableSchema& schema, std::ostream& out) {
  out << "table " << schema.name << "\n";
  out << "columns " << schema.columns.size() << "\n";
  for (const ColumnDef& c : schema.columns) {
    out << "column " << c.name << " "
        << static_cast<int>(c.type) << " " << (c.is_tid ? 1 : 0) << "\n";
  }
  out << "primary_key "
      << (schema.primary_key ? static_cast<long long>(*schema.primary_key)
                             : -1)
      << "\n";
  out << "own_tid "
      << (schema.own_tid_column
              ? static_cast<long long>(*schema.own_tid_column)
              : -1)
      << "\n";
  out << "foreign_keys " << schema.foreign_keys.size() << "\n";
  for (const ForeignKeyDef& fk : schema.foreign_keys) {
    out << "fk " << fk.column << " " << fk.ref_table << " "
        << (fk.tid_column ? static_cast<long long>(*fk.tid_column) : -1)
        << "\n";
  }
}

StatusOr<TableSchema> ReadSchemaText(std::istream& in) {
  SnapshotReader reader(in);
  ASSIGN_OR_RETURN(std::string line, reader.NextLine());
  std::istringstream header(line);
  std::string tag;
  std::string table_name;
  if (!(header >> tag >> table_name) || tag != "table") {
    return reader.Fail("expected 'table <name>'");
  }
  return ReadSchema(reader, table_name);
}

Status WriteSnapshot(const Database& db, std::ostream& out) {
  out << kMagic << "\n";
  out << "last_tid " << db.txn_manager().last_committed() << "\n";
  out << "aging_groups " << db.aging_groups().size() << "\n";
  for (const std::vector<std::string>& group : db.aging_groups()) {
    out << "aging " << group.size();
    for (const std::string& name : group) out << " " << name;
    out << "\n";
  }
  ASSIGN_OR_RETURN(std::vector<const Table*> tables, TopologicalOrder(db));
  out << "tables " << tables.size() << "\n";
  for (const Table* table : tables) {
    WriteTable(*table, out);
  }
  out << "end_snapshot\n";
  if (!out.good()) return Status::Internal("snapshot stream write failed");
  return Status::Ok();
}

Status ReadSnapshot(std::istream& in, Database* db) {
  if (!db->TableNames().empty() || db->txn_manager().last_committed() != 0) {
    return Status::FailedPrecondition(
        "snapshots must be restored into an empty database");
  }
  SnapshotReader reader(in);
  ASSIGN_OR_RETURN(std::string line, reader.NextLine());
  if (line != kMagic) return reader.Fail("bad snapshot header");

  ASSIGN_OR_RETURN(line, reader.NextLine());
  std::istringstream ts(line);
  std::string tag;
  Tid last_tid = 0;
  if (!(ts >> tag >> last_tid) || tag != "last_tid") {
    return reader.Fail("expected 'last_tid <n>'");
  }

  ASSIGN_OR_RETURN(line, reader.NextLine());
  std::istringstream ags(line);
  size_t num_aging = 0;
  if (!(ags >> tag >> num_aging) || tag != "aging_groups") {
    return reader.Fail("expected 'aging_groups <n>'");
  }
  for (size_t a = 0; a < num_aging; ++a) {
    ASSIGN_OR_RETURN(line, reader.NextLine());
    std::istringstream as(line);
    size_t count = 0;
    if (!(as >> tag >> count) || tag != "aging") {
      return reader.Fail("expected 'aging <n> <tables...>'");
    }
    std::vector<std::string> group;
    std::string name;
    for (size_t i = 0; i < count; ++i) {
      if (!(as >> name)) return reader.Fail("truncated aging group");
      group.push_back(name);
    }
    db->RegisterAgingGroup(std::move(group));
  }

  ASSIGN_OR_RETURN(line, reader.NextLine());
  std::istringstream counts(line);
  size_t num_tables = 0;
  if (!(counts >> tag >> num_tables) || tag != "tables") {
    return reader.Fail("expected 'tables <n>'");
  }

  for (size_t t = 0; t < num_tables; ++t) {
    ASSIGN_OR_RETURN(line, reader.NextLine());
    std::istringstream header(line);
    std::string table_name;
    if (!(header >> tag >> table_name) || tag != "table") {
      return reader.Fail("expected 'table <name>'");
    }
    ASSIGN_OR_RETURN(TableSchema schema, ReadSchema(reader, table_name));
    ASSIGN_OR_RETURN(Table * table, db->CreateTable(schema));

    ASSIGN_OR_RETURN(line, reader.NextLine());
    std::istringstream gs(line);
    size_t num_groups = 0;
    if (!(gs >> tag >> num_groups) || tag != "groups" || num_groups == 0) {
      return reader.Fail("expected 'groups <n>'");
    }
    std::vector<PartitionGroup> groups;
    for (size_t g = 0; g < num_groups; ++g) {
      ASSIGN_OR_RETURN(line, reader.NextLine());
      std::istringstream age_stream(line);
      std::string age;
      if (!(age_stream >> tag >> age) || tag != "group" ||
          (age != "hot" && age != "cold")) {
        return reader.Fail("expected 'group hot|cold'");
      }
      ASSIGN_OR_RETURN(Partition main,
                       ReadPartition(reader, schema, "main"));
      ASSIGN_OR_RETURN(Partition delta,
                       ReadPartition(reader, schema, "delta"));
      groups.push_back(PartitionGroup{
          age == "hot" ? AgeClass::kHot : AgeClass::kCold, std::move(main),
          std::move(delta)});
    }
    table->RestoreGroups(std::move(groups));

    ASSIGN_OR_RETURN(line, reader.NextLine());
    if (line != "end_table") return reader.Fail("expected 'end_table'");
  }

  ASSIGN_OR_RETURN(line, reader.NextLine());
  if (line != "end_snapshot") return reader.Fail("expected 'end_snapshot'");
  db->txn_manager().AdvanceTo(last_tid);
  return Status::Ok();
}

}  // namespace aggcache
