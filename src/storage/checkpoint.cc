#include "storage/checkpoint.h"

#include <cstdio>
#include <sstream>

#include "common/stopwatch.h"
#include "obs/engine_metrics.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "storage/database.h"
#include "storage/segment.h"
#include "storage/snapshot.h"
#include "storage/table_lock.h"
#include "storage/wal.h"
#include "verify/fault_injector.h"

namespace aggcache {
namespace {

std::string Quoted(const std::string& s) { return EncodeWalValue(Value(s)); }

StatusOr<std::string> ReadQuoted(std::istream& in) {
  ASSIGN_OR_RETURN(Value v, DecodeWalValue(in));
  if (!v.is_string()) {
    return Status::InvalidArgument("expected a string token");
  }
  return v.AsString();
}

Status ExpectWord(std::istream& in, const char* word) {
  std::string token;
  if (!(in >> token) || token != word) {
    return Status::InvalidArgument(std::string("expected '") + word +
                                   "', got '" + token + "'");
  }
  return Status::Ok();
}

}  // namespace

void EncodeAggregateQuery(const AggregateQuery& query, std::ostream& out) {
  out << "tables " << query.tables.size();
  for (const TableRef& t : query.tables) out << ' ' << Quoted(t.table_name);
  out << '\n';
  out << "joins " << query.joins.size() << '\n';
  for (const JoinCondition& j : query.joins) {
    out << j.left_table << ' ' << Quoted(j.left_column) << ' ' << j.right_table
        << ' ' << Quoted(j.right_column) << '\n';
  }
  out << "filters " << query.filters.size() << '\n';
  for (const FilterPredicate& f : query.filters) {
    out << f.table_index << ' ' << Quoted(f.column) << ' '
        << static_cast<int>(f.op) << ' ' << EncodeWalValue(f.operand) << '\n';
  }
  out << "group_by " << query.group_by.size() << '\n';
  for (const GroupByRef& g : query.group_by) {
    out << g.table_index << ' ' << Quoted(g.column) << '\n';
  }
  out << "aggregates " << query.aggregates.size() << '\n';
  for (const AggregateSpec& a : query.aggregates) {
    out << static_cast<int>(a.fn) << ' ' << a.table_index << ' '
        << Quoted(a.column) << ' ' << Quoted(a.output_name) << '\n';
  }
}

StatusOr<AggregateQuery> DecodeAggregateQuery(std::istream& in) {
  AggregateQuery query;
  size_t n = 0;
  RETURN_IF_ERROR(ExpectWord(in, "tables"));
  if (!(in >> n)) return Status::InvalidArgument("bad tables count");
  for (size_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(std::string name, ReadQuoted(in));
    query.tables.push_back(TableRef{std::move(name)});
  }
  RETURN_IF_ERROR(ExpectWord(in, "joins"));
  if (!(in >> n)) return Status::InvalidArgument("bad joins count");
  for (size_t i = 0; i < n; ++i) {
    JoinCondition j;
    if (!(in >> j.left_table)) {
      return Status::InvalidArgument("bad join left table");
    }
    ASSIGN_OR_RETURN(j.left_column, ReadQuoted(in));
    if (!(in >> j.right_table)) {
      return Status::InvalidArgument("bad join right table");
    }
    ASSIGN_OR_RETURN(j.right_column, ReadQuoted(in));
    query.joins.push_back(std::move(j));
  }
  RETURN_IF_ERROR(ExpectWord(in, "filters"));
  if (!(in >> n)) return Status::InvalidArgument("bad filters count");
  for (size_t i = 0; i < n; ++i) {
    FilterPredicate f;
    int op = 0;
    if (!(in >> f.table_index)) {
      return Status::InvalidArgument("bad filter table index");
    }
    ASSIGN_OR_RETURN(f.column, ReadQuoted(in));
    if (!(in >> op) || op < 0 || op > static_cast<int>(CompareOp::kGe)) {
      return Status::InvalidArgument("bad filter op");
    }
    f.op = static_cast<CompareOp>(op);
    ASSIGN_OR_RETURN(f.operand, DecodeWalValue(in));
    query.filters.push_back(std::move(f));
  }
  RETURN_IF_ERROR(ExpectWord(in, "group_by"));
  if (!(in >> n)) return Status::InvalidArgument("bad group_by count");
  for (size_t i = 0; i < n; ++i) {
    GroupByRef g;
    if (!(in >> g.table_index)) {
      return Status::InvalidArgument("bad group_by table index");
    }
    ASSIGN_OR_RETURN(g.column, ReadQuoted(in));
    query.group_by.push_back(std::move(g));
  }
  RETURN_IF_ERROR(ExpectWord(in, "aggregates"));
  if (!(in >> n)) return Status::InvalidArgument("bad aggregates count");
  for (size_t i = 0; i < n; ++i) {
    AggregateSpec a;
    int fn = 0;
    if (!(in >> fn) || fn < 0 ||
        fn > static_cast<int>(AggregateFunction::kCountStar)) {
      return Status::InvalidArgument("bad aggregate function");
    }
    a.fn = static_cast<AggregateFunction>(fn);
    if (!(in >> a.table_index)) {
      return Status::InvalidArgument("bad aggregate table index");
    }
    ASSIGN_OR_RETURN(a.column, ReadQuoted(in));
    ASSIGN_OR_RETURN(a.output_name, ReadQuoted(in));
    query.aggregates.push_back(std::move(a));
  }
  return query;
}

StatusOr<std::string> EncodeCheckpointPayload(
    const Database& db, const CacheDescriptorSource* descriptor_source) {
  std::ostringstream out;
  RETURN_IF_ERROR(WriteSnapshot(db, out));

  auto merge_groups = db.merge_groups();
  out << "merge_groups " << merge_groups.size() << '\n';
  for (const auto& [tables, threshold] : merge_groups) {
    out << "group " << threshold << ' ' << tables.size();
    for (const std::string& t : tables) out << ' ' << Quoted(t);
    out << '\n';
  }

  std::vector<CacheDescriptor> descriptors;
  if (descriptor_source != nullptr) {
    descriptors = descriptor_source->ExportCacheDescriptors();
  }
  out << "cache_descriptors " << descriptors.size() << '\n';
  for (const CacheDescriptor& d : descriptors) {
    out << "descriptor " << d.base_tid << ' ' << d.hit_count << ' '
        << EncodeWalValue(Value(d.main_exec_ms)) << '\n';
    EncodeAggregateQuery(d.query, out);
    out << "end_descriptor\n";
  }
  out << "end_checkpoint\n";
  return out.str();
}

StatusOr<CheckpointExtras> DecodeCheckpointPayload(const std::string& payload,
                                                   Database* db) {
  std::istringstream in(payload);
  RETURN_IF_ERROR(ReadSnapshot(in, db));

  CheckpointExtras extras;
  size_t n = 0;
  RETURN_IF_ERROR(ExpectWord(in, "merge_groups"));
  if (!(in >> n)) return Status::InvalidArgument("bad merge_groups count");
  for (size_t i = 0; i < n; ++i) {
    RETURN_IF_ERROR(ExpectWord(in, "group"));
    PersistedMergeGroup group;
    size_t table_count = 0;
    if (!(in >> group.delta_row_threshold >> table_count)) {
      return Status::InvalidArgument("bad merge group header");
    }
    for (size_t t = 0; t < table_count; ++t) {
      ASSIGN_OR_RETURN(std::string name, ReadQuoted(in));
      group.tables.push_back(std::move(name));
    }
    db->RegisterMergeGroup(group.tables, group.delta_row_threshold);
    extras.merge_groups.push_back(std::move(group));
  }

  RETURN_IF_ERROR(ExpectWord(in, "cache_descriptors"));
  if (!(in >> n)) {
    return Status::InvalidArgument("bad cache_descriptors count");
  }
  for (size_t i = 0; i < n; ++i) {
    RETURN_IF_ERROR(ExpectWord(in, "descriptor"));
    CacheDescriptor d;
    if (!(in >> d.base_tid >> d.hit_count)) {
      return Status::InvalidArgument("bad descriptor header");
    }
    ASSIGN_OR_RETURN(Value cost, DecodeWalValue(in));
    if (!cost.is_double()) {
      return Status::InvalidArgument("bad descriptor cost");
    }
    d.main_exec_ms = cost.AsDouble();
    ASSIGN_OR_RETURN(d.query, DecodeAggregateQuery(in));
    RETURN_IF_ERROR(ExpectWord(in, "end_descriptor"));
    extras.cache_descriptors.push_back(std::move(d));
  }
  RETURN_IF_ERROR(ExpectWord(in, "end_checkpoint"));
  return extras;
}

// --- Checkpointer -----------------------------------------------------------

Checkpointer::Checkpointer(Database* db, std::string dir)
    : db_(db), dir_(std::move(dir)) {}

StatusOr<bool> Checkpointer::Checkpoint(WriteAheadLog* wal) {
  Stopwatch watch;
  BackgroundSpan checkpoint_span(SpanKind::kCheckpoint);
  std::string payload;
  uint64_t lsn = 0;
  Tid last_tid = 0;
  {
    // No logged statement is mid-flight while the gate is held exclusively,
    // so the table state and the WAL high-water lsn agree exactly.
    std::unique_lock<std::shared_mutex> gate(statement_gate_);
    if (db_->txn_manager().active_scope_count() > 0) {
      // A live atomic scope's rows are uncommitted; a checkpoint that
      // captured them could not roll them back (segments replay wholesale).
      // Skip — the caller retries after the scope closes.
      EngineMetrics::Get().checkpoints_skipped->Increment();
      return false;
    }
    lsn = wal != nullptr ? wal->last_appended_lsn() : 0;
    last_tid = db_->txn_manager().last_committed();

    // Shared locks on every table exclude merges and splits (which take
    // exclusive locks without holding the gate) while the payload encodes.
    TableLockSet locks;
    for (const std::string& name : db_->TableNames()) {
      ASSIGN_OR_RETURN(Table * table, db_->GetTable(name));
      locks.Add(table, TableLockMode::kShared);
    }
    locks.Lock();
    ASSIGN_OR_RETURN(payload, EncodeCheckpointPayload(*db_, descriptor_source_));
  }

  // Disk I/O runs outside every lock; statements appended after the gate
  // released carry lsns above `lsn` and replay from the WAL tail.
  RETURN_IF_ERROR(WriteSegmentFile(dir_, lsn, last_tid, payload));
  last_checkpoint_lsn_ = lsn;
  const EngineMetrics& m = EngineMetrics::Get();
  m.checkpoints->Increment();
  m.checkpoint_us->Observe(
      static_cast<uint64_t>(watch.ElapsedMillis() * 1000.0));
  RecordFlightEvent(FlightEventType::kCheckpointPublish, lsn, payload.size());

  // Retention: keep the newest two generations. The WAL truncation boundary
  // is the *older* retained checkpoint's lsn, so a corrupt newest segment
  // still composes with the surviving WAL records into a full history.
  ASSIGN_OR_RETURN(std::vector<SegmentInfo> segments,
                   ListCheckpointSegments(dir_));
  while (segments.size() > 2) {
    ::remove(segments.front().path.c_str());
    segments.erase(segments.begin());
  }
  // Crash point: die after publish, before the WAL shrinks. Recovery sees a
  // checkpoint plus a WAL that still reaches back before it — records at or
  // below the checkpoint lsn replay as no-ops-by-position (skipped).
  RETURN_IF_ERROR(FaultInjector::Global().MaybeFail("checkpoint.truncate"));
  if (wal != nullptr && !segments.empty()) {
    RETURN_IF_ERROR(wal->RotateAndTruncate(segments.front().lsn));
  }
  return true;
}

}  // namespace aggcache
