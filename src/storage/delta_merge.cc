#include "storage/delta_merge.h"

#include <limits>
#include <utility>

#include "common/logging.h"
#include "storage/table.h"
#include "txn/epoch.h"
#include "verify/fault_injector.h"

namespace aggcache {

MainPartitionBuilder::MainPartitionBuilder(const TableSchema& schema)
    : schema_(schema), column_values_(schema.columns.size()) {}

void MainPartitionBuilder::AddRow(std::vector<Value> values, Tid create_tid,
                                  Tid invalidate_tid) {
  AGGCACHE_CHECK_EQ(values.size(), column_values_.size());
  for (size_t c = 0; c < values.size(); ++c) {
    column_values_[c].push_back(std::move(values[c]));
  }
  create_tids_.push_back(create_tid);
  invalidate_tids_.push_back(invalidate_tid);
}

Partition MainPartitionBuilder::Build() {
  std::vector<Column> columns;
  columns.reserve(column_values_.size());
  for (size_t c = 0; c < column_values_.size(); ++c) {
    Dictionary dict = Dictionary::BuildSorted(schema_.columns[c].type,
                                              column_values_[c]);
    std::vector<ValueId> codes;
    codes.reserve(column_values_[c].size());
    for (const Value& v : column_values_[c]) {
      std::optional<ValueId> id = dict.Find(v);
      AGGCACHE_CHECK(id.has_value());
      codes.push_back(*id);
    }
    columns.push_back(Column::MakeMain(std::move(dict), codes));
    column_values_[c].clear();
    column_values_[c].shrink_to_fit();
  }
  return Partition::MakeMain(std::move(columns), std::move(create_tids_),
                             std::move(invalidate_tids_));
}

Status MergeTableGroup(Table& table, size_t group_index,
                       const MergeOptions& options, const Snapshot& snapshot) {
  if (group_index >= table.num_groups()) {
    return Status::OutOfRange("partition group index out of range");
  }
  PartitionGroup& group = table.mutable_group(group_index);

  // Main rows always have stable create stamps (that is how they got into
  // main); only their invalidation may be unstable, in which case the row
  // must survive — a snapshot excluding the invalidator still sees it.
  MainPartitionBuilder builder(table.schema());
  for (const Partition* p : {&group.main, &group.delta}) {
    for (size_t r = 0; r < p->num_rows(); ++r) {
      if (p->kind() == PartitionKind::kDelta &&
          !snapshot.TidStable(p->create_tid(r))) {
        continue;  // In-flight atomic scope: stays in the new delta below.
      }
      if (p->RowInvalidated(r) && !options.keep_invalidated &&
          snapshot.TidStable(p->invalidate_tid(r))) {
        continue;
      }
      builder.AddRow(p->GetRow(r), p->create_tid(r), p->invalidate_tid(r));
    }
  }
  Partition fresh_delta = Partition::MakeDelta(table.schema());
  for (size_t r = 0; r < group.delta.num_rows(); ++r) {
    if (snapshot.TidStable(group.delta.create_tid(r))) continue;
    RETURN_IF_ERROR(
        fresh_delta.AppendRow(group.delta.GetRow(r), group.delta.create_tid(r)));
    if (group.delta.RowInvalidated(r)) {
      fresh_delta.InvalidateRow(fresh_delta.num_rows() - 1,
                                group.delta.invalidate_tid(r));
    }
  }
  // Last abort opportunity before the new main becomes visible. Aborting
  // here leaves the group untouched — the builder's work is simply dropped,
  // so a retry starts from the same pre-merge state.
  RETURN_IF_ERROR(FaultInjector::Global().MaybeFail("storage.merge.publish"));
  Partition old_main = std::exchange(group.main, builder.Build());
  Partition old_delta = std::exchange(group.delta, std::move(fresh_delta));
  table.RebuildPkIndex();
  if (EpochManager* ep = table.epochs()) {
    // The displaced partitions may still be referenced by in-flight readers
    // of *other* tables (the merge holds this table exclusively, but column
    // pointers can outlive the lock inside an epoch guard). Defer freeing.
    ep->Retire(std::move(old_main));
    ep->Retire(std::move(old_delta));
    ep->Advance();
  }
  return Status::Ok();
}

Status MergeTableGroup(Table& table, size_t group_index,
                       const MergeOptions& options) {
  // No-snapshot overload: every stamp is stable, everything merges.
  Snapshot all{std::numeric_limits<Tid>::max(), {}};
  return MergeTableGroup(table, group_index, options, all);
}

}  // namespace aggcache
