#include "storage/delta_merge.h"

#include "common/logging.h"
#include "storage/table.h"

namespace aggcache {

MainPartitionBuilder::MainPartitionBuilder(const TableSchema& schema)
    : schema_(schema), column_values_(schema.columns.size()) {}

void MainPartitionBuilder::AddRow(std::vector<Value> values, Tid create_tid,
                                  Tid invalidate_tid) {
  AGGCACHE_CHECK_EQ(values.size(), column_values_.size());
  for (size_t c = 0; c < values.size(); ++c) {
    column_values_[c].push_back(std::move(values[c]));
  }
  create_tids_.push_back(create_tid);
  invalidate_tids_.push_back(invalidate_tid);
}

Partition MainPartitionBuilder::Build() {
  std::vector<Column> columns;
  columns.reserve(column_values_.size());
  for (size_t c = 0; c < column_values_.size(); ++c) {
    Dictionary dict = Dictionary::BuildSorted(schema_.columns[c].type,
                                              column_values_[c]);
    std::vector<ValueId> codes;
    codes.reserve(column_values_[c].size());
    for (const Value& v : column_values_[c]) {
      std::optional<ValueId> id = dict.Find(v);
      AGGCACHE_CHECK(id.has_value());
      codes.push_back(*id);
    }
    columns.push_back(Column::MakeMain(std::move(dict), codes));
    column_values_[c].clear();
    column_values_[c].shrink_to_fit();
  }
  return Partition::MakeMain(std::move(columns), std::move(create_tids_),
                             std::move(invalidate_tids_));
}

Status MergeTableGroup(Table& table, size_t group_index,
                       const MergeOptions& options) {
  if (group_index >= table.num_groups()) {
    return Status::OutOfRange("partition group index out of range");
  }
  PartitionGroup& group = table.mutable_group(group_index);

  MainPartitionBuilder builder(table.schema());
  for (const Partition* p : {&group.main, &group.delta}) {
    for (size_t r = 0; r < p->num_rows(); ++r) {
      if (p->RowInvalidated(r) && !options.keep_invalidated) continue;
      builder.AddRow(p->GetRow(r), p->create_tid(r), p->invalidate_tid(r));
    }
  }
  group.main = builder.Build();
  group.delta = Partition::MakeDelta(table.schema());
  table.RebuildPkIndex();
  return Status::Ok();
}

}  // namespace aggcache
