#ifndef AGGCACHE_STORAGE_TABLE_LOCK_H_
#define AGGCACHE_STORAGE_TABLE_LOCK_H_

#include <optional>
#include <span>
#include <vector>

#include "txn/consistent_view_manager.h"
#include "txn/types.h"

namespace aggcache {

class Database;
class Table;

/// Lock mode for one table in a TableLockSet.
enum class TableLockMode : uint8_t { kShared = 0, kExclusive = 1 };

/// An ordered multi-table lock acquisition. Every concurrent entry point
/// (query execution, writer statements, merges) builds its full lock set up
/// front and acquires it through this class, which sorts tables by address
/// and locks them in that global order — the deadlock-freedom rule of the
/// engine's lock hierarchy (DESIGN.md §6). Duplicate tables collapse to a
/// single acquisition with the stronger mode.
///
/// Lock scopes must not nest: a thread holding a TableLockSet must not
/// acquire another one (the public Table/Database mutation APIs lock
/// internally, so do not call them while holding a set that covers the same
/// tables).
class TableLockSet {
 public:
  TableLockSet() = default;
  ~TableLockSet() { Unlock(); }

  TableLockSet(TableLockSet&& other) noexcept;
  TableLockSet& operator=(TableLockSet&& other) noexcept;
  TableLockSet(const TableLockSet&) = delete;
  TableLockSet& operator=(const TableLockSet&) = delete;

  /// Adds a table to the set. Must be called before Lock().
  void Add(const Table* table, TableLockMode mode);

  /// Acquires every added lock in address order. Call at most once.
  void Lock();

  /// Releases held locks in reverse order. Idempotent; the destructor calls
  /// it as well.
  void Unlock();

  bool locked() const { return locked_; }

 private:
  struct Item {
    const Table* table = nullptr;
    TableLockMode mode = TableLockMode::kShared;
  };
  std::vector<Item> items_;
  bool locked_ = false;
};

/// A reader's consistent view: shared locks on every table the query
/// touches plus an epoch-pinned snapshot. While the view is held, no
/// writer statement, merge, or hot/cold split can mutate those tables, so
/// the snapshot's main/delta/visibility state is frozen across all of them;
/// the epoch guard additionally keeps any concurrently retired storage from
/// other tables alive (see EpochManager).
///
/// Acquisition order (lock-then-pin) matters: a reader must never enter an
/// epoch before it holds all its locks, or a merge waiting for the epoch to
/// drain while holding a table lock could deadlock against it.
class ReadView {
 public:
  ReadView() = default;

  /// Locks `tables` shared and pins the snapshot: the transaction's own
  /// when `read_at` is engaged, the current global snapshot otherwise
  /// (taken after the locks are held).
  static ReadView Acquire(Database& db, std::span<const Table* const> tables,
                          std::optional<Snapshot> read_at = std::nullopt);

  Snapshot snapshot() const { return pin_.snapshot; }
  bool active() const { return pin_.guard.active(); }

  /// Releases locks and epoch membership early (before destruction).
  void Release();

 private:
  TableLockSet locks_;
  PinnedSnapshot pin_;
};

}  // namespace aggcache

#endif  // AGGCACHE_STORAGE_TABLE_LOCK_H_
