#ifndef AGGCACHE_STORAGE_MERGE_DAEMON_H_
#define AGGCACHE_STORAGE_MERGE_DAEMON_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "storage/delta_merge.h"

namespace aggcache {

class Database;
class DurabilityManager;

/// Tuning for the background merge daemon. Defaults suit tests and the
/// stress harness; production embedders raise poll_interval.
struct MergeDaemonOptions {
  /// How often the daemon sizes deltas when idle.
  std::chrono::milliseconds poll_interval{20};
  /// First retry delay after an aborted merge; doubles per attempt.
  std::chrono::milliseconds initial_backoff{5};
  /// Backoff ceiling.
  std::chrono::milliseconds max_backoff{500};
  /// Abort retries per group within one tick; the group is re-evaluated on
  /// the next tick anyway, so this only bounds how long a tick can stall.
  int max_retries_per_tick = 5;
  /// Passed through to the delta merge.
  MergeOptions merge_options;
};

/// Counters exported by the daemon (monotonic since Start).
struct MergeDaemonStats {
  uint64_t ticks = 0;              ///< delta-sizing passes
  uint64_t merges_attempted = 0;   ///< group merges started (incl. retries)
  uint64_t merges_succeeded = 0;   ///< group merges committed
  uint64_t merges_aborted = 0;     ///< group merges failed (fault or error)
  uint64_t groups_given_up = 0;    ///< groups that exhausted a tick's retries
};

/// Background merge daemon (DESIGN.md §6): a single thread that watches the
/// database's registered merge-sync groups and merges each group as soon as
/// any member's delta crosses its threshold — the automated version of the
/// paper's Section 5.2 synchronized merge. Aborted merges (fault injection,
/// OnMergeAborted observers) are retried with exponential backoff.
///
/// The daemon is just another merge caller: Database::Merge's own locking
/// (exclusive target + shared others) serializes it against readers and
/// writers, so no extra coordination is needed. Pause() lets tests and
/// quiesce barriers stop background merges without tearing the thread down;
/// Stop() (and the destructor) shuts down cleanly, finishing or aborting
/// nothing mid-flight — the thread only exits between merge calls.
class MergeDaemon {
 public:
  explicit MergeDaemon(Database& db,
                       MergeDaemonOptions options = MergeDaemonOptions());
  ~MergeDaemon();

  MergeDaemon(const MergeDaemon&) = delete;
  MergeDaemon& operator=(const MergeDaemon&) = delete;

  /// Launches the background thread. No-op when already running. CHECKs
  /// that the database is not mid-recovery: the daemon merging tables while
  /// the WAL tail is still replaying would interleave physical
  /// reorganization with the logical replay stream (restart-order bug).
  void Start();

  /// Wires in the durability manager so the daemon can cut opportunistic
  /// checkpoints after merges (post-merge deltas are small, so the segment
  /// is near its minimum size). Pass nullptr to unwire. Set while the
  /// daemon is stopped.
  void SetDurability(DurabilityManager* durability);

  /// Requests shutdown and joins the thread. Safe to call twice; the
  /// destructor calls it. An in-progress merge completes first.
  void Stop();

  /// Suspends merging, blocking until the in-progress merge (if any) has
  /// completed — after Pause returns, the daemon touches no storage until
  /// Resume. The thread stays alive and keeps ticking cheaply.
  void Pause();

  /// Resumes merging and wakes the thread immediately.
  void Resume();

  /// Wakes the thread for an immediate delta-sizing pass (call after a
  /// write burst instead of waiting out the poll interval).
  void Nudge();

  bool running() const;
  bool paused() const;

  MergeDaemonStats stats() const;

  /// Parses the AGGCACHE_MERGE_DAEMON environment variable:
  ///   "off" or "0"                      -> *enabled = false
  ///   "poll_ms=N,backoff_ms=N,max_backoff_ms=N,retries=N" (any subset)
  /// Unset or any other value keeps the defaults with *enabled = true.
  static MergeDaemonOptions OptionsFromEnv(bool* enabled);

 private:
  void Loop();

  /// Merges one due group with per-tick retry + exponential backoff.
  void MergeGroupWithRetry(const std::vector<std::string>& tables);

  /// Sleeps up to `delay`, returning early (false) when shutdown is
  /// requested.
  bool InterruptibleSleep(std::chrono::milliseconds delay);

  Database& db_;
  const MergeDaemonOptions options_;
  DurabilityManager* durability_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_requested_ = false;
  bool paused_ = false;
  bool nudged_ = false;
  /// True while a Database::MergeTables call is in flight (Pause blocks
  /// on it).
  bool merging_ = false;
  MergeDaemonStats stats_;
};

}  // namespace aggcache

#endif  // AGGCACHE_STORAGE_MERGE_DAEMON_H_
