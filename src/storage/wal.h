#ifndef AGGCACHE_STORAGE_WAL_H_
#define AGGCACHE_STORAGE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <istream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "txn/types.h"

namespace aggcache {

/// Durability policy for the write-ahead log, selected via AGGCACHE_WAL:
///
///   off    no logging at all — restarts recover checkpoints only
///   async  records are written immediately, fdatasync'd by a background
///          flusher (bounded loss on power failure, none on process kill)
///   sync   every statement group-commits: it returns only once its record
///          is fdatasync'd (a leader syncs for all concurrent appenders)
enum class WalSyncPolicy : uint8_t { kOff = 0, kAsync = 1, kSync = 2 };

const char* WalSyncPolicyToString(WalSyncPolicy policy);
StatusOr<WalSyncPolicy> ParseWalSyncPolicy(const std::string& text);

/// Logical record types. The WAL logs *statements* against the delta, not
/// physical pages: replaying them through the normal Table APIs at their
/// original tids reproduces row visibility exactly (DESIGN.md §8). Merges
/// and splits of *data placement* are deliberately not logged — except
/// SplitHotCold, which changes the logical group layout the optimizer sees.
enum class WalRecordType : uint8_t {
  kInsert = 1,
  kUpdate = 2,
  kDelete = 3,
  kScopeBegin = 4,   ///< tid = the atomic write scope's tid; empty payload
  kScopeCommit = 5,  ///< scope ended; replay keeps its records
  kCreateTable = 6,  ///< payload = schema text (snapshot schema format)
  kSplitHotCold = 7,
  kAgingGroup = 8,
  kMergeGroup = 9,
};

const char* WalRecordTypeToString(WalRecordType type);

/// One decoded record.
struct WalRecord {
  uint64_t lsn = 0;
  Tid tid = 0;
  WalRecordType type = WalRecordType::kInsert;
  std::string payload;
};

/// Outcome of scanning a log directory. `clean` is false when the scan
/// stopped early — torn tail, checksum mismatch, or a sequence break
/// (duplicate / out-of-order lsn). Records before the stop point are valid
/// and returned; everything at and after it is discarded, never imported.
struct WalReadResult {
  std::vector<WalRecord> records;
  bool clean = true;
  std::string tail_error;
  /// File containing the stop point and the byte offset of the last valid
  /// record boundary in it; recovery truncates the file there so future
  /// appends extend a provably-clean prefix.
  std::string tail_file;
  uint64_t tail_valid_bytes = 0;
};

/// CRC-32 (IEEE 802.3 polynomial, bit-reflected) over `n` bytes.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

// --- Self-describing value tokens -------------------------------------------
// One whitespace-delimited token per value, used in WAL payloads and cache
// descriptors: i<int>, d<%.17g>, n (null), or a double-quoted string with
// backslash escapes for quote, backslash, newline and CR.

std::string EncodeWalValue(const Value& v);
StatusOr<Value> DecodeWalValue(std::istream& in);

/// Append-only segmented record log with per-record CRC32 framing:
///
///   [magic u32][len u32][lsn u64][tid u64][type u8][payload][crc u32]
///
/// Lsns are strictly sequential (+1); readers treat any break as the end of
/// trustworthy history. Segment files are named wal-<first lsn>.log; a
/// checkpoint rotates to a fresh segment and deletes segments that lie
/// entirely below the retention boundary.
///
/// Thread-safe. Appends serialize on an internal mutex; under the kSync
/// policy concurrent appenders group-commit (one leader fdatasyncs, the
/// rest wait for durable_lsn to cover their record).
class WriteAheadLog {
 public:
  struct Options {
    WalSyncPolicy policy = WalSyncPolicy::kSync;
    /// Background flusher period under kAsync.
    int async_interval_ms = 5;
  };

  /// Opens a new active segment starting at `next_lsn` in `dir` (which must
  /// exist). Pre-existing segments are left in place for readers.
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(const std::string& dir,
                                                       const Options& options,
                                                       uint64_t next_lsn);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record and applies the sync policy. Consults the
  /// FaultInjector crash points "wal.append" (record lost entirely),
  /// "wal.append.torn" (half a record hits the disk) and "wal.sync"
  /// (simulated kill after the write reached the OS but before the ack).
  /// After any crash point fires the log is dead: every later call returns
  /// an error, so no statement can claim durability it does not have.
  Status Append(WalRecordType type, Tid tid, const std::string& payload);

  /// Forces everything appended so far durable (no-op for kOff).
  Status Sync();

  /// Lsn the next Append will use.
  uint64_t next_lsn() const {
    return next_lsn_.load(std::memory_order_relaxed);
  }
  /// Lsn of the last record written (next_lsn - 1); 0 when none yet.
  uint64_t last_appended_lsn() const { return next_lsn() - 1; }

  /// Bytes appended since the last rotation — the checkpoint trigger.
  uint64_t bytes_since_rotate() const {
    return bytes_since_rotate_.load(std::memory_order_relaxed);
  }

  WalSyncPolicy policy() const { return options_.policy; }

  /// Starts a fresh segment and deletes whole segments whose records all
  /// lie strictly below `keep_from_lsn`. Called after a checkpoint
  /// publishes; the boundary is the *older* retained checkpoint's lsn so a
  /// corrupt newest checkpoint still leaves a recoverable prefix.
  Status RotateAndTruncate(uint64_t keep_from_lsn);

  /// Simulates a process kill: closes the file descriptor without a final
  /// sync and poisons the log. Everything already write(2)-ten survives (in
  /// this harness the OS outlives the "process"); buffered user-space state
  /// does not exist by construction.
  void SimulateCrash();

  /// Scans every wal-*.log in `dir` in lsn order, validating framing, CRCs
  /// and lsn continuity. Never fails hard on a bad tail — it reports the
  /// valid prefix (see WalReadResult).
  static StatusOr<WalReadResult> ReadDir(const std::string& dir);

  /// Parses the starting lsn out of a segment file name; nullopt when the
  /// name is not a WAL segment.
  static std::optional<uint64_t> SegmentStartLsn(const std::string& filename);

 private:
  WriteAheadLog(std::string dir, const Options& options, uint64_t next_lsn);

  Status OpenSegmentLocked(uint64_t start_lsn);
  Status WriteAllLocked(const void* data, size_t n);
  /// Marks the log dead; subsequent appends/syncs fail.
  void Poison(const std::string& why);
  /// fdatasyncs up to the given written lsn and publishes durable_lsn_.
  Status SyncWrittenLocked();
  void FlusherLoop();

  const std::string dir_;
  const Options options_;

  mutable std::mutex mu_;  ///< Guards fd_, written/durable lsn, poisoning.
  int fd_ = -1;
  std::string active_path_;
  std::atomic<uint64_t> next_lsn_{1};
  uint64_t written_lsn_ = 0;  ///< Highest lsn fully write(2)-ten.
  uint64_t durable_lsn_ = 0;  ///< Highest lsn known fdatasync'd.
  std::atomic<uint64_t> bytes_since_rotate_{0};
  bool poisoned_ = false;
  std::string poison_reason_;

  /// Group-commit coordination (kSync): one leader syncs, followers wait.
  std::condition_variable sync_cv_;
  bool sync_in_progress_ = false;

  /// Background flusher (kAsync).
  std::thread flusher_;
  bool stop_flusher_ = false;
  std::condition_variable flusher_cv_;
};

}  // namespace aggcache

#endif  // AGGCACHE_STORAGE_WAL_H_
