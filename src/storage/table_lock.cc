#include "storage/table_lock.h"

#include <algorithm>

#include "common/logging.h"
#include "storage/database.h"
#include "storage/table.h"

namespace aggcache {

TableLockSet::TableLockSet(TableLockSet&& other) noexcept
    : items_(std::move(other.items_)),
      locked_(std::exchange(other.locked_, false)) {
  other.items_.clear();
}

TableLockSet& TableLockSet::operator=(TableLockSet&& other) noexcept {
  if (this != &other) {
    Unlock();
    items_ = std::move(other.items_);
    locked_ = std::exchange(other.locked_, false);
    other.items_.clear();
  }
  return *this;
}

void TableLockSet::Add(const Table* table, TableLockMode mode) {
  AGGCACHE_CHECK(!locked_) << "cannot add tables to a locked set";
  if (table == nullptr) return;
  items_.push_back(Item{table, mode});
}

void TableLockSet::Lock() {
  AGGCACHE_CHECK(!locked_) << "lock set acquired twice";
  // Global order: table address. Duplicates collapse to one acquisition
  // with the stronger mode (a shared_mutex is not recursive, so locking a
  // table twice from one thread would deadlock).
  std::sort(items_.begin(), items_.end(), [](const Item& a, const Item& b) {
    return a.table < b.table;
  });
  std::vector<Item> unique;
  unique.reserve(items_.size());
  for (const Item& item : items_) {
    if (!unique.empty() && unique.back().table == item.table) {
      if (item.mode == TableLockMode::kExclusive) {
        unique.back().mode = TableLockMode::kExclusive;
      }
      continue;
    }
    unique.push_back(item);
  }
  items_ = std::move(unique);
  for (const Item& item : items_) {
    if (item.mode == TableLockMode::kExclusive) {
      item.table->storage_mutex().lock();
    } else {
      item.table->storage_mutex().lock_shared();
    }
  }
  locked_ = true;
}

void TableLockSet::Unlock() {
  if (!locked_) return;
  for (auto it = items_.rbegin(); it != items_.rend(); ++it) {
    if (it->mode == TableLockMode::kExclusive) {
      it->table->storage_mutex().unlock();
    } else {
      it->table->storage_mutex().unlock_shared();
    }
  }
  locked_ = false;
}

ReadView ReadView::Acquire(Database& db,
                           std::span<const Table* const> tables,
                           std::optional<Snapshot> read_at) {
  ReadView view;
  for (const Table* table : tables) {
    view.locks_.Add(table, TableLockMode::kShared);
  }
  view.locks_.Lock();
  // Locks first, then epoch + snapshot: see the class comment.
  view.pin_ = read_at.has_value()
                  ? ConsistentViewManager::PinAt(*read_at, db.epochs())
                  : ConsistentViewManager::Pin(db.txn_manager(), db.epochs());
  return view;
}

void ReadView::Release() {
  // Epoch membership ends before the locks are dropped; both orders are
  // safe, but this mirrors the acquisition's lock-then-pin.
  pin_.guard.Release();
  locks_.Unlock();
}

}  // namespace aggcache
