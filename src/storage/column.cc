#include "storage/column.h"

#include <cstring>

#include "common/logging.h"

namespace aggcache {

Column Column::MakeDelta(ColumnType type) {
  return Column(Dictionary(type, Dictionary::Mode::kUnsortedDelta),
                /*is_main=*/false);
}

Column Column::MakeMain(Dictionary dict, const std::vector<ValueId>& codes) {
  AGGCACHE_CHECK(dict.mode() == Dictionary::Mode::kSortedMain)
      << "main column requires a sorted dictionary";
  Column column(std::move(dict), /*is_main=*/true);
  column.main_codes_ = BitPackedVector(
      BitPackedVector::BitsForCardinality(column.dict_.size()));
  for (ValueId code : codes) {
    AGGCACHE_CHECK_LT(code, column.dict_.size()) << "code out of range";
    column.main_codes_.PushBack(code);
  }
  return column;
}

Status Column::Append(const Value& v) {
  if (is_main_) {
    return Status::FailedPrecondition("append to immutable main column");
  }
  ASSIGN_OR_RETURN(ValueId id, dict_.GetOrAdd(v));
  delta_codes_.push_back(id);
  return Status::Ok();
}

void Column::UnpackCodes(size_t begin, size_t count, ValueId* out) const {
  if (count == 0) return;
  if (is_main_) {
    main_codes_.Unpack(begin, count, out);
    return;
  }
  AGGCACHE_CHECK_LE(begin + count, delta_codes_.size());
  std::memcpy(out, delta_codes_.data() + begin, count * sizeof(ValueId));
}

size_t Column::ByteSize() const {
  size_t codes_bytes = is_main_
                           ? main_codes_.ByteSize()
                           : delta_codes_.capacity() * sizeof(ValueId);
  return codes_bytes + dict_.ByteSize();
}

}  // namespace aggcache
