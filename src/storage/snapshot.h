#ifndef AGGCACHE_STORAGE_SNAPSHOT_H_
#define AGGCACHE_STORAGE_SNAPSHOT_H_

#include <istream>
#include <ostream>

#include "common/status.h"
#include "storage/database.h"

namespace aggcache {

/// Database snapshot persistence: a versioned, line-oriented text format
/// capturing the full catalog (schemas, foreign keys, aging groups), every
/// partition of every table (including partition kind, temperature, row
/// values, and MVCC timestamps — so historical versions and pending deltas
/// survive a round trip), and the transaction counter.
///
/// Snapshots capture base data only; aggregate cache entries are runtime
/// state and are rebuilt on first use after a restore.

/// Writes the whole database to `out`.
Status WriteSnapshot(const Database& db, std::ostream& out);

/// Restores a snapshot into `db`, which must be empty (no tables, no
/// transactions issued). Tables are recreated in a dependency-compatible
/// order, partitions are rebuilt exactly as stored, and the transaction
/// counter resumes after the snapshot's last tid.
///
/// Reading stops at the snapshot's own end marker without consuming the
/// rest of the stream, so callers may append trailing sections of their own
/// (the checkpoint format does).
Status ReadSnapshot(std::istream& in, Database* db);

/// Writes one table's schema block alone (the "table <name>" header through
/// the foreign keys, no partition data) — the WAL's CREATE TABLE payload.
void WriteSchemaText(const TableSchema& schema, std::ostream& out);

/// Parses a schema block produced by WriteSchemaText.
StatusOr<TableSchema> ReadSchemaText(std::istream& in);

}  // namespace aggcache

#endif  // AGGCACHE_STORAGE_SNAPSHOT_H_
