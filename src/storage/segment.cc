#include "storage/segment.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "storage/wal.h"
#include "verify/fault_injector.h"

namespace aggcache {
namespace {

constexpr const char* kSegmentMagic = "AGGCACHE_SEGMENT";

std::string SegmentName(uint64_t lsn) {
  return StrFormat("ckpt-%020llu.seg", static_cast<unsigned long long>(lsn));
}

Status SyncFd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    return Status::Internal(
        StrFormat("fsync(%s) failed: %s", what.c_str(), std::strerror(errno)));
  }
  return Status::Ok();
}

/// fsyncs a directory so a rename inside it is durable.
Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal(StrFormat("open dir '%s' failed: %s", dir.c_str(),
                                      std::strerror(errno)));
  }
  Status s = SyncFd(fd, dir);
  ::close(fd);
  return s;
}

}  // namespace

Status WriteSegmentFile(const std::string& dir, uint64_t lsn, Tid last_tid,
                        const std::string& payload) {
  FaultInjector& injector = FaultInjector::Global();
  RETURN_IF_ERROR(injector.MaybeFail("checkpoint.write"));

  std::string final_path = dir + "/" + SegmentName(lsn);
  std::string tmp_path = final_path + ".tmp";
  uint32_t crc = Crc32(payload.data(), payload.size());
  std::string header = StrFormat(
      "%s v1 %llu %llu %zu %u\n", kSegmentMagic,
      static_cast<unsigned long long>(lsn),
      static_cast<unsigned long long>(last_tid), payload.size(), crc);

  int fd = ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::Internal(StrFormat("open('%s') failed: %s",
                                      tmp_path.c_str(), std::strerror(errno)));
  }
  auto write_all = [&](const char* p, size_t n) -> Status {
    while (n > 0) {
      ssize_t w = ::write(fd, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(StrFormat("segment write failed: %s",
                                          std::strerror(errno)));
      }
      p += w;
      n -= static_cast<size_t>(w);
    }
    return Status::Ok();
  };
  Status s = write_all(header.data(), header.size());
  if (s.ok()) s = write_all(payload.data(), payload.size());
  if (s.ok()) s = SyncFd(fd, tmp_path);
  ::close(fd);
  if (!s.ok()) {
    ::unlink(tmp_path.c_str());
    return s;
  }

  // Crash point: temp file is complete and durable but never published.
  // Recovery ignores .tmp files, so the previous generation still rules.
  Status crash = injector.MaybeFail("checkpoint.publish");
  if (!crash.ok()) return crash;

  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    Status err = Status::Internal(StrFormat(
        "rename('%s') failed: %s", final_path.c_str(), std::strerror(errno)));
    ::unlink(tmp_path.c_str());
    return err;
  }
  return SyncDir(dir);
}

StatusOr<std::string> ReadSegmentFile(const std::string& path, uint64_t* lsn,
                                      Tid* last_tid) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open segment '" + path + "'");
  }
  std::string header;
  if (!std::getline(in, header)) {
    return Status::InvalidArgument("segment '" + path + "' has no header");
  }
  std::istringstream hs(header);
  std::string magic, version;
  unsigned long long file_lsn = 0, file_tid = 0;
  size_t payload_bytes = 0;
  uint32_t stored_crc = 0;
  if (!(hs >> magic >> version >> file_lsn >> file_tid >> payload_bytes >>
        stored_crc) ||
      magic != kSegmentMagic || version != "v1") {
    return Status::InvalidArgument("segment '" + path + "' has a bad header");
  }
  std::string payload(payload_bytes, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload_bytes));
  if (static_cast<size_t>(in.gcount()) != payload_bytes) {
    return Status::InvalidArgument("segment '" + path + "' is truncated");
  }
  uint32_t actual_crc = Crc32(payload.data(), payload.size());
  if (actual_crc != stored_crc) {
    return Status::InvalidArgument("segment '" + path +
                                   "' failed its checksum");
  }
  if (lsn != nullptr) *lsn = file_lsn;
  if (last_tid != nullptr) *last_tid = static_cast<Tid>(file_tid);
  return payload;
}

StatusOr<std::vector<SegmentInfo>> ListCheckpointSegments(
    const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<SegmentInfo> out;
  std::error_code ec;
  if (!fs::exists(dir, ec)) return out;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    std::string name = entry.path().filename().string();
    constexpr const char* kPrefix = "ckpt-";
    constexpr const char* kSuffix = ".seg";
    if (name.size() <= std::strlen(kPrefix) + std::strlen(kSuffix)) continue;
    if (name.rfind(kPrefix, 0) != 0) continue;
    if (name.substr(name.size() - 4) != kSuffix) continue;
    std::string digits = name.substr(
        std::strlen(kPrefix), name.size() - std::strlen(kPrefix) - 4);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    SegmentInfo info;
    info.path = entry.path().string();
    info.lsn = std::strtoull(digits.c_str(), nullptr, 10);
    out.push_back(std::move(info));
  }
  if (ec) {
    return Status::Internal("segment dir scan failed: " + ec.message());
  }
  std::sort(out.begin(), out.end(),
            [](const SegmentInfo& a, const SegmentInfo& b) {
              return a.lsn < b.lsn;
            });
  return out;
}

}  // namespace aggcache
