#ifndef AGGCACHE_STORAGE_PARTITION_H_
#define AGGCACHE_STORAGE_PARTITION_H_

#include <span>
#include <vector>

#include "common/bit_vector.h"
#include "common/status.h"
#include "storage/column.h"
#include "storage/schema.h"
#include "txn/types.h"

namespace aggcache {

/// Horizontal role of a partition within a table.
enum class PartitionKind : uint8_t { kMain = 0, kDelta = 1 };

/// Temperature class for the multi-partition scenario of Section 5.4.
enum class AgeClass : uint8_t { kHot = 0, kCold = 1 };

const char* PartitionKindToString(PartitionKind kind);
const char* AgeClassToString(AgeClass age);

/// One horizontal partition: a set of columns plus per-row MVCC timestamps.
///
/// Rows are appended (delta) or bulk-built (main by the delta merge) and
/// never updated in place; an update elsewhere invalidates the old row by
/// setting its invalidate_tid — exactly the general main-delta update
/// mechanism the paper describes in Section 2.
class Partition {
 public:
  /// Creates an empty write-optimized delta partition for `schema`.
  static Partition MakeDelta(const TableSchema& schema);

  /// Creates a read-optimized main partition from prebuilt columns and MVCC
  /// timestamps (all columns and tid vectors must have `num_rows` entries).
  static Partition MakeMain(std::vector<Column> columns,
                            std::vector<Tid> create_tids,
                            std::vector<Tid> invalidate_tids);

  PartitionKind kind() const { return kind_; }
  size_t num_rows() const { return create_tids_.size(); }
  bool empty() const { return create_tids_.empty(); }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }

  /// Appends a full row to a delta partition.
  Status AppendRow(const std::vector<Value>& values, Tid create_tid);

  /// Marks row `row` invalid as of transaction `tid` (update/delete).
  void InvalidateRow(size_t row, Tid tid);

  Tid create_tid(size_t row) const { return create_tids_[row]; }
  Tid invalidate_tid(size_t row) const { return invalidate_tids_[row]; }
  bool RowInvalidated(size_t row) const {
    return invalidate_tids_[row] != kNoTid;
  }

  std::span<const Tid> create_tids() const { return create_tids_; }
  std::span<const Tid> invalidate_tids() const { return invalidate_tids_; }

  /// Number of rows that were ever invalidated (the cache entry dirty
  /// counter compares against this to detect pending main compensation).
  uint64_t invalidation_count() const { return invalidation_count_; }

  /// Full row decoded to values.
  std::vector<Value> GetRow(size_t row) const;

  /// Approximate heap footprint (columns only; MVCC vectors excluded so the
  /// Section 6.2 accounting isolates column storage, plus they are identical
  /// with and without tid columns).
  size_t ColumnByteSize() const;

 private:
  Partition(PartitionKind kind, std::vector<Column> columns)
      : kind_(kind), columns_(std::move(columns)) {}

  PartitionKind kind_;
  std::vector<Column> columns_;
  std::vector<Tid> create_tids_;
  std::vector<Tid> invalidate_tids_;
  uint64_t invalidation_count_ = 0;
};

}  // namespace aggcache

#endif  // AGGCACHE_STORAGE_PARTITION_H_
